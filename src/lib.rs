//! # IzhiRISC-V — a reproduction in Rust
//!
//! This crate re-exports the whole workspace behind one façade so examples
//! and downstream users need a single dependency:
//!
//! * [`fixed`] — Q-format fixed-point arithmetic (Q4.11 / Q7.8 / Q15.16);
//! * [`core`] — the paper's contribution: NPU (single-cycle Izhikevich
//!   Euler update) and DCU (shift-approximated synaptic decay) semantics;
//! * [`isa`] — RV32IM + Zicsr + the custom-0 neuromorphic extension,
//!   with assembler and disassembler;
//! * [`sim`] — the cycle-approximate multi-core system simulator;
//! * [`snn`] — SNN substrate (80-20 generator, WTA Sudoku network, host
//!   reference simulators, spike-train analysis);
//! * [`hw`] — FPGA/ASIC resource, power and timing models;
//! * [`programs`] — the guest workloads (80-20, Sudoku, soft-float
//!   baseline), the engine that runs them on the simulator, and the
//!   scenario registry that names and verifies them;
//! * [`bench`][mod@bench] — the experiment harness: paper tables/figures,
//!   the scenario battery runner and the CI perf gate.
//!
//! ## Quickstart
//!
//! ```
//! use izhirisc::core::{HStep, IzhParams, NmRegs, NpUnit};
//! use izhirisc::fixed::{pack_vu, Q15_16, Q7_8};
//!
//! let mut regs = NmRegs::default();
//! regs.load_params(&IzhParams::regular_spiking());
//! regs.set_h(HStep::Half);
//!
//! let mut vu = pack_vu(Q7_8::from_f64(-65.0), Q7_8::from_f64(-13.0));
//! let mut spikes = 0;
//! for _ in 0..2000 {
//!     let out = NpUnit::update(&regs, vu, Q15_16::from_f64(10.0));
//!     vu = out.vu;
//!     spikes += out.spike as u32;
//! }
//! assert!(spikes > 0);
//! ```

/// Q-format fixed-point arithmetic.
pub mod fixed {
    pub use izhi_fixed::qformat::{pack_vu, unpack_vu};
    pub use izhi_fixed::*;
}

/// NPU / DCU semantics and the Izhikevich model.
pub mod core {
    pub use izhi_core::*;
}

/// Instruction set, assembler, disassembler.
pub mod isa {
    pub use izhi_isa::*;
}

/// System simulator.
pub mod sim {
    pub use izhi_sim::*;
}

/// SNN substrate.
pub mod snn {
    pub use izhi_snn::*;
}

/// Hardware models.
pub mod hw {
    pub use izhi_hw::*;
}

/// Guest workloads.
pub mod programs {
    pub use izhi_programs::*;
}

/// Experiment harness (paper tables, scenario battery runner, perf gate).
pub mod bench {
    pub use izhi_bench::*;
}

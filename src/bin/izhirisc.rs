//! `izhirisc` — command-line front end for the IzhiRISC-V toolchain.
//!
//! ```text
//! izhirisc asm    <file.s> [-o out.bin]      assemble to a flat binary
//! izhirisc disasm <file.bin> [--base ADDR]   disassemble a flat binary
//! izhirisc run    <file.s> [options]         assemble + run on the simulator
//!     --cores N        number of cores (default 1)
//!     --cycles N       cycle budget (default 100000000)
//!     --relaxed        relaxed scheduling: round-robin quanta, 1 cycle
//!                      per instruction, blocking barriers (throughput
//!                      mode; timing is approximate, results exact for
//!                      barrier/mutex-synchronised guests)
//!     --quantum N      relaxed scheduling quantum (default 50000)
//!     --host-threads N run relaxed quanta on N host worker threads
//!                      (implies relaxed scheduling; results are
//!                      bit-identical to --relaxed at any thread count;
//!                      0 = auto via IZHI_HOST_THREADS / host CPUs)
//!     --trace          print every retired instruction (core 0)
//!     --regs           dump the register file at exit
//! izhirisc selftest                          run the guest ISA battery
//! ```

use std::fs;
use std::io::Write as _;
use std::process::exit;

use izhirisc::isa::{decode, disassemble, Assembler, Reg};
use izhirisc::sim::{SchedMode, System, SystemConfig};

fn usage() -> ! {
    eprintln!(
        "usage:\n  izhirisc asm <file.s> [-o out.bin]\n  izhirisc disasm <file.bin> [--base ADDR]\n  izhirisc run <file.s> [--cores N] [--cycles N] [--relaxed] [--quantum N] [--host-threads N] [--trace] [--regs]\n  izhirisc selftest"
    );
    exit(2);
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn cmd_asm(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let src = fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let prog = Assembler::new().assemble(&src).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(1);
    });
    let out = arg_value(args, "-o").unwrap_or_else(|| format!("{path}.bin"));
    // Flat image: from the lowest segment base to the highest end.
    let lo = prog.segments.iter().map(|s| s.base).min().unwrap_or(0);
    let hi = prog
        .segments
        .iter()
        .map(|s| s.base + s.data.len() as u32)
        .max()
        .unwrap_or(0);
    let mut image = vec![0u8; (hi - lo) as usize];
    for seg in &prog.segments {
        let off = (seg.base - lo) as usize;
        image[off..off + seg.data.len()].copy_from_slice(&seg.data);
    }
    fs::write(&out, &image).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    println!(
        "{out}: {} bytes (base {lo:#x}, entry {:#x}, {} symbols)",
        image.len(),
        prog.entry,
        prog.symbols.len()
    );
}

fn cmd_disasm(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let base = arg_value(args, "--base")
        .map(|s| parse_u32(&s))
        .unwrap_or(0);
    let bytes = fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    // Tolerate a closed pipe (e.g. `izhirisc disasm x | head`).
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let mut w = [0u8; 4];
        w[..chunk.len()].copy_from_slice(chunk);
        let word = u32::from_le_bytes(w);
        let addr = base + 4 * i as u32;
        let line = match decode(word) {
            Ok(inst) => format!("{addr:#010x}: {word:08x}  {}", disassemble(inst)),
            Err(_) => format!("{addr:#010x}: {word:08x}  .word {word:#010x}"),
        };
        if writeln!(out, "{line}").is_err() {
            return;
        }
    }
}

fn parse_u32(s: &str) -> u32 {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16)
    } else {
        s.parse()
    }
    .unwrap_or_else(|_| {
        eprintln!("bad number `{s}`");
        exit(2);
    })
}

fn cmd_run(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let src = fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let prog = Assembler::new().assemble(&src).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(1);
    });
    let cores = arg_value(args, "--cores")
        .map(|s| parse_u32(&s))
        .unwrap_or(1);
    let budget = arg_value(args, "--cycles")
        .map(|s| parse_u32(&s) as u64)
        .unwrap_or(100_000_000);
    let trace = args.iter().any(|a| a == "--trace");
    let dump_regs = args.iter().any(|a| a == "--regs");
    let host_threads = arg_value(args, "--host-threads").map(|s| parse_u32(&s));
    // --host-threads implies relaxed scheduling (it parallelises the
    // relaxed quantum structure; there is nothing to thread in exact mode).
    let relaxed = args.iter().any(|a| a == "--relaxed") || host_threads.is_some();
    let quantum = arg_value(args, "--quantum")
        .map(|s| u64::from(parse_u32(&s)))
        .unwrap_or(SchedMode::DEFAULT_QUANTUM);
    if trace && relaxed {
        eprintln!("--trace single-steps the exact schedule; drop --relaxed/--host-threads");
        exit(2);
    }
    if !relaxed && args.iter().any(|a| a == "--quantum") {
        eprintln!("--quantum only applies to relaxed scheduling; add --relaxed");
        exit(2);
    }

    let mut cfg = SystemConfig::with_cores(cores);
    match host_threads {
        Some(host_threads) => {
            cfg.sched = SchedMode::RelaxedParallel {
                quantum,
                host_threads,
            };
        }
        None if relaxed => cfg.sched = SchedMode::Relaxed { quantum },
        None => {}
    }
    let mut sys = System::new(cfg);
    if !sys.load_program(&prog) {
        eprintln!("program does not fit in simulated memory");
        exit(1);
    }
    let result = if trace {
        run_traced(&mut sys, budget)
    } else {
        sys.run(budget).map(|e| (e.cycles, e.instret))
    };
    match result {
        Ok((cycles, instret)) => {
            let console = sys.console();
            if !console.is_empty() {
                print!("{console}");
                if !console.ends_with('\n') {
                    println!();
                }
            }
            eprintln!(
                "[{instret} instructions, {cycles} cycles, IPC {:.3}]",
                instret as f64 / cycles.max(1) as f64
            );
            if dump_regs {
                for i in 0..32u8 {
                    let r = Reg(i);
                    eprint!("{:>5}={:#010x}", r.abi_name(), sys.core(0).reg(r));
                    if i % 4 == 3 {
                        eprintln!();
                    }
                }
            }
        }
        Err(e) => {
            eprintln!("simulation failed: {e}");
            exit(1);
        }
    }
}

/// Single-core trace loop: disassemble each instruction as it retires.
fn run_traced(sys: &mut System, budget: u64) -> Result<(u64, u64), izhirisc::sim::SimError> {
    if sys.n_cores() != 1 {
        eprintln!("--trace implies --cores 1");
        exit(2);
    }
    loop {
        if sys.core(0).halted() {
            break;
        }
        if sys.core(0).time > budget {
            return Err(izhirisc::sim::SimError::Timeout { max_cycles: budget });
        }
        let pc = sys.core(0).pc();
        let word = sys.shared().mem.read_u32(pc).unwrap_or(0);
        let text = decode(word)
            .map(disassemble)
            .unwrap_or_else(|_| "??".into());
        eprintln!("[{:>10}] {pc:#010x}: {text}", sys.core(0).time);
        sys.step_core(0)
            .map_err(|cause| izhirisc::sim::SimError::Trap { core: 0, cause })?;
    }
    Ok((sys.core(0).time, sys.core(0).counters.instret))
}

fn cmd_selftest() {
    let (failures, console) = izhirisc::programs::selftest::run_battery();
    print!("{console}");
    let n = izhirisc::programs::selftest::battery().len();
    println!("\n{n} cases, {failures} failures");
    exit(if failures == 0 { 0 } else { 1 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("asm") => cmd_asm(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("selftest") => cmd_selftest(),
        _ => usage(),
    }
}

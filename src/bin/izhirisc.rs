//! `izhirisc` — command-line front end for the IzhiRISC-V toolchain.
//!
//! ```text
//! izhirisc asm    <file.s> [-o out.bin]      assemble to a flat binary
//! izhirisc disasm <file.bin> [--base ADDR]   disassemble a flat binary
//! izhirisc run    <file.s> [options]         assemble + run on the simulator
//!     --cores N        number of cores (default 1)
//!     --cycles N       cycle budget (default 100000000)
//!     --sched MODE     scheduling mode: exact | relaxed | parallel
//!                      (default exact; relaxed = round-robin quanta,
//!                      1 cycle per instruction, blocking barriers;
//!                      parallel = relaxed quanta on host worker threads,
//!                      bit-identical to relaxed at any thread count)
//!     --relaxed        alias for --sched relaxed
//!     --quantum N      relaxed/parallel scheduling quantum (default 50000)
//!     --host-threads N worker threads for --sched parallel (implies it;
//!                      0 = auto via IZHI_HOST_THREADS / host CPUs)
//!     --timing T       clock: exact (the exact scheduler's cycle-accurate
//!                      model), unit (1 cycle/instruction) or estimated
//!                      (static per-op-class costs); unit/estimated imply
//!                      --sched relaxed when no scheduler flag is given
//!     --trace          print every retired instruction (core 0)
//!     --regs           dump the register file at exit
//!     --no-superblocks single-step every micro-op instead of fusing
//!                      straight-line runs into superblocks (also
//!                      IZHI_SUPERBLOCKS=0; bit-identical, for A/B checks)
//!     --no-kernels     interpret registered loop spans op by op instead
//!                      of batch-executing them host-natively (also
//!                      IZHI_KERNELS=0; bit-identical, for A/B checks)
//! izhirisc scenario list                     list registered scenarios
//! izhirisc scenario run <name> [options]     build + run a scenario
//!     --sched MODE --quantum N --host-threads N --timing T    as above
//!     --n N --ticks N --cores N --seed N           scenario parameters
//!     --shards N       scale-out scenarios: population shards (<= cores)
//!     --stim-rate N    net8020_stream: injected stimulus events per tick
//!     --quick          use the scenario's CI-sized quick parameters
//!     --battery        fan the scenario's battery (seeds x sched x timing)
//!                      across host threads, verify cross-mode identity
//!     --json PATH      write battery rows as JSON (with --battery)
//!     --no-superblocks / --no-kernels   as under `run`
//! izhirisc scenario battery [--timing T] [--json PATH] [--no-superblocks] [--no-kernels]
//!                                            quick battery of EVERY scenario
//!                                            (--timing: only that clock's rows)
//! izhirisc serve [options]                   scenario service (HTTP/1.1 JSON)
//!     --addr HOST:PORT bind address (default 127.0.0.1:7171)
//!     --workers N      supervised worker threads (default 2)
//!     --queue-cap N    bounded queue capacity — submissions beyond it
//!                      get 429 + a retry_after_ms hint (default 16)
//!     --wall-limit S   per-job wall-clock budget in seconds (default 30)
//!     --no-retry       disable the retry policy for transient failures
//! izhirisc selftest                          run the guest ISA battery
//! ```
//!
//! Flag parsing is strict: unknown flags are rejected, and a flag that
//! needs a value refuses to swallow the next flag (`--quantum --trace`
//! is an error, not quantum = "--trace").

use std::fs;
use std::io::Write as _;
use std::process::exit;

use izhirisc::bench::battery::{self, BatteryRunner, BatterySpec, SchedSpec};
use izhirisc::bench::serve::{ServeConfig, Server};
use izhirisc::bench::supervise::{RetryPolicy, SuperviseConfig};
use izhirisc::isa::{decode, disassemble, Assembler, Reg};
use izhirisc::programs::scenario::{self, ScenarioParams, Workload};
use izhirisc::programs::template;
use izhirisc::sim::{SchedMode, System, SystemConfig, TimingModel};

/// Consume a `--no-superblocks` switch. The flag rides the existing
/// `IZHI_SUPERBLOCKS` environment plumbing (set before any system or
/// battery workload is built), so every execution path — single runs,
/// templates, battery rows, supervised jobs — sees the same setting.
fn take_no_superblocks(args: &mut Args) {
    if args.switch("--no-superblocks") {
        std::env::set_var("IZHI_SUPERBLOCKS", "0");
    }
}

/// Consume a `--no-kernels` switch — the batch-kernel analogue of
/// `--no-superblocks`, riding `IZHI_KERNELS` the same way. Relaxed
/// schedules then interpret the registered loop spans op by op
/// (bit-identical; for A/B checks and perf bisection).
fn take_no_kernels(args: &mut Args) {
    if args.switch("--no-kernels") {
        std::env::set_var("IZHI_KERNELS", "0");
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  izhirisc asm <file.s> [-o out.bin]\n  izhirisc disasm <file.bin> [--base ADDR]\n  izhirisc run <file.s> [--cores N] [--cycles N] [--sched exact|relaxed|parallel] [--relaxed] [--quantum N] [--host-threads N] [--timing exact|unit|estimated] [--trace] [--regs] [--no-superblocks] [--no-kernels]\n  izhirisc scenario list\n  izhirisc scenario run <name> [--sched MODE] [--timing T] [--n N] [--ticks N] [--cores N] [--seed N] [--shards N] [--stim-rate N] [--quantum N] [--host-threads N] [--quick] [--battery] [--json PATH] [--no-superblocks] [--no-kernels]\n  izhirisc scenario battery [--timing T] [--json PATH] [--no-superblocks] [--no-kernels]\n  izhirisc serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--wall-limit SECS] [--no-retry]\n  izhirisc selftest"
    );
    exit(2);
}

/// Strict flag extractor over a subcommand's argument list. Known flags
/// are *taken* (removed); whatever remains must be positional — any
/// leftover token starting with `-` is an unknown flag and an error.
struct Args {
    rest: Vec<String>,
}

impl Args {
    fn new(args: &[String]) -> Self {
        Args {
            rest: args.to_vec(),
        }
    }

    /// Take a boolean switch.
    fn switch(&mut self, flag: &str) -> bool {
        match self.rest.iter().position(|a| a == flag) {
            Some(i) => {
                self.rest.remove(i);
                true
            }
            None => false,
        }
    }

    /// Take a `--flag value` pair. The value must exist and must not look
    /// like another flag — `--quantum --trace` is rejected instead of
    /// silently parsing `--trace` as the quantum.
    fn value(&mut self, flag: &str) -> Option<String> {
        let i = self.rest.iter().position(|a| a == flag)?;
        self.rest.remove(i);
        if i >= self.rest.len() || self.rest[i].starts_with('-') {
            eprintln!(
                "flag `{flag}` needs a value{}",
                match self.rest.get(i) {
                    Some(next) => format!(" (got flag `{next}`)"),
                    None => String::new(),
                }
            );
            exit(2);
        }
        Some(self.rest.remove(i))
    }

    /// Finish parsing: reject unknown flags, return the positionals.
    fn positionals(self) -> Vec<String> {
        for a in &self.rest {
            if a.starts_with('-') {
                eprintln!("unknown flag `{a}`");
                usage();
            }
        }
        self.rest
    }
}

fn parse_u32(s: &str) -> u32 {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16)
    } else {
        s.parse()
    }
    .unwrap_or_else(|_| {
        eprintln!("bad number `{s}`");
        exit(2);
    })
}

/// Scheduling-mode selection shared by `run` and `scenario run`:
/// `--sched exact|relaxed|parallel` is canonical; `--relaxed` and
/// `--host-threads N` are kept as aliases of the modes they imply.
/// `--timing exact|unit|estimated` picks the clock: `exact` is the exact
/// scheduler's cycle-accurate model, `unit`/`estimated` are the relaxed
/// clocks (and imply the sequential relaxed scheduler when no scheduler
/// flag is given).
fn parse_sched(args: &mut Args) -> SchedMode {
    let sched = args.value("--sched");
    let relaxed_alias = args.switch("--relaxed");
    let host_threads = args.value("--host-threads").map(|s| parse_u32(&s));
    let quantum = args.value("--quantum").map(|s| u64::from(parse_u32(&s)));
    let timing_arg = args.value("--timing");
    if let Some(t) = timing_arg.as_deref() {
        if !matches!(t, "exact" | "unit" | "estimated") {
            eprintln!("unknown --timing `{t}` (use exact, unit or estimated)");
            exit(2);
        }
    }
    let mode = match sched.as_deref() {
        Some("exact") => "exact",
        Some("relaxed") => "relaxed",
        Some("parallel") => "parallel",
        Some(other) => {
            eprintln!("unknown --sched mode `{other}` (use exact, relaxed or parallel)");
            exit(2);
        }
        // Aliases: --host-threads implies the parallel scheduler (it
        // parallelises the relaxed quantum structure), --relaxed the
        // sequential relaxed one, and a relaxed clock (--timing
        // unit|estimated) the sequential relaxed one too.
        None if host_threads.is_some() => "parallel",
        None if relaxed_alias => "relaxed",
        None if matches!(timing_arg.as_deref(), Some("unit" | "estimated")) => "relaxed",
        None => "exact",
    };
    if mode == "exact" && quantum.is_some() {
        eprintln!("--quantum only applies to relaxed/parallel scheduling");
        exit(2);
    }
    if mode != "parallel" && host_threads.is_some() {
        eprintln!("--host-threads only applies to --sched parallel");
        exit(2);
    }
    let timing = match (mode, timing_arg.as_deref()) {
        // The exact scheduler *is* the cycle-accurate clock.
        ("exact", None | Some("exact")) => TimingModel::Unit, // unused
        ("exact", Some(t)) => {
            eprintln!("--timing {t} needs a relaxed scheduler (--sched relaxed|parallel)");
            exit(2);
        }
        (_, Some("exact")) => {
            eprintln!("--timing exact is the exact scheduler's clock; drop --sched/--relaxed/--host-threads");
            exit(2);
        }
        (_, None | Some("unit")) => TimingModel::Unit,
        (_, Some(_)) => TimingModel::Estimated,
    };
    let quantum = quantum.unwrap_or(SchedMode::DEFAULT_QUANTUM);
    match mode {
        "relaxed" => SchedMode::Relaxed { quantum, timing },
        "parallel" => SchedMode::RelaxedParallel {
            quantum,
            host_threads: host_threads.unwrap_or(0),
            timing,
        },
        _ => SchedMode::Exact,
    }
}

fn cmd_asm(args: &[String]) {
    let mut args = Args::new(args);
    let out_flag = args.value("-o");
    let positionals = args.positionals();
    let Some(path) = positionals.first() else {
        usage()
    };
    let src = fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let prog = Assembler::new().assemble(&src).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(1);
    });
    let out = out_flag.unwrap_or_else(|| format!("{path}.bin"));
    // Flat image: from the lowest segment base to the highest end.
    let lo = prog.segments.iter().map(|s| s.base).min().unwrap_or(0);
    let hi = prog
        .segments
        .iter()
        .map(|s| s.base + s.data.len() as u32)
        .max()
        .unwrap_or(0);
    let mut image = vec![0u8; (hi - lo) as usize];
    for seg in &prog.segments {
        let off = (seg.base - lo) as usize;
        image[off..off + seg.data.len()].copy_from_slice(&seg.data);
    }
    fs::write(&out, &image).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    println!(
        "{out}: {} bytes (base {lo:#x}, entry {:#x}, {} symbols)",
        image.len(),
        prog.entry,
        prog.symbols.len()
    );
}

fn cmd_disasm(args: &[String]) {
    let mut args = Args::new(args);
    let base = args.value("--base").map(|s| parse_u32(&s)).unwrap_or(0);
    let positionals = args.positionals();
    let Some(path) = positionals.first() else {
        usage()
    };
    let bytes = fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    // Tolerate a closed pipe (e.g. `izhirisc disasm x | head`).
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let mut w = [0u8; 4];
        w[..chunk.len()].copy_from_slice(chunk);
        let word = u32::from_le_bytes(w);
        let addr = base + 4 * i as u32;
        let line = match decode(word) {
            Ok(inst) => format!("{addr:#010x}: {word:08x}  {}", disassemble(inst)),
            Err(_) => format!("{addr:#010x}: {word:08x}  .word {word:#010x}"),
        };
        if writeln!(out, "{line}").is_err() {
            return;
        }
    }
}

fn cmd_run(args: &[String]) {
    let mut args = Args::new(args);
    let cores = args.value("--cores").map(|s| parse_u32(&s)).unwrap_or(1);
    let budget = args
        .value("--cycles")
        .map(|s| parse_u32(&s) as u64)
        .unwrap_or(100_000_000);
    let trace = args.switch("--trace");
    let dump_regs = args.switch("--regs");
    take_no_superblocks(&mut args);
    take_no_kernels(&mut args);
    let sched = parse_sched(&mut args);
    let positionals = args.positionals();
    let Some(path) = positionals.first() else {
        usage()
    };
    if trace && sched != SchedMode::Exact {
        eprintln!("--trace single-steps the exact schedule; drop --sched/--relaxed/--host-threads");
        exit(2);
    }
    let src = fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let prog = Assembler::new().assemble(&src).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(1);
    });

    let mut cfg = SystemConfig::with_cores(cores);
    cfg.sched = sched;
    let mut sys = System::new(cfg);
    if !sys.load_program(&prog) {
        eprintln!("program does not fit in simulated memory");
        exit(1);
    }
    let result = if trace {
        run_traced(&mut sys, budget)
    } else {
        sys.run(budget).map(|e| (e.cycles, e.instret))
    };
    match result {
        Ok((cycles, instret)) => {
            let console = sys.console();
            if !console.is_empty() {
                print!("{console}");
                if !console.ends_with('\n') {
                    println!();
                }
            }
            eprintln!(
                "[{instret} instructions, {cycles} cycles, IPC {:.3}]",
                instret as f64 / cycles.max(1) as f64
            );
            if dump_regs {
                for i in 0..32u8 {
                    let r = Reg(i);
                    eprint!("{:>5}={:#010x}", r.abi_name(), sys.core(0).reg(r));
                    if i % 4 == 3 {
                        eprintln!();
                    }
                }
            }
        }
        Err(e) => {
            eprintln!("simulation failed: {e}");
            exit(1);
        }
    }
}

/// Single-core trace loop: disassemble each instruction as it retires.
fn run_traced(sys: &mut System, budget: u64) -> Result<(u64, u64), izhirisc::sim::SimError> {
    if sys.n_cores() != 1 {
        eprintln!("--trace implies --cores 1");
        exit(2);
    }
    loop {
        if sys.core(0).halted() {
            break;
        }
        if sys.core(0).time > budget {
            return Err(izhirisc::sim::SimError::Timeout { max_cycles: budget });
        }
        let pc = sys.core(0).pc();
        let word = sys.shared().mem.read_u32(pc).unwrap_or(0);
        let text = decode(word)
            .map(disassemble)
            .unwrap_or_else(|_| "??".into());
        eprintln!("[{:>10}] {pc:#010x}: {text}", sys.core(0).time);
        sys.step_core(0)
            .map_err(|cause| izhirisc::sim::SimError::Trap { core: 0, cause })?;
    }
    Ok((sys.core(0).time, sys.core(0).counters.instret))
}

fn cmd_scenario_list() {
    println!("{:<16} summary", "scenario");
    println!("{:-<78}", "");
    for s in scenario::registry() {
        println!("{:<16} {}", s.name, s.summary);
        for p in s.schema {
            println!(
                "    --{:<12} (default {:<10}) {}",
                p.name, p.default, p.help
            );
        }
    }
    println!(
        "\nrun one:   izhirisc scenario run <name> [--sched exact|relaxed|parallel] [--battery]\nbattery:   izhirisc scenario battery   (every scenario, quick scale)"
    );
}

/// Write battery rows as a standalone JSON document (the CI smoke-job
/// artifact; same `"battery"` array shape as `perf_baseline`'s output).
fn write_battery_json(path: &str, rows: &[battery::BatteryRow]) {
    let json = format!(
        "{{\n  \"schema\": \"izhirisc-scenario-battery-v1\",\n  \"battery\": {}\n}}\n",
        battery::rows_json(rows)
    );
    fs::write(path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        exit(1);
    });
    println!("wrote {path}");
}

/// Run battery specs, print the table, enforce verification + cross-mode
/// raster identity, and optionally write the JSON artifact.
fn run_battery(specs: &[BatterySpec], json: Option<String>) {
    let runner = BatteryRunner::auto();
    println!(
        "battery: {} spec(s) on {} host thread(s)",
        specs.len(),
        runner.host_threads
    );
    let rows = runner.run(specs).unwrap_or_else(|e| {
        eprintln!("battery failed: {e}");
        exit(1);
    });
    print!("{}", battery::rows_table(&rows));
    if let Err(e) = battery::check_rows(&rows) {
        eprintln!("battery check FAILED: {e}");
        exit(1);
    }
    println!(
        "battery passed: {} rows, cross-mode raster identity and per-scenario verification hold",
        rows.len()
    );
    if let Some(path) = json {
        write_battery_json(&path, &rows);
    }
}

fn cmd_scenario_run(args: &[String]) {
    let mut args = Args::new(args);
    let params = ScenarioParams {
        n: args.value("--n").map(|s| parse_u32(&s) as usize),
        ticks: args.value("--ticks").map(|s| parse_u32(&s)),
        n_cores: args.value("--cores").map(|s| parse_u32(&s)),
        seed: args.value("--seed").map(|s| parse_u32(&s)),
        ease: args.value("--ease").map(|s| match s.as_str() {
            "true" | "1" | "yes" => true,
            "false" | "0" | "no" => false,
            other => {
                eprintln!("bad --ease value `{other}` (use true or false)");
                exit(2);
            }
        }),
        shards: args.value("--shards").map(|s| parse_u32(&s)),
        stim_rate: args.value("--stim-rate").map(|s| parse_u32(&s)),
    };
    let quick = args.switch("--quick");
    let battery_mode = args.switch("--battery");
    take_no_superblocks(&mut args);
    take_no_kernels(&mut args);
    let json = args.value("--json");
    // Remember whether the user restricted the schedule or the clock
    // before parse_sched consumes the flags: a --battery run honours an
    // explicit mode (one row set) or an explicit --timing (that clock's
    // row subset) instead of silently fanning over every combination.
    let sched_given = ["--sched", "--relaxed", "--host-threads", "--quantum"]
        .iter()
        .any(|f| args.rest.iter().any(|a| a == f));
    let timing_given = args.rest.iter().any(|a| a == "--timing");
    let sched = parse_sched(&mut args);
    let positionals = args.positionals();
    let Some(name) = positionals.first() else {
        eprintln!("scenario run needs a scenario name (see `izhirisc scenario list`)");
        exit(2);
    };
    let Some(sc) = scenario::find(name) else {
        eprintln!(
            "unknown scenario `{name}`; registered: {}",
            scenario::registry()
                .iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        exit(2);
    };
    if json.is_some() && !battery_mode {
        eprintln!("--json only applies to --battery runs");
        exit(2);
    }
    // Reject inconsistent parameter combinations up front (shards beyond
    // cores, standard-map scenarios past their memory bounds, …) with a
    // one-line error instead of a guest trap deep inside the engine.
    if let Err(e) = sc.validate(&params) {
        eprintln!("{name}: invalid parameters: {e}");
        exit(2);
    }

    if battery_mode {
        let seeds = match params.seed {
            Some(seed) => vec![seed],
            None => sc.battery_seeds.to_vec(),
        };
        // An explicit --sched/--quantum/--host-threads restricts the
        // battery to that one mode; a bare --timing restricts it to that
        // clock's row subset; otherwise fan over every sched × timing
        // combination.
        let scheds = if sched_given {
            vec![SchedSpec::of(sched)]
        } else if timing_given {
            SchedSpec::timing_set(2, sched.timing_label())
        } else {
            SchedSpec::default_set(2)
        };
        let spec = BatterySpec {
            scenario: sc.name,
            params: ScenarioParams {
                seed: None,
                ..params
            },
            seeds,
            scheds,
            quick,
            ..BatterySpec::quick(sc, 2)
        };
        run_battery(&[spec], json);
        return;
    }

    // Single runs go through the template cache too: a repeated
    // `scenario run` of the same shape reuses the assembled snapshot, and
    // `IZHI_TEMPLATE_CACHE=0` restores the cold build for A/B checks.
    let mut wl: Box<dyn Workload> = if template::cache_enabled() {
        let tpl = if quick {
            sc.template_quick(&params)
        } else {
            sc.template(&params)
        };
        match params.seed {
            Some(seed) => Box::new(tpl.instantiate(seed, sched)),
            None => Box::new(tpl.instantiate_as_built(sched)),
        }
    } else if quick {
        sc.build_quick(&params)
    } else {
        sc.build(&params)
    };
    wl.cfg_mut().system.sched = sched;
    let start = std::time::Instant::now();
    let res = wl.run().unwrap_or_else(|e| {
        eprintln!("{name}: simulation failed: {e}");
        exit(1);
    });
    let wall = start.elapsed().as_secs_f64();
    println!(
        "{name}: n={} ticks={} cores={} sched={:?}",
        wl.cfg().n,
        wl.cfg().ticks,
        wl.cfg().n_cores,
        wl.cfg().system.sched
    );
    println!(
        "  wall {wall:.3} s | sim {} cycles, {} instret | {} spikes | raster hash {:#018x}",
        res.cycles,
        res.instret,
        res.raster.spikes.len(),
        res.raster_hash()
    );
    if let Some(w) = res.weight_hash {
        println!("  final weight hash {w:#018x} (STDP)");
    }
    println!(
        "  guest exec time {:.4} s ({:.4} ms/tick at {:.0} MHz)",
        res.exec_time_s(),
        res.time_per_tick_ms(),
        wl.cfg().system.clock_hz / 1e6
    );
    match wl.verify(&res) {
        Ok(()) => println!("  verification: OK"),
        Err(e) => {
            eprintln!("  verification FAILED: {e}");
            exit(1);
        }
    }
}

fn cmd_scenario_battery(args: &[String]) {
    let mut args = Args::new(args);
    take_no_superblocks(&mut args);
    take_no_kernels(&mut args);
    let json = args.value("--json");
    let timing = args.value("--timing");
    let positionals = args.positionals();
    if !positionals.is_empty() {
        eprintln!("scenario battery takes no scenario names (it runs every registered scenario); use `scenario run <name> --battery` for one");
        exit(2);
    }
    let scheds = match timing.as_deref() {
        None => SchedSpec::default_set(2),
        Some(t @ ("exact" | "unit" | "estimated")) => SchedSpec::timing_set(2, t),
        Some(other) => {
            eprintln!("unknown --timing `{other}` (use exact, unit or estimated)");
            exit(2);
        }
    };
    let specs: Vec<BatterySpec> = scenario::registry()
        .iter()
        .map(|s| BatterySpec {
            scheds: scheds.clone(),
            ..BatterySpec::quick(s, 2)
        })
        .collect();
    run_battery(&specs, json);
}

fn cmd_scenario(args: &[String]) {
    match args.first().map(String::as_str) {
        Some("list") => cmd_scenario_list(),
        Some("run") => cmd_scenario_run(&args[1..]),
        Some("battery") => cmd_scenario_battery(&args[1..]),
        _ => usage(),
    }
}

fn cmd_serve(args: &[String]) {
    let mut args = Args::new(args);
    let addr = args
        .value("--addr")
        .unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let workers = args
        .value("--workers")
        .map(|s| parse_u32(&s) as usize)
        .unwrap_or(2);
    let queue_cap = args
        .value("--queue-cap")
        .map(|s| parse_u32(&s) as usize)
        .unwrap_or(16);
    let wall_limit = args
        .value("--wall-limit")
        .map(|s| u64::from(parse_u32(&s)))
        .unwrap_or(30);
    let no_retry = args.switch("--no-retry");
    if !args.positionals().is_empty() {
        eprintln!("serve takes no positional arguments");
        usage();
    }
    let supervise = SuperviseConfig {
        wall_limit: Some(std::time::Duration::from_secs(wall_limit)),
        retry: if no_retry {
            RetryPolicy::no_retry()
        } else {
            RetryPolicy::default()
        },
        ..Default::default()
    };
    let handle = Server::start(ServeConfig {
        addr,
        queue_cap,
        workers,
        supervise,
    })
    .unwrap_or_else(|e| {
        eprintln!("cannot start the scenario service: {e}");
        exit(1);
    });
    println!(
        "scenario service on http://{} ({} workers, queue cap {queue_cap}, wall limit {wall_limit}s)",
        handle.addr(),
        workers
    );
    println!("endpoints: GET /health | POST /jobs | GET /jobs/<id> | POST /shutdown");
    // Blocks until a POST /shutdown drains the queue and in-flight jobs.
    handle.join();
    println!("scenario service drained and stopped");
}

fn cmd_selftest() {
    let (failures, console) = izhirisc::programs::selftest::run_battery();
    print!("{console}");
    let n = izhirisc::programs::selftest::battery().len();
    println!("\n{n} cases, {failures} failures");
    exit(if failures == 0 { 0 } else { 1 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("asm") => cmd_asm(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("scenario") => cmd_scenario(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("selftest") => cmd_selftest(),
        _ => usage(),
    }
}

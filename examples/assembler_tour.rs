//! A tour of the ISA layer: assemble the paper's Listing 1, disassemble
//! it back, and execute a small neuromorphic program on the simulator.
//!
//! ```text
//! cargo run --release --example assembler_tour
//! ```

use izhirisc::isa::{decode, disassemble, Assembler};
use izhirisc::sim::{System, SystemConfig};

const LISTING_1: &str = "
    # Listing 1 from the paper (verbatim)
    lw a6, 4(a3)
    lw a7, 8(a3)
    nmldl x0, a6, a7 # load a,b,c,d parameters
    lw t5, (a4)      # read the thalamic
    lw a7, (a0)      # read current
    lw a6, (a3)      # read vu
    add a7, a7, t5
    add a2, x0, a3
    nmpn a2, a6, a7  # process neuron, get spike/nospike, store VU word
";

const DEMO: &str = "
    .equ VU_ADDR, 0x10000000
    # RS neuron: a=0.02, b=0.2 (Q4.11), c=-65 (Q7.8), d=8 (Q4.11)
    _start: li   a6, 0x01990029
            li   a7, 0x4000BF00
            nmldl x0, a6, a7
            li   a6, 0                # h = 0.5 ms, no pin
            nmldh x0, a6, x0
            li   s1, VU_ADDR
            li   t0, 0xBF00F300       # v=-65, u=-13 (Q7.8)
            sw   t0, (s1)
            li   s0, 0                # spike counter
            li   s2, 2000             # 1 s of 0.5 ms steps
            li   a7, 0x000A0000       # Isyn = 10.0 (Q15.16)
    loop:   lw   a6, (s1)
            add  a2, x0, s1
            nmpn a2, a6, a7
            add  s0, s0, a2
            addi s2, s2, -1
            bnez s2, loop
            # decay demo: nmdec halves-ish a current with tau=4
            li   a0, 0x00100000       # 16.0 (Q15.16)
            li   a1, 4
            nmdec s3, a0, a1
            ebreak
";

fn main() {
    println!("== assembling the paper's Listing 1 ==");
    let prog = Assembler::new()
        .assemble(LISTING_1)
        .expect("listing 1 must assemble");
    for (i, word) in prog.words().iter().enumerate() {
        let inst = decode(*word).expect("decode");
        println!("  {:#06x}: {:#010x}  {}", i * 4, word, disassemble(inst));
    }

    println!("\n== executing a neuron for 1 s of model time ==");
    let prog = Assembler::new().assemble(DEMO).expect("demo must assemble");
    let mut sys = System::new(SystemConfig::default());
    sys.load_program(&prog);
    let exit = sys.run(10_000_000).expect("run");
    let spikes = sys.core(0).reg(izhirisc::isa::Reg::S0);
    let decayed = sys.core(0).reg(izhirisc::isa::Reg::S3);
    println!(
        "  guest retired {} instructions in {} cycles",
        exit.instret, exit.cycles
    );
    println!("  spikes in 1 s at Isyn = 10: {spikes}");
    println!(
        "  nmdec(16.0, tau=4) = {:.4} (one 0.5 ms decay step)",
        decayed as i32 as f64 / 65536.0
    );
    println!("  nmpn retired: {}", sys.core(0).counters.nmpn);
}

//! The paper's first use case: Izhikevich's 80-20 cortical network running
//! as a *guest program* on the simulated IzhiRISC-V cores, with the raster
//! and the performance counters the paper reports in Table V.
//!
//! ```text
//! cargo run --release --example cortical_8020 [-- <neurons> <ticks> <cores>]
//! ```

use izhirisc::programs::engine::Variant;
use izhirisc::programs::net8020::Net8020Workload;
use izhirisc::programs::scenario::Workload as _;
use izhirisc::snn::analysis::{band_power, IsiHistogram};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(250);
    let ticks: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(500);
    let cores: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let n_exc = n * 4 / 5;
    let n_inh = n - n_exc;

    println!(
        "80-20 network: {n} neurons ({n_exc} exc / {n_inh} inh), {ticks} ms, {cores} core(s)\n"
    );
    let wl = Net8020Workload::sized(n_exc, n_inh, ticks, cores, 5, Variant::Npu);
    let res = wl.run().expect("simulation failed");

    println!("spikes: {}", res.raster.spikes.len());
    println!("mean rate: {:.2} Hz/neuron", res.raster.mean_rate_hz());
    let rate = res.raster.population_rate();
    println!(
        "alpha-band power (8-13 Hz): {:.1}",
        band_power(&rate, 8, 13)
    );
    println!(
        "gamma-band power (30-80 Hz): {:.1}",
        band_power(&rate, 30, 80)
    );
    let isi = IsiHistogram::from_raster(&res.raster, 10, 300);
    println!("ISI histogram peak: {} ms", isi.peak_isi_ms());

    println!("\nASCII raster (neurons top-to-bottom, time left-to-right):");
    print!("{}", res.raster.to_ascii(30, 100));

    for (i, m) in res.metrics.iter().enumerate() {
        println!("\ncore {i} (region of interest):");
        println!("  exec time   {:.4} s @ 30 MHz", m.exec_time_s);
        println!("  IPC         {:.4}", m.ipc);
        println!("  IPC_eff     {:.4}", m.ipc_eff);
        println!("  hazard      {:.3} %", m.hazard_stall_pct);
        println!(
            "  I$ / D$     {:.2} % / {:.2} %",
            m.icache_hit_pct, m.dcache_hit_pct
        );
        println!("  mem intens. {:.2}", m.mem_intensity);
    }
}

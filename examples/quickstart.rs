//! Quickstart: drive a single Izhikevich neuron through the NPU datapath
//! and print a voltage trace plus the firing-pattern zoo of presets.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use izhirisc::core::{HStep, IzhParams, NmRegs, NpUnit};
use izhirisc::fixed::{pack_vu, unpack_vu, Q15_16, Q7_8};

fn run_preset(name: &str, params: IzhParams, input: f64, ms: u32) {
    let mut regs = NmRegs::default();
    regs.load_params(&params);
    regs.set_h(HStep::Half);

    let mut vu = pack_vu(
        Q7_8::from_f64(params.c),
        Q7_8::from_f64(params.b * params.c),
    );
    let drive = Q15_16::from_f64(input);
    let mut spikes = 0u32;
    let mut trace = String::new();
    for step in 0..(2 * ms) {
        let out = NpUnit::update(&regs, vu, drive);
        vu = out.vu;
        spikes += out.spike as u32;
        // Sample the membrane once per millisecond for a coarse trace.
        if step % 50 == 0 {
            let (v, _) = unpack_vu(vu);
            let col = ((v.to_f64() + 90.0) / 130.0 * 40.0).clamp(0.0, 40.0) as usize;
            trace.push_str(&format!("{:>5.0}ms {}*\n", step / 2, " ".repeat(col)));
        }
    }
    let rate = spikes as f64 / (ms as f64 / 1000.0);
    println!("{name:<22} I = {input:>4.1}: {spikes:>4} spikes ({rate:>6.1} Hz)");
    if name == "regular spiking" {
        println!("membrane trace (v from -90 mV to +40 mV):\n{trace}");
    }
}

fn main() {
    println!("IzhiRISC-V NPU quickstart — one neuron per firing-pattern preset\n");
    run_preset("regular spiking", IzhParams::regular_spiking(), 10.0, 1000);
    run_preset(
        "intrinsically bursting",
        IzhParams::intrinsically_bursting(),
        10.0,
        1000,
    );
    run_preset("chattering", IzhParams::chattering(), 10.0, 1000);
    run_preset("fast spiking", IzhParams::fast_spiking(), 10.0, 1000);
    run_preset(
        "low-threshold spiking",
        IzhParams::low_threshold_spiking(),
        10.0,
        1000,
    );
    run_preset(
        "thalamo-cortical",
        IzhParams::thalamo_cortical(),
        10.0,
        1000,
    );
    run_preset("resonator", IzhParams::resonator(), 10.0, 1000);
    println!("\nAll updates ran through the bit-exact fixed-point NPU datapath");
    println!("(Q7.8 state, Q4.11 parameters, Q15.16 current — paper Table I).");
}

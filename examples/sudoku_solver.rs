//! The paper's second use case: solving Sudoku with a 729-neuron
//! Winner-Takes-All network running as a guest program on the simulated
//! IzhiRISC-V core(s).
//!
//! ```text
//! cargo run --release --example sudoku_solver [-- <81-char puzzle>]
//! ```
//!
//! Without an argument a hard puzzle from the deterministic corpus is
//! solved (the reproduction's stand-in for the magictour Top-100 set).

use izhirisc::programs::sudoku_prog::SudokuWorkload;
use izhirisc::snn::sudoku::{hard_corpus, SudokuGrid};

fn main() {
    let arg = std::env::args().nth(1);
    let puzzle = match arg {
        Some(s) => SudokuGrid::parse(&s).expect("puzzle must be 81 chars of 1-9/./0"),
        None => {
            // A moderately hard instance so the demo converges quickly.
            let mut p = hard_corpus(1)[0];
            // Re-add a few givens from the classical solution for speed.
            let sol = p.solve().unwrap();
            for i in (0..81).step_by(3) {
                if p.0[i] == 0 {
                    p.0[i] = sol.0[i];
                }
            }
            p
        }
    };

    println!("puzzle ({} givens):\n{puzzle}", puzzle.n_givens());
    println!(
        "classical backtracking solution:\n{}",
        puzzle.solve().expect("unsolvable")
    );

    println!("running the WTA network on 2 IzhiRISC-V cores...");
    let wl = SudokuWorkload::new(puzzle, 4000, 2, 42);
    let res = wl.solve(50).expect("simulation failed");

    match res.solution {
        Some(sol) => {
            println!(
                "WTA network converged after {} ms of network time:",
                res.solved_at.unwrap()
            );
            println!("{sol}");
            assert!(sol.is_solved() && sol.extends(&puzzle));
        }
        None => println!("WTA network did not converge within the tick budget"),
    }
    let m = &res.workload.metrics[0];
    println!(
        "per-timestep cost: {:.3} ms at 30 MHz (paper: ~1.2 ms dual-core)",
        res.workload.time_per_tick_ms()
    );
    println!(
        "core 0: IPC {:.3}, IPC_eff {:.3}, hazard {:.2} %, D$ {:.2} %",
        m.ipc, m.ipc_eff, m.hazard_stall_pct, m.dcache_hit_pct
    );
    println!("spikes observed: {}", res.workload.raster.spikes.len());
}

//! End-to-end flows through the public façade: assemble → load → run →
//! read back, across every layer of the stack.

use izhirisc::core::{HStep, IzhParams, NmRegs, NpUnit};
use izhirisc::fixed::{pack_vu, unpack_vu, Q15_16, Q7_8};
use izhirisc::isa::{Assembler, Reg};
use izhirisc::sim::{System, SystemConfig};
use izhirisc::snn::analysis::SpikeRaster;
use izhirisc::snn::sudoku::{solve_wta, SudokuGrid, WtaParams};

/// Host-side NPU matches a guest program performing the same update.
#[test]
fn host_and_guest_npu_bit_identical() {
    let params = IzhParams::fast_spiking();
    let mut regs = NmRegs::default();
    regs.load_params(&params);
    regs.set_h(HStep::Half);

    // Host trajectory.
    let mut vu_host = pack_vu(Q7_8::from_f64(-65.0), Q7_8::from_f64(-13.0));
    let drive = Q15_16::from_f64(8.25);
    let mut host_spikes = 0u32;
    for _ in 0..500 {
        let out = NpUnit::update(&regs, vu_host, drive);
        vu_host = out.vu;
        host_spikes += out.spike as u32;
    }

    // Identical guest trajectory.
    let q = params.quantize();
    let (rs1, rs2) = q.pack();
    let src = format!(
        "
        _start: li   a6, {rs1:#x}
                li   a7, {rs2:#x}
                nmldl x0, a6, a7
                li   a6, 0
                nmldh x0, a6, x0
                li   s1, 0x10000000
                li   t0, {vu0:#x}
                sw   t0, (s1)
                li   s0, 0
                li   s2, 500
                li   a7, {drive:#x}
        loop:   lw   a6, (s1)
                add  a2, x0, s1
                nmpn a2, a6, a7
                add  s0, s0, a2
                addi s2, s2, -1
                bnez s2, loop
                ebreak
        ",
        vu0 = pack_vu(Q7_8::from_f64(-65.0), Q7_8::from_f64(-13.0)),
        drive = drive.raw() as u32,
    );
    let prog = Assembler::new().assemble(&src).unwrap();
    let mut sys = System::new(SystemConfig::default());
    sys.load_program(&prog);
    sys.run(10_000_000).unwrap();

    assert_eq!(
        sys.core(0).reg(Reg::S0),
        host_spikes,
        "spike counts diverge"
    );
    let vu_guest = sys.shared().mem.read_u32(0x1000_0000).unwrap();
    assert_eq!(vu_guest, vu_host, "final VU words diverge");
    let (v, u) = unpack_vu(vu_guest);
    assert!(v.to_f64().abs() < 128.0 && u.to_f64().abs() < 128.0);
}

/// The WTA network solves a mostly-filled puzzle host-side, and the
/// solution matches classical backtracking.
#[test]
fn wta_and_backtracking_agree() {
    let mut puzzle = SudokuGrid::canonical_solution();
    for i in [3, 13, 23, 33, 43] {
        puzzle.0[i] = 0;
    }
    let res = solve_wta(&puzzle, WtaParams::default(), 11, 4000, 30);
    let wta_sol = res.solution.expect("WTA did not converge");
    let bt_sol = puzzle.solve().expect("backtracking failed");
    assert_eq!(wta_sol, bt_sol);
}

/// Spike-log round trip: guest-packed words decode into a raster whose
/// per-neuron trains are chronological.
#[test]
fn spike_log_raster_roundtrip() {
    let words = [
        SpikeRaster::pack(3, 7),
        SpikeRaster::pack(5, 7),
        SpikeRaster::pack(5, 9),
        SpikeRaster::pack(12, 7),
    ];
    let raster = SpikeRaster::from_packed(16, 20, &words);
    assert_eq!(raster.neuron_times(7), vec![3, 5, 12]);
    assert_eq!(raster.neuron_times(9), vec![5]);
    assert_eq!(raster.population_rate()[5], 2);
}

/// A multi-core program with mutex-protected shared state produces the
/// exact expected result (no lost updates through the full stack).
#[test]
fn multicore_critical_section_exact() {
    let src = "
        .equ MUTEX, 0xF000000C
        .equ BARRIER, 0xF0000010
        .equ COUNTER, 0x10000000
        _start: li   s0, 400
                li   s1, MUTEX
                li   s2, COUNTER
        loop:   lw   t0, (s1)
                beqz t0, loop
                lw   t1, (s2)
                addi t1, t1, 1
                sw   t1, (s2)
                sw   x0, (s1)
                addi s0, s0, -1
                bnez s0, loop
                li   t4, BARRIER
                lw   t5, (t4)
                sw   x0, (t4)
        spin:   lw   t6, (t4)
                beq  t6, t5, spin
                ebreak
    ";
    let prog = Assembler::new().assemble(src).unwrap();
    for cores in [2u32, 4] {
        let mut sys = System::new(SystemConfig::with_cores(cores));
        sys.load_program(&prog);
        sys.run(400_000_000).unwrap();
        assert_eq!(
            sys.shared().mem.read_u32(0x1000_0000),
            Some(400 * cores),
            "{cores} cores"
        );
    }
}

/// The façade's documented quickstart keeps working.
#[test]
fn facade_quickstart() {
    let mut regs = NmRegs::default();
    regs.load_params(&IzhParams::regular_spiking());
    regs.set_h(HStep::Half);
    let mut vu = pack_vu(Q7_8::from_f64(-65.0), Q7_8::from_f64(-13.0));
    let mut spikes = 0u32;
    for _ in 0..2000 {
        let out = NpUnit::update(&regs, vu, Q15_16::from_f64(10.0));
        vu = out.vu;
        spikes += out.spike as u32;
    }
    assert!(spikes > 0);
}

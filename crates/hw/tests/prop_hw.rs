//! Property tests for the hardware models.

use izhi_hw::asic::{AsicLibrary, AsicReport};
use izhi_hw::fpga::{FpgaReport, FpgaTarget};
use proptest::prelude::*;

proptest! {
    /// FPGA resource usage is strictly monotone in the core count, on both
    /// targets and every resource class.
    #[test]
    fn fpga_monotone(n in 1u32..256) {
        for target in [FpgaTarget::Max10, FpgaTarget::Agilex7] {
            let a = FpgaReport::for_cores(target, n);
            let b = FpgaReport::for_cores(target, n + 1);
            prop_assert!(b.used.logic > a.used.logic);
            prop_assert!(b.used.ff > a.used.ff);
            prop_assert!(b.used.memory >= a.used.memory);
            prop_assert!(b.used.dsp >= a.used.dsp);
        }
    }

    /// Once a configuration stops fitting, no larger one fits either
    /// (max_cores is a genuine threshold).
    #[test]
    fn fpga_fit_is_threshold(n in 1u32..300) {
        for target in [FpgaTarget::Max10, FpgaTarget::Agilex7] {
            let fits_n = FpgaReport::for_cores(target, n).fits;
            let fits_n1 = FpgaReport::for_cores(target, n + 1).fits;
            prop_assert!(fits_n || !fits_n1, "{target:?}: !fits({n}) but fits({})", n + 1);
        }
    }

    /// Utilisation percentages are consistent with absolute usage.
    #[test]
    fn fpga_pct_consistent(n in 1u32..128) {
        for target in [FpgaTarget::Max10, FpgaTarget::Agilex7] {
            let r = FpgaReport::for_cores(target, n);
            let cap = target.capacity();
            prop_assert!((r.pct.logic - r.used.logic / cap.logic * 100.0).abs() < 1e-9);
            prop_assert!((r.pct.dsp - r.used.dsp / cap.dsp * 100.0).abs() < 1e-9);
        }
    }
}

#[test]
fn asic_fractions_sum_to_one_for_both_libraries() {
    for lib in [AsicLibrary::FreePdk45, AsicLibrary::Asap7] {
        let r = AsicReport::generate(lib);
        let sum: f64 = r.area_fractions().iter().map(|&(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12, "{lib:?}");
        // All fractions positive and below one.
        for (b, f) in r.area_fractions() {
            assert!(f > 0.0 && f < 1.0, "{lib:?}/{b:?}: {f}");
        }
    }
}

#[test]
fn asic_identities_hold() {
    // The paper's derived-metric identities hold in the model by
    // construction; pin them so refactors cannot silently break them.
    for lib in [AsicLibrary::FreePdk45, AsicLibrary::Asap7] {
        let r = AsicReport::generate(lib);
        assert!((r.throughput_upd_s - r.clock_mhz * 1e6 / 3.0).abs() < 1.0);
        assert!((r.peak_neural_ips - r.clock_mhz * 1e6 * 15.0).abs() < 1.0);
        let eff = r.throughput_upd_s / (r.total_power_mw / 1000.0);
        assert!((eff - r.upd_per_s_per_w).abs() / eff < 1e-12);
    }
}

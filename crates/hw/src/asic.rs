//! ASIC standard-cell mapping model (Table VII, Fig. 5).
//!
//! Each library is a small parameter set (area per gate equivalent, FO4
//! delay, dynamic energy per GE·MHz, leakage per GE, fill factor). The
//! per-block areas then follow from the block inventory; frequency from a
//! fixed logic depth; power from gates × frequency; and the derived
//! figures of merit exactly as the paper defines them:
//!
//! * throughput = f / 3 updates/s (one update = `nmpn`×2 + `nmdec`,
//!   three single-cycle instructions);
//! * peak neural IPS = f × 15 equivalent Eq.-3 operations per cycle;
//! * power efficiency = throughput / total power.

use crate::blocks::{self, Block, CORE_BLOCKS};

/// The two standard-cell libraries of §VI-D.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsicLibrary {
    /// FreePDK45 (45 nm academic PDK).
    FreePdk45,
    /// ASAP7 (7 nm predictive PDK).
    Asap7,
}

/// Library parameters (calibrated once against Table VII's totals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LibraryParams {
    /// Placement area per gate equivalent (µm²/GE).
    pub area_per_ge: f64,
    /// Effective FO4-ish gate delay (ps) for the critical path model.
    pub gate_delay_ps: f64,
    /// Dynamic power per GE per MHz (mW).
    pub dyn_mw_per_ge_mhz: f64,
    /// Leakage per GE (mW).
    pub leak_mw_per_ge: f64,
    /// Whitespace/fill multiplier from block areas to die area.
    pub fill: f64,
    /// Internal share of dynamic power (the rest is switching).
    pub internal_frac: f64,
}

impl AsicLibrary {
    /// Calibrated parameters.
    pub fn params(self) -> LibraryParams {
        match self {
            // Total area 95654.664 µm² over 92.6 kGE incl. 3.3 % fill;
            // 201.5 MHz over a ~40-gate critical path; 47.2 mW dynamic at
            // 201.5 MHz; 2.31 µW leakage.
            AsicLibrary::FreePdk45 => LibraryParams {
                area_per_ge: 1.0,
                gate_delay_ps: 124.1,
                dyn_mw_per_ge_mhz: 2.530e-6,
                leak_mw_per_ge: 2.494e-8,
                fill: 1.033,
                internal_frac: 0.544,
            },
            // Total 6599.375 µm²; 316.3 MHz; 10.89 mW dynamic; 6.45 nW
            // leakage per the paper's 0.1 % share.
            AsicLibrary::Asap7 => LibraryParams {
                area_per_ge: 0.06876,
                gate_delay_ps: 79.05,
                dyn_mw_per_ge_mhz: 3.720e-7,
                leak_mw_per_ge: 6.965e-11,
                fill: 1.0365,
                internal_frac: 0.555,
            },
        }
    }

    /// Library display name.
    pub const fn name(self) -> &'static str {
        match self {
            AsicLibrary::FreePdk45 => "FreePDK45",
            AsicLibrary::Asap7 => "ASAP7",
        }
    }

    /// Logic depth of the critical path (NPU Q-format multiply-accumulate
    /// chain), in gate delays. Library-independent.
    pub const CRITICAL_PATH_GATES: f64 = 40.0;
}

/// A complete Table-VII-style report for one library.
#[derive(Debug, Clone, PartialEq)]
pub struct AsicReport {
    /// The library.
    pub library: AsicLibrary,
    /// Per-block area in µm², in [`CORE_BLOCKS`] order.
    pub block_areas: Vec<(Block, f64)>,
    /// Total core area (µm², incl. fill).
    pub total_area_um2: f64,
    /// Maximum clock (MHz).
    pub clock_mhz: f64,
    /// Total power (mW) at max clock.
    pub total_power_mw: f64,
    /// Internal power (mW).
    pub internal_mw: f64,
    /// Switching power (mW).
    pub switching_mw: f64,
    /// Leakage power (mW).
    pub leakage_mw: f64,
    /// Neural-update throughput (updates/s).
    pub throughput_upd_s: f64,
    /// Power efficiency (updates/s/W).
    pub upd_per_s_per_w: f64,
    /// Peak neural instructions per second (equivalent Eq.-3 ops).
    pub peak_neural_ips: f64,
}

impl AsicReport {
    /// Generate the report for one library.
    pub fn generate(library: AsicLibrary) -> AsicReport {
        let p = library.params();
        let block_areas: Vec<(Block, f64)> = CORE_BLOCKS
            .iter()
            .map(|b| (b.block, b.gates * p.area_per_ge))
            .collect();
        let gates = blocks::core_gates();
        let total_area_um2 = gates * p.area_per_ge * p.fill;
        let clock_mhz = 1e6 / (AsicLibrary::CRITICAL_PATH_GATES * p.gate_delay_ps);
        let dynamic = p.dyn_mw_per_ge_mhz * gates * clock_mhz;
        let leakage_mw = p.leak_mw_per_ge * gates;
        let internal_mw = dynamic * p.internal_frac;
        let switching_mw = dynamic * (1.0 - p.internal_frac);
        let total_power_mw = dynamic + leakage_mw;
        let throughput_upd_s = clock_mhz * 1e6 / 3.0;
        AsicReport {
            library,
            block_areas,
            total_area_um2,
            clock_mhz,
            total_power_mw,
            internal_mw,
            switching_mw,
            leakage_mw,
            throughput_upd_s,
            upd_per_s_per_w: throughput_upd_s / (total_power_mw / 1000.0),
            peak_neural_ips: clock_mhz * 1e6 * 15.0,
        }
    }

    /// Area of one block (µm²).
    pub fn block_area(&self, block: Block) -> f64 {
        self.block_areas
            .iter()
            .find(|(b, _)| *b == block)
            .map(|&(_, a)| a)
            .unwrap_or(0.0)
    }

    /// Fig. 5 view: per-block fraction of placed area.
    pub fn area_fractions(&self) -> Vec<(Block, f64)> {
        let sum: f64 = self.block_areas.iter().map(|&(_, a)| a).sum();
        self.block_areas
            .iter()
            .map(|&(b, a)| (b, a / sum))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol_pct: f64) -> bool {
        (a - b).abs() / b.abs() * 100.0 <= tol_pct
    }

    #[test]
    fn freepdk45_matches_table_vii() {
        let r = AsicReport::generate(AsicLibrary::FreePdk45);
        assert!(
            close(r.total_area_um2, 95654.664, 1.0),
            "area {}",
            r.total_area_um2
        );
        assert!(close(r.clock_mhz, 201.5, 1.0), "clock {}", r.clock_mhz);
        assert!(
            close(r.total_power_mw, 49.5, 5.0),
            "power {}",
            r.total_power_mw
        );
        assert!(
            close(r.throughput_upd_s, 67.6e6, 1.0),
            "thr {}",
            r.throughput_upd_s
        );
        assert!(
            close(r.upd_per_s_per_w, 1.371e9, 7.0),
            "eff {}",
            r.upd_per_s_per_w
        );
        assert!(
            close(r.peak_neural_ips, 3.022e9, 1.0),
            "ips {}",
            r.peak_neural_ips
        );
        // Per-block areas are the calibration inputs; sanity only.
        assert!(close(r.block_area(Block::Npu), 19516.154, 1.0));
        assert!(close(r.block_area(Block::Hazard), 146.3, 1.0));
    }

    #[test]
    fn asap7_matches_table_vii() {
        let r = AsicReport::generate(AsicLibrary::Asap7);
        assert!(
            close(r.total_area_um2, 6599.375, 1.0),
            "area {}",
            r.total_area_um2
        );
        assert!(close(r.clock_mhz, 316.3, 1.0), "clock {}", r.clock_mhz);
        assert!(
            close(r.total_power_mw, 10.9, 5.0),
            "power {}",
            r.total_power_mw
        );
        assert!(
            close(r.throughput_upd_s, 105.4e6, 1.0),
            "thr {}",
            r.throughput_upd_s
        );
        assert!(
            close(r.upd_per_s_per_w, 9.67e9, 7.0),
            "eff {}",
            r.upd_per_s_per_w
        );
        assert!(
            close(r.peak_neural_ips, 4.74e9, 1.0),
            "ips {}",
            r.peak_neural_ips
        );
    }

    #[test]
    fn asap7_per_block_areas_are_predicted_within_7pct() {
        // These are genuine predictions: the block split was calibrated on
        // FreePDK45 only, the 7 nm shrink is uniform.
        let r = AsicReport::generate(AsicLibrary::Asap7);
        for (block, paper) in [
            (Block::FetchDecode, 1116.522),
            (Block::ICache, 723.941),
            (Block::DCache, 799.830),
            (Block::Alu, 1441.364),
            (Block::Npu, 1292.196),
            (Block::Dcu, 141.411),
            (Block::Other, 809.584),
        ] {
            let got = r.block_area(block);
            assert!(
                close(got, paper, 7.0),
                "{}: predicted {got:.1}, paper {paper}",
                block.name()
            );
        }
    }

    #[test]
    fn power_split_shape() {
        // Internal > switching >> leakage, as in the paper's breakdown.
        for lib in [AsicLibrary::FreePdk45, AsicLibrary::Asap7] {
            let r = AsicReport::generate(lib);
            assert!(r.internal_mw > r.switching_mw);
            assert!(r.switching_mw > r.leakage_mw * 100.0);
            assert!(close(
                r.internal_mw + r.switching_mw + r.leakage_mw,
                r.total_power_mw,
                0.1
            ));
        }
    }

    #[test]
    fn fig5_fractions_sum_to_one() {
        let r = AsicReport::generate(AsicLibrary::FreePdk45);
        let sum: f64 = r.area_fractions().iter().map(|&(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // NPU ~20 %, DCU < 2 % (the §VI-D claims).
        let npu = r
            .area_fractions()
            .iter()
            .find(|(b, _)| *b == Block::Npu)
            .unwrap()
            .1;
        assert!((0.15..=0.25).contains(&npu));
    }

    #[test]
    fn seven_nm_is_faster_smaller_and_more_efficient() {
        let a45 = AsicReport::generate(AsicLibrary::FreePdk45);
        let a7 = AsicReport::generate(AsicLibrary::Asap7);
        assert!(a7.total_area_um2 < a45.total_area_um2 / 10.0);
        assert!(a7.clock_mhz > a45.clock_mhz);
        assert!(a7.upd_per_s_per_w > 5.0 * a45.upd_per_s_per_w);
    }
}

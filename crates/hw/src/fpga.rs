//! FPGA resource models for the two boards the paper uses
//! (Tables III and IV).
//!
//! Model: `resource(n_cores) = overhead + n_cores × per_core`, where the
//! per-core vector is derived from the block inventory and the overhead
//! covers the shared system (bus fabric, SDRAM controller, GHRD shell on
//! Agilex). The per-core and overhead constants are calibrated against one
//! row of each published table; the other rows are *predictions* checked
//! in EXPERIMENTS.md.

use crate::blocks;

/// Resource vector in the units of the respective table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resources {
    /// Logic elements (MAX10 LEs) or ALMs (Agilex).
    pub logic: f64,
    /// Flip-flops.
    pub ff: f64,
    /// Embedded memory: Kb on MAX10, M20K blocks on Agilex.
    pub memory: f64,
    /// Embedded multipliers (9-bit on MAX10) or DSP blocks (Agilex).
    pub dsp: f64,
}

impl Resources {
    fn scale_add(&self, other: &Resources, k: f64) -> Resources {
        Resources {
            logic: self.logic + k * other.logic,
            ff: self.ff + k * other.ff,
            memory: self.memory + k * other.memory,
            dsp: self.dsp + k * other.dsp,
        }
    }
}

/// The two FPGA targets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpgaTarget {
    /// Intel MAX10 10M50DAF484C7G on the TerasIC DE10-Lite (30 MHz build).
    Max10,
    /// Intel Agilex-7 AGMF039R47A1E2VR0 M-Series dev kit (100 MHz build).
    Agilex7,
}

impl FpgaTarget {
    /// Device capacities (from the percentages printed in the paper's
    /// tables: capacity = value / fraction).
    pub fn capacity(self) -> Resources {
        match self {
            // 49248 LE = 99 %, 28235 FF = 51 %, 346.468 Kb = 21 %, 68 = 24 %.
            FpgaTarget::Max10 => Resources {
                logic: 49760.0,
                ff: 55363.0,
                memory: 1649.8,
                dsp: 288.0,
            },
            // 107144 ALM = 8 %, 95624 FF = 2 %, 390 M20K = 2 %, 152 DSP = 1 %.
            FpgaTarget::Agilex7 => Resources {
                logic: 1_339_300.0,
                ff: 4_781_200.0,
                memory: 19_500.0,
                dsp: 15_200.0,
            },
        }
    }

    /// Per-core resource cost.
    ///
    /// MAX10: LEs track the gate inventory at ~0.24 LE/GE (4-LUT packing of
    /// the mostly-arithmetic datapath), FFs come from the inventory, cache
    /// arrays plus scratchpad share land in M9K Kb, and the NPU/ALU
    /// multipliers consume 9-bit slices. Agilex: ALMs are denser (~0.070
    /// ALM/GE) and DSPs absorb two 9-bit slices each. Constants calibrated
    /// on the dual-core MAX10 row and the 32-core Agilex row.
    pub fn per_core(self) -> Resources {
        let gates = blocks::core_gates();
        let ffs = blocks::core_ffs();
        let mult9 = blocks::core_mult9();
        match self {
            FpgaTarget::Max10 => Resources {
                logic: gates * 0.2444,
                ff: ffs + 0.0,
                memory: blocks::core_mem_bits() / 1024.0 + 101.2, // + scratch share
                dsp: mult9,
            },
            FpgaTarget::Agilex7 => Resources {
                logic: gates * 0.0706,
                ff: ffs * 0.4582,
                memory: 16.0,
                dsp: 9.5,
            },
        }
    }

    /// Shared-system overhead (bus, SDRAM controller; GHRD shell on
    /// Agilex).
    pub fn overhead(self) -> Resources {
        match self {
            FpgaTarget::Max10 => Resources {
                logic: 3950.0,
                ff: 3035.0,
                memory: 0.0,
                dsp: 0.0,
            },
            FpgaTarget::Agilex7 => Resources {
                logic: 2533.0,
                ff: 3251.0,
                memory: 134.0,
                dsp: 0.0,
            },
        }
    }

    /// Build frequency reported by the paper.
    pub fn clock_mhz(self) -> f64 {
        match self {
            FpgaTarget::Max10 => 30.0,
            FpgaTarget::Agilex7 => 100.0,
        }
    }
}

/// A resource-utilisation report for `n_cores` on a target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaReport {
    /// Target device.
    pub target: FpgaTarget,
    /// Number of cores.
    pub n_cores: u32,
    /// Absolute usage.
    pub used: Resources,
    /// Usage as a percentage of capacity.
    pub pct: Resources,
    /// Whether the design fits.
    pub fits: bool,
}

impl FpgaReport {
    /// Predict utilisation for `n_cores` cores.
    pub fn for_cores(target: FpgaTarget, n_cores: u32) -> FpgaReport {
        let used = target
            .overhead()
            .scale_add(&target.per_core(), n_cores as f64);
        let cap = target.capacity();
        let pct = Resources {
            logic: used.logic / cap.logic * 100.0,
            ff: used.ff / cap.ff * 100.0,
            memory: used.memory / cap.memory * 100.0,
            dsp: used.dsp / cap.dsp * 100.0,
        };
        let fits = pct.logic <= 100.0 && pct.ff <= 100.0 && pct.memory <= 100.0 && pct.dsp <= 100.0;
        FpgaReport {
            target,
            n_cores,
            used,
            pct,
            fits,
        }
    }

    /// The largest core count that fits the device (the paper projects
    /// "up to 192 cores" on Agilex-7, §VI-A).
    pub fn max_cores(target: FpgaTarget) -> u32 {
        let mut n = 1;
        while FpgaReport::for_cores(target, n + 1).fits {
            n += 1;
            if n > 4096 {
                break;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol_pct: f64) -> bool {
        (a - b).abs() / b.abs() * 100.0 <= tol_pct
    }

    #[test]
    fn max10_dual_core_matches_table_iii() {
        let r = FpgaReport::for_cores(FpgaTarget::Max10, 2);
        assert!(close(r.used.logic, 49248.0, 2.0), "LE {}", r.used.logic);
        assert!(close(r.used.ff, 28235.0, 5.0), "FF {}", r.used.ff);
        assert!(close(r.used.memory, 346.468, 5.0), "BRAM {}", r.used.memory);
        assert!(close(r.used.dsp, 68.0, 1.0), "mult {}", r.used.dsp);
        assert!(r.fits, "the paper's build fits at 99 % LE");
        assert!(r.pct.logic > 95.0, "LE utilisation {}", r.pct.logic);
    }

    #[test]
    fn max10_three_cores_do_not_fit_as_configured() {
        // §VI-A: three cores only fit after shrinking the caches.
        let r = FpgaReport::for_cores(FpgaTarget::Max10, 3);
        assert!(!r.fits);
    }

    #[test]
    fn agilex_rows_match_table_iv() {
        for (n, alm, ff, ram, dsp) in [
            (16u32, 107144.0, 95624.0, 390.0, 152.0),
            (32, 216448.0, 186760.0, 646.0, 304.0),
            (64, 420977.0, 372741.0, 1158.0, 608.0),
        ] {
            let r = FpgaReport::for_cores(FpgaTarget::Agilex7, n);
            assert!(
                close(r.used.logic, alm, 3.0),
                "{n} cores ALM {}",
                r.used.logic
            );
            assert!(close(r.used.ff, ff, 3.0), "{n} cores FF {}", r.used.ff);
            assert!(
                close(r.used.memory, ram, 3.0),
                "{n} cores RAM {}",
                r.used.memory
            );
            assert!(close(r.used.dsp, dsp, 1.0), "{n} cores DSP {}", r.used.dsp);
            assert!(r.fits);
        }
    }

    #[test]
    fn agilex_supports_paper_projection_of_192_cores() {
        let max = FpgaReport::max_cores(FpgaTarget::Agilex7);
        assert!(max >= 192, "only {max} cores fit");
        // ...but not unboundedly more (the projection was resource-based).
        assert!(max <= 280, "{max} cores is beyond the plausible envelope");
    }

    #[test]
    fn utilisation_is_monotone_in_cores() {
        let mut prev = 0.0;
        for n in 1..=64 {
            let r = FpgaReport::for_cores(FpgaTarget::Agilex7, n);
            assert!(r.used.logic > prev);
            prev = r.used.logic;
        }
    }
}

//! # izhi-hw — FPGA resource and ASIC standard-cell models
//!
//! The paper evaluates the IzhiRISC-V core on two FPGAs (Intel MAX10 and
//! Agilex-7, Tables III/IV) and maps it to two standard-cell libraries
//! (FreePDK45 and ASAP7 through OpenROAD, Table VII and Fig. 5). Neither
//! Quartus nor OpenROAD exists in this environment, so this crate provides
//! **calibrated analytical models** (see DESIGN.md): each pipeline block is
//! described by a technology-independent complexity descriptor (gate count,
//! flip-flop count, memory bits, multiplier count), and per-target cost
//! models translate those descriptors into LE/ALM/FF/BRAM/DSP or µm²/mW/MHz
//! figures. The block complexities are calibrated once against the paper's
//! published totals; everything else (core-count scaling, per-block area
//! fractions, 45 nm → 7 nm shrink) is then *predicted* by the model and
//! compared against the paper in EXPERIMENTS.md.

pub mod asic;
pub mod blocks;
pub mod fpga;

pub use asic::{AsicLibrary, AsicReport};
pub use blocks::{Block, BlockComplexity, CORE_BLOCKS};
pub use fpga::{FpgaReport, FpgaTarget};

//! Technology-independent complexity descriptors for the IzhiRISC-V core's
//! pipeline blocks.
//!
//! Gate counts are expressed in *gate equivalents* (GE, NAND2-equivalents)
//! and were inferred once from the paper's FreePDK45 placement areas
//! (Table VII) at the calibration density of 1 GE ≈ 1 µm² in that library.
//! Everything downstream (ASAP7 shrink, per-block fractions, FPGA mapping)
//! is *predicted* from these numbers and compared against the paper in
//! EXPERIMENTS.md — the per-block agreement is the validation of the model.

/// The blocks the paper's floorplan distinguishes (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Block {
    /// Merged Fetch/Decode stage.
    FetchDecode,
    /// Instruction cache (tag + data arrays + control).
    ICache,
    /// Data cache.
    DCache,
    /// Hazard/forwarding control.
    Hazard,
    /// The base integer ALU (including the M-extension multiplier).
    Alu,
    /// Neuron Processing Unit (the paper's main addition).
    Npu,
    /// Decay Unit.
    Dcu,
    /// Everything else (register file, CSRs, bus interface).
    Other,
}

impl Block {
    /// Display name matching the paper's tables.
    pub const fn name(self) -> &'static str {
        match self {
            Block::FetchDecode => "Fetch/Decode",
            Block::ICache => "Instruction Cache",
            Block::DCache => "Data Cache",
            Block::Hazard => "Hazard Unit",
            Block::Alu => "ALU",
            Block::Npu => "NPU",
            Block::Dcu => "DCU",
            Block::Other => "Other",
        }
    }
}

/// Complexity of one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockComplexity {
    /// Which block.
    pub block: Block,
    /// Logic complexity in gate equivalents.
    pub gates: f64,
    /// Flip-flop count.
    pub ffs: f64,
    /// Embedded memory bits (cache arrays).
    pub mem_bits: f64,
    /// 9-bit multiplier slices consumed on FPGA (NPU/ALU datapaths).
    pub mult9: f64,
}

/// The calibrated core inventory. Gates from Table VII (FreePDK45, µm² at
/// ~1 µm²/GE); FF/memory/multiplier splits from the architecture: 4 KiB
/// I-cache + 4 KiB D-cache arrays, 32×32 register file, Q-format multiplier
/// array in the NPU (five 16/18-bit products → 9-bit slices).
pub const CORE_BLOCKS: [BlockComplexity; 8] = [
    BlockComplexity {
        block: Block::FetchDecode,
        gates: 16924.0,
        ffs: 1900.0,
        mem_bits: 0.0,
        mult9: 0.0,
    },
    BlockComplexity {
        block: Block::ICache,
        gates: 10589.0,
        ffs: 900.0,
        mem_bits: 36864.0,
        mult9: 0.0,
    },
    BlockComplexity {
        block: Block::DCache,
        gates: 12097.0,
        ffs: 1100.0,
        mem_bits: 36864.0,
        mult9: 0.0,
    },
    BlockComplexity {
        block: Block::Hazard,
        gates: 146.0,
        ffs: 40.0,
        mem_bits: 0.0,
        mult9: 0.0,
    },
    BlockComplexity {
        block: Block::Alu,
        gates: 19874.0,
        ffs: 1500.0,
        mem_bits: 0.0,
        mult9: 12.0,
    },
    BlockComplexity {
        block: Block::Npu,
        gates: 19516.0,
        ffs: 1800.0,
        mem_bits: 0.0,
        mult9: 20.0,
    },
    BlockComplexity {
        block: Block::Dcu,
        gates: 2006.0,
        ffs: 160.0,
        mem_bits: 0.0,
        mult9: 0.0,
    },
    BlockComplexity {
        block: Block::Other,
        gates: 11449.0,
        ffs: 5200.0,
        mem_bits: 0.0,
        mult9: 2.0,
    },
];

/// Total logic gates of one core.
pub fn core_gates() -> f64 {
    CORE_BLOCKS.iter().map(|b| b.gates).sum()
}

/// Total flip-flops of one core.
pub fn core_ffs() -> f64 {
    CORE_BLOCKS.iter().map(|b| b.ffs).sum()
}

/// Total embedded memory bits of one core (cache arrays).
pub fn core_mem_bits() -> f64 {
    CORE_BLOCKS.iter().map(|b| b.mem_bits).sum()
}

/// Total 9-bit multiplier slices of one core.
pub fn core_mult9() -> f64 {
    CORE_BLOCKS.iter().map(|b| b.mult9).sum()
}

/// NPU share of the core's logic area — the paper claims "no more than
/// roughly 20 %" (§VI-D).
pub fn npu_area_fraction() -> f64 {
    CORE_BLOCKS
        .iter()
        .find(|b| b.block == Block::Npu)
        .map(|b| b.gates / core_gates())
        .unwrap_or(0.0)
}

/// DCU share of the core's logic area — "< 2 %" per the paper.
pub fn dcu_area_fraction() -> f64 {
    CORE_BLOCKS
        .iter()
        .find(|b| b.block == Block::Dcu)
        .map(|b| b.gates / core_gates())
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_covers_all_blocks() {
        let mut names = std::collections::HashSet::new();
        for b in CORE_BLOCKS {
            assert!(names.insert(b.block), "duplicate {:?}", b.block);
            assert!(b.gates > 0.0);
        }
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn npu_fraction_matches_paper_claim() {
        let f = npu_area_fraction();
        assert!((0.15..=0.25).contains(&f), "NPU fraction {f}");
    }

    #[test]
    fn dcu_fraction_matches_paper_claim() {
        let f = dcu_area_fraction();
        assert!(f < 0.03, "DCU fraction {f}");
    }

    #[test]
    fn cache_bits_match_geometry() {
        // 4 KiB data + tags per cache ≈ 36 Kib.
        assert!((core_mem_bits() - 2.0 * 36864.0).abs() < 1.0);
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds without network access, so it cannot depend on the
//! real crates.io `proptest`. This crate implements the API subset our test
//! suites use — `proptest!`, `prop_assert*`, `prop_assume!`, `Strategy` with
//! `prop_map`, `prop_oneof!`, `Just`, `any::<T>()`, numeric-range strategies
//! and `prop::collection::vec` — on top of a deterministic SplitMix64 PRNG.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs via the
//!   assertion message; it is not minimised.
//! * **Deterministic seeds.** Each test derives its seed from its own name,
//!   so failures reproduce exactly across runs and machines. Set
//!   `PROPTEST_SEED=<u64>` to perturb the whole suite.
//! * **Default 256 cases** per property (configurable with
//!   `ProptestConfig::with_cases`).

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (the `cases` knob only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test name (FNV-1a) plus the optional
        /// `PROPTEST_SEED` environment perturbation.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(x) = s.parse::<u64>() {
                    h ^= x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                }
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 random bits.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of one type. Unlike the real crate there is no
    /// value tree: strategies produce plain values and never shrink.
    pub trait Strategy: Clone {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O + Clone,
        {
            Map { inner: self, f }
        }

        /// Type-erase (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let s = self;
            BoxedStrategy {
                gen: Rc::new(move |rng| s.generate(rng)),
            }
        }
    }

    /// `Strategy::prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Type-erased strategy (cheaply clonable).
    pub struct BoxedStrategy<V> {
        #[allow(clippy::type_complexity)]
        gen: Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.gen)(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        /// Build from the macro's collected arms.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> Clone for OneOf<V> {
        fn clone(&self) -> Self {
            OneOf {
                arms: self.arms.clone(),
            }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.next_unit_f64() as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Uniform strategy over every value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// `prop::collection::vec` — a vector of `len` draws from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector strategy with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniformly choose between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip cases that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests. Each `#[test] fn name(pat in strategy, ...)` item
/// becomes a normal `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without network access, so the benches under
//! `crates/bench/benches/` run on this minimal harness instead of the real
//! statistical one. It implements the API subset they use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `Throughput`,
//! `black_box`, `criterion_group!`, `criterion_main!` — measuring median
//! wall-clock time over a fixed number of samples and printing one line per
//! benchmark:
//!
//! ```text
//! group/name              median 12.345 us/iter   (81.0 Melem/s)
//! ```
//!
//! There is no outlier rejection, warm-up tuning or HTML report; for
//! trajectory tracking use `cargo run --release --bin perf_baseline`.

use std::time::Instant;

pub use std::hint::black_box;

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Register a stand-alone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        run_one(&name.into(), None, 20, f);
    }
}

/// A named group sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for the derived rate.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Set the number of timed samples (the real crate's statistical knob).
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(3);
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.throughput, self.sample_size, f);
    }

    /// End the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Passed to the closure under measurement.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Time `routine` for the sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_secs_f64() * 1e9;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: F,
) {
    // Calibrate the per-sample iteration count towards ~20 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0.0,
        };
        f(&mut b);
        if b.elapsed_ns >= 2e7 || iters >= 1 << 24 {
            break;
        }
        let grow = if b.elapsed_ns <= 0.0 {
            16.0
        } else {
            (2.5e7 / b.elapsed_ns).clamp(1.5, 16.0)
        };
        iters = ((iters as f64 * grow).ceil() as u64).max(iters + 1);
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0.0,
            };
            f(&mut b);
            b.elapsed_ns / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("   ({:.1} Melem/s)", n as f64 / median * 1e3),
        Throughput::Bytes(n) => format!(
            "   ({:.1} MiB/s)",
            n as f64 / median * 1e9 / (1 << 20) as f64
        ),
    });
    let human = if median < 1e3 {
        format!("{median:.1} ns/iter")
    } else if median < 1e6 {
        format!("{:.3} us/iter", median / 1e3)
    } else {
        format!("{:.3} ms/iter", median / 1e6)
    };
    println!("{name:<44} median {human}{}", rate.unwrap_or_default());
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

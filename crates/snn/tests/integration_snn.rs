//! Integration tests across the SNN substrate: network dynamics,
//! analysis pipeline and the Sudoku machinery working together.

use izhi_core::params::IzhParams;
use izhi_snn::analysis::{band_power, IsiHistogram};
use izhi_snn::gen8020::Net8020;
use izhi_snn::network::Network;
use izhi_snn::simulate::{F64Simulator, FixedSimulator};
use izhi_snn::sudoku::{SudokuGrid, WtaNetwork, WtaParams};
use proptest::prelude::*;

/// An inhibition-dominated pair never increases the partner's rate.
#[test]
fn inhibition_lowers_rate() {
    let free = {
        let net = Network::from_edges(vec![IzhParams::regular_spiking(); 2], vec![]);
        let mut sim = F64Simulator::new(&net, 2, 5);
        sim.bias = vec![12.0, 12.0];
        let raster = sim.run(2000);
        raster.neuron_times(1).len()
    };
    let inhibited = {
        let net = Network::from_edges(vec![IzhParams::regular_spiking(); 2], vec![(0, 1, -20.0)]);
        let mut sim = F64Simulator::new(&net, 2, 5);
        sim.bias = vec![12.0, 12.0];
        let raster = sim.run(2000);
        raster.neuron_times(1).len()
    };
    assert!(
        inhibited < free,
        "inhibited neuron fired {inhibited} >= free neuron {free}"
    );
}

/// The full analysis pipeline runs on an 80-20 network and produces
/// finite, internally consistent quantities.
#[test]
fn analysis_pipeline_coherent() {
    let net = Net8020::with_size(80, 20, 11);
    let mut sim = FixedSimulator::new(&net.network, 2, 3);
    for i in 0..net.len() {
        sim.noise_std[i] = if net.is_excitatory(i) { 5.0 } else { 2.0 };
    }
    let raster = sim.run(800);
    assert!(!raster.spikes.is_empty());

    let rate = raster.population_rate();
    assert_eq!(rate.len(), 800);
    assert_eq!(
        rate.iter().map(|&r| r as usize).sum::<usize>(),
        raster.spikes.len()
    );

    let hist = IsiHistogram::from_raster(&raster, 5, 200);
    assert!(hist.total() > 0);
    let norm: f64 = hist.normalized().iter().sum();
    assert!((norm - 1.0).abs() < 1e-9);

    let alpha = band_power(&rate, 8, 13);
    let gamma = band_power(&rate, 30, 80);
    assert!(alpha.is_finite() && gamma.is_finite());
    assert!(alpha >= 0.0 && gamma >= 0.0);
}

/// Excitatory-only and balanced networks rank as expected in total
/// activity (E-I balance suppresses runaway excitation).
#[test]
fn ei_balance_controls_activity() {
    let run = |n_exc: usize, n_inh: usize| {
        let net = Net8020::with_size(n_exc, n_inh, 4);
        let mut sim = F64Simulator::new(&net.network, 2, 9);
        for i in 0..net.len() {
            sim.noise_std[i] = if net.is_excitatory(i) { 5.0 } else { 2.0 };
        }
        sim.run(400).spikes.len() as f64 / net.len() as f64
    };
    let pure_exc = run(100, 0);
    let balanced = run(50, 50);
    assert!(
        pure_exc > balanced,
        "per-neuron activity: pure excitatory {pure_exc:.2} <= balanced {balanced:.2}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated puzzle is uniquely solvable and its solution
    /// extends the givens.
    #[test]
    fn generated_puzzles_well_formed(seed in 1u32..3000, givens in 24usize..50) {
        let p = SudokuGrid::generate(seed, givens);
        prop_assert!(p.is_consistent());
        prop_assert_eq!(p.count_solutions(2), 1);
        let sol = p.solve().unwrap();
        prop_assert!(sol.is_solved());
        prop_assert!(sol.extends(&p));
    }

    /// Conflict sets are symmetric: if a inhibits b, b inhibits a.
    #[test]
    fn wta_conflicts_symmetric(r in 0usize..9, c in 0usize..9, d in 1u8..=9) {
        for idx in WtaNetwork::conflict_set(r, c, d) {
            let (rr, cc, dd) = WtaNetwork::coords(idx);
            let back = WtaNetwork::conflict_set(rr, cc, dd);
            prop_assert!(
                back.contains(&WtaNetwork::neuron(r, c, d)),
                "({r},{c},{d}) -> ({rr},{cc},{dd}) not reciprocated"
            );
        }
    }

    /// WTA network construction is total over all puzzles: biases are
    /// finite, given neurons dominate their rivals.
    #[test]
    fn wta_bias_structure(seed in 1u32..500) {
        let p = SudokuGrid::generate(seed, 40);
        let wta = WtaNetwork::build(&p, WtaParams::default());
        prop_assert_eq!(wta.bias.len(), 729);
        for r in 0..9 {
            for c in 0..9 {
                let g = p.get(r, c);
                if g != 0 {
                    let winner = wta.bias[WtaNetwork::neuron(r, c, g)];
                    for d in 1..=9u8 {
                        if d != g {
                            prop_assert!(wta.bias[WtaNetwork::neuron(r, c, d)] < winner);
                        }
                    }
                }
            }
        }
    }

    /// Fixed and double simulators stay within a factor of each other on
    /// single-neuron firing counts across the parameter space. The f64 arm
    /// runs the *quantised* parameters (what the hardware actually
    /// computes), isolating the state-quantisation error; near-bifurcation
    /// parameter points are excluded (firing onset is chaotic there, and a
    /// half-LSB of state noise legitimately flips the regime).
    #[test]
    fn fixed_vs_double_single_neuron(
        a in 0.01f64..0.12,
        b in 0.15f64..0.25,
        c in -70.0f64..-50.0,
        d in 0.5f64..8.0,
        drive in 6.0f64..15.0,
    ) {
        let params = IzhParams::new(a, b, c, d).quantize().dequantize();
        let net = Network::from_edges(vec![params], vec![]);
        let mut f = F64Simulator::new(&net, 2, 1);
        f.bias[0] = drive;
        let nf = f.run(1500).spikes.len() as f64;
        let mut q = FixedSimulator::new(&net, 2, 1);
        q.bias[0] = drive;
        let nq = q.run(1500).spikes.len() as f64;
        // Skip the bifurcation neighbourhood: regimes where one arm is
        // barely firing.
        prop_assume!(nf >= 10.0 || nq >= 10.0);
        if nf < 10.0 || nq < 10.0 {
            // One arm marginal: the other must still be slow.
            prop_assert!(nf < 120.0 && nq < 120.0, "f64 {} vs fixed {}", nf, nq);
        } else {
            let ratio = (nf / nq).max(nq / nf);
            prop_assert!(ratio < 3.0, "f64 {} vs fixed {}", nf, nq);
        }
    }
}

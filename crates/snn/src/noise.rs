//! Deterministic random-number helpers.
//!
//! The guest programs draw thalamic noise from the MMIO xorshift32 device;
//! the host simulators use the same generator so runs are comparable (the
//! *streams* still differ between host and guest — each core interleaves
//! reads — which matches the paper's statistical, not bit-wise, comparison
//! of Fig. 3).

/// The xorshift32 generator implemented by the MMIO RNG device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift32 {
    state: u32,
}

impl XorShift32 {
    /// Create from a seed (0 is remapped to a fixed non-zero value).
    pub fn new(seed: u32) -> Self {
        XorShift32 {
            state: if seed == 0 { 0x1234_5678 } else { seed },
        }
    }

    /// Next raw 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u32() >> 8) as f64 / (1u32 << 24) as f64
    }

    /// Standard normal via Box–Muller (uses two uniforms per pair; the
    /// second value of each pair is discarded for simplicity, matching what
    /// a small guest routine would do).
    #[inline]
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = (self.next_f64()).max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Sum-of-uniforms approximate gaussian, exactly as the guest assembly
    /// computes it: `(sum of 4 uniform u16 draws - 2*65536) * scale`, which
    /// has mean 0 and variance `4/12 * 65536^2`. Returned normalised to
    /// unit variance. Kept bit-faithful to the guest routine so host-side
    /// verification can reproduce guest noise streams.
    #[inline]
    pub fn next_gaussian4(&mut self) -> f64 {
        let mut acc: i64 = 0;
        for _ in 0..4 {
            acc += (self.next_u32() & 0xFFFF) as i64;
        }
        acc -= 2 * 65536;
        // std of sum = 65536 * sqrt(4/12)
        acc as f64 / (65536.0 * (4.0f64 / 12.0).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift32::new(7);
        let mut b = XorShift32::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn matches_mmio_device_sequence() {
        // Same recurrence as izhi-sim's MMIO RNG.
        let mut x = 42u32;
        let mut rng = XorShift32::new(42);
        for _ in 0..10 {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            assert_eq!(rng.next_u32(), x);
        }
    }

    #[test]
    fn uniform_mean_and_range() {
        let mut rng = XorShift32::new(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = XorShift32::new(3);
        let n = 200_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let g = rng.next_gaussian();
            s1 += g;
            s2 += g * g;
        }
        let mean = s1 / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian4_moments() {
        let mut rng = XorShift32::new(5);
        let n = 200_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let g = rng.next_gaussian4();
            s1 += g;
            s2 += g * g;
        }
        let mean = s1 / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}

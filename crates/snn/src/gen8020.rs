//! Generator for Izhikevich's 2003 "80-20" cortical network.
//!
//! 800 excitatory neurons with parameters blended from RS towards CH by a
//! squared uniform `r`, 200 inhibitory neurons blended from LTS towards FS,
//! all-to-all connectivity with weights `0.5·U(0,1)` (excitatory rows) and
//! `-U(0,1)` (inhibitory rows), and per-step thalamic noise `5·N(0,1)` /
//! `2·N(0,1)` — exactly the script referenced by the paper's §VI-B.

use izhi_core::params::IzhParams;

use crate::network::Network;
use crate::noise::XorShift32;

/// The 80-20 network plus its noise magnitudes.
#[derive(Debug, Clone)]
pub struct Net8020 {
    /// The connectivity/parameters.
    pub network: Network,
    /// Number of excitatory neurons (first `n_exc` indices).
    pub n_exc: usize,
    /// Thalamic noise std for excitatory cells (5.0).
    pub exc_noise: f64,
    /// Thalamic noise std for inhibitory cells (2.0).
    pub inh_noise: f64,
}

impl Net8020 {
    /// Generate the canonical 1000-neuron network.
    pub fn standard(seed: u32) -> Self {
        Self::with_size(800, 200, seed)
    }

    /// Generate with arbitrary population sizes (keeps the 2003 parameter
    /// recipes; useful for fast tests and scaling sweeps).
    pub fn with_size(n_exc: usize, n_inh: usize, seed: u32) -> Self {
        let n = n_exc + n_inh;
        let mut rng = XorShift32::new(seed);
        let mut params = Vec::with_capacity(n);
        for _ in 0..n_exc {
            params.push(IzhParams::excitatory_8020(rng.next_f64()));
        }
        for _ in 0..n_inh {
            params.push(IzhParams::inhibitory_8020(rng.next_f64()));
        }
        // Dense all-to-all weights, row = presynaptic neuron.
        let mut w = vec![0.0f64; n * n];
        for (pre, row) in w.chunks_mut(n).enumerate() {
            if pre < n_exc {
                for v in row.iter_mut() {
                    *v = 0.5 * rng.next_f64();
                }
            } else {
                for v in row.iter_mut() {
                    *v = -rng.next_f64();
                }
            }
        }
        Net8020 {
            network: Network::from_dense(params, &w),
            n_exc,
            exc_noise: 5.0,
            inh_noise: 2.0,
        }
    }

    /// Generate directly in CSR form at a target connection `density` —
    /// no dense `n²` intermediate, which is what makes 10k+ neuron
    /// populations practical host-side (a dense 10240² f64 matrix is
    /// 800 MB before quantisation). Each presynaptic row samples
    /// `⌈density·n⌉` distinct targets; weights follow the 2003 recipes
    /// (`0.5·U(0,1)` excitatory, `-U(0,1)` inhibitory), boosted by the
    /// canonical network's in-degree ratio `1000/(density·n)` so the
    /// per-neuron recurrent drive stays in the 1000-neuron reference
    /// regime at any size.
    pub fn sparse_random(n_exc: usize, n_inh: usize, density: f64, seed: u32) -> Self {
        let n = n_exc + n_inh;
        let mut rng = XorShift32::new(seed);
        let mut params = Vec::with_capacity(n);
        for _ in 0..n_exc {
            params.push(IzhParams::excitatory_8020(rng.next_f64()));
        }
        for _ in 0..n_inh {
            params.push(IzhParams::inhibitory_8020(rng.next_f64()));
        }
        let keep = ((density * n as f64).ceil() as usize).clamp(1, n);
        let boost = (1000.0 / (density * n as f64)).max(1.0);
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut targets: Vec<u32> = Vec::with_capacity(keep * n);
        let mut weights = Vec::with_capacity(keep * n);
        row_ptr.push(0u32);
        let mut row = Vec::with_capacity(keep);
        for pre in 0..n {
            // Rejection-sample `keep` distinct targets; deterministic in
            // the seed, and cheap for the sparse densities this is for.
            row.clear();
            while row.len() < keep {
                let t = (rng.next_f64() * n as f64) as u32 % n as u32;
                if !row.contains(&t) {
                    row.push(t);
                }
            }
            row.sort_unstable();
            for &t in &row {
                let w = if pre < n_exc {
                    0.5 * rng.next_f64()
                } else {
                    -rng.next_f64()
                };
                targets.push(t);
                weights.push(w * boost);
            }
            row_ptr.push(targets.len() as u32);
        }
        Net8020 {
            network: Network {
                params,
                row_ptr,
                targets,
                weights,
            },
            n_exc,
            exc_noise: 5.0,
            inh_noise: 2.0,
        }
    }

    /// Total neuron count.
    pub fn len(&self) -> usize {
        self.network.len()
    }

    /// True if empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.network.is_empty()
    }

    /// Thalamic input vector for one timestep.
    pub fn thalamic(&self, rng: &mut XorShift32) -> Vec<f64> {
        (0..self.len())
            .map(|i| {
                let s = if i < self.n_exc {
                    self.exc_noise
                } else {
                    self.inh_noise
                };
                s * rng.next_gaussian()
            })
            .collect()
    }

    /// Whether neuron `i` is excitatory.
    pub fn is_excitatory(&self, i: usize) -> bool {
        i < self.n_exc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_shape() {
        let net = Net8020::standard(1);
        assert_eq!(net.len(), 1000);
        assert_eq!(net.n_exc, 800);
        // Fully connected: every neuron drives all 1000 (including itself,
        // as in the original dense S matrix).
        assert_eq!(net.network.n_synapses(), 1_000_000);
    }

    #[test]
    fn weight_signs_by_population() {
        let net = Net8020::with_size(8, 2, 3);
        for pre in 0..8 {
            for (_, w) in net.network.out_edges(pre) {
                assert!((0.0..=0.5).contains(&w), "exc weight {w}");
            }
        }
        for pre in 8..10 {
            for (_, w) in net.network.out_edges(pre) {
                assert!((-1.0..=0.0).contains(&w), "inh weight {w}");
            }
        }
    }

    #[test]
    fn parameter_recipes() {
        let net = Net8020::with_size(50, 50, 9);
        for i in 0..50 {
            let p = net.network.params[i];
            assert_eq!(p.a, 0.02);
            assert_eq!(p.b, 0.2);
            assert!((-65.0..=-50.0).contains(&p.c), "c = {}", p.c);
            assert!((2.0..=8.0).contains(&p.d), "d = {}", p.d);
        }
        for i in 50..100 {
            let p = net.network.params[i];
            assert!((0.02..=0.1).contains(&p.a));
            assert!((0.2..=0.25).contains(&p.b));
            assert_eq!(p.c, -65.0);
            assert_eq!(p.d, 2.0);
        }
    }

    #[test]
    fn sparse_random_shape_signs_and_determinism() {
        let a = Net8020::sparse_random(400, 100, 0.1, 7);
        assert_eq!(a.len(), 500);
        for pre in 0..500 {
            assert_eq!(a.network.out_degree(pre), 50, "row {pre}");
            let row: Vec<u32> = a.network.out_edges(pre).map(|(t, _)| t).collect();
            assert!(
                row.windows(2).all(|w| w[0] < w[1]),
                "row {pre} not sorted/distinct"
            );
            assert!(row.iter().all(|&t| t < 500));
        }
        for pre in 0..400 {
            assert!(a.network.out_edges(pre).all(|(_, w)| w >= 0.0));
        }
        for pre in 400..500 {
            assert!(a.network.out_edges(pre).all(|(_, w)| w <= 0.0));
        }
        let b = Net8020::sparse_random(400, 100, 0.1, 7);
        assert_eq!(a.network.targets, b.network.targets);
        assert_eq!(a.network.weights, b.network.weights);
        let c = Net8020::sparse_random(400, 100, 0.1, 8);
        assert_ne!(a.network.targets, c.network.targets);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Net8020::with_size(10, 3, 77);
        let b = Net8020::with_size(10, 3, 77);
        assert_eq!(a.network.weights, b.network.weights);
        let c = Net8020::with_size(10, 3, 78);
        assert_ne!(a.network.weights, c.network.weights);
    }

    #[test]
    fn thalamic_noise_scales() {
        let net = Net8020::with_size(500, 500, 5);
        let mut rng = XorShift32::new(1);
        let mut var_e = 0.0;
        let mut var_i = 0.0;
        let rounds = 200;
        for _ in 0..rounds {
            let t = net.thalamic(&mut rng);
            var_e += t[..500].iter().map(|x| x * x).sum::<f64>() / 500.0;
            var_i += t[500..].iter().map(|x| x * x).sum::<f64>() / 500.0;
        }
        let std_e = (var_e / rounds as f64).sqrt();
        let std_i = (var_i / rounds as f64).sqrt();
        assert!((std_e - 5.0).abs() < 0.2, "exc std {std_e}");
        assert!((std_i - 2.0).abs() < 0.1, "inh std {std_i}");
    }
}

//! Spike-train analysis: rasters, ISI histograms and population-rhythm
//! spectra (the quantities behind Figs. 2 and 3 of the paper).

/// A spike raster: `(timestep, neuron)` events over a fixed duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpikeRaster {
    /// Number of neurons.
    pub n_neurons: u32,
    /// Number of 1 ms timesteps covered.
    pub n_steps: u32,
    /// Events in chronological order.
    pub spikes: Vec<(u32, u32)>,
}

impl SpikeRaster {
    /// Empty raster.
    pub fn new(n_neurons: u32, n_steps: u32) -> Self {
        SpikeRaster {
            n_neurons,
            n_steps,
            spikes: Vec::new(),
        }
    }

    /// Append an event.
    #[inline]
    pub fn push(&mut self, t: u32, neuron: u32) {
        self.spikes.push((t, neuron));
    }

    /// Build from packed guest words `(t << 16) | neuron` (the format the
    /// workloads write to the MMIO spike log).
    pub fn from_packed(n_neurons: u32, n_steps: u32, words: &[u32]) -> Self {
        let spikes = words.iter().map(|&w| (w >> 16, w & 0xFFFF)).collect();
        SpikeRaster {
            n_neurons,
            n_steps,
            spikes,
        }
    }

    /// Pack an event the way the guest does.
    pub fn pack(t: u32, neuron: u32) -> u32 {
        (t << 16) | (neuron & 0xFFFF)
    }

    /// Spike times of one neuron.
    pub fn neuron_times(&self, neuron: u32) -> Vec<u32> {
        self.spikes
            .iter()
            .filter(|&&(_, n)| n == neuron)
            .map(|&(t, _)| t)
            .collect()
    }

    /// Spikes per timestep (population rate, 1 ms bins).
    pub fn population_rate(&self) -> Vec<u32> {
        let mut rate = vec![0u32; self.n_steps as usize];
        for &(t, _) in &self.spikes {
            if (t as usize) < rate.len() {
                rate[t as usize] += 1;
            }
        }
        rate
    }

    /// Mean firing rate in Hz per neuron (assuming 1 ms steps).
    pub fn mean_rate_hz(&self) -> f64 {
        if self.n_neurons == 0 || self.n_steps == 0 {
            return 0.0;
        }
        self.spikes.len() as f64 / (self.n_neurons as f64 * self.n_steps as f64 / 1000.0)
    }

    /// CSV export (`t,neuron` per line) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut s = String::with_capacity(self.spikes.len() * 10 + 16);
        s.push_str("t_ms,neuron\n");
        for &(t, n) in &self.spikes {
            s.push_str(&format!("{t},{n}\n"));
        }
        s
    }

    /// ASCII raster: neurons on rows (downsampled to `rows`), time on
    /// columns (downsampled to `cols`), `*` marking any spike in the cell.
    pub fn to_ascii(&self, rows: usize, cols: usize) -> String {
        let mut grid = vec![vec![false; cols]; rows];
        for &(t, n) in &self.spikes {
            if self.n_steps == 0 || self.n_neurons == 0 {
                continue;
            }
            let r = (n as usize * rows) / self.n_neurons as usize;
            let c = (t as usize * cols) / self.n_steps as usize;
            if r < rows && c < cols {
                grid[r][c] = true;
            }
        }
        let mut out = String::with_capacity(rows * (cols + 1));
        for row in grid {
            for cell in row {
                out.push(if cell { '*' } else { '.' });
            }
            out.push('\n');
        }
        out
    }
}

/// Inter-spike-interval histogram pooled over all neurons.
#[derive(Debug, Clone, PartialEq)]
pub struct IsiHistogram {
    /// Bin counts.
    pub bins: Vec<u64>,
    /// Width of each bin in ms.
    pub bin_width_ms: u32,
}

impl IsiHistogram {
    /// Compute from a raster with the given bin width and range.
    pub fn from_raster(raster: &SpikeRaster, bin_width_ms: u32, max_ms: u32) -> Self {
        let n_bins = (max_ms / bin_width_ms) as usize;
        let mut bins = vec![0u64; n_bins];
        // Collect per-neuron ISIs. The raster is time-ordered, so track the
        // previous spike time per neuron.
        let mut last = vec![u32::MAX; raster.n_neurons as usize];
        for &(t, n) in &raster.spikes {
            let n = n as usize;
            if n >= last.len() {
                continue;
            }
            if last[n] != u32::MAX {
                let isi = t - last[n];
                let bin = (isi / bin_width_ms) as usize;
                if bin < n_bins {
                    bins[bin] += 1;
                }
            }
            last[n] = t;
        }
        IsiHistogram { bins, bin_width_ms }
    }

    /// Total ISI count.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Normalised bin frequencies.
    pub fn normalized(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        self.bins.iter().map(|&b| b as f64 / total).collect()
    }

    /// ISI interval (ms) of the fullest bin.
    pub fn peak_isi_ms(&self) -> u32 {
        let idx = self
            .bins
            .iter()
            .enumerate()
            .max_by_key(|&(_, &b)| b)
            .map(|(i, _)| i)
            .unwrap_or(0);
        idx as u32 * self.bin_width_ms + self.bin_width_ms / 2
    }

    /// Histogram-intersection similarity in `[0, 1]` (1 = identical
    /// shapes). Used to assert the three arms of Fig. 3 agree.
    pub fn similarity(&self, other: &IsiHistogram) -> f64 {
        let a = self.normalized();
        let b = other.normalized();
        a.iter().zip(b.iter()).map(|(&x, &y)| x.min(y)).sum()
    }
}

impl SpikeRaster {
    /// Restrict to a contiguous neuron range (e.g. the excitatory
    /// population, indices `0..800` in the 80-20 network), renumbering
    /// neurons to start at zero.
    pub fn subset(&self, range: core::ops::Range<u32>) -> SpikeRaster {
        let spikes = self
            .spikes
            .iter()
            .filter(|&&(_, n)| range.contains(&n))
            .map(|&(t, n)| (t, n - range.start))
            .collect();
        SpikeRaster {
            n_neurons: range.end - range.start,
            n_steps: self.n_steps,
            spikes,
        }
    }
}

/// Coefficient of variation of the pooled inter-spike intervals: ~0 for a
/// clock-like train, ~1 for Poisson firing, >1 for bursting.
pub fn isi_cv(raster: &SpikeRaster) -> f64 {
    let mut last = vec![u32::MAX; raster.n_neurons as usize];
    let mut isis = Vec::new();
    for &(t, n) in &raster.spikes {
        let n = n as usize;
        if n < last.len() {
            if last[n] != u32::MAX && t >= last[n] {
                isis.push((t - last[n]) as f64);
            }
            last[n] = t;
        }
    }
    if isis.len() < 2 {
        return 0.0;
    }
    let mean = isis.iter().sum::<f64>() / isis.len() as f64;
    let var = isis.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / isis.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        var.sqrt() / mean
    }
}

/// Fano factor of the population spike count over windows of `win` ms:
/// variance/mean of the per-window counts (1 for a Poisson process).
pub fn fano_factor(raster: &SpikeRaster, win: u32) -> f64 {
    let rate = raster.population_rate();
    let counts: Vec<f64> = rate
        .chunks(win.max(1) as usize)
        .map(|c| c.iter().map(|&x| x as f64).sum())
        .collect();
    if counts.len() < 2 {
        return 0.0;
    }
    let mean = counts.iter().sum::<f64>() / counts.len() as f64;
    let var = counts.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / counts.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        var / mean
    }
}

/// Single-frequency Goertzel power of a real signal sampled at 1 kHz.
pub fn goertzel_power(signal: &[f64], freq_hz: f64) -> f64 {
    let n = signal.len();
    if n == 0 {
        return 0.0;
    }
    let k = freq_hz * n as f64 / 1000.0;
    let w = 2.0 * std::f64::consts::PI * k / n as f64;
    let coeff = 2.0 * w.cos();
    let (mut s_prev, mut s_prev2) = (0.0, 0.0);
    for &x in signal {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    (s_prev2 * s_prev2 + s_prev * s_prev - coeff * s_prev * s_prev2) / (n as f64 * n as f64)
}

/// Power spectrum of the (mean-removed) population rate over `lo..=hi` Hz.
pub fn rate_spectrum(rate: &[u32], lo: u32, hi: u32) -> Vec<(u32, f64)> {
    let mean = rate.iter().map(|&r| r as f64).sum::<f64>() / rate.len().max(1) as f64;
    let centered: Vec<f64> = rate.iter().map(|&r| r as f64 - mean).collect();
    (lo..=hi)
        .map(|f| (f, goertzel_power(&centered, f as f64)))
        .collect()
}

/// Mean band power (inclusive bounds, Hz).
pub fn band_power(rate: &[u32], lo: u32, hi: u32) -> f64 {
    let spec = rate_spectrum(rate, lo, hi);
    spec.iter().map(|&(_, p)| p).sum::<f64>() / spec.len().max(1) as f64
}

/// Frequency with the highest power in `lo..=hi` Hz.
pub fn dominant_frequency(rate: &[u32], lo: u32, hi: u32) -> u32 {
    rate_spectrum(rate, lo, hi)
        .into_iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(f, _)| f)
        .unwrap_or(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic_raster(period: u32, n_neurons: u32, steps: u32) -> SpikeRaster {
        let mut r = SpikeRaster::new(n_neurons, steps);
        for t in (0..steps).step_by(period as usize) {
            for n in 0..n_neurons {
                r.push(t, n);
            }
        }
        r
    }

    #[test]
    fn packed_roundtrip() {
        let w = SpikeRaster::pack(1234, 999);
        let r = SpikeRaster::from_packed(1000, 2000, &[w]);
        assert_eq!(r.spikes, vec![(1234, 999)]);
    }

    #[test]
    fn population_rate_counts() {
        let mut r = SpikeRaster::new(10, 5);
        r.push(0, 1);
        r.push(0, 2);
        r.push(3, 1);
        assert_eq!(r.population_rate(), vec![2, 0, 0, 1, 0]);
    }

    #[test]
    fn mean_rate() {
        // 10 neurons, 1000 ms, each spiking 8 times -> 8 Hz.
        let mut r = SpikeRaster::new(10, 1000);
        for n in 0..10 {
            for k in 0..8 {
                r.push(k * 125, n);
            }
        }
        assert!((r.mean_rate_hz() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn isi_histogram_of_periodic_train() {
        let r = periodic_raster(25, 4, 1000);
        let h = IsiHistogram::from_raster(&r, 5, 200);
        assert_eq!(h.peak_isi_ms() / 5 * 5, 25, "peak bin should cover 25 ms");
        // All ISIs identical: one bin holds everything.
        assert_eq!(h.bins.iter().filter(|&&b| b > 0).count(), 1);
    }

    #[test]
    fn isi_similarity_metric() {
        let a = IsiHistogram::from_raster(&periodic_raster(25, 4, 2000), 5, 200);
        let b = IsiHistogram::from_raster(&periodic_raster(25, 8, 1000), 5, 200);
        let c = IsiHistogram::from_raster(&periodic_raster(60, 4, 2000), 5, 200);
        assert!(a.similarity(&b) > 0.99, "same period, same shape");
        assert!(a.similarity(&c) < 0.1, "different periods differ");
        assert!((a.similarity(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn goertzel_finds_injected_tone() {
        // 40 Hz tone over 1 s at 1 kHz sampling.
        let rate: Vec<u32> = (0..1000)
            .map(|t| {
                let x = (2.0 * std::f64::consts::PI * 40.0 * t as f64 / 1000.0).sin();
                (10.0 + 8.0 * x).round() as u32
            })
            .collect();
        assert_eq!(dominant_frequency(&rate, 5, 100), 40);
        assert!(band_power(&rate, 35, 45) > 10.0 * band_power(&rate, 60, 90));
    }

    #[test]
    fn periodic_population_shows_rhythm() {
        // Population bursting every 100 ms: strong 10 Hz fundamental (and
        // harmonics); non-harmonic frequencies carry almost no power.
        let r = periodic_raster(100, 50, 2000);
        let rate = r.population_rate();
        let mean = rate.iter().map(|&x| x as f64).sum::<f64>() / rate.len() as f64;
        let centered: Vec<f64> = rate.iter().map(|&x| x as f64 - mean).collect();
        let p10 = goertzel_power(&centered, 10.0);
        let p7 = goertzel_power(&centered, 7.0);
        let p13 = goertzel_power(&centered, 13.0);
        assert!(p10 > 50.0 * p7, "10 Hz {p10} vs 7 Hz {p7}");
        assert!(p10 > 50.0 * p13, "10 Hz {p10} vs 13 Hz {p13}");
    }

    #[test]
    fn csv_and_ascii_shapes() {
        let r = periodic_raster(10, 4, 100);
        let csv = r.to_csv();
        assert!(csv.starts_with("t_ms,neuron\n"));
        assert_eq!(csv.lines().count(), 1 + r.spikes.len());
        let art = r.to_ascii(4, 20);
        assert_eq!(art.lines().count(), 4);
        assert!(art.contains('*'));
    }

    #[test]
    fn subset_renumbers() {
        let mut r = SpikeRaster::new(10, 100);
        r.push(5, 2);
        r.push(7, 8);
        r.push(9, 4);
        let sub = r.subset(2..5);
        assert_eq!(sub.n_neurons, 3);
        assert_eq!(sub.spikes, vec![(5, 0), (9, 2)]);
    }

    #[test]
    fn cv_of_periodic_train_is_zero() {
        let r = periodic_raster(20, 4, 1000);
        assert!(isi_cv(&r) < 1e-9);
    }

    #[test]
    fn cv_of_irregular_train_is_positive() {
        // Two alternating intervals (10 and 40 ms): CV = std/mean = 15/25.
        let mut r = SpikeRaster::new(1, 1000);
        let mut t = 0;
        let mut flip = false;
        while t < 950 {
            r.push(t, 0);
            t += if flip { 10 } else { 40 };
            flip = !flip;
        }
        let cv = isi_cv(&r);
        assert!((cv - 0.6).abs() < 0.05, "cv = {cv}");
    }

    #[test]
    fn fano_of_regular_population_below_one() {
        // Perfectly periodic population: every window has the same count.
        let r = periodic_raster(10, 50, 2000);
        assert!(fano_factor(&r, 100) < 0.1);
    }

    #[test]
    fn empty_raster_is_handled() {
        let r = SpikeRaster::new(0, 0);
        assert_eq!(r.mean_rate_hz(), 0.0);
        let h = IsiHistogram::from_raster(&r, 5, 100);
        assert_eq!(h.total(), 0);
        assert_eq!(h.normalized().iter().sum::<f64>(), 0.0);
    }
}

//! Network representation: per-neuron Izhikevich parameters plus a dense or
//! CSR-compressed weight matrix, with a quantised view matching the
//! hardware formats.

use izhi_core::params::{FixedIzhParams, IzhParams};
use izhi_fixed::Q15_16;

/// A spiking network: `n` Izhikevich neurons and directed weighted synapses
/// stored in CSR form by *presynaptic* neuron (row j lists the targets a
/// spike of neuron j drives).
#[derive(Debug, Clone)]
pub struct Network {
    /// Per-neuron parameters.
    pub params: Vec<IzhParams>,
    /// CSR row pointers (len n+1) over [`Network::targets`]/[`Network::weights`].
    pub row_ptr: Vec<u32>,
    /// Postsynaptic indices.
    pub targets: Vec<u32>,
    /// Synaptic weights (current increments, mV-equivalent units).
    pub weights: Vec<f64>,
}

impl Network {
    /// Build from per-neuron parameters and an edge list `(pre, post, w)`.
    pub fn from_edges(params: Vec<IzhParams>, mut edges: Vec<(u32, u32, f64)>) -> Self {
        let n = params.len();
        edges.sort_by_key(|&(pre, post, _)| (pre, post));
        let mut row_ptr = vec![0u32; n + 1];
        for &(pre, _, _) in &edges {
            row_ptr[pre as usize + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let targets = edges.iter().map(|&(_, post, _)| post).collect();
        let weights = edges.iter().map(|&(_, _, w)| w).collect();
        Network {
            params,
            row_ptr,
            targets,
            weights,
        }
    }

    /// Build a fully connected network from a dense row-major weight matrix
    /// (`w[pre * n + post]`), skipping exact zeros.
    pub fn from_dense(params: Vec<IzhParams>, w: &[f64]) -> Self {
        let n = params.len();
        assert_eq!(w.len(), n * n);
        let mut edges = Vec::with_capacity(w.len());
        for pre in 0..n {
            for post in 0..n {
                let wv = w[pre * n + post];
                if wv != 0.0 {
                    edges.push((pre as u32, post as u32, wv));
                }
            }
        }
        Network::from_edges(params, edges)
    }

    /// Number of neurons.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when the network has no neurons.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Number of synapses.
    pub fn n_synapses(&self) -> usize {
        self.targets.len()
    }

    /// Outgoing synapses of neuron `j` as `(target, weight)` pairs.
    pub fn out_edges(&self, j: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.row_ptr[j] as usize;
        let hi = self.row_ptr[j + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Out-degree of neuron `j`.
    pub fn out_degree(&self, j: usize) -> usize {
        (self.row_ptr[j + 1] - self.row_ptr[j]) as usize
    }

    /// Quantise every neuron's parameters to the hardware formats.
    pub fn quantized_params(&self) -> Vec<FixedIzhParams> {
        self.params.iter().map(IzhParams::quantize).collect()
    }

    /// Quantise the weights to Q15.16 synaptic-current increments.
    pub fn quantized_weights(&self) -> Vec<Q15_16> {
        self.weights.iter().map(|&w| Q15_16::from_f64(w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network {
        let p = vec![IzhParams::regular_spiking(); 3];
        Network::from_edges(p, vec![(0, 1, 0.5), (0, 2, -0.25), (2, 0, 1.0)])
    }

    #[test]
    fn csr_layout() {
        let net = tiny();
        assert_eq!(net.len(), 3);
        assert_eq!(net.n_synapses(), 3);
        assert_eq!(net.out_degree(0), 2);
        assert_eq!(net.out_degree(1), 0);
        assert_eq!(net.out_degree(2), 1);
        let e0: Vec<_> = net.out_edges(0).collect();
        assert_eq!(e0, vec![(1, 0.5), (2, -0.25)]);
    }

    #[test]
    fn dense_roundtrip() {
        let p = vec![IzhParams::regular_spiking(); 2];
        #[rustfmt::skip]
        let w = vec![
            0.0, 0.7,
            -0.3, 0.0,
        ];
        let net = Network::from_dense(p, &w);
        assert_eq!(net.n_synapses(), 2);
        assert_eq!(net.out_edges(0).next(), Some((1, 0.7)));
        assert_eq!(net.out_edges(1).next(), Some((0, -0.3)));
    }

    #[test]
    fn unsorted_edges_are_sorted() {
        let p = vec![IzhParams::regular_spiking(); 3];
        let net = Network::from_edges(p, vec![(2, 0, 1.0), (0, 2, 2.0), (0, 1, 3.0)]);
        let e0: Vec<_> = net.out_edges(0).collect();
        assert_eq!(e0, vec![(1, 3.0), (2, 2.0)]);
    }

    #[test]
    fn quantized_views() {
        let net = tiny();
        let qp = net.quantized_params();
        assert_eq!(qp.len(), 3);
        let qw = net.quantized_weights();
        assert!((qw[0].to_f64() - 0.5).abs() < 1e-4);
        assert!((qw[1].to_f64() + 0.25).abs() < 1e-4);
    }
}

//! # izhi-snn — spiking-network substrate for the IzhiRISC-V reproduction
//!
//! Host-side SNN machinery used by both evaluation workloads:
//!
//! * [`network`] — CSR-style network representation with double-precision
//!   and hardware-quantised (Q-format) views;
//! * [`gen8020`] — Izhikevich's 2003 "80-20" cortical network generator
//!   (800 excitatory / 200 inhibitory, all-to-all random weights, noisy
//!   thalamic drive);
//! * [`simulate`] — two reference simulators over a network: double
//!   precision (the paper's "MATLAB double" arm) and bit-exact fixed point
//!   sharing the NPU/DCU datapaths (the "MATLAB fixed" arm of Fig. 3);
//! * [`analysis`] — spike rasters, inter-spike-interval histograms,
//!   population-rate spectra (alpha/gamma rhythm detection, Fig. 2/3);
//! * [`sudoku`] — the 729-neuron Winner-Takes-All Sudoku network (Fig. 4),
//!   a classical backtracking solver for ground truth, an embedded corpus
//!   of hard puzzles, and a seeded hard-puzzle generator (stand-in for the
//!   paper's magictour "Top 100" list);
//! * [`noise`] — deterministic RNG helpers (xorshift32 matching the MMIO
//!   device, Box-Muller gaussians for thalamic input).

pub mod analysis;
pub mod gen8020;
pub mod network;
pub mod noise;
pub mod simulate;
pub mod sudoku;

pub use analysis::{IsiHistogram, SpikeRaster};
pub use gen8020::Net8020;
pub use network::Network;
pub use simulate::{F64Simulator, FixedSimulator};
pub use sudoku::{SudokuGrid, WtaNetwork};

//! Host-side network simulators: double precision and bit-exact fixed
//! point.
//!
//! Both implement the same discretisation the IzhiRISC-V guest program
//! uses, so the three arms of the paper's Fig. 3 comparison differ only in
//! arithmetic:
//!
//! 1. per 1 ms tick, the synaptic current decays once through the DCU rule
//!    (`I -= I/τ · h`, h = 0.5 ms),
//! 2. spikes from the previous tick deposit their weights into the targets'
//!    synaptic currents,
//! 3. thalamic noise is drawn per neuron,
//! 4. the membrane state advances by two 0.5 ms Euler half-steps (the 1 ms
//!    paper timestep mapped onto the hardware's 0.5 ms `h`),
//! 5. a neuron "fires in tick t" when either half-step reports a spike.

use izhi_core::dcu::Dcu;
use izhi_core::nmregs::{HStep, NmRegs};
use izhi_core::npu::NpUnit;
use izhi_core::reference::decay_exact;
use izhi_fixed::{ResizeMode, Q15_16, Q7_8};

use crate::analysis::SpikeRaster;
use crate::network::Network;
use crate::noise::XorShift32;

/// Synaptic decay divisor fed to the DCU (τ selector, 1..9).
pub const DEFAULT_TAU: u32 = 2;

/// Double-precision reference simulator ("MATLAB double" arm).
#[derive(Debug, Clone)]
pub struct F64Simulator<'a> {
    net: &'a Network,
    /// Membrane potentials.
    pub v: Vec<f64>,
    /// Recovery variables.
    pub u: Vec<f64>,
    /// Persistent synaptic currents.
    pub isyn: Vec<f64>,
    fired: Vec<bool>,
    tau: f64,
    rng: XorShift32,
    /// Per-neuron thalamic noise std.
    pub noise_std: Vec<f64>,
    /// Constant per-neuron bias current.
    pub bias: Vec<f64>,
    /// Optional per-tick noise-amplitude schedule, cycled (annealing for
    /// the WTA search). Empty = constant amplitude 1.
    pub noise_schedule: Vec<f64>,
    tick: u32,
}

impl<'a> F64Simulator<'a> {
    /// Initialise at `v = c`, `u = b·c`, zero currents.
    pub fn new(net: &'a Network, tau: u32, seed: u32) -> Self {
        let n = net.len();
        let v: Vec<f64> = net.params.iter().map(|p| p.c).collect();
        let u: Vec<f64> = net.params.iter().map(|p| p.b * p.c).collect();
        F64Simulator {
            net,
            v,
            u,
            isyn: vec![0.0; n],
            fired: vec![false; n],
            tau: tau as f64,
            rng: XorShift32::new(seed),
            noise_std: vec![0.0; n],
            bias: vec![0.0; n],
            noise_schedule: Vec::new(),
            tick: 0,
        }
    }

    /// Noise amplitude multiplier for the current tick.
    fn noise_gain(&self) -> f64 {
        if self.noise_schedule.is_empty() {
            1.0
        } else {
            self.noise_schedule[self.tick as usize % self.noise_schedule.len()]
        }
    }

    /// Advance one 1 ms tick; returns the indices that fired. Allocates a
    /// fresh spike list per call — hot loops should prefer
    /// [`F64Simulator::step_into`] with a reused buffer.
    pub fn step(&mut self) -> Vec<u32> {
        let mut out = Vec::new();
        self.step_into(&mut out);
        out
    }

    /// Advance one 1 ms tick, appending the fired indices to the cleared
    /// `out` buffer (no per-tick allocation).
    pub fn step_into(&mut self, out: &mut Vec<u32>) {
        out.clear();
        let n = self.net.len();
        let gain = self.noise_gain();
        self.tick = self.tick.wrapping_add(1);
        // 1. deposit last tick's spikes (guest phase A) — raw CSR slices,
        // no per-row iterator adapters.
        for j in 0..n {
            if self.fired[j] {
                let lo = self.net.row_ptr[j] as usize;
                let hi = self.net.row_ptr[j + 1] as usize;
                for k in lo..hi {
                    self.isyn[self.net.targets[k] as usize] += self.net.weights[k];
                }
            }
        }
        // 2. decay (same call pattern as the guest's single nmdec per tick).
        for i in 0..n {
            self.isyn[i] = decay_exact(self.isyn[i], self.tau, 0.5);
        }
        // 3+4. noise and two half-steps.
        for i in 0..n {
            let drive =
                self.isyn[i] + self.bias[i] + gain * self.noise_std[i] * self.rng.next_gaussian();
            let p = self.net.params[i];
            let mut spike = false;
            for _ in 0..2 {
                let s = self.v[i] >= 30.0;
                if s {
                    self.v[i] = p.c;
                    self.u[i] += p.d;
                }
                spike |= s;
                let dv = 0.04 * self.v[i] * self.v[i] + 5.0 * self.v[i] + 140.0 - self.u[i] + drive;
                let du = p.a * (p.b * self.v[i] - self.u[i]);
                self.v[i] += 0.5 * dv;
                self.u[i] += 0.5 * du;
            }
            self.fired[i] = spike;
            if spike {
                out.push(i as u32);
            }
        }
    }

    /// Run `ms` ticks, collecting a raster (one spike buffer reused across
    /// all ticks).
    pub fn run(&mut self, ms: u32) -> SpikeRaster {
        let mut raster = SpikeRaster::new(self.net.len() as u32, ms);
        let mut fired = Vec::new();
        for t in 0..ms {
            self.step_into(&mut fired);
            for &i in &fired {
                raster.push(t, i);
            }
        }
        raster
    }
}

/// Bit-exact fixed-point simulator sharing the NPU/DCU datapaths
/// ("MATLAB fixed" arm; identical arithmetic to the IzhiRISC-V guest).
#[derive(Debug, Clone)]
pub struct FixedSimulator<'a> {
    net: &'a Network,
    regs: Vec<NmRegs>,
    /// Membrane potentials (Q7.8).
    pub v: Vec<Q7_8>,
    /// Recovery variables (Q7.8).
    pub u: Vec<Q7_8>,
    /// Persistent synaptic currents (Q15.16).
    pub isyn: Vec<Q15_16>,
    qweights: Vec<Q15_16>,
    fired: Vec<bool>,
    tau: u32,
    rng: XorShift32,
    /// Per-neuron thalamic noise std (applied in f64, then quantised).
    pub noise_std: Vec<f64>,
    /// Constant per-neuron bias current (quantised per use).
    pub bias: Vec<f64>,
    /// Pin-voltage bit (the Sudoku solver needs it, §V-B).
    pub pin: bool,
    /// Optional per-tick noise-amplitude schedule, cycled. Empty = 1.
    pub noise_schedule: Vec<f64>,
    tick: u32,
}

impl<'a> FixedSimulator<'a> {
    /// Initialise with quantised parameters and weights.
    pub fn new(net: &'a Network, tau: u32, seed: u32) -> Self {
        let n = net.len();
        let mut regs = Vec::with_capacity(n);
        for p in &net.params {
            let mut r = NmRegs::default();
            r.load_params(p);
            r.set_h(HStep::Half);
            regs.push(r);
        }
        let v: Vec<Q7_8> = net.params.iter().map(|p| Q7_8::from_f64(p.c)).collect();
        let u: Vec<Q7_8> = net
            .params
            .iter()
            .map(|p| Q7_8::from_f64(p.b * p.c))
            .collect();
        FixedSimulator {
            net,
            regs,
            v,
            u,
            isyn: vec![Q15_16::ZERO; n],
            qweights: net.quantized_weights(),
            fired: vec![false; n],
            tau,
            rng: XorShift32::new(seed),
            noise_std: vec![0.0; n],
            bias: vec![0.0; n],
            pin: false,
            noise_schedule: Vec::new(),
            tick: 0,
        }
    }

    /// Noise amplitude multiplier for the current tick.
    fn noise_gain(&self) -> f64 {
        if self.noise_schedule.is_empty() {
            1.0
        } else {
            self.noise_schedule[self.tick as usize % self.noise_schedule.len()]
        }
    }

    /// Advance one 1 ms tick; returns the indices that fired. Allocates a
    /// fresh spike list per call — hot loops should prefer
    /// [`FixedSimulator::step_into`] with a reused buffer.
    pub fn step(&mut self) -> Vec<u32> {
        let mut out = Vec::new();
        self.step_into(&mut out);
        out
    }

    /// Advance one 1 ms tick, appending the fired indices to the cleared
    /// `out` buffer (no per-tick allocation).
    pub fn step_into(&mut self, out: &mut Vec<u32>) {
        out.clear();
        let n = self.net.len();
        let gain = self.noise_gain();
        self.tick = self.tick.wrapping_add(1);
        for j in 0..n {
            if self.fired[j] {
                let lo = self.net.row_ptr[j] as usize;
                let hi = self.net.row_ptr[j + 1] as usize;
                for k in lo..hi {
                    let t = self.net.targets[k] as usize;
                    self.isyn[t] = self.isyn[t].saturating_add(self.qweights[k]);
                }
            }
        }
        for i in 0..n {
            self.isyn[i] = Dcu::decay(&self.regs[i], self.isyn[i], self.tau);
        }
        for i in 0..n {
            let noise = self.bias[i] + gain * self.noise_std[i] * self.rng.next_gaussian();
            let drive = self.isyn[i]
                .widen()
                .add(izhi_fixed::Wide::from_f64(noise, 16))
                .to_q15_16(ResizeMode::RoundSaturate);
            let mut regs = self.regs[i];
            regs.set_pin(self.pin);
            let mut spike = false;
            for _ in 0..2 {
                let (v2, u2, s) = NpUnit::update_parts(&regs, self.v[i], self.u[i], drive);
                self.v[i] = v2;
                self.u[i] = u2;
                spike |= s;
            }
            self.fired[i] = spike;
            if spike {
                out.push(i as u32);
            }
        }
    }

    /// Run `ms` ticks, collecting a raster (one spike buffer reused across
    /// all ticks).
    pub fn run(&mut self, ms: u32) -> SpikeRaster {
        let mut raster = SpikeRaster::new(self.net.len() as u32, ms);
        let mut fired = Vec::new();
        for t in 0..ms {
            self.step_into(&mut fired);
            for &i in &fired {
                raster.push(t, i);
            }
        }
        raster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen8020::Net8020;
    use izhi_core::params::IzhParams;

    fn single_neuron_net() -> Network {
        Network::from_edges(vec![IzhParams::regular_spiking()], vec![])
    }

    #[test]
    fn f64_tonic_firing_with_bias() {
        let net = single_neuron_net();
        let mut sim = F64Simulator::new(&net, DEFAULT_TAU, 1);
        sim.bias[0] = 10.0;
        let raster = sim.run(1000);
        let count = raster.spikes.len();
        assert!((2..=100).contains(&count), "spikes = {count}");
    }

    #[test]
    fn fixed_tonic_firing_with_bias() {
        let net = single_neuron_net();
        let mut sim = FixedSimulator::new(&net, DEFAULT_TAU, 1);
        sim.bias[0] = 10.0;
        let raster = sim.run(1000);
        let count = raster.spikes.len();
        assert!((2..=100).contains(&count), "spikes = {count}");
    }

    #[test]
    fn fixed_and_f64_rates_agree_on_deterministic_input() {
        let net = single_neuron_net();
        let mut a = F64Simulator::new(&net, DEFAULT_TAU, 1);
        a.bias[0] = 12.0;
        let ra = a.run(2000).spikes.len() as f64;
        let mut b = FixedSimulator::new(&net, DEFAULT_TAU, 1);
        b.bias[0] = 12.0;
        let rb = b.run(2000).spikes.len() as f64;
        assert!(ra > 0.0 && rb > 0.0);
        assert!((ra - rb).abs() / ra < 0.25, "f64 {ra} vs fixed {rb}");
    }

    #[test]
    fn synapses_propagate_spikes() {
        // Neuron 0 driven hard; neuron 1 only via a strong synapse from 0.
        let net = Network::from_edges(
            vec![IzhParams::regular_spiking(), IzhParams::regular_spiking()],
            vec![(0, 1, 25.0)],
        );
        let mut sim = F64Simulator::new(&net, DEFAULT_TAU, 1);
        sim.bias[0] = 15.0;
        let raster = sim.run(2000);
        let n1: Vec<_> = raster.spikes.iter().filter(|&&(_, n)| n == 1).collect();
        assert!(!n1.is_empty(), "postsynaptic neuron never fired");
        let n0_first = raster.spikes.iter().find(|&&(_, n)| n == 0).unwrap().0;
        assert!(n1[0].0 > n0_first, "effect precedes cause");
    }

    #[test]
    fn no_input_silence() {
        let net8020 = Net8020::with_size(40, 10, 3);
        let mut sim = F64Simulator::new(&net8020.network, DEFAULT_TAU, 1);
        let raster = sim.run(300);
        assert!(
            raster.spikes.is_empty(),
            "network with no drive must stay silent"
        );
    }

    #[test]
    fn small_8020_network_is_active_with_noise() {
        let net8020 = Net8020::with_size(80, 20, 3);
        let mut sim = F64Simulator::new(&net8020.network, DEFAULT_TAU, 1);
        for i in 0..net8020.len() {
            sim.noise_std[i] = if net8020.is_excitatory(i) {
                net8020.exc_noise
            } else {
                net8020.inh_noise
            };
        }
        let raster = sim.run(500);
        // Noisy drive makes a visible fraction of the population fire.
        assert!(
            raster.spikes.len() > 100,
            "only {} spikes",
            raster.spikes.len()
        );
        let mean_rate = raster.spikes.len() as f64 / 0.5 / 100.0; // Hz/neuron
        assert!(mean_rate < 100.0, "implausibly fast: {mean_rate} Hz");
    }

    #[test]
    fn fixed_sim_deterministic() {
        let net8020 = Net8020::with_size(40, 10, 3);
        let run = || {
            let mut sim = FixedSimulator::new(&net8020.network, DEFAULT_TAU, 9);
            for i in 0..50 {
                sim.noise_std[i] = 5.0;
            }
            sim.run(200).spikes
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pin_flag_clamps_fixed_sim() {
        let net = single_neuron_net();
        let mut sim = FixedSimulator::new(&net, DEFAULT_TAU, 1);
        sim.pin = true;
        sim.bias[0] = -80.0; // strong hyperpolarising drive
        sim.run(100);
        let c = Q7_8::from_f64(-65.0);
        assert!(sim.v[0] >= c, "v = {} fell below c with pin set", sim.v[0]);
    }
}

//! The Sudoku use case: classical grid machinery, a hard-puzzle corpus
//! (stand-in for the paper's magictour "Top 100"), and the 729-neuron
//! Winner-Takes-All network of Fig. 4.
//!
//! Network construction follows the paper exactly: one neuron per
//! `(row, col, digit)` triple; when a neuron spikes it inhibits every
//! neuron representing (a) another digit in the same cell, (b) the same
//! digit elsewhere in the same row, (c) the same digit elsewhere in the
//! same column, and (d) the same digit elsewhere in the same 3×3 subgrid.
//! Given clues receive a strong constant bias; all neurons receive noisy
//! background drive plus weak self-excitation, so the network performs a
//! stochastic constraint search whose fixed points are valid Sudoku
//! configurations.

use izhi_core::params::IzhParams;

use crate::analysis::SpikeRaster;
use crate::network::Network;
use crate::noise::XorShift32;
use crate::simulate::FixedSimulator;

/// A 9×9 Sudoku grid; 0 = empty cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SudokuGrid(pub [u8; 81]);

impl SudokuGrid {
    /// Parse from an 81-character string; `0` or `.` are empty.
    pub fn parse(s: &str) -> Option<SudokuGrid> {
        let chars: Vec<char> = s.chars().filter(|c| !c.is_whitespace()).collect();
        if chars.len() != 81 {
            return None;
        }
        let mut g = [0u8; 81];
        for (i, c) in chars.iter().enumerate() {
            g[i] = match c {
                '.' | '0' => 0,
                '1'..='9' => *c as u8 - b'0',
                _ => return None,
            };
        }
        Some(SudokuGrid(g))
    }

    /// Cell accessor (row, col in 0..9).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u8 {
        self.0[r * 9 + c]
    }

    /// Cell mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, d: u8) {
        self.0[r * 9 + c] = d;
    }

    /// Number of given (non-empty) cells.
    pub fn n_givens(&self) -> usize {
        self.0.iter().filter(|&&d| d != 0).count()
    }

    /// Is placing `d` at `(r, c)` consistent with the current grid?
    pub fn placement_ok(&self, r: usize, c: usize, d: u8) -> bool {
        for i in 0..9 {
            if self.get(r, i) == d && i != c {
                return false;
            }
            if self.get(i, c) == d && i != r {
                return false;
            }
        }
        let (br, bc) = (r / 3 * 3, c / 3 * 3);
        for i in 0..3 {
            for j in 0..3 {
                let (rr, cc) = (br + i, bc + j);
                if self.get(rr, cc) == d && (rr, cc) != (r, c) {
                    return false;
                }
            }
        }
        true
    }

    /// Is the grid completely filled and rule-consistent?
    pub fn is_solved(&self) -> bool {
        self.0.iter().all(|&d| d != 0)
            && (0..81).all(|i| self.placement_ok(i / 9, i % 9, self.0[i]))
    }

    /// Are the filled cells mutually consistent (ignores empties)?
    pub fn is_consistent(&self) -> bool {
        (0..81).all(|i| self.0[i] == 0 || self.placement_ok(i / 9, i % 9, self.0[i]))
    }

    /// Does `self` extend `puzzle` (every given preserved)?
    pub fn extends(&self, puzzle: &SudokuGrid) -> bool {
        (0..81).all(|i| puzzle.0[i] == 0 || puzzle.0[i] == self.0[i])
    }

    /// Backtracking solver. Returns the first solution found.
    pub fn solve(&self) -> Option<SudokuGrid> {
        let mut g = *self;
        if !g.is_consistent() {
            return None;
        }
        g.solve_inner().then_some(g)
    }

    fn solve_inner(&mut self) -> bool {
        // Most-constrained-cell heuristic keeps hard puzzles tractable.
        let mut best: Option<(usize, Vec<u8>)> = None;
        for i in 0..81 {
            if self.0[i] != 0 {
                continue;
            }
            let (r, c) = (i / 9, i % 9);
            let cands: Vec<u8> = (1..=9).filter(|&d| self.placement_ok(r, c, d)).collect();
            if cands.is_empty() {
                return false;
            }
            let replace = best.as_ref().is_none_or(|(_, b)| cands.len() < b.len());
            if replace {
                let single = cands.len() == 1;
                best = Some((i, cands));
                if single {
                    break;
                }
            }
        }
        let Some((i, cands)) = best else {
            return true; // no empty cells left
        };
        for d in cands {
            self.0[i] = d;
            if self.solve_inner() {
                return true;
            }
        }
        self.0[i] = 0;
        false
    }

    /// Count solutions up to `limit` (for uniqueness checks).
    pub fn count_solutions(&self, limit: usize) -> usize {
        let mut g = *self;
        if !g.is_consistent() {
            return 0;
        }
        let mut count = 0;
        g.count_inner(limit, &mut count);
        count
    }

    fn count_inner(&mut self, limit: usize, count: &mut usize) {
        if *count >= limit {
            return;
        }
        let Some(i) = (0..81).find(|&i| self.0[i] == 0) else {
            *count += 1;
            return;
        };
        let (r, c) = (i / 9, i % 9);
        for d in 1..=9 {
            if self.placement_ok(r, c, d) {
                self.0[i] = d;
                self.count_inner(limit, count);
                self.0[i] = 0;
                if *count >= limit {
                    return;
                }
            }
        }
    }

    /// A canonical valid complete grid (the shift pattern).
    pub fn canonical_solution() -> SudokuGrid {
        let mut g = [0u8; 81];
        for r in 0..9 {
            for c in 0..9 {
                g[r * 9 + c] = ((r * 3 + r / 3 + c) % 9 + 1) as u8;
            }
        }
        SudokuGrid(g)
    }

    /// Generate a random complete grid by seeded randomized backtracking.
    pub fn random_solution(seed: u32) -> SudokuGrid {
        let mut rng = XorShift32::new(seed);
        let mut g = SudokuGrid([0; 81]);
        g.fill_random(&mut rng);
        g
    }

    fn fill_random(&mut self, rng: &mut XorShift32) -> bool {
        let Some(i) = (0..81).find(|&i| self.0[i] == 0) else {
            return true;
        };
        let (r, c) = (i / 9, i % 9);
        let mut digits: Vec<u8> = (1..=9).collect();
        // Fisher-Yates shuffle.
        for k in (1..digits.len()).rev() {
            let j = (rng.next_u32() as usize) % (k + 1);
            digits.swap(k, j);
        }
        for d in digits {
            if self.placement_ok(r, c, d) {
                self.0[i] = d;
                if self.fill_random(rng) {
                    return true;
                }
                self.0[i] = 0;
            }
        }
        false
    }

    /// Generate a puzzle by digging cells from a random solution while the
    /// solution stays unique. `target_givens` bounds the difficulty (17 is
    /// the theoretical minimum; ~22-26 gives hard puzzles).
    pub fn generate(seed: u32, target_givens: usize) -> SudokuGrid {
        let solution = SudokuGrid::random_solution(seed);
        let mut puzzle = solution;
        let mut rng = XorShift32::new(seed ^ 0x9E37_79B9);
        let mut order: Vec<usize> = (0..81).collect();
        for k in (1..order.len()).rev() {
            let j = (rng.next_u32() as usize) % (k + 1);
            order.swap(k, j);
        }
        for &i in &order {
            if puzzle.n_givens() <= target_givens {
                break;
            }
            let saved = puzzle.0[i];
            puzzle.0[i] = 0;
            if puzzle.count_solutions(2) != 1 {
                puzzle.0[i] = saved; // removal breaks uniqueness; keep it
            }
        }
        puzzle
    }
}

impl core::fmt::Display for SudokuGrid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for r in 0..9 {
            for c in 0..9 {
                let d = self.get(r, c);
                write!(f, "{}", if d == 0 { '.' } else { (b'0' + d) as char })?;
                if c == 2 || c == 5 {
                    write!(f, "|")?;
                }
            }
            writeln!(f)?;
            if r == 2 || r == 5 {
                writeln!(f, "---+---+---")?;
            }
        }
        Ok(())
    }
}

/// A deterministic corpus of `n` hard generated puzzles (the reproduction's
/// stand-in for the magictour Top-100 list, which is not redistributable
/// here; see DESIGN.md).
pub fn hard_corpus(n: usize) -> Vec<SudokuGrid> {
    (0..n)
        .map(|i| SudokuGrid::generate(1000 + i as u32, 24))
        .collect()
}

/// The 729-neuron Winner-Takes-All Sudoku network.
#[derive(Debug, Clone)]
pub struct WtaNetwork {
    /// The inhibitory constraint network (plus weak self-excitation).
    pub network: Network,
    /// Constant bias per neuron encoding the givens.
    pub bias: Vec<f64>,
    /// Background noise std per neuron.
    pub noise_std: Vec<f64>,
}

/// Tunable WTA construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct WtaParams {
    /// Inhibitory weight between digits of the *same cell* (strong: makes
    /// each cell a hard winner-takes-all).
    pub w_cell: f64,
    /// Inhibitory weight between *constraint peers* (same digit in the
    /// same row/column/box; softer, provides the consistency gradient).
    pub w_inhibit: f64,
    /// Self-excitation weight sustaining winners.
    pub w_self: f64,
    /// Bias for given-clue neurons.
    pub bias_given: f64,
    /// Bias for free neurons.
    pub bias_free: f64,
    /// Background noise std.
    pub noise_std: f64,
    /// DCU τ selector for the synaptic-current decay (1..9). Large values
    /// make inhibition long-lasting, which the WTA search needs for
    /// hysteresis.
    pub tau: u32,
    /// Annealing period in ms (0 disables): noise amplitude ramps from
    /// [`WtaParams::anneal_hot`] down to [`WtaParams::anneal_cold`] every
    /// period, giving the stochastic search repeated exploration/quench
    /// cycles.
    pub anneal_period: u32,
    /// Noise multiplier at the start of each annealing cycle.
    pub anneal_hot: f64,
    /// Noise multiplier at the end of each annealing cycle.
    pub anneal_cold: f64,
}

impl Default for WtaParams {
    fn default() -> Self {
        WtaParams {
            w_cell: -25.0,
            w_inhibit: -6.0,
            w_self: 0.0,
            bias_given: 20.0,
            bias_free: 8.0,
            noise_std: 10.0,
            tau: 4,
            anneal_period: 0,
            anneal_hot: 1.3,
            anneal_cold: 0.4,
        }
    }
}

impl WtaParams {
    /// The per-tick noise-amplitude schedule implementing the annealing
    /// cycles (empty when disabled).
    pub fn noise_schedule(&self) -> Vec<f64> {
        if self.anneal_period == 0 {
            return Vec::new();
        }
        let p = self.anneal_period as usize;
        (0..p)
            .map(|t| {
                let phase = t as f64 / p as f64;
                self.anneal_hot + (self.anneal_cold - self.anneal_hot) * phase
            })
            .collect()
    }
}

impl WtaNetwork {
    /// Index of the neuron for `(row, col, digit)` (digit in 1..=9).
    #[inline]
    pub fn neuron(r: usize, c: usize, d: u8) -> usize {
        r * 81 + c * 9 + (d as usize - 1)
    }

    /// Inverse of [`WtaNetwork::neuron`]: `(row, col, digit)`.
    #[inline]
    pub fn coords(idx: usize) -> (usize, usize, u8) {
        (idx / 81, (idx / 9) % 9, (idx % 9 + 1) as u8)
    }

    /// All neurons inhibited by a spike of `(r, c, d)` (Fig. 4):
    /// the union of [`WtaNetwork::cell_rivals`] and
    /// [`WtaNetwork::constraint_peers`].
    pub fn conflict_set(r: usize, c: usize, d: u8) -> Vec<usize> {
        let mut out = Self::cell_rivals(r, c, d);
        out.extend(Self::constraint_peers(r, c, d));
        out
    }

    /// The other eight digits of the same cell.
    pub fn cell_rivals(r: usize, c: usize, d: u8) -> Vec<usize> {
        (1..=9u8)
            .filter(|&dd| dd != d)
            .map(|dd| Self::neuron(r, c, dd))
            .collect()
    }

    /// Same digit in the same row, column or 3x3 box (20 peers).
    pub fn constraint_peers(r: usize, c: usize, d: u8) -> Vec<usize> {
        let mut out = Vec::with_capacity(20);
        // (b) same digit, same row
        for cc in 0..9 {
            if cc != c {
                out.push(Self::neuron(r, cc, d));
            }
        }
        // (c) same digit, same column
        for rr in 0..9 {
            if rr != r {
                out.push(Self::neuron(rr, c, d));
            }
        }
        // (d) same digit, rest of the 3x3 subgrid
        let (br, bc) = (r / 3 * 3, c / 3 * 3);
        for rr in br..br + 3 {
            for cc in bc..bc + 3 {
                if rr != r && cc != c {
                    out.push(Self::neuron(rr, cc, d));
                }
            }
        }
        out
    }

    /// Build the WTA network for a puzzle.
    pub fn build(puzzle: &SudokuGrid, p: WtaParams) -> Self {
        let params = vec![IzhParams::fast_spiking(); 729];
        let mut edges = Vec::with_capacity(729 * 29);
        for r in 0..9 {
            for c in 0..9 {
                for d in 1..=9u8 {
                    let pre = Self::neuron(r, c, d) as u32;
                    for post in Self::cell_rivals(r, c, d) {
                        edges.push((pre, post as u32, p.w_cell));
                    }
                    for post in Self::constraint_peers(r, c, d) {
                        edges.push((pre, post as u32, p.w_inhibit));
                    }
                    edges.push((pre, pre, p.w_self));
                }
            }
        }
        let mut bias = vec![p.bias_free; 729];
        let mut noise_std = vec![p.noise_std; 729];
        for r in 0..9 {
            for c in 0..9 {
                let given = puzzle.get(r, c);
                if given != 0 {
                    for d in 1..=9u8 {
                        let i = Self::neuron(r, c, d);
                        if d == given {
                            bias[i] = p.bias_given;
                            noise_std[i] = 0.0;
                        } else {
                            // Rivals of a clue are silenced outright.
                            bias[i] = -10.0;
                            noise_std[i] = 0.0;
                        }
                    }
                }
            }
        }
        WtaNetwork {
            network: Network::from_edges(params, edges),
            bias,
            noise_std,
        }
    }

    /// Decode a grid from per-neuron spike counts over a window: for each
    /// cell, the digit whose neuron fired most (0 if the cell was silent).
    pub fn decode(counts: &[u32]) -> SudokuGrid {
        let mut g = SudokuGrid([0; 81]);
        for r in 0..9 {
            for c in 0..9 {
                let mut best = 0u8;
                let mut best_count = 0u32;
                for d in 1..=9u8 {
                    let k = counts[Self::neuron(r, c, d)];
                    if k > best_count {
                        best_count = k;
                        best = d;
                    }
                }
                if best_count > 0 {
                    g.set(r, c, best);
                }
            }
        }
        g
    }
}

/// Outcome of a WTA solver run.
#[derive(Debug, Clone)]
pub struct WtaSolveResult {
    /// The decoded solution, if the network converged to a valid one.
    pub solution: Option<SudokuGrid>,
    /// Simulated milliseconds consumed.
    pub steps: u32,
    /// The full raster (for inspection).
    pub raster: SpikeRaster,
}

/// Run the fixed-point WTA solver on `puzzle` for at most `max_ms`
/// 1 ms timesteps, checking for convergence every `check_every` ms over a
/// sliding decode window.
pub fn solve_wta(
    puzzle: &SudokuGrid,
    p: WtaParams,
    seed: u32,
    max_ms: u32,
    check_every: u32,
) -> WtaSolveResult {
    let wta = WtaNetwork::build(puzzle, p);
    let mut sim = FixedSimulator::new(&wta.network, p.tau, seed);
    sim.pin = true; // §V-B: pinning improves Sudoku convergence
    sim.bias.copy_from_slice(&wta.bias);
    sim.noise_std.copy_from_slice(&wta.noise_std);
    sim.noise_schedule = p.noise_schedule();

    let window = check_every.max(20);
    let mut raster = SpikeRaster::new(729, max_ms);
    let mut counts = vec![0u32; 729];
    let mut window_start = 0;
    for t in 0..max_ms {
        for i in sim.step() {
            raster.push(t, i);
            counts[i as usize] += 1;
        }
        if t + 1 - window_start >= window {
            let decoded = WtaNetwork::decode(&counts);
            if decoded.is_solved() && decoded.extends(puzzle) {
                raster.n_steps = t + 1;
                return WtaSolveResult {
                    solution: Some(decoded),
                    steps: t + 1,
                    raster,
                };
            }
            counts.iter_mut().for_each(|c| *c = 0);
            window_start = t + 1;
        }
    }
    WtaSolveResult {
        solution: None,
        steps: max_ms,
        raster,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let s = "530070000600195000098000060800060003400803001700020006060000280000419005000080079";
        let g = SudokuGrid::parse(s).unwrap();
        assert_eq!(g.get(0, 0), 5);
        assert_eq!(g.get(0, 1), 3);
        assert_eq!(g.n_givens(), 30);
        let text = g.to_string();
        assert!(text.contains('5'));
        // Dotted form parses back.
        let dotted: String = s.chars().map(|c| if c == '0' { '.' } else { c }).collect();
        assert_eq!(SudokuGrid::parse(&dotted).unwrap(), g);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(SudokuGrid::parse("123").is_none());
        assert!(SudokuGrid::parse(&"x".repeat(81)).is_none());
    }

    #[test]
    fn canonical_solution_is_valid() {
        assert!(SudokuGrid::canonical_solution().is_solved());
    }

    #[test]
    fn solver_solves_known_puzzle() {
        // The classic "world's easiest" newspaper example.
        let g = SudokuGrid::parse(
            "530070000600195000098000060800060003400803001700020006060000280000419005000080079",
        )
        .unwrap();
        let sol = g.solve().unwrap();
        assert!(sol.is_solved());
        assert!(sol.extends(&g));
        assert_eq!(sol.get(0, 2), 4);
    }

    #[test]
    fn solver_rejects_contradiction() {
        let mut g = SudokuGrid([0; 81]);
        g.set(0, 0, 5);
        g.set(0, 1, 5);
        assert!(!g.is_consistent());
        assert!(g.solve().is_none());
    }

    #[test]
    fn random_solutions_are_valid_and_distinct() {
        let a = SudokuGrid::random_solution(1);
        let b = SudokuGrid::random_solution(2);
        assert!(a.is_solved());
        assert!(b.is_solved());
        assert_ne!(a, b);
        assert_eq!(SudokuGrid::random_solution(1), a, "seeded determinism");
    }

    #[test]
    fn generated_puzzles_are_unique_and_hard() {
        let p = SudokuGrid::generate(7, 26);
        assert!(p.n_givens() <= 34, "givens = {}", p.n_givens());
        assert_eq!(p.count_solutions(2), 1, "must have a unique solution");
        let sol = p.solve().unwrap();
        assert!(sol.is_solved() && sol.extends(&p));
    }

    #[test]
    fn hard_corpus_is_deterministic() {
        let a = hard_corpus(3);
        let b = hard_corpus(3);
        assert_eq!(a, b);
        assert!(a.iter().all(|p| p.count_solutions(2) == 1));
    }

    #[test]
    fn neuron_indexing_bijective() {
        let mut seen = vec![false; 729];
        for r in 0..9 {
            for c in 0..9 {
                for d in 1..=9u8 {
                    let i = WtaNetwork::neuron(r, c, d);
                    assert!(!seen[i]);
                    seen[i] = true;
                    assert_eq!(WtaNetwork::coords(i), (r, c, d));
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn conflict_set_matches_fig4() {
        // 8 cell rivals + 8 row + 8 col + 4 remaining box peers = 28.
        let set = WtaNetwork::conflict_set(4, 4, 5);
        assert_eq!(set.len(), 28);
        // No duplicates, never itself.
        let me = WtaNetwork::neuron(4, 4, 5);
        let mut sorted = set.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 28);
        assert!(!set.contains(&me));
        // Spot-check membership: same cell digit 6, same row col 0 digit 5,
        // box peer (3,3) digit 5.
        assert!(set.contains(&WtaNetwork::neuron(4, 4, 6)));
        assert!(set.contains(&WtaNetwork::neuron(4, 0, 5)));
        assert!(set.contains(&WtaNetwork::neuron(3, 3, 5)));
        // Not: different digit in another cell.
        assert!(!set.contains(&WtaNetwork::neuron(0, 0, 1)));
    }

    #[test]
    fn wta_network_shape() {
        let puzzle = SudokuGrid([0; 81]);
        let wta = WtaNetwork::build(&puzzle, WtaParams::default());
        assert_eq!(wta.network.len(), 729);
        // 28 inhibitory + 1 self per neuron.
        assert_eq!(wta.network.n_synapses(), 729 * 29);
    }

    #[test]
    fn wta_bias_encodes_givens() {
        let mut puzzle = SudokuGrid([0; 81]);
        puzzle.set(0, 0, 3);
        let p = WtaParams::default();
        let wta = WtaNetwork::build(&puzzle, p);
        assert_eq!(wta.bias[WtaNetwork::neuron(0, 0, 3)], p.bias_given);
        assert!(wta.bias[WtaNetwork::neuron(0, 0, 1)] < 0.0);
        assert_eq!(wta.bias[WtaNetwork::neuron(5, 5, 1)], p.bias_free);
    }

    #[test]
    fn decode_picks_majority() {
        let mut counts = vec![0u32; 729];
        counts[WtaNetwork::neuron(0, 0, 7)] = 10;
        counts[WtaNetwork::neuron(0, 0, 2)] = 3;
        counts[WtaNetwork::neuron(8, 8, 1)] = 5;
        let g = WtaNetwork::decode(&counts);
        assert_eq!(g.get(0, 0), 7);
        assert_eq!(g.get(8, 8), 1);
        assert_eq!(g.get(4, 4), 0);
    }

    #[test]
    fn wta_solves_nearly_complete_puzzle() {
        // Remove 6 cells from a valid solution: the WTA race only has to
        // settle those six cells.
        let sol = SudokuGrid::canonical_solution();
        let mut puzzle = sol;
        for i in [0, 10, 20, 40, 60, 80] {
            puzzle.0[i] = 0;
        }
        let res = solve_wta(&puzzle, WtaParams::default(), 42, 4000, 50);
        let got = res
            .solution
            .expect("WTA failed to converge on an easy puzzle");
        assert!(got.is_solved());
        assert!(got.extends(&puzzle));
    }

    #[test]
    fn wta_solves_a_hard_corpus_puzzle() {
        // 24 givens — hardest band; this instance/seed converges quickly
        // (the full corpus statistics live in EXPERIMENTS.md).
        let p = hard_corpus(10)[9];
        assert!(p.n_givens() <= 26);
        let r = solve_wta(&p, WtaParams::default(), 16, 12_000, 30);
        let sol = r.solution.expect("hard puzzle did not converge");
        assert!(sol.is_solved() && sol.extends(&p));
        assert_eq!(sol, p.solve().unwrap());
    }

    #[test]
    fn wta_solves_moderate_puzzle() {
        let puzzle = SudokuGrid::generate(3, 45); // ~45 givens: moderate
        let res = solve_wta(&puzzle, WtaParams::default(), 7, 8000, 50);
        let got = res.solution.expect("WTA failed on moderate puzzle");
        assert!(got.is_solved());
        assert!(got.extends(&puzzle));
        // And it must match the unique classical solution.
        assert_eq!(got, puzzle.solve().unwrap());
    }
}

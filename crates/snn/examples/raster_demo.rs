//! Host-side demo: compare the double-precision and fixed-point reference
//! simulators on a small 80-20 network and print both rasters plus their
//! ISI similarity (a miniature of the paper's Fig. 3 pipeline).
use izhi_snn::analysis::{isi_cv, IsiHistogram};
use izhi_snn::gen8020::Net8020;
use izhi_snn::simulate::{F64Simulator, FixedSimulator};

fn main() {
    let net = Net8020::with_size(160, 40, 11);
    let configure = |noise: &mut [f64]| {
        for (i, n) in noise.iter_mut().enumerate() {
            *n = if net.is_excitatory(i) {
                net.exc_noise
            } else {
                net.inh_noise
            };
        }
    };
    let mut f = F64Simulator::new(&net.network, 2, 3);
    configure(&mut f.noise_std);
    let rf = f.run(600);
    let mut q = FixedSimulator::new(&net.network, 2, 4);
    configure(&mut q.noise_std);
    let rq = q.run(600);

    println!(
        "double precision: {} spikes, {:.2} Hz, ISI CV {:.2}",
        rf.spikes.len(),
        rf.mean_rate_hz(),
        isi_cv(&rf)
    );
    println!("{}", rf.to_ascii(16, 80));
    println!(
        "fixed point (NPU datapath): {} spikes, {:.2} Hz, ISI CV {:.2}",
        rq.spikes.len(),
        rq.mean_rate_hz(),
        isi_cv(&rq)
    );
    println!("{}", rq.to_ascii(16, 80));
    let hf = IsiHistogram::from_raster(&rf, 10, 300);
    let hq = IsiHistogram::from_raster(&rq, 10, 300);
    println!("ISI histogram similarity: {:.3}", hf.similarity(&hq));
}

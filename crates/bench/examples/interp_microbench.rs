//! Per-instruction-class cost microbenchmark of the interpreter: tight
//! synthetic guest loops (ALU-only, scratch load/store, cached SDRAM
//! loads, `nmpn`, branch-heavy) reported as host ns per simulated
//! instruction. Used to attribute interpreter overhead during perf work.
//!
//! ```text
//! cargo run --release --example interp_microbench -p izhi_bench
//! ```

use izhi_isa::Assembler;
use izhi_sim::{System, SystemConfig};
use std::time::Instant;

fn measure(name: &str, body: &str) {
    let src = format!(
        "_start: li s0, 2000000\n li s1, 0x10000000\n li s2, 0x100000\nloop:\n{body}\n addi s0, s0, -1\n bnez s0, loop\n ebreak"
    );
    let prog = Assembler::new().assemble(&src).unwrap();
    let mut sys = System::new(SystemConfig::default());
    assert!(sys.load_program(&prog));
    let t = Instant::now();
    sys.run(u64::MAX).unwrap();
    let dt = t.elapsed().as_secs_f64();
    let n = sys.core(0).counters.instret;
    println!(
        "{name:<24} {:>7.2} ns/instr  ({n} instr, {dt:.3}s)",
        dt / n as f64 * 1e9
    );
}

fn main() {
    measure(
        "alu_only",
        " add t0, t1, t2\n xor t3, t0, t1\n add t4, t3, t0\n xor t5, t4, t1",
    );
    measure(
        "scratch_lw_sw",
        " lw t0, (s1)\n sw t0, 4(s1)\n lw t1, 4(s1)\n sw t1, (s1)",
    );
    measure(
        "sdram_lw",
        " lw t0, (s2)\n lw t1, 4(s2)\n lw t2, 8(s2)\n lw t3, 12(s2)",
    );
    measure(
        "nmpn",
        " lw a6, (s1)\n add a2, x0, s1\n nmpn a2, a6, a7\n nop",
    );
    measure(
        "branch_heavy",
        " beq x0, x0, l1\nl1: beq x0, x0, l2\nl2: beq x0, x0, l3\nl3: nop",
    );
}

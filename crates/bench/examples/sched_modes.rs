//! Side-by-side demo of the two multi-core scheduling modes: the same
//! dual-core 80-20 workload under cycle-exact event-driven interleaving
//! and under relaxed round-robin quanta, with identical spike rasters
//! asserted and host wall time printed for each.
//!
//! ```text
//! cargo run --release --example sched_modes
//! ```

use std::time::Instant;

use izhi_programs::engine::Variant;
use izhi_programs::net8020::Net8020Workload;
use izhi_programs::sudoku_prog::SudokuWorkload;
use izhi_sim::SchedMode;
use izhi_snn::sudoku::hard_corpus;

fn main() {
    println!(
        "{:<28} {:>10} {:>14} {:>12}",
        "run", "wall [s]", "sim instret", "Minstr/s"
    );

    let mut sorted_rasters: Vec<Vec<(u32, u32)>> = Vec::new();
    for (label, sched) in [
        ("net8020_2core_exact", SchedMode::Exact),
        ("net8020_2core_relaxed", SchedMode::relaxed()),
    ] {
        let mut wl = Net8020Workload::sized(160, 40, 300, 2, 5, Variant::Npu);
        wl.cfg.system.sched = sched;
        let start = Instant::now();
        let res = wl.run().expect("net8020 run");
        let wall = start.elapsed().as_secs_f64();
        println!(
            "{:<28} {:>10.3} {:>14} {:>12.1}",
            label,
            wall,
            res.instret,
            res.instret as f64 / wall / 1e6
        );
        let mut spikes = res.raster.spikes.clone();
        spikes.sort_unstable();
        sorted_rasters.push(spikes);
    }
    assert_eq!(
        sorted_rasters[0], sorted_rasters[1],
        "relaxed scheduling changed the spike raster"
    );
    println!(
        "net8020 rasters identical across modes ({} spikes)",
        sorted_rasters[0].len()
    );

    let mut puzzle = hard_corpus(1)[0];
    let sol = puzzle.solve().expect("classical solver");
    for i in (0..81).step_by(2) {
        if puzzle.0[i] == 0 {
            puzzle.0[i] = sol.0[i];
        }
    }
    let mut sorted_rasters: Vec<Vec<(u32, u32)>> = Vec::new();
    for (label, sched) in [
        ("sudoku_2core_exact", SchedMode::Exact),
        ("sudoku_2core_relaxed", SchedMode::relaxed()),
    ] {
        let mut wl = SudokuWorkload::new(puzzle, 2500, 2, 100);
        wl.cfg.system.sched = sched;
        let start = Instant::now();
        let res = wl.run(50).expect("sudoku run");
        let wall = start.elapsed().as_secs_f64();
        println!(
            "{:<28} {:>10.3} {:>14} {:>12.1}",
            label,
            wall,
            res.workload.instret,
            res.workload.instret as f64 / wall / 1e6
        );
        let mut spikes = res.workload.raster.spikes.clone();
        spikes.sort_unstable();
        sorted_rasters.push(spikes);
    }
    assert_eq!(
        sorted_rasters[0], sorted_rasters[1],
        "relaxed scheduling changed the sudoku raster"
    );
    println!(
        "sudoku rasters identical across modes ({} spikes)",
        sorted_rasters[0].len()
    );
}

//! Side-by-side demo of the multi-core scheduling modes on registry
//! scenarios: the same dual-core workload under cycle-exact event-driven
//! interleaving, relaxed round-robin quanta and host-parallel relaxed
//! scheduling, with identical spike rasters asserted and host wall time
//! printed for each.
//!
//! ```text
//! cargo run --release --example sched_modes
//! ```

use std::time::Instant;

use izhi_programs::scenario::{self, ScenarioParams};
use izhi_sim::SchedMode;

fn main() {
    println!(
        "{:<28} {:>10} {:>14} {:>12}",
        "run", "wall [s]", "sim instret", "Minstr/s"
    );

    for (scenario_name, params) in [
        (
            "net8020",
            ScenarioParams::default()
                .with_n(200)
                .with_ticks(300)
                .with_cores(2)
                .with_seed(5),
        ),
        (
            "sudoku",
            ScenarioParams::default()
                .with_ticks(2500)
                .with_cores(2)
                .with_seed(100),
        ),
    ] {
        let sc = scenario::find(scenario_name).expect("registered scenario");
        let mut sorted_rasters: Vec<Vec<(u32, u32)>> = Vec::new();
        for (label, sched) in [
            ("exact", SchedMode::Exact),
            ("relaxed", SchedMode::relaxed()),
            ("relaxed-est", SchedMode::relaxed_estimated()),
            (
                "relaxed-par2",
                SchedMode::RelaxedParallel {
                    quantum: SchedMode::DEFAULT_QUANTUM,
                    host_threads: 2,
                    timing: izhi_sim::TimingModel::Unit,
                },
            ),
        ] {
            let mut wl = sc.build(&params);
            wl.cfg_mut().system.sched = sched;
            let start = Instant::now();
            let res = wl.run().expect("scenario run");
            let wall = start.elapsed().as_secs_f64();
            wl.verify(&res).expect("scenario verification");
            println!(
                "{:<28} {:>10.3} {:>14} {:>12.1}",
                format!("{scenario_name}_2core_{label}"),
                wall,
                res.instret,
                res.instret as f64 / wall / 1e6
            );
            let mut spikes = res.raster.spikes.clone();
            spikes.sort_unstable();
            sorted_rasters.push(spikes);
        }
        for later in &sorted_rasters[1..] {
            assert_eq!(
                &sorted_rasters[0], later,
                "scheduling changed the {scenario_name} raster"
            );
        }
        println!(
            "{scenario_name} rasters identical across modes ({} spikes)",
            sorted_rasters[0].len()
        );
    }
}

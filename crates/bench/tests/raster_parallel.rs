//! Workload-level raster identity for the host-parallel relaxed
//! scheduler — the acceptance gate of the `RelaxedParallel` feature:
//! on the 80-20, sweep and Sudoku workloads, `RelaxedParallel {quantum}`
//! must produce **bit-identical spike logs, cycles and instret** to
//! `Relaxed {quantum}` at every tested host-thread count, and therefore
//! the same spike raster *as a set* as the exact scheduler.
//!
//! These run in CI's test job (additionally with `IZHI_HOST_THREADS=2`
//! forced so `host_threads: 0` rows exercise the threaded path even on
//! single-CPU runners).

use izhi_programs::net8020::Net8020Workload;
use izhi_programs::sudoku_prog::SudokuWorkload;
use izhi_programs::sweep::Net8020SweepWorkload;
use izhi_programs::Variant;
use izhi_sim::SchedMode;
use izhi_snn::analysis::SpikeRaster;
use izhi_snn::sudoku::hard_corpus;

fn sorted(raster: &SpikeRaster) -> Vec<(u32, u32)> {
    let mut s = raster.spikes.clone();
    s.sort_unstable();
    s
}

/// Assert the bit-identity contract between a relaxed reference run and a
/// parallel run, plus set identity against the exact raster.
fn assert_contract(
    exact: &SpikeRaster,
    relaxed: &izhi_programs::engine::WorkloadResult,
    parallel: &izhi_programs::engine::WorkloadResult,
    tag: &str,
) {
    assert_eq!(
        relaxed.raster.spikes, parallel.raster.spikes,
        "{tag}: spike-log order"
    );
    assert_eq!(relaxed.cycles, parallel.cycles, "{tag}: cycles");
    assert_eq!(relaxed.instret, parallel.instret, "{tag}: instret");
    assert_eq!(sorted(exact), sorted(&parallel.raster), "{tag}: raster set");
}

#[test]
fn net8020_parallel_raster_identity() {
    let exact_wl = Net8020Workload::sized(40, 10, 150, 2, 5, Variant::Npu);
    let exact = exact_wl.run().expect("exact run");
    for quantum in [7u64, SchedMode::DEFAULT_QUANTUM] {
        let mut rel_wl = exact_wl.clone();
        rel_wl.cfg.system.sched = SchedMode::Relaxed { quantum };
        let relaxed = rel_wl.run().expect("relaxed run");
        for host_threads in [1u32, 2, 4] {
            let mut par_wl = exact_wl.clone();
            par_wl.cfg.system.sched = SchedMode::RelaxedParallel {
                quantum,
                host_threads,
            };
            let parallel = par_wl.run().expect("parallel run");
            assert_contract(
                &exact.raster,
                &relaxed,
                &parallel,
                &format!("80-20 q={quantum} ht={host_threads}"),
            );
        }
    }
}

#[test]
fn sweep_parallel_raster_identity() {
    let wl = Net8020SweepWorkload::sized(40, 10, 150, 2, 5);
    let exact = wl.run().expect("exact run");
    for quantum in [64u64, SchedMode::DEFAULT_QUANTUM] {
        let mut rel_wl = wl.clone();
        rel_wl.cfg.system.sched = SchedMode::Relaxed { quantum };
        let relaxed = rel_wl.run().expect("relaxed run");
        for host_threads in [1u32, 2, 4] {
            let mut par_wl = wl.clone();
            par_wl.cfg.system.sched = SchedMode::RelaxedParallel {
                quantum,
                host_threads,
            };
            let parallel = par_wl.run().expect("parallel run");
            assert_contract(
                &exact.raster,
                &relaxed,
                &parallel,
                &format!("sweep q={quantum} ht={host_threads}"),
            );
        }
    }
}

#[test]
fn sudoku_parallel_raster_identity() {
    // One eased hard puzzle (half the blanks restored), short budget:
    // enough ticks for a busy raster without making the test slow.
    let mut puzzle = hard_corpus(1)[0];
    let sol = puzzle.solve().expect("classical solver");
    for i in (0..81).step_by(2) {
        if puzzle.0[i] == 0 {
            puzzle.0[i] = sol.0[i];
        }
    }
    let run = |sched: SchedMode| {
        let mut wl = SudokuWorkload::new(puzzle, 300, 2, 100);
        wl.cfg.system.sched = sched;
        wl.run(50).expect("sudoku run").workload
    };
    let exact = run(SchedMode::Exact);
    let relaxed = run(SchedMode::relaxed());
    assert_eq!(
        sorted(&exact.raster),
        sorted(&relaxed.raster),
        "sudoku: relaxed vs exact raster set"
    );
    for host_threads in [1u32, 2, 4] {
        let parallel = run(SchedMode::RelaxedParallel {
            quantum: SchedMode::DEFAULT_QUANTUM,
            host_threads,
        });
        assert_contract(
            &exact.raster,
            &relaxed,
            &parallel,
            &format!("sudoku ht={host_threads}"),
        );
    }
}

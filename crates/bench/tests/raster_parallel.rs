//! Workload-level raster identity for the host-parallel relaxed
//! scheduler — the acceptance gate of the `RelaxedParallel` feature:
//! on the 80-20, sweep and Sudoku scenarios (built through the scenario
//! registry), `RelaxedParallel {quantum}` must produce **bit-identical
//! spike logs, cycles and instret** to `Relaxed {quantum}` at every
//! tested host-thread count, and therefore the same spike raster *as a
//! set* as the exact scheduler.
//!
//! These run in CI's test job (additionally with `IZHI_HOST_THREADS=2`
//! forced so `host_threads: 0` rows exercise the threaded path even on
//! single-CPU runners).

use izhi_programs::engine::WorkloadResult;
use izhi_programs::scenario::{self, ScenarioParams};
use izhi_sim::{SchedMode, TimingModel};
use izhi_snn::analysis::SpikeRaster;

fn sorted(raster: &SpikeRaster) -> Vec<(u32, u32)> {
    let mut s = raster.spikes.clone();
    s.sort_unstable();
    s
}

fn run_mode(sc: &scenario::Scenario, params: &ScenarioParams, sched: SchedMode) -> WorkloadResult {
    let mut wl = sc.build(params);
    wl.cfg_mut().system.sched = sched;
    let res = wl.run().expect("scenario run");
    wl.verify(&res).expect("scenario verification");
    res
}

/// Assert the bit-identity contract between a relaxed reference run and a
/// parallel run, plus set identity against the exact raster.
fn assert_contract(
    exact: &SpikeRaster,
    relaxed: &WorkloadResult,
    parallel: &WorkloadResult,
    tag: &str,
) {
    assert_eq!(
        relaxed.raster.spikes, parallel.raster.spikes,
        "{tag}: spike-log order"
    );
    assert_eq!(relaxed.cycles, parallel.cycles, "{tag}: cycles");
    assert_eq!(relaxed.instret, parallel.instret, "{tag}: instret");
    assert_eq!(sorted(exact), sorted(&parallel.raster), "{tag}: raster set");
}

/// Exercise one scenario across timing models × quanta × host threads
/// (the parallel bit-identity contract holds per timing model).
fn scenario_contract(name: &str, params: ScenarioParams, quanta: &[u64]) {
    let sc = scenario::find(name).expect("registered scenario");
    let exact = run_mode(sc, &params, SchedMode::Exact);
    for timing in [TimingModel::Unit, TimingModel::Estimated] {
        for &quantum in quanta {
            let relaxed = run_mode(sc, &params, SchedMode::Relaxed { quantum, timing });
            for host_threads in [1u32, 2, 4] {
                let parallel = run_mode(
                    sc,
                    &params,
                    SchedMode::RelaxedParallel {
                        quantum,
                        host_threads,
                        timing,
                    },
                );
                assert_contract(
                    &exact.raster,
                    &relaxed,
                    &parallel,
                    &format!("{name} {timing:?} q={quantum} ht={host_threads}"),
                );
            }
        }
    }
}

#[test]
fn net8020_parallel_raster_identity() {
    scenario_contract(
        "net8020",
        ScenarioParams::default()
            .with_n(50)
            .with_ticks(150)
            .with_cores(2)
            .with_seed(5),
        &[7, SchedMode::DEFAULT_QUANTUM],
    );
}

#[test]
fn sweep_parallel_raster_identity() {
    scenario_contract(
        "net8020_sweep",
        ScenarioParams::default()
            .with_n(50)
            .with_ticks(150)
            .with_cores(2)
            .with_seed(5),
        &[64, SchedMode::DEFAULT_QUANTUM],
    );
}

#[test]
fn sudoku_parallel_raster_identity() {
    // One eased hard puzzle, short budget: enough ticks for a busy raster
    // without making the test slow.
    scenario_contract(
        "sudoku",
        ScenarioParams::default()
            .with_ticks(300)
            .with_cores(2)
            .with_seed(100),
        &[SchedMode::DEFAULT_QUANTUM],
    );
}

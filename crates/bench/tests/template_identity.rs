//! Template-vs-cold acceptance suite: for **every** scenario in the
//! registry — present and future — a run instantiated from its cached
//! [`izhi_programs::template::RunTemplate`] must be bit-identical
//! (raster hash, cycles, instret) to the from-scratch cold build, under
//! every sched × timing combination the battery exercises. A scenario
//! added to the registry is picked up here automatically; a template
//! path that drifts from the cold path cannot land.

use izhi_programs::scenario::{self, ScenarioParams, Workload};
use izhi_programs::WorkloadResult;
use izhi_sim::{SchedMode, TimingModel};

/// The battery's five sched × timing combinations (2 forced host threads
/// on the parallel rows, so the threaded path runs even on single-CPU
/// machines).
fn modes() -> [(&'static str, SchedMode); 5] {
    [
        ("exact", SchedMode::Exact),
        ("relaxed", SchedMode::relaxed()),
        (
            "relaxed-par",
            SchedMode::RelaxedParallel {
                quantum: SchedMode::DEFAULT_QUANTUM,
                host_threads: 2,
                timing: TimingModel::Unit,
            },
        ),
        ("relaxed-est", SchedMode::relaxed_estimated()),
        (
            "relaxed-par-est",
            SchedMode::RelaxedParallel {
                quantum: SchedMode::DEFAULT_QUANTUM,
                host_threads: 2,
                timing: TimingModel::Estimated,
            },
        ),
    ]
}

fn cold_run(sc: &scenario::Scenario, params: &ScenarioParams, sched: SchedMode) -> WorkloadResult {
    let mut wl = sc.build_quick(params);
    wl.cfg_mut().system.sched = sched;
    wl.run_cold()
        .unwrap_or_else(|e| panic!("{}: cold run failed: {e}", sc.name))
}

#[test]
fn template_instances_match_cold_runs_for_every_scenario_and_mode() {
    for sc in scenario::registry() {
        let seed = sc.battery_seeds[0];
        let params = ScenarioParams::default().with_seed(seed);
        let tpl = sc.template_quick(&params);
        for (label, sched) in modes() {
            let cold = cold_run(sc, &params, sched);
            let inst = tpl.instantiate(seed, sched);
            let res = inst
                .run()
                .unwrap_or_else(|e| panic!("{}/{label}: template run failed: {e}", sc.name));
            assert_eq!(
                cold.raster_hash(),
                res.raster_hash(),
                "{}/{label}: template raster drifted from cold build",
                sc.name
            );
            assert_eq!(
                cold.cycles, res.cycles,
                "{}/{label}: template cycles drifted from cold build",
                sc.name
            );
            assert_eq!(
                cold.instret, res.instret,
                "{}/{label}: template instret drifted from cold build",
                sc.name
            );
            assert_eq!(
                cold.weight_hash, res.weight_hash,
                "{}/{label}: template weight state drifted from cold build",
                sc.name
            );
            inst.verify(&res)
                .unwrap_or_else(|e| panic!("{}/{label}: verification failed: {e}", sc.name));
        }
    }
}

#[test]
fn reseeded_instances_match_cold_runs_at_the_new_seed() {
    // Re-seeding an existing template rebuilds only the host-side image
    // (no re-assembly); the result must still match a cold build at that
    // seed exactly. Scenarios with one battery seed get a synthetic
    // second seed — every registry entry takes the re-seed path here.
    for sc in scenario::registry() {
        let built_seed = sc.battery_seeds[0];
        let other = sc
            .battery_seeds
            .get(1)
            .copied()
            .unwrap_or(built_seed.wrapping_add(1));
        let tpl = sc.template_quick(&ScenarioParams::default().with_seed(built_seed));
        let cold = cold_run(
            sc,
            &ScenarioParams::default().with_seed(other),
            SchedMode::Exact,
        );
        let res = tpl
            .instantiate(other, SchedMode::Exact)
            .run()
            .unwrap_or_else(|e| panic!("{}: re-seeded template run failed: {e}", sc.name));
        assert_eq!(
            (
                cold.raster_hash(),
                cold.cycles,
                cold.instret,
                cold.weight_hash
            ),
            (res.raster_hash(), res.cycles, res.instret, res.weight_hash),
            "{}: re-seeded template drifted from the cold build at seed {other}",
            sc.name
        );
    }
}

//! Scenario-service acceptance suite: the HTTP API contract, bounded-
//! queue backpressure, per-job supervision (a poisoned job must never
//! take the server down), and graceful shutdown that drains accepted
//! work while still answering health and status queries.

use std::time::{Duration, Instant};

use izhi_bench::serve::{
    failure_isolated, generate_load, http_request, json_field_str, json_field_u64, tiny_job_body,
    ServeConfig, Server, ServerHandle,
};
use izhi_bench::supervise::SuperviseConfig;

fn start(queue_cap: usize, workers: usize) -> ServerHandle {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_cap,
        workers,
        supervise: SuperviseConfig {
            wall_limit: Some(Duration::from_secs(30)),
            ..Default::default()
        },
    })
    .expect("server starts on an ephemeral port")
}

/// Poll one job until it leaves the queue/running states.
fn wait_for_job(addr: &str, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) =
            http_request(addr, "GET", &format!("/jobs/{id}"), None).expect("status query");
        assert_eq!(status, 200, "job {id}: {body}");
        match json_field_str(&body, "status").as_deref() {
            Some("done") | Some("failed") => return body,
            _ if Instant::now() > deadline => panic!("job {id} never finished: {body}"),
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

#[test]
fn health_and_submit_and_result_round_trip() {
    let handle = start(8, 2);
    let addr = handle.addr().to_string();

    let (status, body) = http_request(&addr, "GET", "/health", None).expect("health");
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_field_str(&body, "status").as_deref(), Some("ok"));

    let (status, body) =
        http_request(&addr, "POST", "/jobs", Some(&tiny_job_body(5))).expect("submit");
    assert_eq!(status, 202, "{body}");
    let id = json_field_u64(&body, "id").expect("id in the 202");

    let body = wait_for_job(&addr, id);
    assert_eq!(
        json_field_str(&body, "status").as_deref(),
        Some("done"),
        "{body}"
    );
    assert!(json_field_u64(&body, "spikes").unwrap_or(0) > 0, "{body}");
    assert!(json_field_str(&body, "raster_hash").is_some(), "{body}");

    handle.shutdown_and_join();
}

#[test]
fn bad_requests_are_rejected_not_crashed() {
    let handle = start(8, 1);
    let addr = handle.addr().to_string();

    for (body, what) in [
        ("not json", "garbage body"),
        ("{\"scenario\": \"does-not-exist\"}", "unknown scenario"),
        ("{\"seed\": 1}", "missing scenario"),
        (
            "{\"scenario\": \"net8020\", \"sched\": \"warp-speed\"}",
            "unknown sched",
        ),
    ] {
        let (status, resp) = http_request(&addr, "POST", "/jobs", Some(body)).expect(what);
        assert_eq!(status, 400, "{what}: {resp}");
    }
    let (status, _) = http_request(&addr, "GET", "/jobs/999", None).expect("unknown id");
    assert_eq!(status, 404);
    let (status, _) = http_request(&addr, "GET", "/nope", None).expect("unknown path");
    assert_eq!(status, 404);
    let (status, _) = http_request(&addr, "DELETE", "/health", None).expect("bad method");
    assert_eq!(status, 405);

    // The server still works after all of that.
    let (status, _) = http_request(&addr, "GET", "/health", None).expect("health");
    assert_eq!(status, 200);
    handle.shutdown_and_join();
}

#[test]
fn a_burst_beyond_capacity_is_backpressured_and_accepted_jobs_complete() {
    // 50 jobs into a queue of 4 with 2 workers: rejections are certain,
    // and every accepted job must still complete while health stays up.
    let handle = start(4, 2);
    let addr = handle.addr().to_string();
    let mut bodies: Vec<String> = (0..50u32).map(tiny_job_body).collect();
    // Two poisoned jobs ride along: a host panic and a guest trap.
    bodies[0] = "{\"scenario\": \"net8020\", \"seed\": 5, \"ticks\": 10, \"n\": 60, \
                 \"fault\": \"panic\"}"
        .to_string();
    bodies[1] = "{\"scenario\": \"net8020\", \"seed\": 6, \"ticks\": 10, \"n\": 60, \
                 \"fault\": \"trap\"}"
        .to_string();

    let report = generate_load(&addr, &bodies, Duration::from_secs(120)).expect("burst");
    assert_eq!(report.submitted, 50);
    assert!(report.rejected > 0, "burst past capacity must see 429s");
    assert!(report.backpressure_hinted, "429s carry retry_after_ms");
    assert_eq!(
        report.completed + report.failed,
        report.accepted,
        "every accepted job finished"
    );
    assert_eq!(
        report.health_ok, report.health_checks,
        "health stayed answered throughout"
    );
    assert!(
        failure_isolated(&report),
        "poisoned jobs must fail structurally without downing the server: {report:?}"
    );
    handle.shutdown_and_join();
}

#[test]
fn a_panicking_job_reports_its_kind_and_spares_its_neighbours() {
    let handle = start(8, 1); // single worker: the panic and the clean job share it
    let addr = handle.addr().to_string();

    let poison = "{\"scenario\": \"net8020\", \"seed\": 5, \"ticks\": 10, \"n\": 60, \
                  \"fault\": \"panic\", \"fault_at\": 1000}";
    let (status, body) = http_request(&addr, "POST", "/jobs", Some(poison)).expect("submit");
    assert_eq!(status, 202, "{body}");
    let poison_id = json_field_u64(&body, "id").unwrap();
    let (status, body) =
        http_request(&addr, "POST", "/jobs", Some(&tiny_job_body(7))).expect("submit");
    assert_eq!(status, 202, "{body}");
    let clean_id = json_field_u64(&body, "id").unwrap();

    let body = wait_for_job(&addr, poison_id);
    assert_eq!(
        json_field_str(&body, "status").as_deref(),
        Some("failed"),
        "{body}"
    );
    assert_eq!(
        json_field_str(&body, "error_kind").as_deref(),
        Some("panic"),
        "{body}"
    );
    let body = wait_for_job(&addr, clean_id);
    assert_eq!(
        json_field_str(&body, "status").as_deref(),
        Some("done"),
        "the worker survived the panic: {body}"
    );
    handle.shutdown_and_join();
}

#[test]
fn shutdown_drains_accepted_jobs_and_refuses_new_ones() {
    let handle = start(16, 2);
    let addr = handle.addr().to_string();
    let ids: Vec<u64> = (0..6u32)
        .map(|seed| {
            let (status, body) =
                http_request(&addr, "POST", "/jobs", Some(&tiny_job_body(seed))).expect("submit");
            assert_eq!(status, 202, "{body}");
            json_field_u64(&body, "id").unwrap()
        })
        .collect();

    let (status, body) = http_request(&addr, "POST", "/shutdown", None).expect("shutdown");
    assert_eq!(status, 202, "{body}");

    // While draining: no new admissions, but health and status answer.
    let (status, _) =
        http_request(&addr, "POST", "/jobs", Some(&tiny_job_body(99))).expect("late submit");
    assert_eq!(status, 503, "admissions closed during the drain");
    let (status, body) = http_request(&addr, "GET", "/health", None).expect("health");
    assert_eq!(status, 200);
    assert!(body.contains("\"draining\": true"), "{body}");

    // Every job accepted before the shutdown still completes.
    for id in ids {
        let body = wait_for_job(&addr, id);
        assert_eq!(
            json_field_str(&body, "status").as_deref(),
            Some("done"),
            "accepted job {id} drained: {body}"
        );
    }
    handle.join();
}

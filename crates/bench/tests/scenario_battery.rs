//! The scenario-battery acceptance suite: **every** scenario in the
//! registry — present and future — must be deterministic and
//! raster-identical across `Exact`, `Relaxed` and `RelaxedParallel`,
//! under both relaxed clocks (`Unit` and `Estimated` timing), at
//! host_threads {1, 2}. A scenario added to the registry is picked up
//! here automatically; one that breaks the cross-mode contract cannot
//! land.

use izhi_bench::battery::{self, BatteryRunner, BatterySpec};
use izhi_programs::scenario::{self, ScenarioParams};
use izhi_sim::{SchedMode, TimingModel};

fn run_quick(sc: &scenario::Scenario, sched: SchedMode) -> izhi_programs::WorkloadResult {
    let mut wl = sc.build_quick(&ScenarioParams::default());
    wl.cfg_mut().system.sched = sched;
    let res = wl
        .run()
        .unwrap_or_else(|e| panic!("{}: run failed: {e}", sc.name));
    wl.verify(&res)
        .unwrap_or_else(|e| panic!("{}: verification failed: {e}", sc.name));
    res
}

#[test]
fn every_scenario_is_deterministic_and_sched_identical() {
    for sc in scenario::registry() {
        // Determinism across independent builds of the same scenario.
        let exact = run_quick(sc, SchedMode::Exact);
        let again = run_quick(sc, SchedMode::Exact);
        assert_eq!(
            exact.raster.spikes, again.raster.spikes,
            "{}: exact rebuild changed the spike log",
            sc.name
        );
        assert_eq!(exact.cycles, again.cycles, "{}: cycles drift", sc.name);

        // Relaxed must reproduce the exact physics (raster as a set).
        let relaxed = run_quick(sc, SchedMode::relaxed());
        assert_eq!(
            exact.raster_hash(),
            relaxed.raster_hash(),
            "{}: relaxed scheduling changed the raster",
            sc.name
        );

        // Estimated timing must reproduce the same physics (it only
        // changes the clock), be deterministic, and actually charge more
        // than one cycle per instruction on these load/branch-heavy
        // guests — otherwise it silently degenerated to Unit.
        let est = run_quick(sc, SchedMode::relaxed_estimated());
        assert_eq!(
            exact.raster_hash(),
            est.raster_hash(),
            "{}: estimated timing changed the raster",
            sc.name
        );
        let est_again = run_quick(sc, SchedMode::relaxed_estimated());
        assert_eq!(
            est.raster.spikes, est_again.raster.spikes,
            "{}: estimated rebuild changed the spike log",
            sc.name
        );
        assert_eq!(
            est.cycles, est_again.cycles,
            "{}: est cycles drift",
            sc.name
        );
        assert_eq!(est.instret, relaxed.instret, "{}: instret drift", sc.name);
        // Each core retires the same instructions under both relaxed
        // clocks, and the estimated table charges loads/branches/NPU ops
        // more than one cycle — so the estimated clock must run ahead of
        // the unit clock (`cycles` is the slowest core, so > survives the
        // per-core comparison).
        assert!(
            est.cycles > relaxed.cycles,
            "{}: estimated clock degenerated to unit ({} <= {})",
            sc.name,
            est.cycles,
            relaxed.cycles
        );

        // Host-parallel relaxed must be bit-identical to sequential
        // relaxed at every host-thread count — per timing model.
        for (timing, reference) in [
            (TimingModel::Unit, &relaxed),
            (TimingModel::Estimated, &est),
        ] {
            for host_threads in [1u32, 2] {
                let parallel = run_quick(
                    sc,
                    SchedMode::RelaxedParallel {
                        quantum: SchedMode::DEFAULT_QUANTUM,
                        host_threads,
                        timing,
                    },
                );
                assert_eq!(
                    reference.raster.spikes, parallel.raster.spikes,
                    "{}: {timing:?} ht={host_threads} spike-log order",
                    sc.name
                );
                assert_eq!(
                    reference.cycles, parallel.cycles,
                    "{}: {timing:?} ht={host_threads} cycles",
                    sc.name
                );
                assert_eq!(
                    reference.instret, parallel.instret,
                    "{}: {timing:?} ht={host_threads} instret",
                    sc.name
                );
            }
        }
    }
}

#[test]
fn stdp_battery_pins_the_golden_weight_hashes() {
    let sc = scenario::find("net8020_stdp").expect("registered");
    let rows = BatteryRunner { host_threads: 2 }
        .run(&[BatterySpec::quick(sc, 2)])
        .expect("battery run");
    battery::check_rows(&rows).expect("battery identity/verification");
    // Golden final-weight-state hashes at the quick shape (n=160,
    // ticks=150, cores=2, density 0.1). Every scheduling mode must land
    // on these exact values; an engine change that alters how STDP
    // evolves the weights must be deliberate enough to re-pin them.
    let golden = [(21u32, 0x281401fe0c8b5c8b_u64), (22, 0x6dc8e5ac94680514)];
    assert_eq!(rows.len(), golden.len() * 5, "seeds x sched modes");
    for row in &rows {
        let expect = golden
            .iter()
            .find(|(s, _)| *s == row.seed)
            .expect("battery seed")
            .1;
        assert_eq!(
            row.weight_hash,
            Some(expect),
            "{}: final weight state drifted from the pinned hash",
            row.key()
        );
    }
}

#[test]
fn sharded_battery_crosses_the_standard_map() {
    // The scale-out acceptance shape: the sharded quick battery runs at
    // >= 8 guest cores (16, on the scaled memory map) and still holds
    // cross-mode raster identity.
    let sc = scenario::find("net8020_sharded").expect("registered");
    let wl = sc.build_quick(&ScenarioParams::default());
    assert!(
        wl.cfg().n_cores >= 8,
        "sharded quick shape must use >= 8 guest cores, got {}",
        wl.cfg().n_cores
    );
    let rows = BatteryRunner { host_threads: 2 }
        .run(&[BatterySpec {
            seeds: vec![sc.battery_seeds[0]],
            ..BatterySpec::quick(sc, 2)
        }])
        .expect("battery run");
    battery::check_rows(&rows).expect("battery identity/verification");
    for row in &rows {
        assert!(
            row.weight_hash.is_none(),
            "{}: not a plastic run",
            row.key()
        );
    }
}

#[test]
fn battery_runner_shards_the_registry_and_checks_identity() {
    // One seed per scenario keeps the suite quick; the runner itself
    // fans (scenario, seed, sched) rows across 2 host worker threads.
    let specs: Vec<BatterySpec> = scenario::registry()
        .iter()
        .map(|s| BatterySpec {
            seeds: vec![s.battery_seeds[0]],
            ..BatterySpec::quick(s, 2)
        })
        .collect();
    let rows = BatteryRunner { host_threads: 2 }
        .run(&specs)
        .expect("battery run");
    assert_eq!(
        rows.len(),
        scenario::registry().len() * 5,
        "one row per scenario x (sched x timing) combination"
    );
    battery::check_rows(&rows).expect("battery identity/verification");
    // Row order is the deterministic work-list order, not completion
    // order: scenario-major, then seed, then sched x timing.
    let labels: Vec<_> = rows.iter().take(5).map(|r| r.sched).collect();
    assert_eq!(
        labels,
        [
            "exact",
            "relaxed",
            "relaxed-par",
            "relaxed-est",
            "relaxed-par-est"
        ]
    );
    let timings: Vec<_> = rows.iter().take(5).map(|r| r.timing).collect();
    assert_eq!(timings, ["exact", "unit", "unit", "estimated", "estimated"]);
}

/// Assembler relaxation soundness, swept over **every** registry
/// scenario: the relaxed build must produce the identical spike raster
/// and final weight state while retiring strictly fewer instructions.
/// The per-scenario reduction floors (per-mille of the unrelaxed
/// instret) pin the measured win at the quick shape, so a peephole
/// regression that silently stops firing cannot land:
///
/// | scenario          | measured reduction |
/// |-------------------|--------------------|
/// | sudoku            | 3.4%               |
/// | net8020_large     | 4.2%               |
/// | net8020_points    | 4.2%               |
/// | net8020_basefixed | 0.6%               |
/// | net8020_softfloat | 6.4%               |
/// | sudoku_batch      | 3.4%               |
/// | net8020_sharded   | 7.4%               |
/// | net8020_stdp      | 4.6%               |
/// | net8020_stream    | 5.3%               |
#[test]
fn assembler_relaxation_is_sound_on_every_scenario() {
    for sc in scenario::registry() {
        let run_with = |relax: bool| {
            let mut wl = sc.build_quick(&ScenarioParams::default());
            wl.cfg_mut().system.asm_relax = relax;
            let res = wl
                .run()
                .unwrap_or_else(|e| panic!("{} relax={relax}: run failed: {e}", sc.name));
            wl.verify(&res)
                .unwrap_or_else(|e| panic!("{} relax={relax}: verification failed: {e}", sc.name));
            res
        };
        let on = run_with(true);
        let off = run_with(false);
        assert_eq!(
            on.raster_hash(),
            off.raster_hash(),
            "{}: relaxation changed the spike raster",
            sc.name
        );
        assert_eq!(
            on.weight_hash, off.weight_hash,
            "{}: relaxation changed the final weight state",
            sc.name
        );
        assert!(
            on.instret < off.instret,
            "{}: relaxation saved no instructions ({} >= {})",
            sc.name,
            on.instret,
            off.instret
        );
        // Floors sit safely under the measured reductions above; a new
        // scenario starts at the >0 guarantee until someone pins it.
        let floor_permille = match sc.name {
            "sudoku" | "sudoku_batch" => 30,
            "net8020_large" | "net8020_points" => 35,
            "net8020_basefixed" => 4,
            "net8020_softfloat" => 55,
            "net8020_sharded" => 65,
            "net8020_stdp" => 40,
            "net8020_stream" => 45,
            _ => 0,
        };
        let permille = (off.instret - on.instret) * 1000 / off.instret;
        assert!(
            permille >= floor_permille,
            "{}: relaxation win regressed to {permille} per-mille (floor {floor_permille})",
            sc.name
        );
    }
}

//! Fault-injection acceptance suite for the supervision layer: every
//! [`RunErrorKind`] must be producible on demand through the simulator's
//! deterministic fault hooks, classified correctly, retried (or not) per
//! the policy, and isolated — a faulty run must never take down the
//! battery runner, and an empty fault plan must leave the physics
//! bit-identical.

use std::time::Duration;

use izhi_bench::battery::{BatteryRow, BatteryRunner, BatterySpec};
use izhi_bench::supervise::{run_supervised, RetryPolicy, RunErrorKind, SuperviseConfig};
use izhi_programs::scenario::{self, ScenarioParams, Workload};
use izhi_sim::{FaultKind, FaultPlan};

/// A small, fast 80-20 workload to inject faults into.
fn tiny_workload() -> Box<dyn Workload> {
    scenario::find("net8020")
        .expect("net8020 is registered")
        .build_quick(
            &ScenarioParams::default()
                .with_n(60)
                .with_ticks(10)
                .with_seed(5),
        )
}

fn faulty_workload(kind: FaultKind, at_instret: u64) -> Box<dyn Workload> {
    let mut wl = tiny_workload();
    wl.cfg_mut().system.faults = FaultPlan::none().with(0, at_instret, kind);
    wl
}

fn no_retry() -> SuperviseConfig {
    SuperviseConfig {
        retry: RetryPolicy::no_retry(),
        ..Default::default()
    }
}

#[test]
fn a_clean_run_supervises_to_success_on_the_first_attempt() {
    let mut wl = tiny_workload();
    let sup = run_supervised(wl.as_mut(), &SuperviseConfig::default()).expect("clean run");
    assert_eq!(sup.attempts, 1);
    assert!(
        !sup.result.raster.spikes.is_empty(),
        "workload produced spikes"
    );
}

#[test]
fn an_injected_panic_is_caught_and_classified() {
    let mut wl = faulty_workload(FaultKind::HostPanic, 1_000);
    let err = run_supervised(wl.as_mut(), &no_retry()).unwrap_err();
    assert_eq!(err.kind, RunErrorKind::Panic);
    assert_eq!(err.attempts, 1, "panics are deterministic — no retry");
    assert!(
        err.message.contains("injected host panic"),
        "{}",
        err.message
    );
}

#[test]
fn an_injected_guest_trap_is_classified_with_its_sim_error() {
    use std::error::Error as _;
    let mut wl = faulty_workload(FaultKind::GuestTrap, 1_000);
    let err = run_supervised(wl.as_mut(), &no_retry()).unwrap_err();
    assert_eq!(err.kind, RunErrorKind::GuestTrap);
    assert_eq!(err.attempts, 1, "guest traps reproduce — no retry");
    let source = err.source().expect("trap chains to the SimError");
    assert!(source.to_string().contains("injected fault"), "{source}");
}

#[test]
fn an_exhausted_cycle_budget_is_classified() {
    let mut wl = tiny_workload();
    let err = run_supervised(
        wl.as_mut(),
        &SuperviseConfig {
            max_cycles: Some(10_000), // far below what the workload needs
            retry: RetryPolicy::no_retry(),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert_eq!(err.kind, RunErrorKind::CycleBudget);
}

#[test]
fn a_stalled_run_times_out_on_the_wall_clock_and_is_retried() {
    // A 300 ms stall against a 40 ms wall budget: every attempt fails
    // with WallClockTimeout (the stall re-arms on each fresh System), and
    // the policy retries wall-clock failures up to max_attempts.
    let mut wl = faulty_workload(FaultKind::StallMs(300), 1_000);
    let err = run_supervised(
        wl.as_mut(),
        &SuperviseConfig {
            wall_limit: Some(Duration::from_millis(40)),
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            },
            ..Default::default()
        },
    )
    .unwrap_err();
    assert_eq!(err.kind, RunErrorKind::WallClockTimeout);
    assert_eq!(
        err.attempts, 2,
        "wall-clock failures are retried to the cap"
    );
}

#[test]
fn corrupted_output_fails_verification() {
    // CorruptSpike flips the neuron bits of one spike-log word: the run
    // itself completes, but the scenario's verification hook must reject
    // the out-of-range neuron in the damaged raster.
    let mut wl = faulty_workload(FaultKind::CorruptSpike(0x0000_3FFF), 1_000);
    let err = run_supervised(wl.as_mut(), &no_retry()).unwrap_err();
    assert_eq!(err.kind, RunErrorKind::VerifyFailed);
    assert_eq!(err.attempts, 1, "deterministic corruption — no retry");
}

/// Run a quick single-scenario battery with the given fault plan and
/// supervision; the runner must return rows (not an error) even when
/// every job dies.
fn battery_rows(faults: FaultPlan, supervise: SuperviseConfig) -> Vec<BatteryRow> {
    let sc = scenario::find("net8020").expect("net8020 is registered");
    let spec = BatterySpec {
        params: ScenarioParams::default().with_n(60).with_ticks(10),
        seeds: vec![5],
        faults,
        supervise,
        ..BatterySpec::quick(sc, 2)
    };
    BatteryRunner { host_threads: 2 }
        .run(&[spec])
        .expect("the runner survives faulty jobs")
}

#[test]
fn a_panicking_job_becomes_a_failed_row_not_a_dead_runner() {
    let rows = battery_rows(
        FaultPlan::none().with(0, 1_000, FaultKind::HostPanic),
        SuperviseConfig {
            retry: RetryPolicy::no_retry(),
            ..Default::default()
        },
    );
    assert_eq!(rows.len(), 5, "every sched x timing combination got a row");
    for row in &rows {
        assert!(
            !row.verified,
            "{}: a poisoned run must not verify",
            row.key()
        );
        assert_eq!(row.error_kind, Some(RunErrorKind::Panic), "{}", row.key());
        assert!(
            row.error.is_some(),
            "{}: failure carries a message",
            row.key()
        );
    }
}

#[test]
fn a_trapping_job_is_isolated_per_row() {
    let rows = battery_rows(
        FaultPlan::none().with(0, 1_000, FaultKind::GuestTrap),
        SuperviseConfig {
            retry: RetryPolicy::no_retry(),
            ..Default::default()
        },
    );
    for row in &rows {
        assert_eq!(
            row.error_kind,
            Some(RunErrorKind::GuestTrap),
            "{}",
            row.key()
        );
        assert_eq!(row.attempts, 1, "{}", row.key());
    }
}

#[test]
fn an_empty_fault_plan_leaves_the_battery_bit_identical() {
    // The chaos hook must be free when unused: a battery run with an
    // explicitly empty plan (and the supervision defaults) must produce
    // exactly the hashes of a plain run, across every sched x timing row.
    let sc = scenario::find("net8020").expect("net8020 is registered");
    let quick = |faults: FaultPlan| {
        let spec = BatterySpec {
            params: ScenarioParams::default().with_n(60).with_ticks(20),
            seeds: vec![5, 6],
            faults,
            ..BatterySpec::quick(sc, 2)
        };
        BatteryRunner { host_threads: 2 }
            .run(&[spec])
            .expect("battery run")
    };
    let plain = quick(FaultPlan::default());
    let empty = quick(FaultPlan { faults: Vec::new() });
    assert_eq!(plain.len(), empty.len());
    for (a, b) in plain.iter().zip(&empty) {
        assert_eq!(a.key(), b.key());
        assert!(a.verified && b.verified, "{}: both runs verify", a.key());
        assert_eq!(
            a.raster_hash,
            b.raster_hash,
            "{}: an empty fault plan changed the physics",
            a.key()
        );
        assert_eq!(a.sim_cycles, b.sim_cycles, "{}: cycle drift", a.key());
        assert_eq!(a.sim_instret, b.sim_instret, "{}: instret drift", a.key());
    }
}

#[test]
fn a_faulted_sharded_run_fails_classified_not_hung() {
    // The scale-out rendezvous drill: on a 16-guest-core sharded run,
    // trap one core mid-run on every sched x timing combination. The
    // other 15 cores are parked at (or heading for) the tick barrier —
    // the scheduler must tear the rendezvous down and surface the trap
    // as a classified failed row, never a hang. The wall-clock limit is
    // the tripwire: a hung barrier would exhaust it and flip the row's
    // kind to WallClockTimeout.
    let sc = scenario::find("net8020_sharded").expect("registered");
    let wl = sc.build_quick(&ScenarioParams::default());
    assert!(wl.cfg().n_cores >= 8, "the drill needs a scale-out shape");
    let spec = BatterySpec {
        seeds: vec![sc.battery_seeds[0]],
        faults: FaultPlan::none().with(3, 50_000, FaultKind::GuestTrap),
        supervise: SuperviseConfig {
            wall_limit: Some(Duration::from_secs(60)),
            retry: RetryPolicy::no_retry(),
            ..Default::default()
        },
        ..BatterySpec::quick(sc, 2)
    };
    let rows = BatteryRunner { host_threads: 2 }
        .run(&[spec])
        .expect("the runner survives faulty scale-out jobs");
    assert_eq!(rows.len(), 5, "every sched x timing combination got a row");
    for row in &rows {
        assert!(
            !row.verified,
            "{}: a trapped shard must not verify",
            row.key()
        );
        assert_eq!(
            row.error_kind,
            Some(RunErrorKind::GuestTrap),
            "{}: expected a classified guest trap, got {:?} ({:?})",
            row.key(),
            row.error_kind,
            row.error
        );
        assert_eq!(row.attempts, 1, "{}: traps reproduce — no retry", row.key());
    }
}

#[test]
fn a_quick_battery_under_injected_faults_completes_with_structured_rows() {
    // The acceptance drill: a multi-row battery where every job is
    // poisoned still completes end to end — rows for every combination,
    // structured kinds, no mutex poisoning, no process abort.
    for (kind, expected) in [
        (FaultKind::HostPanic, RunErrorKind::Panic),
        (FaultKind::GuestTrap, RunErrorKind::GuestTrap),
    ] {
        // Trigger well inside the run: the relaxed assembly retires just
        // under 10k instructions on core 0 for this shape.
        let rows = battery_rows(
            FaultPlan::none().with(0, 5_000, kind),
            SuperviseConfig {
                retry: RetryPolicy::no_retry(),
                ..Default::default()
            },
        );
        assert_eq!(rows.len(), 5);
        assert!(
            rows.iter().all(|r| r.error_kind == Some(expected)),
            "{kind:?}: every row carries the structured kind"
        );
    }
}

//! Property suite for the MMIO stimulus path: the injected schedule is a
//! *data* input, so for randomly generated stimulus plans — bursty,
//! duplicated, unordered — every scheduling mode must land on the same
//! physics. Exact, `Relaxed` and `RelaxedParallel` at host_threads
//! {1, 2, 4} must produce bit-identical raster hashes (and, with STDP
//! switched on, bit-identical final weight hashes): the stimulus drain
//! runs inside the tick's phase A, so neither quantum boundaries nor
//! host-thread commit order may leak into when a stimulus lands.

use izhi_programs::net8020::Net8020Workload;
use izhi_programs::scenario::Workload;
use izhi_sim::{SchedMode, StimPlan, TimingModel};
use izhi_snn::noise::XorShift32;

/// A deterministic but adversarial plan: random ticks in random order,
/// random target neurons, and a 25 % chance of duplicating an event
/// (double stimulus on one neuron-tick must also replay identically).
fn random_plan(seed: u32, ticks: u32, n: u32, chunk: u32, events: u32) -> StimPlan {
    let mut rng = XorShift32::new(seed);
    let mut plan = StimPlan::none();
    for _ in 0..events {
        let t = rng.next_u32() % ticks;
        let neuron = rng.next_u32() % n;
        plan = plan.with(t, neuron / chunk, neuron);
        if rng.next_u32().is_multiple_of(4) {
            plan = plan.with(t, neuron / chunk, neuron);
        }
    }
    plan
}

/// The mode set the property quantifies over: exact, sequential relaxed
/// and host-parallel relaxed at 1, 2 and 4 worker threads (Unit timing;
/// the clock cannot move a stimulus, only the schedule could).
fn modes() -> Vec<(String, SchedMode)> {
    let mut set = vec![
        ("exact".to_string(), SchedMode::Exact),
        ("relaxed".to_string(), SchedMode::relaxed()),
    ];
    for host_threads in [1u32, 2, 4] {
        set.push((
            format!("relaxed-par ht={host_threads}"),
            SchedMode::RelaxedParallel {
                quantum: SchedMode::DEFAULT_QUANTUM,
                host_threads,
                timing: TimingModel::Unit,
            },
        ));
    }
    set
}

/// Run `wl` under `sched` and return (raster hash, weight hash).
fn run_under(wl: &Net8020Workload, sched: SchedMode) -> (u64, Option<u64>) {
    let mut wl = wl.clone();
    wl.cfg.system.sched = sched;
    let res = wl.run().expect("stimulated run");
    (res.raster_hash(), res.weight_hash)
}

#[test]
fn random_stimulus_plans_are_schedule_invariant() {
    for trial in 0u32..4 {
        // A fresh noiseless streaming network per trial, its generated
        // plan replaced by an adversarial random one.
        let mut wl = Net8020Workload::stream(64, 16, 0.1, 120, 4, 40 + trial, 2);
        let chunk = wl.cfg.chunk() as u32;
        wl.cfg.system.stim = random_plan(0x9E37 ^ trial, 120, 80, chunk, 300);
        let reference = run_under(&wl, SchedMode::Exact);
        assert!(reference.1.is_none(), "not a plastic run");
        for (label, sched) in modes() {
            let got = run_under(&wl, sched);
            assert_eq!(
                got.0, reference.0,
                "trial {trial} / {label}: scheduling moved the stimulus"
            );
        }
    }
}

#[test]
fn random_stimulus_under_stdp_is_schedule_invariant() {
    // The hardest combination: injected stimulus *and* plastic weights.
    // A schedule-dependent stimulus would cascade into different spike
    // timing and therefore different weight evolution — so the final
    // weight hash is the most sensitive invariant available.
    for trial in 0u32..2 {
        let mut wl = Net8020Workload::stdp(64, 16, 0.2, 120, 2, 50 + trial);
        wl.cfg.stim = true;
        let chunk = wl.cfg.chunk() as u32;
        wl.cfg.system.stim = random_plan(0x51D1 ^ trial, 120, 80, chunk, 200);
        let reference = run_under(&wl, SchedMode::Exact);
        let initial = wl.initial_weight_hash.expect("plastic build");
        assert_ne!(
            reference.1,
            Some(initial),
            "trial {trial}: the stimulated plastic run must evolve weights"
        );
        for (label, sched) in modes() {
            let got = run_under(&wl, sched);
            assert_eq!(
                got.0, reference.0,
                "trial {trial} / {label}: scheduling moved the stimulus"
            );
            assert_eq!(
                got.1, reference.1,
                "trial {trial} / {label}: scheduling changed the weight evolution"
            );
        }
    }
}

//! Simulator microbenchmarks: raw interpreter throughput (simulated
//! instructions per second) on representative instruction mixes.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use izhi_isa::Assembler;
use izhi_sim::{System, SystemConfig};

/// Build a system running `body` in a counted loop of `iters` iterations.
fn run_loop(body: &str, iters: u32) -> u64 {
    let src = format!(
        "
        _start: li   s0, {iters}
        loop:   {body}
                addi s0, s0, -1
                bnez s0, loop
                ebreak
        "
    );
    let prog = Assembler::new().assemble(&src).unwrap();
    let mut sys = System::new(SystemConfig::default());
    sys.load_program(&prog);
    let exit = sys.run(u64::MAX).unwrap();
    exit.instret
}

fn bench_interpreter(c: &mut Criterion) {
    let mixes = [
        ("alu", "add t0, t1, t2\n xor t3, t0, t1\n slli t4, t3, 3\n"),
        ("mul_div", "mul t0, t1, t2\n div t3, t0, t2\n"),
        (
            "scratch_mem",
            "li t5, 0x10000000\n sw t0, (t5)\n lw t1, (t5)\n lw t2, 4(t5)\n",
        ),
        (
            "nm_kernel",
            "li a6, 0x01990029\n li a7, 0x4000BF00\n nmldl x0, a6, a7\n \
             li t5, 0x10000000\n lw a6, (t5)\n add a2, x0, t5\n li a7, 0xA0000\n \
             nmpn a2, a6, a7\n nmdec a3, a7, a2\n",
        ),
    ];
    let mut group = c.benchmark_group("interpreter");
    for (name, body) in mixes {
        // Measure simulated instructions per host second.
        let instret = run_loop(body, 1000);
        group.throughput(Throughput::Elements(instret));
        group.bench_function(format!("mix_{name}"), |b| {
            b.iter(|| black_box(run_loop(black_box(body), 1000)))
        });
    }
    group.finish();
}

fn bench_multicore(c: &mut Criterion) {
    let src = "
        _start: li   t0, 0xF0000004
                lw   t1, (t0)          # core id
                li   s0, 2000
        loop:   addi s0, s0, -1
                bnez s0, loop
                li   t4, 0xF0000010    # barrier
                lw   t5, (t4)
                sw   x0, (t4)
        spin:   lw   t6, (t4)
                beq  t6, t5, spin
                ebreak
    ";
    let prog = Assembler::new().assemble(src).unwrap();
    let mut group = c.benchmark_group("multicore");
    for cores in [1u32, 2, 4, 8] {
        group.bench_function(format!("{cores}_cores_barrier"), |b| {
            b.iter(|| {
                let mut sys = System::new(SystemConfig::with_cores(cores));
                sys.load_program(&prog);
                black_box(sys.run(10_000_000).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interpreter, bench_multicore);
criterion_main!(benches);

//! Microbenchmarks of the functional units: NPU single-step update, DCU
//! decay, and the double-precision reference for comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use izhi_core::dcu::Dcu;
use izhi_core::nmregs::{HStep, NmRegs};
use izhi_core::npu::NpUnit;
use izhi_core::params::IzhParams;
use izhi_core::reference::ReferenceNeuron;
use izhi_fixed::qformat::pack_vu;
use izhi_fixed::{Q15_16, Q7_8};

fn bench_npu(c: &mut Criterion) {
    let mut regs = NmRegs::default();
    regs.load_params(&IzhParams::regular_spiking());
    regs.set_h(HStep::Half);
    let mut group = c.benchmark_group("npu");
    group.throughput(Throughput::Elements(1));
    group.bench_function("update_vu_word", |b| {
        let mut vu = pack_vu(Q7_8::from_f64(-65.0), Q7_8::from_f64(-13.0));
        let i = Q15_16::from_f64(10.0);
        b.iter(|| {
            let out = NpUnit::update(&regs, black_box(vu), black_box(i));
            vu = out.vu;
            black_box(out.spike)
        })
    });
    group.bench_function("update_parts", |b| {
        let mut v = Q7_8::from_f64(-65.0);
        let mut u = Q7_8::from_f64(-13.0);
        let i = Q15_16::from_f64(10.0);
        b.iter(|| {
            let (v2, u2, s) = NpUnit::update_parts(&regs, black_box(v), black_box(u), i);
            v = v2;
            u = u2;
            black_box(s)
        })
    });
    group.bench_function("f64_reference_step", |b| {
        let mut n = ReferenceNeuron::new(IzhParams::regular_spiking());
        b.iter(|| black_box(n.step(0.5, black_box(10.0))))
    });
    group.finish();
}

fn bench_dcu(c: &mut Criterion) {
    let mut regs = NmRegs::default();
    regs.set_h(HStep::Half);
    let mut group = c.benchmark_group("dcu");
    group.throughput(Throughput::Elements(1));
    for tau in [2u32, 7] {
        group.bench_function(format!("decay_tau{tau}"), |b| {
            let mut i = Q15_16::from_f64(1000.0);
            b.iter(|| {
                i = Dcu::decay(&regs, black_box(i), tau);
                if i.raw() == 0 {
                    i = Q15_16::from_f64(1000.0);
                }
                black_box(i)
            })
        });
    }
    group.bench_function("approx_div7", |b| {
        b.iter(|| black_box(Dcu::approx_div(black_box(Q15_16::from_f64(123.456)), 7)))
    });
    group.finish();
}

criterion_group!(benches, bench_npu, bench_dcu);
criterion_main!(benches);

//! Workload-level benches: one per table/figure of the evaluation, at
//! reduced scale so `cargo bench` completes in minutes. The `tables`
//! binary regenerates the full-scale numbers.
//!
//! * `table5_8020_{1,2}core` — the 80-20 network (Table V)
//! * `table6_sudoku_{1,2}core` — the Sudoku WTA workload (Table VI)
//! * `ablation_variants` — NPU vs base-fixed vs soft-float (§VI-C)
//! * `fig3_host_simulators` — the double/fixed reference arms (Fig. 3)
//! * `tables_347` — the analytical hardware models (Tables III/IV/VII)

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use izhi_hw::asic::{AsicLibrary, AsicReport};
use izhi_hw::fpga::{FpgaReport, FpgaTarget};
use izhi_programs::engine::Variant;
use izhi_programs::net8020::Net8020Workload;
use izhi_programs::scenario::{self, ScenarioParams, Workload as _};
use izhi_snn::gen8020::Net8020;
use izhi_snn::simulate::{F64Simulator, FixedSimulator};

fn bench_8020(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_8020");
    group.sample_size(10);
    let sc = scenario::find("net8020").expect("registered");
    for cores in [1u32, 2] {
        group.bench_function(format!("{cores}core_100n_100ms"), |b| {
            b.iter(|| {
                let wl = sc.build(
                    &ScenarioParams::default()
                        .with_n(100)
                        .with_ticks(100)
                        .with_cores(cores)
                        .with_seed(5),
                );
                black_box(wl.run().expect("run"))
            })
        });
    }
    group.finish();
}

fn bench_sudoku(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_sudoku");
    group.sample_size(10);
    let sc = scenario::find("sudoku").expect("registered");
    for cores in [1u32, 2] {
        group.bench_function(format!("{cores}core_100ms"), |b| {
            b.iter(|| {
                let wl = sc.build(
                    &ScenarioParams::default()
                        .with_ticks(100)
                        .with_cores(cores)
                        .with_seed(42),
                );
                black_box(wl.run().expect("run"))
            })
        });
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_variants");
    group.sample_size(10);
    for variant in [Variant::Npu, Variant::BaseFixed, Variant::SoftFloat] {
        group.bench_function(format!("{variant:?}_50n_50ms"), |b| {
            b.iter(|| {
                let wl = Net8020Workload::sized(40, 10, 50, 1, 5, variant);
                black_box(wl.run().expect("run"))
            })
        });
    }
    group.finish();
}

fn bench_host_sims(c: &mut Criterion) {
    let net = Net8020::with_size(80, 20, 3);
    let mut group = c.benchmark_group("fig3_host_simulators");
    group.sample_size(10);
    group.bench_function("f64_100n_100ms", |b| {
        b.iter(|| {
            let mut sim = F64Simulator::new(&net.network, 2, 1);
            for i in 0..net.len() {
                sim.noise_std[i] = if net.is_excitatory(i) { 5.0 } else { 2.0 };
            }
            black_box(sim.run(100))
        })
    });
    group.bench_function("fixed_100n_100ms", |b| {
        b.iter(|| {
            let mut sim = FixedSimulator::new(&net.network, 2, 1);
            for i in 0..net.len() {
                sim.noise_std[i] = if net.is_excitatory(i) { 5.0 } else { 2.0 };
            }
            black_box(sim.run(100))
        })
    });
    group.finish();
}

fn bench_hw_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables_347_hw_models");
    group.bench_function("table3_max10", |b| {
        b.iter(|| black_box(FpgaReport::for_cores(FpgaTarget::Max10, 2)))
    });
    group.bench_function("table4_agilex_sweep", |b| {
        b.iter(|| {
            for n in [16, 32, 64] {
                black_box(FpgaReport::for_cores(FpgaTarget::Agilex7, n));
            }
        })
    });
    group.bench_function("table7_asic_both_libs", |b| {
        b.iter(|| {
            black_box(AsicReport::generate(AsicLibrary::FreePdk45));
            black_box(AsicReport::generate(AsicLibrary::Asap7))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_8020,
    bench_sudoku,
    bench_variants,
    bench_host_sims,
    bench_hw_models
);
criterion_main!(benches);

//! The scenario battery runner: shard a battery of registered scenarios
//! (seeds × scheduling modes) across host threads and collect one
//! [`BatteryRow`] per run.
//!
//! The runner is the scale path the ROADMAP asks for — Table VI already
//! fans puzzles out via `std::thread::scope`; this generalises that to
//! *any* registered scenario. Every simulated system is fully
//! independent, so the work list `(scenario, seed, sched)` is claimed
//! from an atomic cursor by `host_threads` scoped workers.
//!
//! Two checks ride on the rows:
//!
//! * the scenario's own [`izhi_programs::scenario::Workload::verify`]
//!   hook (raster sanity, per-population activity, the solved-grid
//!   check), recorded per row;
//! * the **bit-identity battery check** ([`check_rows`]): all rows of one
//!   `(spec, scenario, seed)` cell must agree on the order-independent raster
//!   hash across `Exact`/`Relaxed`/`RelaxedParallel` — the cross-mode
//!   correctness contract the sequential test suites pin, enforced here
//!   for every battery cell.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use izhi_programs::scenario::{self, ScenarioParams, Workload};
use izhi_programs::template;
use izhi_sim::{FaultPlan, SchedMode, TimingModel};

use crate::supervise::{self, panic_message, RunErrorKind, SuperviseConfig};

/// A scheduling mode under a battery label.
#[derive(Debug, Clone, Copy)]
pub struct SchedSpec {
    /// Row label ("exact", "relaxed", "relaxed-par", "relaxed-est",
    /// "relaxed-par-est").
    pub label: &'static str,
    /// The mode a row's workload runs under.
    pub mode: SchedMode,
}

impl SchedSpec {
    /// The stable battery label of a scheduling mode: the scheduler name
    /// with an `-est` suffix for Estimated timing. Unit-timing labels are
    /// the historical ones, so committed baseline keys stay valid.
    pub fn label_of(mode: SchedMode) -> &'static str {
        match mode {
            SchedMode::Exact => "exact",
            SchedMode::Relaxed {
                timing: TimingModel::Unit,
                ..
            } => "relaxed",
            SchedMode::Relaxed {
                timing: TimingModel::Estimated,
                ..
            } => "relaxed-est",
            SchedMode::RelaxedParallel {
                timing: TimingModel::Unit,
                ..
            } => "relaxed-par",
            SchedMode::RelaxedParallel {
                timing: TimingModel::Estimated,
                ..
            } => "relaxed-par-est",
        }
    }

    /// A spec for `mode` under its canonical label.
    pub fn of(mode: SchedMode) -> SchedSpec {
        SchedSpec {
            label: Self::label_of(mode),
            mode,
        }
    }

    /// The default battery mode set — every sched × timing combination:
    /// exact (cycle-accurate clock), relaxed and host-parallel relaxed at
    /// the default quantum under Unit timing, and the same two relaxed
    /// schedulers under Estimated timing. `host_threads` is forced on the
    /// parallel rows so they stay interpretable on single-CPU CI runners.
    pub fn default_set(host_threads: u32) -> Vec<SchedSpec> {
        let mut set = vec![SchedSpec::of(SchedMode::Exact)];
        for timing in [TimingModel::Unit, TimingModel::Estimated] {
            set.push(SchedSpec::of(SchedMode::Relaxed {
                quantum: SchedMode::DEFAULT_QUANTUM,
                timing,
            }));
            set.push(SchedSpec::of(SchedMode::RelaxedParallel {
                quantum: SchedMode::DEFAULT_QUANTUM,
                host_threads,
                timing,
            }));
        }
        set
    }

    /// The subset of [`SchedSpec::default_set`] whose rows report the
    /// given clock ("exact", "unit" or "estimated") — the CLI's
    /// `--timing` battery filter.
    pub fn timing_set(host_threads: u32, timing_label: &str) -> Vec<SchedSpec> {
        Self::default_set(host_threads)
            .into_iter()
            .filter(|s| s.mode.timing_label() == timing_label)
            .collect()
    }
}

/// One battery cell: a scenario at fixed parameters, fanned over seeds
/// and scheduling modes.
#[derive(Debug, Clone)]
pub struct BatterySpec {
    /// Registered scenario name.
    pub scenario: &'static str,
    /// Base parameters (the seed field is overridden per row).
    pub params: ScenarioParams,
    /// Seeds to fan out.
    pub seeds: Vec<u32>,
    /// Scheduling modes to fan out.
    pub scheds: Vec<SchedSpec>,
    /// Use the scenario's CI-sized quick parameters as the base layer.
    pub quick: bool,
    /// Fault-injection schedule installed into every row's system
    /// (empty — the default — injects nothing and leaves rows
    /// bit-identical to an unplanned run).
    pub faults: FaultPlan,
    /// Supervision knobs for every row: wall-clock limit, guest-cycle
    /// budget override and retry policy.
    pub supervise: SuperviseConfig,
}

impl BatterySpec {
    /// A quick-scale spec over the scenario's default battery seeds and
    /// the default mode set.
    pub fn quick(scenario: &'static scenario::Scenario, host_threads: u32) -> Self {
        BatterySpec {
            scenario: scenario.name,
            params: ScenarioParams::default(),
            seeds: scenario.battery_seeds.to_vec(),
            scheds: SchedSpec::default_set(host_threads),
            quick: true,
            faults: FaultPlan::default(),
            supervise: SuperviseConfig::default(),
        }
    }
}

/// One measured battery run.
#[derive(Debug, Clone)]
pub struct BatteryRow {
    /// Index of the [`BatterySpec`] that produced this row. Identity
    /// cells group per spec: two specs may legitimately run the same
    /// scenario+seed at different parameters (e.g. a scale comparison)
    /// and must not be hash-compared against each other.
    pub spec: usize,
    /// Scenario name.
    pub scenario: String,
    /// Seed of this row.
    pub seed: u32,
    /// Scheduling-mode label.
    pub sched: &'static str,
    /// The clock the row's `sim_cycles` are measured on: "exact" (the
    /// cycle-accurate model), "unit" (1 cycle per instruction) or
    /// "estimated" (static per-op-class costs). Only estimated rows are
    /// comparable to exact rows on simulated time.
    pub timing: &'static str,
    /// Relaxed quantum (0 for exact rows).
    pub quantum: u64,
    /// Forced host threads (1 for sequential schedulers).
    pub host_threads: u32,
    /// Host wall time of the run.
    pub wall_s: f64,
    /// Simulated cycles (scheduling-mode clock).
    pub sim_cycles: u64,
    /// Retired instructions.
    pub sim_instret: u64,
    /// Total spikes.
    pub spikes: u64,
    /// Order-independent raster hash (bit-identity check across modes).
    pub raster_hash: u64,
    /// Order-independent hash of the final synaptic weight table —
    /// `Some` only for plastic (STDP) scenarios, where it joins the
    /// cross-mode bit-identity check: scheduling must not change how the
    /// weights evolved.
    pub weight_hash: Option<u64>,
    /// Whether the run completed and passed the scenario's
    /// self-verification hook.
    pub verified: bool,
    /// Failure message, if any.
    pub error: Option<String>,
    /// Structured failure class of an unverified row ([`RunErrorKind`]),
    /// replacing stringly error matching.
    pub error_kind: Option<RunErrorKind>,
    /// Supervised attempts the row took (> 1 only after retried
    /// transients).
    pub attempts: u32,
}

impl BatteryRow {
    /// Stable gate key of this row (bracket-free so the hand-rolled
    /// baseline parser can terminate the battery array on `]`).
    pub fn key(&self) -> String {
        format!("{}:{}:{}", self.scenario, self.seed, self.sched)
    }
}

/// Shards battery runs across host worker threads.
#[derive(Debug, Clone, Copy)]
pub struct BatteryRunner {
    /// Worker thread count (each worker runs whole simulations).
    pub host_threads: usize,
}

impl BatteryRunner {
    /// Resolve the worker count: `IZHI_HOST_THREADS` if set, else the
    /// host's available parallelism.
    pub fn auto() -> Self {
        let host_threads = std::env::var("IZHI_HOST_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        BatteryRunner { host_threads }
    }

    /// Run every `(scenario, seed, sched)` row of `specs`, sharded across
    /// [`BatteryRunner::host_threads`] scoped workers. Row order is
    /// deterministic (the work list's order) regardless of thread count.
    ///
    /// Every row runs under supervision ([`crate::supervise`]): a row
    /// that panics, traps, stalls past its wall-clock deadline or fails
    /// verification becomes a *failed row* (`verified = false` with a
    /// structured [`RunErrorKind`]) while the remaining jobs keep
    /// sharding — one bad job can never abort or deadlock the battery.
    /// Only unknown scenario names error the whole call.
    pub fn run(&self, specs: &[BatterySpec]) -> Result<Vec<BatteryRow>, String> {
        let mut jobs = Vec::new();
        for (spec_idx, spec) in specs.iter().enumerate() {
            scenario::find(spec.scenario)
                .ok_or_else(|| format!("unknown scenario `{}`", spec.scenario))?;
            for &seed in &spec.seeds {
                for &sched in &spec.scheds {
                    jobs.push(Job {
                        spec_idx,
                        spec,
                        seed,
                        sched,
                    });
                }
            }
        }
        let cursor = AtomicUsize::new(0);
        // One mutex *per slot*: a commit locks only its own row, so no
        // shared lock spans a run and a worker dying on one job cannot
        // poison any other job's slot (the historical single-Vec mutex
        // aborted the whole battery on the first panicking worker).
        let slots: Vec<Mutex<Option<BatteryRow>>> =
            (0..jobs.len()).map(|_| Mutex::new(None)).collect();
        let workers = self.host_threads.clamp(1, jobs.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    // `run_one` supervises the simulation itself; this
                    // outer guard catches panics in scenario *build* and
                    // row assembly, so the worker's claim loop (and the
                    // scope join) always survives.
                    let row =
                        catch_unwind(AssertUnwindSafe(|| run_one(job))).unwrap_or_else(|payload| {
                            failed_row(job, RunErrorKind::Panic, panic_message(&*payload), 1, 0.0)
                        });
                    if let Ok(mut slot) = slots[i].lock() {
                        *slot = Some(row);
                    }
                });
            }
        });
        Ok(slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .unwrap_or_else(|| {
                        // Unreachable with the guards above; synthesise a
                        // failed row rather than abort the battery.
                        failed_row(
                            &jobs[i],
                            RunErrorKind::Panic,
                            "worker died before committing a row".to_string(),
                            1,
                            0.0,
                        )
                    })
            })
            .collect())
    }
}

/// One work item of a battery run.
struct Job<'a> {
    spec_idx: usize,
    spec: &'a BatterySpec,
    seed: u32,
    sched: SchedSpec,
}

impl Job<'_> {
    /// `(quantum, host_threads)` the row reports for its mode.
    fn mode_fields(&self) -> (u64, u32) {
        match self.sched.mode {
            SchedMode::Exact => (0, 1),
            SchedMode::Relaxed { quantum, .. } => (quantum, 1),
            SchedMode::RelaxedParallel {
                quantum,
                host_threads,
                ..
            } => (quantum, host_threads),
        }
    }
}

/// A row for a job whose run failed: zeroed measurements, the structured
/// failure class, and a message prefixed with the row's identity.
fn failed_row(
    job: &Job<'_>,
    kind: RunErrorKind,
    message: String,
    attempts: u32,
    wall_s: f64,
) -> BatteryRow {
    let (quantum, host_threads) = job.mode_fields();
    BatteryRow {
        spec: job.spec_idx,
        scenario: job.spec.scenario.to_string(),
        seed: job.seed,
        sched: job.sched.label,
        timing: job.sched.mode.timing_label(),
        quantum,
        host_threads,
        wall_s,
        sim_cycles: 0,
        sim_instret: 0,
        spikes: 0,
        raster_hash: 0,
        weight_hash: None,
        verified: false,
        error: Some(message),
        error_kind: Some(kind),
        attempts,
    }
}

/// Build and run one battery row under supervision.
fn run_one(job: &Job<'_>) -> BatteryRow {
    let spec = job.spec;
    let sc = scenario::find(spec.scenario).expect("checked by the runner");
    let params = ScenarioParams {
        seed: Some(job.seed),
        ..spec.params
    };
    // Instantiate from the shared template cache when it is enabled:
    // every row of a (scenario, shape) fan-out then reuses one build
    // (assembly, memory snapshot, predecode) and only re-patches the
    // seed-dependent tables. `IZHI_TEMPLATE_CACHE=0` forces the historic
    // cold build per row.
    let mut wl: Box<dyn Workload> = if template::cache_enabled() {
        let tpl = if spec.quick {
            sc.template_quick(&params)
        } else {
            sc.template(&params)
        };
        Box::new(tpl.instantiate(job.seed, job.sched.mode))
    } else if spec.quick {
        sc.build_quick(&params)
    } else {
        sc.build(&params)
    };
    wl.cfg_mut().system.sched = job.sched.mode;
    wl.cfg_mut().system.faults = spec.faults.clone();
    let (quantum, host_threads) = job.mode_fields();
    let start = Instant::now();
    let outcome = supervise::run_supervised(wl.as_mut(), &spec.supervise);
    let wall_s = start.elapsed().as_secs_f64();
    match outcome {
        Ok(sup) => BatteryRow {
            spec: job.spec_idx,
            scenario: spec.scenario.to_string(),
            seed: job.seed,
            sched: job.sched.label,
            timing: job.sched.mode.timing_label(),
            quantum,
            host_threads,
            wall_s,
            sim_cycles: sup.result.cycles,
            sim_instret: sup.result.instret,
            spikes: sup.result.raster.spikes.len() as u64,
            raster_hash: sup.result.raster_hash(),
            weight_hash: sup.result.weight_hash,
            verified: true,
            error: None,
            error_kind: None,
            attempts: sup.attempts,
        },
        Err(e) => failed_row(
            job,
            e.kind,
            format!(
                "{}[seed={}]/{}: {}",
                spec.scenario, job.seed, job.sched.label, e.message
            ),
            e.attempts,
            wall_s,
        ),
    }
}

/// The battery acceptance check: every row verified, and all rows of one
/// `(spec, scenario, seed)` cell bit-identical on the raster hash across
/// scheduling modes (per spec: different specs may run the same
/// scenario+seed at different parameters).
pub fn check_rows(rows: &[BatteryRow]) -> Result<(), String> {
    for row in rows {
        if !row.verified {
            let kind = row
                .error_kind
                .map_or("verification failed", RunErrorKind::label);
            return Err(format!(
                "{}: {kind}: {}",
                row.key(),
                row.error.as_deref().unwrap_or("unknown")
            ));
        }
    }
    for row in rows {
        if let Some(reference) = rows
            .iter()
            .find(|r| r.spec == row.spec && r.scenario == row.scenario && r.seed == row.seed)
        {
            if reference.raster_hash != row.raster_hash {
                return Err(format!(
                    "{}: raster hash {:#018x} != {}'s {:#018x} — scheduling changed the physics",
                    row.key(),
                    row.raster_hash,
                    reference.key(),
                    reference.raster_hash,
                ));
            }
            if reference.weight_hash != row.weight_hash {
                return Err(format!(
                    "{}: weight hash {:?} != {}'s {:?} — scheduling changed the plasticity",
                    row.key(),
                    row.weight_hash,
                    reference.key(),
                    reference.weight_hash,
                ));
            }
        }
    }
    Ok(())
}

/// Render rows as the `"battery"` JSON array of a BENCH file. Each entry
/// carries a stable `key` the CI gate matches committed baselines against.
pub fn rows_json(rows: &[BatteryRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"key\": \"{}\", \"scenario\": \"{}\", \"seed\": {}, \"sched\": \"{}\", \
             \"timing\": \"{}\", \"quantum\": {}, \"host_threads\": {}, \"wall_s\": {:.6}, \
             \"sim_cycles\": {}, \"sim_instret\": {}, \"spikes\": {}, \
             \"raster_hash\": \"{:#018x}\", \"verified\": {}",
            r.key(),
            r.scenario,
            r.seed,
            r.sched,
            r.timing,
            r.quantum,
            r.host_threads,
            r.wall_s,
            r.sim_cycles,
            r.sim_instret,
            r.spikes,
            r.raster_hash,
            r.verified,
        );
        if let Some(w) = r.weight_hash {
            let _ = write!(out, ", \"weight_hash\": \"{w:#018x}\"");
        }
        if let Some(kind) = r.error_kind {
            let _ = write!(out, ", \"error_kind\": \"{}\"", kind.label());
        }
        out.push('}');
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    out
}

/// Render a human-readable battery table.
pub fn rows_table(rows: &[BatteryRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>15} {:>9} {:>3} {:>9} {:>13} {:>13} {:>8} {:>18} {:>18} {:>5}",
        "battery row",
        "sched",
        "timing",
        "ht",
        "wall [s]",
        "sim cycles",
        "sim instret",
        "spikes",
        "raster hash",
        "weight hash",
        "ok"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<34} {:>15} {:>9} {:>3} {:>9.3} {:>13} {:>13} {:>8} {:#018x} {:>18} {:>5}",
            format!("{}[seed={}]", r.scenario, r.seed),
            r.sched,
            r.timing,
            r.host_threads,
            r.wall_s,
            r.sim_cycles,
            r.sim_instret,
            r.spikes,
            r.raster_hash,
            r.weight_hash
                .map_or_else(|| "-".to_string(), |w| format!("{w:#018x}")),
            if r.verified { "yes" } else { "NO" },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(
        scenario: &str,
        seed: u32,
        sched: &'static str,
        hash: u64,
        verified: bool,
    ) -> BatteryRow {
        BatteryRow {
            spec: 0,
            scenario: scenario.into(),
            seed,
            sched,
            timing: "unit",
            quantum: 0,
            host_threads: 1,
            wall_s: 0.1,
            sim_cycles: 10,
            sim_instret: 10,
            spikes: 3,
            raster_hash: hash,
            weight_hash: None,
            verified,
            error: (!verified).then(|| "boom".into()),
            error_kind: None,
            attempts: 1,
        }
    }

    #[test]
    fn check_rows_accepts_identical_cells() {
        let rows = vec![
            row("a", 1, "exact", 0xAA, true),
            row("a", 1, "relaxed", 0xAA, true),
            row("a", 2, "exact", 0xBB, true),
        ];
        assert!(check_rows(&rows).is_ok());
    }

    #[test]
    fn check_rows_rejects_cross_mode_divergence() {
        let rows = vec![
            row("a", 1, "exact", 0xAA, true),
            row("a", 1, "relaxed", 0xAB, true),
        ];
        let err = check_rows(&rows).unwrap_err();
        assert!(err.contains("scheduling changed the physics"), "{err}");
    }

    #[test]
    fn check_rows_rejects_cross_mode_weight_divergence() {
        let mut a = row("stdp", 1, "exact", 0xAA, true);
        let mut b = row("stdp", 1, "relaxed", 0xAA, true);
        a.weight_hash = Some(0x11);
        b.weight_hash = Some(0x12);
        let err = check_rows(&[a, b]).unwrap_err();
        assert!(err.contains("scheduling changed the plasticity"), "{err}");
    }

    #[test]
    fn json_rows_carry_the_weight_hash_when_present() {
        let mut r = row("net8020_stdp", 21, "exact", 0x1234, true);
        r.weight_hash = Some(0xBEEF);
        let json = rows_json(&[r]);
        assert!(
            json.contains("\"weight_hash\": \"0x000000000000beef\""),
            "{json}"
        );
        let plain = rows_json(&[row("net8020", 5, "exact", 0x1, true)]);
        assert!(!plain.contains("weight_hash"), "non-plastic rows omit it");
    }

    #[test]
    fn check_rows_compares_cells_per_spec_only() {
        // Two specs running the same scenario+seed at different
        // parameters legitimately differ in raster hash.
        let mut a = row("a", 1, "exact", 0xAA, true);
        let mut b = row("a", 1, "exact", 0xBB, true);
        a.spec = 0;
        b.spec = 1;
        assert!(check_rows(&[a, b]).is_ok());
    }

    #[test]
    fn check_rows_rejects_unverified() {
        let rows = vec![row("a", 1, "exact", 0xAA, false)];
        let err = check_rows(&rows).unwrap_err();
        assert!(err.contains("verification failed"), "{err}");
    }

    #[test]
    fn json_rows_carry_stable_keys_and_timing() {
        let rows = vec![row("net8020", 5, "relaxed-par", 0x1234, true)];
        let json = rows_json(&rows);
        assert!(json.contains("\"key\": \"net8020:5:relaxed-par\""));
        assert!(json.contains("\"timing\": \"unit\""));
        assert!(json.contains("\"verified\": true"));
    }

    #[test]
    fn default_set_covers_every_sched_timing_combination() {
        let set = SchedSpec::default_set(2);
        let labels: Vec<_> = set.iter().map(|s| s.label).collect();
        // Unit-timing labels keep their historical names so committed
        // baseline keys stay valid; estimated rows get the -est suffix.
        assert_eq!(
            labels,
            [
                "exact",
                "relaxed",
                "relaxed-par",
                "relaxed-est",
                "relaxed-par-est"
            ]
        );
        for spec in &set {
            assert_eq!(spec.label, SchedSpec::label_of(spec.mode));
        }
    }

    #[test]
    fn timing_set_filters_by_clock() {
        let labels = |t: &str| -> Vec<&'static str> {
            SchedSpec::timing_set(2, t)
                .iter()
                .map(|s| s.label)
                .collect()
        };
        assert_eq!(labels("exact"), ["exact"]);
        assert_eq!(labels("unit"), ["relaxed", "relaxed-par"]);
        assert_eq!(labels("estimated"), ["relaxed-est", "relaxed-par-est"]);
        assert!(labels("bogus").is_empty());
    }

    #[test]
    fn runner_rejects_unknown_scenarios() {
        let spec = BatterySpec {
            scenario: "no_such_scenario",
            params: ScenarioParams::default(),
            seeds: vec![1],
            scheds: SchedSpec::default_set(2),
            quick: true,
            faults: FaultPlan::default(),
            supervise: SuperviseConfig::default(),
        };
        let err = BatteryRunner { host_threads: 1 }.run(&[spec]).unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
    }
}

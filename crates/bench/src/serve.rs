//! The scenario service: a long-running batch server over the scenario
//! registry (`izhirisc serve`).
//!
//! The ROADMAP's north star is serving heavy traffic, so the service is
//! built around *graceful overload behaviour* rather than raw features:
//!
//! * **Bounded queue + explicit backpressure.** Submissions beyond
//!   [`ServeConfig::queue_cap`] are rejected with `429` and a
//!   `retry_after_ms` hint instead of queueing unboundedly — the client
//!   is told to come back, the server never falls over.
//! * **Supervised workers.** Every job runs through
//!   [`crate::supervise::run_supervised`]: panics, guest traps, cycle
//!   budgets and wall-clock stalls become structured per-job failures
//!   ([`RunErrorKind`]) while the worker (and every other job) survives.
//! * **Graceful shutdown.** `POST /shutdown` stops admissions, lets the
//!   workers drain queued and in-flight jobs, and keeps status/health
//!   queries answered throughout the drain.
//!
//! The whole stack is `std`-only: HTTP/1.1 on [`std::net::TcpListener`],
//! a hand-rolled flat-JSON reader for the tiny job documents, and a
//! `Mutex<VecDeque> + Condvar` queue. The workspace is offline, so no
//! dependency was an option — and none is needed at this size.
//!
//! ## Endpoints
//!
//! | Method & path | Purpose |
//! |---|---|
//! | `GET /health` | queue/worker counters; always answered, even while draining |
//! | `POST /jobs` | submit a job (flat JSON); `202` + id, or `429` when full |
//! | `GET /jobs/<id>` | status/result of one job |
//! | `POST /shutdown` | stop admissions, drain, exit |
//!
//! A job document is a flat JSON object:
//! `{"scenario": "net8020", "seed": 5, "sched": "relaxed", "ticks": 20}`
//! with optional `n`, `n_cores`, `quick` (default `true`) and fault-
//! injection knobs `fault` (`"panic" | "trap" | "stall" | "corrupt"`),
//! `fault_core`, `fault_at`, `fault_arg` for chaos drills.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use izhi_programs::scenario::{self, ScenarioParams, Workload};
use izhi_programs::template;
use izhi_sim::{FaultKind, FaultPlan, FaultSpec, SchedMode};

use crate::battery::SchedSpec;
use crate::supervise::{run_supervised, RunErrorKind, SuperviseConfig};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (tests).
    pub addr: String,
    /// Bounded queue capacity — the backpressure threshold.
    pub queue_cap: usize,
    /// Worker threads running supervised jobs.
    pub workers: usize,
    /// Supervision knobs applied to every job (wall limit, retry).
    pub supervise: SuperviseConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".to_string(),
            queue_cap: 16,
            workers: 2,
            supervise: SuperviseConfig {
                wall_limit: Some(Duration::from_secs(30)),
                ..Default::default()
            },
        }
    }
}

/// A validated job: everything a worker needs to build and run it.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Registered scenario name (validated at submit time).
    pub scenario: String,
    /// Parameter overrides (seed, n, ticks, n_cores).
    pub params: ScenarioParams,
    /// Scheduling mode (from its battery label).
    pub sched: SchedMode,
    /// The battery label the mode was requested under.
    pub sched_label: &'static str,
    /// Build at the scenario's quick (CI-sized) scale.
    pub quick: bool,
    /// Optional injected fault (chaos drills).
    pub fault: Option<FaultSpec>,
}

/// Where a job is in its life cycle.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running it.
    Running,
    /// Completed and verified.
    Done {
        /// Simulated cycles (the job's scheduling-mode clock).
        cycles: u64,
        /// Retired instructions.
        instret: u64,
        /// Total spikes.
        spikes: u64,
        /// Order-independent raster hash.
        raster_hash: u64,
        /// Host wall time of the run.
        wall_s: f64,
        /// Supervised attempts it took.
        attempts: u32,
        /// Whether the worker reused a cached run template for the
        /// build (false on a cache miss or with the cache disabled).
        template_hit: bool,
    },
    /// Failed with a structured error.
    Failed {
        /// Failure class.
        kind: RunErrorKind,
        /// Detail message.
        message: String,
        /// Attempts made.
        attempts: u32,
    },
}

/// Shared server state.
struct ServerState {
    cfg: ServeConfig,
    queue: Mutex<VecDeque<(u64, JobSpec)>>,
    not_empty: Condvar,
    jobs: Mutex<HashMap<u64, JobState>>,
    next_id: AtomicU64,
    /// Set by `POST /shutdown` (or [`ServerHandle::shutdown`]): no new
    /// admissions; workers exit once the queue is empty.
    draining: AtomicBool,
    /// Set once the workers have drained; the accept loop exits after
    /// its next wake-up.
    accept_done: AtomicBool,
    running: AtomicU64,
    done: AtomicU64,
    failed: AtomicU64,
}

/// Lock helper: a poisoned mutex yields its data anyway — the service
/// must keep answering even if some thread died mid-update.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ServerState {
    fn counters(&self) -> (usize, u64, u64, u64) {
        (
            lock(&self.queue).len(),
            self.running.load(Ordering::SeqCst),
            self.done.load(Ordering::SeqCst),
            self.failed.load(Ordering::SeqCst),
        )
    }
}

/// A started service: handles for address, shutdown and join.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
}

/// The scenario service.
pub struct Server;

impl Server {
    /// Bind, spawn the worker pool and the accept loop, return a handle.
    pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let state = Arc::new(ServerState {
            cfg,
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            accept_done: AtomicBool::new(false),
            running: AtomicU64::new(0),
            done: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        });
        let worker_threads = (0..workers)
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_state));
        Ok(ServerHandle {
            addr,
            state,
            accept_thread: Some(accept_thread),
            worker_threads,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request a drain exactly as `POST /shutdown` would.
    pub fn shutdown(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.not_empty.notify_all();
    }

    /// Wait for the service to finish: workers drain the queue (after a
    /// shutdown request), then the accept loop is released. Status and
    /// health queries are answered throughout the drain.
    pub fn join(mut self) {
        for w in self.worker_threads.drain(..) {
            let _ = w.join();
        }
        self.state.accept_done.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; a no-op connection releases
        // it to observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Convenience for tests and in-process benchmarks: drain and join.
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

/// Worker: claim jobs from the bounded queue until a drain empties it.
fn worker_loop(state: &ServerState) {
    loop {
        let (id, spec) = {
            let mut q = lock(&state.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if state.draining.load(Ordering::SeqCst) {
                    return;
                }
                q = state
                    .not_empty
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        lock(&state.jobs).insert(id, JobState::Running);
        state.running.fetch_add(1, Ordering::SeqCst);
        let outcome = run_job(&spec, &state.cfg.supervise);
        state.running.fetch_sub(1, Ordering::SeqCst);
        match &outcome {
            JobState::Done { .. } => {
                state.done.fetch_add(1, Ordering::SeqCst);
            }
            _ => {
                state.failed.fetch_add(1, Ordering::SeqCst);
            }
        }
        lock(&state.jobs).insert(id, outcome);
    }
}

/// Build and run one job under supervision. Never panics outward: the
/// supervised runner isolates run panics, and build panics are caught
/// here.
fn run_job(spec: &JobSpec, sup: &SuperviseConfig) -> JobState {
    let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let sc = scenario::find(&spec.scenario)?;
        // Identical (scenario, shape) submissions share one cached build
        // through the process-wide template cache; only the
        // seed-dependent tables are patched per job. With the cache
        // disabled (`IZHI_TEMPLATE_CACHE=0`) every job builds cold, as
        // the workers did historically.
        let (mut wl, template_hit): (Box<dyn Workload>, bool) = if template::cache_enabled() {
            let merged = if spec.quick {
                spec.params.merged(sc.quick)
            } else {
                spec.params
            };
            let (tpl, hit) = template::lookup(sc, merged);
            let inst = match merged.seed {
                Some(seed) => tpl.instantiate(seed, spec.sched),
                None => tpl.instantiate_as_built(spec.sched),
            };
            (Box::new(inst), hit)
        } else if spec.quick {
            (sc.build_quick(&spec.params), false)
        } else {
            (sc.build(&spec.params), false)
        };
        wl.cfg_mut().system.sched = spec.sched;
        if let Some(fault) = spec.fault {
            wl.cfg_mut().system.faults = FaultPlan {
                faults: vec![fault],
            };
        }
        Some((wl, template_hit))
    }));
    let (mut wl, template_hit) = match built {
        Ok(Some(wl)) => wl,
        Ok(None) => {
            return JobState::Failed {
                kind: RunErrorKind::GuestTrap,
                message: format!("unknown scenario `{}`", spec.scenario),
                attempts: 1,
            }
        }
        Err(payload) => {
            return JobState::Failed {
                kind: RunErrorKind::Panic,
                message: crate::supervise::panic_message(&*payload),
                attempts: 1,
            }
        }
    };
    let start = Instant::now();
    match run_supervised(wl.as_mut(), sup) {
        Ok(sup) => JobState::Done {
            cycles: sup.result.cycles,
            instret: sup.result.instret,
            spikes: sup.result.raster.spikes.len() as u64,
            raster_hash: sup.result.raster_hash(),
            wall_s: start.elapsed().as_secs_f64(),
            attempts: sup.attempts,
            template_hit,
        },
        Err(e) => JobState::Failed {
            kind: e.kind,
            message: e.message,
            attempts: e.attempts,
        },
    }
}

/// Accept loop: handle each connection inline (requests are tiny and the
/// heavy work happens on the worker pool), exit once released after the
/// drain.
fn accept_loop(listener: &TcpListener, state: &ServerState) {
    for stream in listener.incoming() {
        if state.accept_done.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        // A stalled client must not wedge the accept loop.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        if let Ok(req) = read_request(&mut stream) {
            let (status, body, retry_after) = handle_request(state, &req);
            let _ = write_response(&mut stream, status, &body, retry_after);
        }
    }
}

/// One parsed HTTP request.
struct Request {
    method: String,
    path: String,
    body: String,
}

/// Read one HTTP/1.1 request (headers + `Content-Length` body).
fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_subslice(&buf, b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > 64 * 1024 {
            return Err("headers too large".into());
        }
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-request".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.lines();
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("no method")?.to_string();
    let path = parts.next().ok_or("no path")?.to_string();
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > 1024 * 1024 {
        return Err("body too large".into());
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-body".into());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Write a JSON response; `retry_after` adds the backpressure hint
/// header.
fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    retry_after: Option<Duration>,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    if let Some(d) = retry_after {
        head.push_str(&format!("Retry-After: {}\r\n", d.as_secs().max(1)));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Route one request. Returns `(status, body, retry_after)`.
fn handle_request(state: &ServerState, req: &Request) -> (u16, String, Option<Duration>) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => {
            let (queued, running, done, failed) = state.counters();
            let draining = state.draining.load(Ordering::SeqCst);
            (
                200,
                format!(
                    "{{\"status\": \"ok\", \"queued\": {queued}, \"running\": {running}, \
                     \"done\": {done}, \"failed\": {failed}, \"draining\": {draining}}}"
                ),
                None,
            )
        }
        ("POST", "/jobs") => submit_job(state, &req.body),
        ("POST", "/shutdown") => {
            state.draining.store(true, Ordering::SeqCst);
            state.not_empty.notify_all();
            (202, "{\"status\": \"draining\"}".to_string(), None)
        }
        ("GET", path) if path.starts_with("/jobs/") => job_status(state, &path["/jobs/".len()..]),
        (_, "/health" | "/jobs" | "/shutdown") => {
            (405, "{\"error\": \"method not allowed\"}".to_string(), None)
        }
        _ => (404, "{\"error\": \"no such endpoint\"}".to_string(), None),
    }
}

/// `POST /jobs`: validate, admit or push back.
fn submit_job(state: &ServerState, body: &str) -> (u16, String, Option<Duration>) {
    if state.draining.load(Ordering::SeqCst) {
        return (503, "{\"error\": \"shutting down\"}".to_string(), None);
    }
    let spec = match parse_job(body) {
        Ok(spec) => spec,
        Err(e) => return (400, format!("{{\"error\": \"{e}\"}}"), None),
    };
    let mut q = lock(&state.queue);
    if q.len() >= state.cfg.queue_cap {
        // Explicit backpressure: the client is told when to come back
        // instead of the queue growing without bound. The hint scales
        // with the backlog a full queue represents.
        let hint = Duration::from_millis(
            100 * state.cfg.queue_cap as u64 / state.cfg.workers.max(1) as u64,
        );
        return (
            429,
            format!(
                "{{\"error\": \"queue full\", \"retry_after_ms\": {}}}",
                hint.as_millis()
            ),
            Some(hint),
        );
    }
    let id = state.next_id.fetch_add(1, Ordering::SeqCst);
    lock(&state.jobs).insert(id, JobState::Queued);
    q.push_back((id, spec));
    let queued = q.len();
    drop(q);
    state.not_empty.notify_one();
    (202, format!("{{\"id\": {id}, \"queued\": {queued}}}"), None)
}

/// `GET /jobs/<id>`.
fn job_status(state: &ServerState, id_str: &str) -> (u16, String, Option<Duration>) {
    let Ok(id) = id_str.parse::<u64>() else {
        return (400, "{\"error\": \"bad job id\"}".to_string(), None);
    };
    let jobs = lock(&state.jobs);
    match jobs.get(&id) {
        None => (404, "{\"error\": \"no such job\"}".to_string(), None),
        Some(JobState::Queued) => (
            200,
            format!("{{\"id\": {id}, \"status\": \"queued\"}}"),
            None,
        ),
        Some(JobState::Running) => (
            200,
            format!("{{\"id\": {id}, \"status\": \"running\"}}"),
            None,
        ),
        Some(JobState::Done {
            cycles,
            instret,
            spikes,
            raster_hash,
            wall_s,
            attempts,
            template_hit,
        }) => (
            200,
            format!(
                "{{\"id\": {id}, \"status\": \"done\", \"sim_cycles\": {cycles}, \
                 \"sim_instret\": {instret}, \"spikes\": {spikes}, \
                 \"raster_hash\": \"{raster_hash:#018x}\", \"wall_s\": {wall_s:.6}, \
                 \"attempts\": {attempts}, \"template_hit\": {template_hit}}}"
            ),
            None,
        ),
        Some(JobState::Failed {
            kind,
            message,
            attempts,
        }) => (
            200,
            format!(
                "{{\"id\": {id}, \"status\": \"failed\", \"error_kind\": \"{}\", \
                 \"error\": \"{}\", \"attempts\": {attempts}}}",
                kind.label(),
                escape_json(message),
            ),
            None,
        ),
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            '\r' => vec!['\\', 'r'],
            '\t' => vec!['\\', 't'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// A value of the flat job document.
#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    Str(String),
    Num(f64),
    Bool(bool),
}

/// Parse a flat JSON object (string/number/bool values, no nesting) into
/// key/value pairs. Small by design: job documents are flat, and the
/// workspace is offline (no serde).
fn parse_flat_json(s: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let mut out = Vec::new();
    let mut it = s.chars().peekable();
    let skip_ws = |it: &mut std::iter::Peekable<std::str::Chars<'_>>| {
        while matches!(it.peek(), Some(c) if c.is_whitespace()) {
            it.next();
        }
    };
    skip_ws(&mut it);
    if it.next() != Some('{') {
        return Err("expected '{'".into());
    }
    loop {
        skip_ws(&mut it);
        match it.peek() {
            Some('}') => {
                it.next();
                return Ok(out);
            }
            Some('"') => {}
            _ => return Err("expected key or '}'".into()),
        }
        it.next(); // opening quote
        let mut key = String::new();
        loop {
            match it.next() {
                Some('"') => break,
                Some(c) => key.push(c),
                None => return Err("unterminated key".into()),
            }
        }
        skip_ws(&mut it);
        if it.next() != Some(':') {
            return Err(format!("expected ':' after key `{key}`"));
        }
        skip_ws(&mut it);
        let val = match it.peek() {
            Some('"') => {
                it.next();
                let mut v = String::new();
                loop {
                    match it.next() {
                        Some('\\') => match it.next() {
                            Some('n') => v.push('\n'),
                            Some('t') => v.push('\t'),
                            Some(c) => v.push(c),
                            None => return Err("unterminated string".into()),
                        },
                        Some('"') => break,
                        Some(c) => v.push(c),
                        None => return Err("unterminated string".into()),
                    }
                }
                JsonVal::Str(v)
            }
            Some('t' | 'f') => {
                let mut word = String::new();
                while matches!(it.peek(), Some(c) if c.is_ascii_alphabetic()) {
                    word.push(it.next().unwrap());
                }
                match word.as_str() {
                    "true" => JsonVal::Bool(true),
                    "false" => JsonVal::Bool(false),
                    w => return Err(format!("bad literal `{w}`")),
                }
            }
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                let mut num = String::new();
                while matches!(it.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                {
                    num.push(it.next().unwrap());
                }
                JsonVal::Num(num.parse().map_err(|_| format!("bad number `{num}`"))?)
            }
            _ => return Err(format!("unsupported value for key `{key}`")),
        };
        out.push((key, val));
        skip_ws(&mut it);
        match it.next() {
            Some(',') => {}
            Some('}') => return Ok(out),
            _ => return Err("expected ',' or '}'".into()),
        }
    }
}

/// Validate a job document into a [`JobSpec`].
pub fn parse_job(body: &str) -> Result<JobSpec, String> {
    let pairs = parse_flat_json(body)?;
    let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let get_num = |key: &str| -> Result<Option<f64>, String> {
        match get(key) {
            None => Ok(None),
            Some(JsonVal::Num(n)) => Ok(Some(*n)),
            Some(_) => Err(format!("`{key}` must be a number")),
        }
    };
    let Some(JsonVal::Str(scenario)) = get("scenario") else {
        return Err("`scenario` (string) is required".into());
    };
    if scenario::find(scenario).is_none() {
        return Err(format!("unknown scenario `{scenario}`"));
    }
    let sched_label = match get("sched") {
        None => "relaxed",
        Some(JsonVal::Str(s)) => s.as_str(),
        Some(_) => return Err("`sched` must be a string".into()),
    };
    let Some(spec) = SchedSpec::default_set(0)
        .into_iter()
        .find(|s| s.label == sched_label)
    else {
        return Err(format!("unknown sched label `{sched_label}`"));
    };
    let quick = match get("quick") {
        None => true,
        Some(JsonVal::Bool(b)) => *b,
        Some(_) => return Err("`quick` must be a bool".into()),
    };
    let params = ScenarioParams {
        seed: get_num("seed")?.map(|n| n as u32),
        n: get_num("n")?.map(|n| n as usize),
        ticks: get_num("ticks")?.map(|n| n as u32),
        n_cores: get_num("n_cores")?.map(|n| n as u32),
        ..Default::default()
    };
    let fault = match get("fault") {
        None => None,
        Some(JsonVal::Str(kind)) => {
            let arg = get_num("fault_arg")?;
            let kind = match kind.as_str() {
                "panic" => FaultKind::HostPanic,
                "trap" => FaultKind::GuestTrap,
                "stall" => FaultKind::StallMs(arg.map_or(200, |n| n as u64)),
                "corrupt" => FaultKind::CorruptSpike(arg.map_or(0xDEAD_BEEF, |n| n as u32)),
                k => return Err(format!("unknown fault kind `{k}`")),
            };
            Some(FaultSpec {
                core: get_num("fault_core")?.map_or(0, |n| n as u32),
                at_instret: get_num("fault_at")?.map_or(0, |n| n as u64),
                kind,
            })
        }
        Some(_) => return Err("`fault` must be a string".into()),
    };
    Ok(JobSpec {
        scenario: scenario.clone(),
        params,
        sched: spec.mode,
        sched_label: spec.label,
        quick,
        fault,
    })
}

/// Minimal HTTP client for the load generator, tests and CI smoke:
/// one request, `Connection: close`.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes())?;
    let mut resp = Vec::new();
    stream.read_to_end(&mut resp)?;
    let text = String::from_utf8_lossy(&resp).into_owned();
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let payload = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, payload))
}

/// Extract a numeric field from a flat JSON response.
pub fn json_field_u64(body: &str, key: &str) -> Option<u64> {
    let pairs = parse_flat_json(body).ok()?;
    pairs.iter().find_map(|(k, v)| match v {
        JsonVal::Num(n) if k == key => Some(*n as u64),
        _ => None,
    })
}

/// Extract a string field from a flat JSON response.
pub fn json_field_str(body: &str, key: &str) -> Option<String> {
    let pairs = parse_flat_json(body).ok()?;
    pairs.iter().find_map(|(k, v)| match v {
        JsonVal::Str(s) if k == key => Some(s.clone()),
        _ => None,
    })
}

/// What a load-generation burst observed (the `service` section of a
/// BENCH file, and the CI smoke assertions, come from this).
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Jobs submitted.
    pub submitted: usize,
    /// Accepted (`202`).
    pub accepted: usize,
    /// Rejected with backpressure (`429` + retry hint).
    pub rejected: usize,
    /// Accepted jobs that finished `done`.
    pub completed: usize,
    /// Accepted jobs that finished `failed` (with a structured kind).
    pub failed: usize,
    /// Structured failure kinds observed, in job order.
    pub failure_kinds: Vec<String>,
    /// Health checks answered `200` during the burst and drain.
    pub health_ok: usize,
    /// Health checks attempted.
    pub health_checks: usize,
    /// Whether every `429` carried a `retry_after_ms` hint.
    pub backpressure_hinted: bool,
    /// Wall time from first submission to last completion.
    pub wall_s: f64,
    /// Completed jobs per second of burst wall time.
    pub throughput_jobs_per_s: f64,
}

/// Submit a burst of job documents against a running service, poll every
/// accepted job to completion, and health-check throughout. Backpressured
/// submissions are *not* retried — the rejection count is the point.
pub fn generate_load(
    addr: &str,
    bodies: &[String],
    timeout: Duration,
) -> Result<LoadReport, String> {
    let start = Instant::now();
    let mut accepted_ids = Vec::new();
    let mut rejected = 0usize;
    let mut backpressure_hinted = true;
    let mut health_ok = 0usize;
    let mut health_checks = 0usize;
    let health = |ok: &mut usize, n: &mut usize| {
        *n += 1;
        if let Ok((200, _)) = http_request(addr, "GET", "/health", None) {
            *ok += 1;
        }
    };
    for body in bodies {
        let (status, resp) =
            http_request(addr, "POST", "/jobs", Some(body)).map_err(|e| e.to_string())?;
        match status {
            202 => {
                let id = json_field_u64(&resp, "id").ok_or("202 without an id")?;
                accepted_ids.push(id);
            }
            429 => {
                rejected += 1;
                if json_field_u64(&resp, "retry_after_ms").is_none() {
                    backpressure_hinted = false;
                }
            }
            other => return Err(format!("unexpected submit status {other}: {resp}")),
        }
        health(&mut health_ok, &mut health_checks);
    }
    // Poll accepted jobs to completion, health-checking as we go.
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut failure_kinds = Vec::new();
    let mut pending: VecDeque<u64> = accepted_ids.iter().copied().collect();
    while let Some(id) = pending.pop_front() {
        if start.elapsed() > timeout {
            return Err(format!(
                "burst timed out with {} jobs unfinished",
                pending.len() + 1
            ));
        }
        let (status, resp) =
            http_request(addr, "GET", &format!("/jobs/{id}"), None).map_err(|e| e.to_string())?;
        if status != 200 {
            return Err(format!("status {status} for job {id}: {resp}"));
        }
        match json_field_str(&resp, "status").as_deref() {
            Some("done") => completed += 1,
            Some("failed") => {
                failed += 1;
                failure_kinds
                    .push(json_field_str(&resp, "error_kind").unwrap_or_else(|| "?".into()));
            }
            _ => {
                pending.push_back(id);
                health(&mut health_ok, &mut health_checks);
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    Ok(LoadReport {
        submitted: bodies.len(),
        accepted: accepted_ids.len(),
        rejected,
        completed,
        failed,
        failure_kinds,
        health_ok,
        health_checks,
        backpressure_hinted,
        wall_s,
        throughput_jobs_per_s: if wall_s > 0.0 {
            completed as f64 / wall_s
        } else {
            0.0
        },
    })
}

/// A small, fast job document for bursts (quick net8020 at few ticks).
pub fn tiny_job_body(seed: u32) -> String {
    format!("{{\"scenario\": \"net8020\", \"seed\": {seed}, \"sched\": \"relaxed\", \"ticks\": 10, \"n\": 60}}")
}

/// In-process service benchmark: burst `n_jobs` tiny jobs (two of them
/// deliberately faulty — a host panic and a guest trap) through a small
/// queue, and report throughput plus failure isolation. This is what the
/// perf baseline records into the BENCH `service` section.
pub fn service_benchmark(n_jobs: usize) -> Result<LoadReport, String> {
    let handle = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_cap: 8,
        workers: 2,
        supervise: SuperviseConfig {
            wall_limit: Some(Duration::from_secs(30)),
            ..Default::default()
        },
    })
    .map_err(|e| e.to_string())?;
    let addr = handle.addr().to_string();
    let mut bodies: Vec<String> = (0..n_jobs as u32).map(tiny_job_body).collect();
    if bodies.len() >= 2 {
        bodies[0] = "{\"scenario\": \"net8020\", \"seed\": 5, \"sched\": \"relaxed\", \
                     \"ticks\": 10, \"n\": 60, \"fault\": \"panic\"}"
            .to_string();
        bodies[1] = "{\"scenario\": \"net8020\", \"seed\": 6, \"sched\": \"relaxed\", \
                     \"ticks\": 10, \"n\": 60, \"fault\": \"trap\"}"
            .to_string();
    }
    let report = generate_load(&addr, &bodies, Duration::from_secs(180));
    handle.shutdown_and_join();
    report
}

/// Whether a load report demonstrates failure isolation: the injected
/// faults failed *structurally* (panic / guest-trap kinds), everything
/// else completed, and the server answered every health check.
pub fn failure_isolated(report: &LoadReport) -> bool {
    report.failed >= 2
        && report.failure_kinds.iter().any(|k| k == "panic")
        && report.failure_kinds.iter().any(|k| k == "guest-trap")
        && report.completed + report.failed == report.accepted
        && report.health_ok == report.health_checks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_json_parses_the_job_shapes() {
        let pairs = parse_flat_json(
            "{\"scenario\": \"net8020\", \"seed\": 5, \"quick\": true, \"wall\": 1.5}",
        )
        .unwrap();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[0].1, JsonVal::Str("net8020".into()));
        assert_eq!(pairs[1].1, JsonVal::Num(5.0));
        assert_eq!(pairs[2].1, JsonVal::Bool(true));
        assert_eq!(pairs[3].1, JsonVal::Num(1.5));
        assert!(parse_flat_json("{\"k\": }").is_err());
        assert!(parse_flat_json("not json").is_err());
        assert!(parse_flat_json("{}").unwrap().is_empty());
    }

    #[test]
    fn job_documents_validate() {
        let job = parse_job("{\"scenario\": \"net8020\", \"seed\": 7}").unwrap();
        assert_eq!(job.scenario, "net8020");
        assert_eq!(job.params.seed, Some(7));
        assert_eq!(job.sched_label, "relaxed");
        assert!(job.quick);
        assert!(job.fault.is_none());

        let err = parse_job("{\"seed\": 7}").unwrap_err();
        assert!(err.contains("scenario"), "{err}");
        let err = parse_job("{\"scenario\": \"nope\"}").unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
        let err = parse_job("{\"scenario\": \"net8020\", \"sched\": \"bogus\"}").unwrap_err();
        assert!(err.contains("unknown sched label"), "{err}");
    }

    #[test]
    fn job_documents_carry_fault_plans() {
        let job = parse_job(
            "{\"scenario\": \"net8020\", \"fault\": \"stall\", \"fault_core\": 1, \
             \"fault_at\": 500, \"fault_arg\": 80}",
        )
        .unwrap();
        let fault = job.fault.expect("fault parsed");
        assert_eq!(fault.core, 1);
        assert_eq!(fault.at_instret, 500);
        assert_eq!(fault.kind, FaultKind::StallMs(80));
        let err = parse_job("{\"scenario\": \"net8020\", \"fault\": \"meteor\"}").unwrap_err();
        assert!(err.contains("unknown fault kind"), "{err}");
    }

    #[test]
    fn json_escaping_is_safe_for_messages() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}

//! Physical memory map and backing storage.
//!
//! The simulated SoC uses the same split the paper describes for the DE10
//! board: instructions and bulk data live in off-chip SDRAM (slow, cached),
//! hot network state lives in on-chip memory (single-cycle scratchpad), and
//! a small MMIO block provides platform services.

/// Address-space layout constants.
pub mod layout {
    /// SDRAM base (instructions + bulk data; cached).
    pub const SDRAM_BASE: u32 = 0x0000_0000;
    /// Default SDRAM size (16 MiB is plenty for every workload here).
    pub const SDRAM_DEFAULT_SIZE: u32 = 16 * 1024 * 1024;
    /// On-chip scratchpad base (single-cycle, uncached, dual-ported).
    pub const SCRATCH_BASE: u32 = 0x1000_0000;
    /// Default scratchpad size (256 KiB — generous M9K/M20K budget).
    pub const SCRATCH_DEFAULT_SIZE: u32 = 256 * 1024;
    /// MMIO device block base.
    pub const MMIO_BASE: u32 = 0xF000_0000;
    /// MMIO block size.
    pub const MMIO_SIZE: u32 = 0x100;

    // MMIO register offsets.
    /// Write: emit a byte to the console.
    pub const MMIO_CONSOLE: u32 = 0x00;
    /// Read: this core's hart id.
    pub const MMIO_COREID: u32 = 0x04;
    /// Read: number of cores in the system.
    pub const MMIO_NCORES: u32 = 0x08;
    /// Read: try-acquire the hardware mutex (1 = acquired, 0 = busy).
    /// Write: release it.
    pub const MMIO_MUTEX: u32 = 0x0C;
    /// Read: barrier generation. Write: arrive at the barrier.
    pub const MMIO_BARRIER: u32 = 0x10;
    /// Read: low 32 bits of the global cycle counter.
    pub const MMIO_CYCLE: u32 = 0x14;
    /// Write: halt this core.
    pub const MMIO_HALT: u32 = 0x18;
    /// Write: append a word to the host-visible spike log.
    pub const MMIO_SPIKE_LOG: u32 = 0x1C;
    /// Read: next value from the device PRNG (xorshift32).
    pub const MMIO_RAND: u32 = 0x20;
    /// Write 1: reset+start the region-of-interest counters;
    /// write 0: stop them.
    pub const MMIO_ROI: u32 = 0x24;
    /// Write: record a host-visible "progress" word (debug aid).
    pub const MMIO_PROGRESS: u32 = 0x28;

    /// Which region an address belongs to.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Region {
        /// Off-chip SDRAM (cached).
        Sdram,
        /// On-chip scratchpad (uncached, 1 cycle).
        Scratch,
        /// Memory-mapped devices.
        Mmio,
        /// Unmapped.
        Unmapped,
    }

    /// Classify an address.
    #[inline]
    pub fn region_of(addr: u32, sdram_size: u32, scratch_size: u32) -> Region {
        if addr < sdram_size {
            Region::Sdram
        } else if (SCRATCH_BASE..SCRATCH_BASE + scratch_size).contains(&addr) {
            Region::Scratch
        } else if (MMIO_BASE..MMIO_BASE + MMIO_SIZE).contains(&addr) {
            Region::Mmio
        } else {
            Region::Unmapped
        }
    }
}

/// Byte-addressable backing storage for SDRAM and the scratchpad.
#[derive(Debug, Clone)]
pub struct MainMemory {
    sdram: Vec<u8>,
    scratch: Vec<u8>,
}

impl MainMemory {
    /// Allocate with the given region sizes (both rounded up to 4 bytes).
    pub fn new(sdram_size: u32, scratch_size: u32) -> Self {
        MainMemory {
            sdram: vec![0; (sdram_size as usize + 3) & !3],
            scratch: vec![0; (scratch_size as usize + 3) & !3],
        }
    }

    /// SDRAM size in bytes.
    pub fn sdram_size(&self) -> u32 {
        self.sdram.len() as u32
    }

    /// Scratchpad size in bytes.
    pub fn scratch_size(&self) -> u32 {
        self.scratch.len() as u32
    }

    #[inline]
    fn backing(&self, addr: u32) -> Option<(&Vec<u8>, usize)> {
        if (addr as usize) < self.sdram.len() {
            Some((&self.sdram, addr as usize))
        } else if addr >= layout::SCRATCH_BASE {
            let off = (addr - layout::SCRATCH_BASE) as usize;
            (off < self.scratch.len()).then_some((&self.scratch, off))
        } else {
            None
        }
    }

    #[inline]
    fn backing_mut(&mut self, addr: u32) -> Option<(&mut Vec<u8>, usize)> {
        if (addr as usize) < self.sdram.len() {
            Some((&mut self.sdram, addr as usize))
        } else if addr >= layout::SCRATCH_BASE {
            let off = (addr - layout::SCRATCH_BASE) as usize;
            (off < self.scratch.len()).then_some((&mut self.scratch, off))
        } else {
            None
        }
    }

    /// Read an aligned 32-bit word; `None` if unmapped.
    #[inline]
    pub fn read_u32(&self, addr: u32) -> Option<u32> {
        let (mem, off) = self.backing(addr)?;
        if off + 4 > mem.len() {
            return None;
        }
        Some(u32::from_le_bytes([
            mem[off],
            mem[off + 1],
            mem[off + 2],
            mem[off + 3],
        ]))
    }

    /// Read a 16-bit half-word.
    #[inline]
    pub fn read_u16(&self, addr: u32) -> Option<u16> {
        let (mem, off) = self.backing(addr)?;
        if off + 2 > mem.len() {
            return None;
        }
        Some(u16::from_le_bytes([mem[off], mem[off + 1]]))
    }

    /// Read a byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> Option<u8> {
        let (mem, off) = self.backing(addr)?;
        mem.get(off).copied()
    }

    /// Write an aligned 32-bit word; `false` if unmapped.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) -> bool {
        let Some((mem, off)) = self.backing_mut(addr) else {
            return false;
        };
        if off + 4 > mem.len() {
            return false;
        }
        mem[off..off + 4].copy_from_slice(&value.to_le_bytes());
        true
    }

    /// Write a 16-bit half-word.
    #[inline]
    pub fn write_u16(&mut self, addr: u32, value: u16) -> bool {
        let Some((mem, off)) = self.backing_mut(addr) else {
            return false;
        };
        if off + 2 > mem.len() {
            return false;
        }
        mem[off..off + 2].copy_from_slice(&value.to_le_bytes());
        true
    }

    /// Write a byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) -> bool {
        let Some((mem, off)) = self.backing_mut(addr) else {
            return false;
        };
        if off >= mem.len() {
            return false;
        }
        mem[off] = value;
        true
    }

    /// Copy a byte slice into memory (used by the program loader).
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> bool {
        for (i, &b) in bytes.iter().enumerate() {
            if !self.write_u8(addr + i as u32, b) {
                return false;
            }
        }
        true
    }

    /// Read `len` bytes starting at `addr` (host-side result readback).
    pub fn read_bytes(&self, addr: u32, len: usize) -> Option<Vec<u8>> {
        (0..len).map(|i| self.read_u8(addr + i as u32)).collect()
    }
}

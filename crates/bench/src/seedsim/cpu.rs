//! One IzhiRISC-V core: functional RV32IM+Zicsr+custom-0 execution with the
//! 3-stage-pipeline timing annotations described in the crate docs.

use izhi_core::dcu::Dcu;
use izhi_core::nmregs::NmRegs;
use izhi_core::npu::NpUnit;
use izhi_fixed::Q15_16;
use izhi_isa::inst::{AluImmOp, AluOp, BranchOp, Inst, LoadOp, NmOp, StoreOp};
use izhi_isa::reg::Reg;

use crate::seedsim::cache::{Access, Cache};
use crate::seedsim::counters::PerfCounters;
use crate::seedsim::mem::layout::{self, Region};
use crate::seedsim::mmio::MmioEffect;
use crate::seedsim::system::Shared;

/// Why a core stopped abnormally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapCause {
    /// Undecodable instruction word.
    IllegalInstruction {
        /// Faulting pc.
        pc: u32,
        /// The word that failed to decode.
        word: u32,
    },
    /// Instruction fetch outside mapped, executable memory.
    BadFetch {
        /// Faulting pc.
        pc: u32,
    },
    /// Data access outside mapped memory.
    BadAccess {
        /// pc of the access instruction.
        pc: u32,
        /// Offending data address.
        addr: u32,
        /// Whether it was a store.
        store: bool,
    },
    /// Misaligned word/half access (the core does not split accesses).
    Misaligned {
        /// pc of the access instruction.
        pc: u32,
        /// Offending data address.
        addr: u32,
    },
}

impl core::fmt::Display for TrapCause {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            TrapCause::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#010x}")
            }
            TrapCause::BadFetch { pc } => write!(f, "instruction fetch fault at pc {pc:#010x}"),
            TrapCause::BadAccess { pc, addr, store } => write!(
                f,
                "{} fault at address {addr:#010x} (pc {pc:#010x})",
                if store { "store" } else { "load" }
            ),
            TrapCause::Misaligned { pc, addr } => {
                write!(f, "misaligned access to {addr:#010x} (pc {pc:#010x})")
            }
        }
    }
}

/// Hazard class of the previously retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PrevKind {
    /// Fully bypassed (ALU etc.) — no stall possible.
    Bypassed,
    /// Load: value arrives from MEM+WB, one bubble for an immediate user.
    Load,
    /// Neuromorphic instruction with register-file writeback: the paper's
    /// nm-result hazard (removed by the CSR-writeback option).
    NmWriteback,
}

/// One processor core with private caches and counters.
#[derive(Debug, Clone)]
pub struct Core {
    /// Hart id.
    pub id: u32,
    regs: [u32; 32],
    pc: u32,
    /// Local clock in cycles.
    pub time: u64,
    halted: bool,
    nmregs: NmRegs,
    icache: Cache,
    dcache: Cache,
    /// Cumulative event counters.
    pub counters: PerfCounters,
    roi_active: bool,
    roi_base: PerfCounters,
    roi_final: Option<PerfCounters>,
    prev_kind: PrevKind,
    prev_dest: Option<Reg>,
}

impl Core {
    /// Create a core with the given caches.
    pub fn new(id: u32, icache: Cache, dcache: Cache) -> Self {
        Core {
            id,
            regs: [0; 32],
            pc: 0,
            time: 0,
            halted: false,
            nmregs: NmRegs::default(),
            icache,
            dcache,
            counters: PerfCounters::default(),
            roi_active: false,
            roi_base: PerfCounters::default(),
            roi_final: None,
            prev_kind: PrevKind::Bypassed,
            prev_dest: None,
        }
    }

    /// Read an architectural register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.idx()]
    }

    /// Write an architectural register (x0 stays zero).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[r.idx()] = v;
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Set the program counter (used by the loader).
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Whether this core has halted (ebreak / MMIO halt / ecall exit).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The NM_REGS configuration block (inspection hook).
    pub fn nmregs(&self) -> &NmRegs {
        &self.nmregs
    }

    /// Counters for the measured region: the ROI delta when ROI markers
    /// were used, the cumulative counters otherwise.
    pub fn roi_counters(&self) -> PerfCounters {
        if self.roi_active {
            self.counters.delta(&self.roi_base)
        } else if let Some(d) = self.roi_final {
            d
        } else {
            self.counters
        }
    }

    /// I-cache statistics handle.
    pub fn icache(&self) -> &Cache {
        &self.icache
    }

    /// D-cache statistics handle.
    pub fn dcache(&self) -> &Cache {
        &self.dcache
    }

    #[inline]
    fn sdram_size(&self, shared: &Shared) -> u32 {
        shared.mem.sdram_size()
    }

    /// Fetch timing + functional fetch. Returns (word, extra_cycles).
    #[inline]
    fn fetch(&mut self, shared: &mut Shared) -> Result<(u32, u64), TrapCause> {
        let pc = self.pc;
        if !pc.is_multiple_of(4) {
            return Err(TrapCause::BadFetch { pc });
        }
        let mut extra = 0u64;
        match layout::region_of(pc, self.sdram_size(shared), shared.mem.scratch_size()) {
            Region::Sdram => match self.icache.access(pc, false) {
                Access::Hit => {
                    self.counters.icache_hits += 1;
                }
                Access::Miss { .. } => {
                    self.counters.icache_misses += 1;
                    let words = self.icache.config().line_words() as u64;
                    let done = shared
                        .bus
                        .acquire(self.time, shared.bus_timings.burst(words));
                    extra += done - self.time;
                }
            },
            Region::Scratch => { /* single-cycle fetch, no cache */ }
            _ => return Err(TrapCause::BadFetch { pc }),
        }
        let word = shared.mem.read_u32(pc).ok_or(TrapCause::BadFetch { pc })?;
        Ok((word, extra))
    }

    /// Data-access timing for `addr`. Returns extra cycles beyond the base
    /// MEM-stage cycle. Functional access is done by the caller.
    #[inline]
    fn data_timing(&mut self, shared: &mut Shared, addr: u32, write: bool) -> u64 {
        self.counters.mem_accesses += 1;
        match layout::region_of(addr, self.sdram_size(shared), shared.mem.scratch_size()) {
            Region::Sdram => match self.dcache.access(addr, write) {
                Access::Hit => {
                    self.counters.dcache_hits += 1;
                    0
                }
                Access::Miss { writeback } => {
                    self.counters.dcache_misses += 1;
                    let words = self.dcache.config().line_words() as u64;
                    let mut dur = shared.bus_timings.burst(words);
                    if writeback {
                        dur += shared.bus_timings.burst(words);
                    }
                    let done = shared.bus.acquire(self.time, dur);
                    done - self.time
                }
            },
            Region::Scratch => 0,
            // MMIO registers hang off the shared Avalon fabric: every
            // access arbitrates for the bus, so a core spinning on the
            // barrier or streaming the spike log steals bandwidth from the
            // other core's cache refills (a classic shared-bus effect that
            // bounds the paper's dual-core speedup below 2).
            Region::Mmio => {
                let done = shared.bus.acquire(self.time, 4);
                (done - self.time).max(2)
            }
            Region::Unmapped => 0, // caller traps on the functional access
        }
    }

    fn load(
        &mut self,
        shared: &mut Shared,
        addr: u32,
        op: LoadOp,
        pc: u32,
    ) -> Result<(u32, u64), TrapCause> {
        let size = match op {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw => 4,
        };
        if !addr.is_multiple_of(size) {
            return Err(TrapCause::Misaligned { pc, addr });
        }
        let region = layout::region_of(addr, self.sdram_size(shared), shared.mem.scratch_size());
        if region == Region::Unmapped {
            return Err(TrapCause::BadAccess {
                pc,
                addr,
                store: false,
            });
        }
        let extra = self.data_timing(shared, addr, false);
        self.counters.loads += 1;
        let value = if region == Region::Mmio {
            shared
                .dev
                .read(self.id, addr - layout::MMIO_BASE, self.time)
        } else {
            match op {
                LoadOp::Lw => shared.mem.read_u32(addr),
                LoadOp::Lh | LoadOp::Lhu => shared.mem.read_u16(addr).map(u32::from),
                LoadOp::Lb | LoadOp::Lbu => shared.mem.read_u8(addr).map(u32::from),
            }
            .ok_or(TrapCause::BadAccess {
                pc,
                addr,
                store: false,
            })?
        };
        let value = match op {
            LoadOp::Lb => value as u8 as i8 as i32 as u32,
            LoadOp::Lh => value as u16 as i16 as i32 as u32,
            _ => value,
        };
        Ok((value, extra))
    }

    fn store(
        &mut self,
        shared: &mut Shared,
        addr: u32,
        value: u32,
        op: StoreOp,
        pc: u32,
    ) -> Result<(u64, MmioEffect), TrapCause> {
        let size = match op {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
        };
        if !addr.is_multiple_of(size) {
            return Err(TrapCause::Misaligned { pc, addr });
        }
        let region = layout::region_of(addr, self.sdram_size(shared), shared.mem.scratch_size());
        if region == Region::Unmapped {
            return Err(TrapCause::BadAccess {
                pc,
                addr,
                store: true,
            });
        }
        let extra = self.data_timing(shared, addr, true);
        self.counters.stores += 1;
        let mut effect = MmioEffect::None;
        if region == Region::Mmio {
            effect = shared.dev.write(self.id, addr - layout::MMIO_BASE, value);
        } else {
            let ok = match op {
                StoreOp::Sw => shared.mem.write_u32(addr, value),
                StoreOp::Sh => shared.mem.write_u16(addr, value as u16),
                StoreOp::Sb => shared.mem.write_u8(addr, value as u8),
            };
            if !ok {
                return Err(TrapCause::BadAccess {
                    pc,
                    addr,
                    store: true,
                });
            }
        }
        Ok((extra, effect))
    }

    fn csr_read(&self, csr: u16) -> u32 {
        match csr {
            0xB00 => self.time as u32,             // mcycle
            0xB80 => (self.time >> 32) as u32,     // mcycleh
            0xB02 => self.counters.instret as u32, // minstret
            0xB82 => (self.counters.instret >> 32) as u32,
            0xF14 => self.id, // mhartid
            _ => 0,
        }
    }

    /// Execute one instruction; advances the local clock by its full cost.
    #[allow(clippy::too_many_lines)]
    pub fn step(&mut self, shared: &mut Shared) -> Result<(), TrapCause> {
        if self.halted {
            return Ok(());
        }
        let pc = self.pc;
        let (word, fetch_extra) = self.fetch(shared)?;
        let inst = shared
            .decode_cached(pc, word)
            .ok_or(TrapCause::IllegalInstruction { pc, word })?;

        let mut extra = fetch_extra;

        // Hazard stall: previous load / nm instruction feeding this one.
        let stall = match self.prev_kind {
            PrevKind::Bypassed => 0,
            PrevKind::Load | PrevKind::NmWriteback => {
                if let Some(dest) = self.prev_dest {
                    u64::from(inst.sources().contains(&Some(dest)))
                } else {
                    0
                }
            }
        };
        self.counters.hazard_stalls += stall;
        extra += stall;

        let mut next_pc = pc.wrapping_add(4);
        let mut taken = false;
        let mut effect = MmioEffect::None;
        let mut kind = PrevKind::Bypassed;

        match inst {
            Inst::Lui { rd, imm } => self.set_reg(rd, imm as u32),
            Inst::Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add(imm as u32)),
            Inst::Jal { rd, imm } => {
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(imm as u32);
                taken = true;
            }
            Inst::Jalr { rd, rs1, imm } => {
                let target = self.reg(rs1).wrapping_add(imm as u32) & !1;
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
                taken = true;
            }
            Inst::Branch { op, rs1, rs2, imm } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let t = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i32) < (b as i32),
                    BranchOp::Ge => (a as i32) >= (b as i32),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if t {
                    next_pc = pc.wrapping_add(imm as u32);
                    taken = true;
                }
            }
            Inst::Load { op, rd, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                let (value, mem_extra) = self.load(shared, addr, op, pc)?;
                self.set_reg(rd, value);
                extra += mem_extra;
                self.counters.mem_stall_cycles += mem_extra;
                kind = PrevKind::Load;
            }
            Inst::Store { op, rs1, rs2, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                let (mem_extra, eff) = self.store(shared, addr, self.reg(rs2), op, pc)?;
                extra += mem_extra;
                self.counters.mem_stall_cycles += mem_extra;
                effect = eff;
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let a = self.reg(rs1);
                let v = match op {
                    AluImmOp::Addi => a.wrapping_add(imm as u32),
                    AluImmOp::Slti => u32::from((a as i32) < imm),
                    AluImmOp::Sltiu => u32::from(a < imm as u32),
                    AluImmOp::Xori => a ^ imm as u32,
                    AluImmOp::Ori => a | imm as u32,
                    AluImmOp::Andi => a & imm as u32,
                    AluImmOp::Slli => a << (imm & 0x1F),
                    AluImmOp::Srli => a >> (imm & 0x1F),
                    AluImmOp::Srai => ((a as i32) >> (imm & 0x1F)) as u32,
                };
                self.set_reg(rd, v);
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Sll => a << (b & 0x1F),
                    AluOp::Slt => u32::from((a as i32) < (b as i32)),
                    AluOp::Sltu => u32::from(a < b),
                    AluOp::Xor => a ^ b,
                    AluOp::Srl => a >> (b & 0x1F),
                    AluOp::Sra => ((a as i32) >> (b & 0x1F)) as u32,
                    AluOp::Or => a | b,
                    AluOp::And => a & b,
                    AluOp::Mul => a.wrapping_mul(b),
                    AluOp::Mulh => ((a as i32 as i64).wrapping_mul(b as i32 as i64) >> 32) as u32,
                    AluOp::Mulhsu => ((a as i32 as i64).wrapping_mul(b as i64) >> 32) as u32,
                    AluOp::Mulhu => ((a as u64 * b as u64) >> 32) as u32,
                    AluOp::Div => {
                        extra += shared.div_latency;
                        self.counters.div_stall_cycles += shared.div_latency;
                        if b == 0 {
                            u32::MAX
                        } else if a == 0x8000_0000 && b == u32::MAX {
                            a // overflow: -2^31 / -1
                        } else {
                            ((a as i32) / (b as i32)) as u32
                        }
                    }
                    AluOp::Divu => {
                        extra += shared.div_latency;
                        self.counters.div_stall_cycles += shared.div_latency;
                        a.checked_div(b).unwrap_or(u32::MAX)
                    }
                    AluOp::Rem => {
                        extra += shared.div_latency;
                        self.counters.div_stall_cycles += shared.div_latency;
                        if b == 0 {
                            a
                        } else if a == 0x8000_0000 && b == u32::MAX {
                            0
                        } else {
                            ((a as i32) % (b as i32)) as u32
                        }
                    }
                    AluOp::Remu => {
                        extra += shared.div_latency;
                        self.counters.div_stall_cycles += shared.div_latency;
                        if b == 0 {
                            a
                        } else {
                            a % b
                        }
                    }
                };
                self.set_reg(rd, v);
            }
            Inst::Fence => {}
            Inst::Ecall => {
                // Minimal host services, newlib-free.
                match self.reg(Reg::A7) {
                    0 | 93 => self.halted = true,
                    1 => {
                        let s = (self.reg(Reg::A0) as i32).to_string();
                        shared.dev.console.extend_from_slice(s.as_bytes());
                    }
                    2 => shared.dev.console.push(self.reg(Reg::A0) as u8),
                    3 => {
                        let s = format!("{:#010x}", self.reg(Reg::A0));
                        shared.dev.console.extend_from_slice(s.as_bytes());
                    }
                    _ => {}
                }
            }
            Inst::Ebreak => self.halted = true,
            Inst::Csr { op, rd, rs1, csr } => {
                let old = self.csr_read(csr);
                self.set_reg(rd, old);
                // Counter CSRs are read-only here; set/clear/write dropped.
                let _ = (op, rs1);
            }
            Inst::CsrImm { op, rd, uimm, csr } => {
                let old = self.csr_read(csr);
                self.set_reg(rd, old);
                let _ = (op, uimm);
            }
            Inst::Nm { op, rd, rs1, rs2 } => {
                match op {
                    NmOp::Nmldl => {
                        let ok = self.nmregs.exec_nmldl(self.reg(rs1), self.reg(rs2));
                        self.set_reg(rd, ok);
                        self.counters.nmldl += 1;
                        kind = PrevKind::NmWriteback;
                    }
                    NmOp::Nmldh => {
                        let ok = self.nmregs.exec_nmldh(self.reg(rs1));
                        self.set_reg(rd, ok);
                        self.counters.nmldh += 1;
                        kind = PrevKind::NmWriteback;
                    }
                    NmOp::Nmpn => {
                        let vu = self.reg(rs1);
                        let isyn = Q15_16::from_raw(self.reg(rs2) as i32);
                        let addr = self.reg(rd);
                        let out = NpUnit::update(&self.nmregs, vu, isyn);
                        let (mem_extra, eff) = self.store(shared, addr, out.vu, StoreOp::Sw, pc)?;
                        extra += mem_extra;
                        self.counters.mem_stall_cycles += mem_extra;
                        effect = eff;
                        self.set_reg(rd, u32::from(out.spike));
                        self.counters.nmpn += 1;
                        kind = PrevKind::NmWriteback;
                    }
                    NmOp::Nmdec => {
                        let out = Dcu::exec_nmdec(&self.nmregs, self.reg(rs1), self.reg(rs2));
                        self.set_reg(rd, out);
                        self.counters.nmdec += 1;
                        // Pure EX-stage result: forwarded like an ALU op.
                    }
                }
                if shared.csr_writeback && kind == PrevKind::NmWriteback {
                    // The paper's proposed fix: spike/done flags go to CSRs,
                    // so no register-file writeback hazard remains.
                    kind = PrevKind::Bypassed;
                }
            }
        }

        if taken {
            // Branch resolved in EX: one wrong-path fetch squashed.
            self.counters.flush_cycles += 1;
            extra += 1;
        }

        self.prev_kind = kind;
        self.prev_dest = inst.dest();

        self.counters.instret += 1;
        self.time += 1 + extra;
        self.counters.cycles = self.time;
        self.pc = next_pc;

        match effect {
            MmioEffect::None => {}
            MmioEffect::Halt => self.halted = true,
            MmioEffect::RoiStart => {
                self.roi_base = self.counters;
                self.roi_active = true;
                self.roi_final = None;
            }
            MmioEffect::RoiStop => {
                if self.roi_active {
                    self.roi_final = Some(self.counters.delta(&self.roi_base));
                    self.roi_active = false;
                }
            }
        }
        Ok(())
    }
}

//! The multi-core system: configuration, program loading and the
//! event-driven run loop.

use izhi_isa::asm::Program;
use izhi_isa::decode;
use izhi_isa::inst::Inst;

use crate::seedsim::bus::{BusArbiter, BusTimings};
use crate::seedsim::cache::{Cache, CacheConfig};
use crate::seedsim::counters::Metrics;
use crate::seedsim::cpu::{Core, TrapCause};
use crate::seedsim::mem::{layout, MainMemory};
use crate::seedsim::mmio::SharedDevices;

/// Full system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of IzhiRISC-V cores.
    pub n_cores: u32,
    /// Core clock in Hz (30 MHz on the MAX10 build, 100 MHz on Agilex-7).
    pub clock_hz: f64,
    /// SDRAM size in bytes.
    pub sdram_size: u32,
    /// On-chip scratchpad size in bytes.
    pub scratch_size: u32,
    /// Per-core I-cache geometry.
    pub icache: CacheConfig,
    /// Per-core D-cache geometry.
    pub dcache: CacheConfig,
    /// Shared-bus/SDRAM timing.
    pub bus: BusTimings,
    /// Iterative divider latency (extra cycles per div/rem).
    pub div_latency: u64,
    /// Model the paper's proposed CSR writeback for nm results (§V-B),
    /// which removes the nm-writeback hazard stalls.
    pub csr_writeback: bool,
    /// Seed for the MMIO xorshift32 RNG.
    pub rng_seed: u32,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            n_cores: 1,
            clock_hz: 30e6,
            sdram_size: 8 * 1024 * 1024,
            scratch_size: layout::SCRATCH_DEFAULT_SIZE,
            icache: CacheConfig::default(),
            // Longer D-cache lines amortise the streaming weight/noise
            // walks, landing hit rates in the paper's 96-100 % band.
            dcache: CacheConfig {
                size_bytes: 4096,
                line_bytes: 32,
            },
            bus: BusTimings::default(),
            div_latency: 16,
            csr_writeback: false,
            rng_seed: 0xC0FFEE,
        }
    }
}

impl SystemConfig {
    /// The paper's MAX10 dual-core configuration (30 MHz).
    pub fn max10_dual_core() -> Self {
        SystemConfig {
            n_cores: 2,
            ..Default::default()
        }
    }

    /// The paper's §VI-A three-core experiment: fitting a third core on
    /// the MAX10 required "drastically" smaller caches and a 20 MHz clock,
    /// "which had a detrimental impact on performance".
    pub fn max10_triple_core_reduced() -> Self {
        SystemConfig {
            n_cores: 3,
            clock_hz: 20e6,
            icache: CacheConfig {
                size_bytes: 1024,
                line_bytes: 16,
            },
            dcache: CacheConfig {
                size_bytes: 1024,
                line_bytes: 16,
            },
            ..Default::default()
        }
    }

    /// Convenience: n cores, everything else default.
    pub fn with_cores(n: u32) -> Self {
        SystemConfig {
            n_cores: n,
            ..Default::default()
        }
    }
}

/// State shared between all cores (memory, bus, devices, decode cache).
#[derive(Debug)]
pub struct Shared {
    /// Functional memory.
    pub mem: MainMemory,
    /// The single shared bus to SDRAM.
    pub bus: BusArbiter,
    /// MMIO devices.
    pub dev: SharedDevices,
    /// Bus/SDRAM timing parameters.
    pub bus_timings: BusTimings,
    /// Divider latency.
    pub div_latency: u64,
    /// CSR-writeback hazard fix enabled.
    pub csr_writeback: bool,
    decode_cache: Vec<Option<Inst>>,
}

impl Shared {
    /// Decode `word` at `pc`, memoising SDRAM-resident code (the system
    /// does not support self-modifying code).
    #[inline]
    pub fn decode_cached(&mut self, pc: u32, word: u32) -> Option<Inst> {
        let idx = (pc / 4) as usize;
        if idx < self.decode_cache.len() {
            if let Some(inst) = self.decode_cache[idx] {
                return Some(inst);
            }
            let inst = decode(word).ok()?;
            self.decode_cache[idx] = Some(inst);
            Some(inst)
        } else {
            decode(word).ok()
        }
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A core trapped.
    Trap {
        /// Which core.
        core: u32,
        /// Why.
        cause: TrapCause,
    },
    /// The cycle budget ran out before all cores halted.
    Timeout {
        /// The budget that was exceeded.
        max_cycles: u64,
    },
    /// A program segment does not fit in mapped memory.
    LoadError {
        /// Base address of the offending segment.
        base: u32,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::Trap { core, cause } => write!(f, "core {core}: {cause}"),
            SimError::Timeout { max_cycles } => {
                write!(f, "simulation exceeded {max_cycles} cycles")
            }
            SimError::LoadError { base } => {
                write!(f, "program segment at {base:#010x} does not fit in memory")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunExit {
    /// Wall-clock cycles (slowest core).
    pub cycles: u64,
    /// Total instructions retired across cores.
    pub instret: u64,
}

/// A complete simulated IzhiRISC-V system.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    cores: Vec<Core>,
    shared: Shared,
}

impl System {
    /// Build a system from a configuration.
    pub fn new(cfg: SystemConfig) -> Self {
        let cores = (0..cfg.n_cores)
            .map(|id| Core::new(id, Cache::new(cfg.icache), Cache::new(cfg.dcache)))
            .collect();
        let shared = Shared {
            mem: MainMemory::new(cfg.sdram_size, cfg.scratch_size),
            bus: BusArbiter::new(),
            dev: SharedDevices::new(cfg.n_cores, cfg.rng_seed),
            bus_timings: cfg.bus,
            div_latency: cfg.div_latency,
            csr_writeback: cfg.csr_writeback,
            // Code lives in the first MiB of SDRAM; the memoised decode
            // table only needs to cover that window.
            decode_cache: vec![None; (cfg.sdram_size.min(1024 * 1024) / 4) as usize],
        };
        System { cfg, cores, shared }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Load an assembled program: copy all segments and point every core's
    /// pc at the entry (guest code branches on the core-id MMIO register).
    pub fn load_program(&mut self, prog: &Program) -> bool {
        for seg in &prog.segments {
            if !self.shared.mem.write_bytes(seg.base, &seg.data) {
                return false;
            }
        }
        for core in &mut self.cores {
            core.set_pc(prog.entry);
        }
        true
    }

    /// Borrow a core.
    pub fn core(&self, idx: usize) -> &Core {
        &self.cores[idx]
    }

    /// Borrow a core mutably (e.g. to preset registers).
    pub fn core_mut(&mut self, idx: usize) -> &mut Core {
        &mut self.cores[idx]
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Shared state (memory, devices) for host-side setup and readback.
    pub fn shared(&self) -> &Shared {
        &self.shared
    }

    /// Mutable shared state.
    pub fn shared_mut(&mut self) -> &mut Shared {
        &mut self.shared
    }

    /// Console output so far.
    pub fn console(&self) -> String {
        self.shared.dev.console_string()
    }

    /// Run until every core halts or `max_cycles` elapse on any core.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunExit, SimError> {
        loop {
            // Event-driven: always advance the core that is furthest behind,
            // so shared-resource ordering approximates real concurrency.
            let mut next: Option<usize> = None;
            for (i, c) in self.cores.iter().enumerate() {
                if !c.halted() {
                    match next {
                        Some(j) if self.cores[j].time <= c.time => {}
                        _ => next = Some(i),
                    }
                }
            }
            let Some(i) = next else {
                break; // all halted
            };
            if self.cores[i].time > max_cycles {
                return Err(SimError::Timeout { max_cycles });
            }
            // Batch a few instructions per pick to cut scheduling overhead;
            // cross-core timing skew stays bounded by the batch length.
            for _ in 0..8 {
                if self.cores[i].halted() {
                    break;
                }
                self.cores[i]
                    .step(&mut self.shared)
                    .map_err(|cause| SimError::Trap {
                        core: i as u32,
                        cause,
                    })?;
            }
        }
        Ok(RunExit {
            cycles: self.cores.iter().map(|c| c.time).max().unwrap_or(0),
            instret: self.cores.iter().map(|c| c.counters.instret).sum(),
        })
    }

    /// Per-core metrics for the measured region (ROI delta when the guest
    /// used the ROI MMIO markers).
    pub fn metrics(&self, core: usize) -> Metrics {
        self.cores[core].roi_counters().metrics(self.cfg.clock_hz)
    }

    /// Execute exactly one instruction on one core (single-step debugging;
    /// the CLI's `--trace` mode uses this).
    pub fn step_core(&mut self, idx: usize) -> Result<(), TrapCause> {
        self.cores[idx].step(&mut self.shared)
    }
}

//! Direct-mapped write-back cache model.
//!
//! Used for both the I-cache (read-only) and D-cache of each core. The
//! model tracks tags, valid and dirty bits only — data always lives in the
//! functional [`crate::seedsim::mem::MainMemory`], so the cache purely produces
//! timing (hit/miss and writeback traffic).

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (power of two).
    pub size_bytes: u32,
    /// Line size in bytes (power of two, ≥ 4).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Number of lines.
    pub const fn lines(&self) -> u32 {
        self.size_bytes / self.line_bytes
    }

    /// Words per line.
    pub const fn line_words(&self) -> u32 {
        self.line_bytes / 4
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        // The MAX10 build gives each core a few KiB of cache; 4 KiB with
        // 16-byte lines reproduces the paper's hit-rate regime.
        CacheConfig {
            size_bytes: 4096,
            line_bytes: 16,
        }
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line present.
    Hit,
    /// Line absent; refill needed. `writeback` is true when the evicted
    /// line was dirty and must be written to SDRAM first.
    Miss {
        /// Evicted line must be written back.
        writeback: bool,
    },
}

/// A direct-mapped, write-back, write-allocate cache (tags only).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    tags: Vec<u32>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
    offset_bits: u32,
    index_bits: u32,
}

impl Cache {
    /// Build an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(cfg.line_bytes.is_power_of_two() && cfg.line_bytes >= 4);
        assert!(cfg.size_bytes >= cfg.line_bytes);
        let lines = cfg.lines();
        Cache {
            cfg,
            tags: vec![0; lines as usize],
            valid: vec![false; lines as usize],
            dirty: vec![false; lines as usize],
            hits: 0,
            misses: 0,
            writebacks: 0,
            offset_bits: cfg.line_bytes.trailing_zeros(),
            index_bits: lines.trailing_zeros(),
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    #[inline]
    fn index_tag(&self, addr: u32) -> (usize, u32) {
        let line = addr >> self.offset_bits;
        let index = (line & ((1 << self.index_bits) - 1)) as usize;
        let tag = line >> self.index_bits;
        (index, tag)
    }

    /// Access `addr`; `write` marks the line dirty on hit or after refill.
    #[inline]
    pub fn access(&mut self, addr: u32, write: bool) -> Access {
        let (index, tag) = self.index_tag(addr);
        if self.valid[index] && self.tags[index] == tag {
            self.hits += 1;
            if write {
                self.dirty[index] = true;
            }
            return Access::Hit;
        }
        self.misses += 1;
        let writeback = self.valid[index] && self.dirty[index];
        if writeback {
            self.writebacks += 1;
        }
        self.valid[index] = true;
        self.tags[index] = tag;
        self.dirty[index] = write;
        Access::Miss { writeback }
    }

    /// Hit rate in percent.
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            100.0
        } else {
            self.hits as f64 / total as f64 * 100.0
        }
    }

    /// Invalidate everything and clear statistics.
    pub fn reset(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
        self.dirty.iter_mut().for_each(|v| *v = false);
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }

    /// Snapshot (hits, misses) — used for ROI deltas.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

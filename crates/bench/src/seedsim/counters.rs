//! Per-core performance counters and the derived metrics of Tables V/VI.

/// Raw event counters accumulated by a core. All counts are cumulative;
/// region-of-interest (ROI) measurement takes deltas between snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Core-local clock (cycles).
    pub cycles: u64,
    /// Instructions retired.
    pub instret: u64,
    /// Data-hazard stall cycles (load-use and nm-writeback bubbles).
    pub hazard_stalls: u64,
    /// Control-flow flush cycles (taken branches/jumps).
    pub flush_cycles: u64,
    /// Cycles stalled waiting for cache refills (both caches, incl. bus).
    pub mem_stall_cycles: u64,
    /// Cycles spent in the iterative divider beyond the first.
    pub div_stall_cycles: u64,
    /// I-cache hits / misses.
    pub icache_hits: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// D-cache hits.
    pub dcache_hits: u64,
    /// D-cache misses.
    pub dcache_misses: u64,
    /// Data-memory accesses of any kind (cached, scratchpad, MMIO).
    pub mem_accesses: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// `nmpn` instructions retired.
    pub nmpn: u64,
    /// `nmdec` instructions retired.
    pub nmdec: u64,
    /// `nmldl` instructions retired.
    pub nmldl: u64,
    /// `nmldh` instructions retired.
    pub nmldh: u64,
}

impl PerfCounters {
    /// Element-wise difference `self - base` (ROI delta).
    pub fn delta(&self, base: &PerfCounters) -> PerfCounters {
        PerfCounters {
            cycles: self.cycles - base.cycles,
            instret: self.instret - base.instret,
            hazard_stalls: self.hazard_stalls - base.hazard_stalls,
            flush_cycles: self.flush_cycles - base.flush_cycles,
            mem_stall_cycles: self.mem_stall_cycles - base.mem_stall_cycles,
            div_stall_cycles: self.div_stall_cycles - base.div_stall_cycles,
            icache_hits: self.icache_hits - base.icache_hits,
            icache_misses: self.icache_misses - base.icache_misses,
            dcache_hits: self.dcache_hits - base.dcache_hits,
            dcache_misses: self.dcache_misses - base.dcache_misses,
            mem_accesses: self.mem_accesses - base.mem_accesses,
            loads: self.loads - base.loads,
            stores: self.stores - base.stores,
            nmpn: self.nmpn - base.nmpn,
            nmdec: self.nmdec - base.nmdec,
            nmldl: self.nmldl - base.nmldl,
            nmldh: self.nmldh - base.nmldh,
        }
    }

    /// Total neuromorphic instructions.
    pub fn nm_total(&self) -> u64 {
        self.nmpn + self.nmdec + self.nmldl + self.nmldh
    }

    /// Derive the paper's reported metrics from these counters.
    pub fn metrics(&self, clock_hz: f64) -> Metrics {
        Metrics::from_counters(self, clock_hz)
    }
}

/// Number of equivalent base-ISA operations per full neuron update
/// (Eq. 3: 15 ops for the v/u update, plus 4 for the synaptic decay —
/// `N_IZHop = 19`, §VI-B).
pub const N_IZH_OP: u64 = 19;

/// The derived performance metrics reported in Tables V and VI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Cycles in the measured region.
    pub cycles: u64,
    /// Instructions retired in the measured region.
    pub instret: u64,
    /// Wall-clock seconds at the configured core frequency.
    pub exec_time_s: f64,
    /// Plain instructions-per-cycle (Eq. 8).
    pub ipc: f64,
    /// Effective IPC (Eq. 9): regular instructions plus `19 × updates`.
    pub ipc_eff: f64,
    /// Hazard-stall cycles as a percentage of all cycles.
    pub hazard_stall_pct: f64,
    /// All cache misses (I + D).
    pub all_cache_misses: u64,
    /// I-cache hit rate (%).
    pub icache_hit_pct: f64,
    /// D-cache hit rate (%).
    pub dcache_hit_pct: f64,
    /// Memory intensity: data accesses per 100 retired instructions.
    pub mem_intensity: f64,
}

impl Metrics {
    /// Compute all metrics from raw counters. The neuron-update count for
    /// `IPC_eff` is taken from the retired `nmpn` count; use
    /// [`Metrics::with_updates`] for baselines that update neurons with
    /// base-ISA instructions.
    pub fn from_counters(c: &PerfCounters, clock_hz: f64) -> Metrics {
        Self::with_updates(c, clock_hz, c.nmpn)
    }

    /// Compute metrics with an explicit neuron-update count (Eq. 9's
    /// `N_updates`).
    pub fn with_updates(c: &PerfCounters, clock_hz: f64, updates: u64) -> Metrics {
        let cyc = c.cycles.max(1) as f64;
        let reg_instr = c.instret - c.nm_total();
        let icache_total = c.icache_hits + c.icache_misses;
        let dcache_total = c.dcache_hits + c.dcache_misses;
        Metrics {
            cycles: c.cycles,
            instret: c.instret,
            exec_time_s: c.cycles as f64 / clock_hz,
            ipc: c.instret as f64 / cyc,
            ipc_eff: (reg_instr + updates * N_IZH_OP) as f64 / cyc,
            hazard_stall_pct: c.hazard_stalls as f64 / cyc * 100.0,
            all_cache_misses: c.icache_misses + c.dcache_misses,
            icache_hit_pct: if icache_total == 0 {
                100.0
            } else {
                c.icache_hits as f64 / icache_total as f64 * 100.0
            },
            dcache_hit_pct: if dcache_total == 0 {
                100.0
            } else {
                c.dcache_hits as f64 / dcache_total as f64 * 100.0
            },
            mem_intensity: if c.instret == 0 {
                0.0
            } else {
                c.mem_accesses as f64 / c.instret as f64 * 100.0
            },
        }
    }
}

//! Frozen copy of the **seed** simulator (commit `885a49a`), kept as the
//! perf-trajectory reference: `perf_baseline` runs the same workloads on
//! this interpreter and on the live `izhi_sim`, interleaved in one
//! process, so the reported speedup is immune to host-speed drift between
//! measurement sessions. Functionally and cycle-wise the two must agree —
//! the binary asserts identical simulated cycles/instret per workload.
//!
//! Do not "improve" this module; it is a measurement fixture. (Only the
//! `serde` derives and `#[cfg(test)]` blocks were stripped from the seed
//! sources.)

pub mod bus;
pub mod cache;
pub mod counters;
pub mod cpu;
pub mod mem;
pub mod mmio;
pub mod system;

pub use system::{System, SystemConfig};

//! # izhi-bench — experiment harness
//!
//! One generator function per table and figure of the paper. Each returns
//! the rendered text (and usually CSV-ish data) that the `tables` binary
//! writes to `results/`. Criterion micro-benchmarks live in `benches/`.
//!
//! | Experiment | Function | Paper reference |
//! |---|---|---|
//! | Table I   | [`table1`] | custom-instruction encodings |
//! | Table II  | [`table2`] | DCU approximation errors |
//! | Table III | [`table3`] | MAX10 dual-core utilisation |
//! | Table IV  | [`table4`] | Agilex-7 16/32/64-core utilisation |
//! | Table V   | [`table5`] | 80-20 performance metrics |
//! | Table VI  | [`table6`] | Sudoku performance metrics |
//! | Table VII | [`table7`] | FreePDK45/ASAP7 mapping |
//! | Fig. 2    | [`fig2`]   | 80-20 raster |
//! | Fig. 3    | [`fig3`]   | ISI histograms |
//! | Fig. 4    | [`fig4`]   | WTA topology |
//! | Fig. 5    | [`fig5`]   | floorplan fractions |
//! | §VI-C     | [`ablation_softfloat`] | NPU vs soft-float |
//! | §V-B      | [`ablation_csr_writeback`] | CSR-writeback fix |
//! | §VI-A     | [`ablation_cache_sweep`] | cache geometry / 3-core fallback |
//! | §VII      | [`scaling_study`] | bus vs NoC scaling projection |

pub mod battery;
pub mod gate;
pub mod seedsim;
pub mod serve;
pub mod supervise;

use std::fmt::Write as _;

use izhi_core::dcu::{Dcu, SHIFT_TABLES};
use izhi_hw::asic::{AsicLibrary, AsicReport};
use izhi_hw::blocks::Block;
use izhi_hw::fpga::{FpgaReport, FpgaTarget};
use izhi_isa::inst::{Inst, NmOp};
use izhi_isa::Reg;
use izhi_isa::{disassemble, encode};
use izhi_programs::engine::GuestImage;
use izhi_programs::engine::{run_workload, EngineConfig, Variant};
use izhi_programs::net8020::Net8020Workload;
use izhi_programs::scenario::{self, ScenarioParams, Workload};
use izhi_programs::sudoku_prog::SudokuWorkload;
use izhi_sim::Metrics;
use izhi_snn::analysis::{band_power, IsiHistogram};
use izhi_snn::simulate::{F64Simulator, FixedSimulator};
use izhi_snn::sudoku::{hard_corpus, SudokuGrid};

/// Paired single/dual-core Sudoku results (Table VI rows).
pub struct SudokuPair {
    /// Single-core run.
    pub one: izhi_programs::sudoku_prog::SudokuRunResult,
    /// Dual-core run.
    pub two: izhi_programs::sudoku_prog::SudokuRunResult,
}

/// Scale of a workload run: the paper's full size or a quick CI-sized one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper scale (1000 neurons × 1000 ticks; several puzzles).
    Full,
    /// Small scale for smoke runs.
    Quick,
}

impl Scale {
    fn net8020(self) -> (usize, usize, u32) {
        match self {
            Scale::Full => (800, 200, 1000),
            Scale::Quick => (160, 40, 300),
        }
    }

    fn sudoku(self) -> (usize, u32) {
        // (#puzzles from the hard corpus, tick budget per puzzle)
        match self {
            Scale::Full => (5, 45_000),
            Scale::Quick => (1, 2500),
        }
    }

    /// Registry parameters for the `net8020` scenario at this scale.
    fn net8020_params(self, n_cores: u32) -> ScenarioParams {
        let (n_exc, n_inh, ticks) = self.net8020();
        ScenarioParams::default()
            .with_n(n_exc + n_inh)
            .with_ticks(ticks)
            .with_cores(n_cores)
            .with_seed(5)
    }
}

/// Build a `net8020` instance through the scenario registry.
fn net8020_scenario(scale: Scale, n_cores: u32) -> Box<dyn Workload> {
    scenario::find("net8020")
        .expect("net8020 is registered")
        .build(&scale.net8020_params(n_cores))
}

/// Table I: the custom-instruction encodings.
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table I — custom ISA extension (opcode 0001011)");
    let _ = writeln!(out, "{:-<72}", "");
    let _ = writeln!(
        out,
        "{:<8} {:<8} {:<34} disassembly",
        "mnem", "funct3", "example encoding"
    );
    for (op, rd, rs1, rs2) in [
        (NmOp::Nmldl, Reg::ZERO, Reg::A6, Reg::A7),
        (NmOp::Nmldh, Reg::ZERO, Reg::A6, Reg::ZERO),
        (NmOp::Nmpn, Reg::A2, Reg::A6, Reg::A7),
        (NmOp::Nmdec, Reg::A1, Reg::A0, Reg::A2),
    ] {
        let inst = Inst::Nm { op, rd, rs1, rs2 };
        let word = encode(inst);
        let _ = writeln!(
            out,
            "{:<8} {:03b}      {:#010x} ({:032b})  {}",
            op.mnemonic(),
            op.funct3(),
            word,
            word,
            disassemble(inst)
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "Operand formats (paper Table I):");
    let _ = writeln!(
        out,
        "  nmldl: rs1 = {{b[31:16] Q4.11, a[15:0] Q4.11}}, rs2 = {{d[31:16] Q4.11, c[15:0] Q7.8}}"
    );
    let _ = writeln!(
        out,
        "  nmldh: rs1 bit0 = h (0: 0.5 ms, 1: 0.125 ms), bit1 = pin"
    );
    let _ = writeln!(
        out,
        "  nmpn : rs1 = VU word {{v[31:16] Q7.8, u[15:0] Q7.8}}, rs2 = Isyn Q15.16,"
    );
    let _ = writeln!(out, "         rd in = &VU word, rd out = spike flag");
    let _ = writeln!(
        out,
        "  nmdec: rs1 = Isyn Q15.16, rs2 = tau (1..9), rd = decayed Isyn"
    );
    out
}

/// Table II: DCU division-approximation errors.
pub fn table2() -> String {
    let paper_ae = [0.0, 0.3906, 0.0, 0.3906, 12.1093, 0.1953, 0.0];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table II — DCU division approximation (shift factors 1..9)"
    );
    let _ = writeln!(out, "{:-<78}", "");
    let _ = writeln!(
        out,
        "{:<6} {:<28} {:>14} {:>10} {:>10}",
        "div", "decomposition", "approx value", "AE [%]", "paper [%]"
    );
    for d in 2..=8u32 {
        let shifts = SHIFT_TABLES[d as usize - 1];
        let decomp = shifts
            .iter()
            .map(|s| format!("x>>{s}"))
            .collect::<Vec<_>>()
            .join(" + ");
        let _ = writeln!(
            out,
            "x/{:<4} {:<28} {:>14.9} {:>10.4} {:>10.4}",
            d,
            decomp,
            Dcu::approx_factor(d),
            Dcu::approximation_error_pct(d).abs(),
            paper_ae[d as usize - 2],
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "note: the paper prints 12.1093 % for /6, but its own decomposition\n\
         (x>>3 + x>>5 + x>>7 + x>>9 = 0.166015625) realises 0.3906 % — we\n\
         reproduce the decomposition, so we report the computed value."
    );
    out
}

fn fpga_rows(r: &FpgaReport, labels: [&str; 4]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<22} {:>12.0} ({:>5.1} %)",
        labels[0], r.used.logic, r.pct.logic
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>12.0} ({:>5.1} %)",
        labels[1], r.used.ff, r.pct.ff
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>12.1} ({:>5.1} %)",
        labels[2], r.used.memory, r.pct.memory
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>12.0} ({:>5.1} %)",
        labels[3], r.used.dsp, r.pct.dsp
    );
    out
}

/// Table III: dual-core MAX10 utilisation.
pub fn table3() -> String {
    let r = FpgaReport::for_cores(FpgaTarget::Max10, 2);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table III — dual-core IzhiRISC-V on Intel MAX10 (model)"
    );
    let _ = writeln!(out, "{:-<56}", "");
    let _ = writeln!(out, "  Frequency              30 MHz");
    out.push_str(&fpga_rows(
        &r,
        ["Logic elements", "FF", "BRAM [Kb]", "Emb. mult (9b)"],
    ));
    let _ = writeln!(
        out,
        "  paper: 49248 LE (99 %), 28235 FF (51 %), 346.468 Kb (21 %), 68 mult (24 %)"
    );
    let r3 = FpgaReport::for_cores(FpgaTarget::Max10, 3);
    let _ = writeln!(
        out,
        "  3 cores as configured: {} (paper: required shrinking caches to fit)",
        if r3.fits { "fits" } else { "does NOT fit" }
    );
    out
}

/// Table IV: Agilex-7 16/32/64-core utilisation plus the 192-core claim.
pub fn table4() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table IV — IzhiRISC-V systems on Intel Agilex-7 (model)"
    );
    let _ = writeln!(out, "{:-<56}", "");
    let _ = writeln!(out, "  Frequency              100 MHz");
    for n in [16, 32, 64] {
        let r = FpgaReport::for_cores(FpgaTarget::Agilex7, n);
        let _ = writeln!(out, "-- {n} cores:");
        out.push_str(&fpga_rows(&r, ["ALM", "FF", "RAM blocks", "DSP"]));
    }
    let _ = writeln!(
        out,
        "  paper @16: 107144 ALM / 95624 FF / 390 RAM / 152 DSP\n\
         \x20 paper @32: 216448 ALM / 186760 FF / 646 RAM / 304 DSP\n\
         \x20 paper @64: 420977 ALM / 372741 FF / 1158 RAM / 608 DSP"
    );
    let _ = writeln!(
        out,
        "  max cores that fit (model): {}  (paper projects up to 192)",
        FpgaReport::max_cores(FpgaTarget::Agilex7)
    );
    out
}

fn metric_rows(label: &str, m: &Metrics) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- {label}:");
    let _ = writeln!(out, "  Execution time [s]     {:>12.4}", m.exec_time_s);
    let _ = writeln!(out, "  IPC                    {:>12.4}", m.ipc);
    let _ = writeln!(out, "  IPC_eff                {:>12.4}", m.ipc_eff);
    let _ = writeln!(out, "  Hazard stalls [%]      {:>12.3}", m.hazard_stall_pct);
    let _ = writeln!(out, "  All cache misses       {:>12}", m.all_cache_misses);
    let _ = writeln!(out, "  I-cache hit rate [%]   {:>12.2}", m.icache_hit_pct);
    let _ = writeln!(out, "  D-cache hit rate [%]   {:>12.2}", m.dcache_hit_pct);
    let _ = writeln!(out, "  Mem intensity          {:>12.2}", m.mem_intensity);
    out
}

/// Table V: 80-20 network metrics for one and two cores.
pub fn table5(scale: Scale) -> String {
    let (n_exc, n_inh, ticks) = scale.net8020();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table V — 80-20 network ({} neurons, {ticks} steps, 1 ms step, 30 MHz)",
        n_exc + n_inh
    );
    let _ = writeln!(out, "{:-<66}", "");
    let single = net8020_scenario(scale, 1)
        .run()
        .expect("single-core run failed");
    let dual = net8020_scenario(scale, 2)
        .run()
        .expect("dual-core run failed");
    let speedup = single.exec_time_s() / dual.exec_time_s();
    let _ = writeln!(
        out,
        "  Speedup (dual vs single): {speedup:.3}x   (paper: 1.643x)"
    );
    out.push_str(&metric_rows("Single-core", &single.metrics[0]));
    out.push_str(&metric_rows("Dual-core, core #1", &dual.metrics[0]));
    out.push_str(&metric_rows("Dual-core, core #2", &dual.metrics[1]));
    let _ = writeln!(
        out,
        "  paper single-core: 7.870 s, IPC 0.5735, IPC_eff 0.6516, hazard 0.742 %,\n\
         \x20   misses 1306420, I$ 99.97 %, D$ 96.54 %, mem intensity 27.15\n\
         \x20 paper dual-core:  4.791 s/core, IPC ~0.52-0.53, IPC_eff ~0.65-0.66,\n\
         \x20   hazard 5.3-6.3 %, I$ 99.97 %, D$ 97.1-97.2 %, mem int. 28.9-30.1"
    );
    let _ = writeln!(out, "  total spikes: {}", single.raster.spikes.len());
    out
}

/// Table VI: Sudoku WTA metrics for one and two cores.
pub fn table6(scale: Scale) -> String {
    let (n_puzzles, ticks) = scale.sudoku();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table VI — Sudoku solver (729 neurons, 1 ms step, 30 MHz), {n_puzzles} hard puzzles"
    );
    let _ = writeln!(out, "{:-<66}", "");
    // The quick run keeps the tick budget small, so the registry eases the
    // instances (restores half the blanks from the classical solution).
    let base = ScenarioParams {
        ticks: Some(ticks),
        ease: Some(scale == Scale::Quick),
        ..Default::default()
    };
    let batch = scenario::find("sudoku_batch").expect("sudoku_batch is registered");
    /// The registry hands out `dyn Workload`; Table VI decodes solutions,
    /// so it needs the concrete Sudoku workload back.
    fn as_sudoku(wl: &dyn Workload) -> &SudokuWorkload {
        wl.as_any()
            .downcast_ref::<SudokuWorkload>()
            .expect("sudoku_batch wraps SudokuWorkload")
    }
    // Each simulated system is fully independent: fan the per-puzzle
    // single-core and dual-core runs out across host threads.
    let runs: Vec<(usize, SudokuPair, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_puzzles)
            .map(|k| {
                let base = &base;
                scope.spawn(move || {
                    let params = ScenarioParams {
                        seed: Some(k as u32),
                        ..*base
                    };
                    let one_wl = batch.build(&ScenarioParams {
                        n_cores: Some(1),
                        ..params
                    });
                    let one = as_sudoku(&*one_wl)
                        .solve(50)
                        .expect("single-core sudoku failed");
                    let two_wl = batch.build(&ScenarioParams {
                        n_cores: Some(2),
                        ..params
                    });
                    let two = as_sudoku(&*two_wl)
                        .solve(50)
                        .expect("dual-core sudoku failed");
                    let givens = as_sudoku(&*one_wl).puzzle.n_givens();
                    (k, SudokuPair { one, two }, givens)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut solved = 0;
    let mut t_single = Vec::new();
    let mut t_dual = Vec::new();
    let mut m_single: Vec<Metrics> = Vec::new();
    let mut m_dual: Vec<Metrics> = Vec::new();
    for (k, pair, givens) in &runs {
        let (one, two) = (&pair.one, &pair.two);
        if one.solution.is_some() {
            solved += 1;
        }
        let steps = one.solved_at.unwrap_or(ticks);
        // The guest always executes the full tick budget; per-step cost is
        // therefore exec_time / ticks (steps-to-solve is reported per line).
        t_single.push(one.workload.time_per_tick_ms());
        t_dual.push(two.workload.time_per_tick_ms());
        m_single.push(one.workload.metrics[0]);
        m_dual.push(two.workload.metrics[0]);
        let _ = writeln!(
            out,
            "  puzzle {k}: {} in {} steps ({} givens)",
            if one.solution.is_some() {
                "solved"
            } else {
                "NOT solved"
            },
            steps,
            givens
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let ts = avg(&t_single);
    let td = avg(&t_dual);
    let _ = writeln!(out, "  solved: {solved}/{n_puzzles}");
    let _ = writeln!(
        out,
        "  Execution time/step [ms] single: {ts:.4}  (paper: 2.0555)"
    );
    let _ = writeln!(
        out,
        "  Execution time/step [ms] dual:   {td:.4}  (paper: 1.2223)"
    );
    let _ = writeln!(out, "  Speedup: {:.3}x  (paper: 1.682x)", ts / td);
    let avg_m = |ms: &[Metrics], f: fn(&Metrics) -> f64| {
        ms.iter().map(f).sum::<f64>() / ms.len().max(1) as f64
    };
    let _ = writeln!(
        out,
        "  IPC (avg) single {:.4} / dual {:.4}   (paper: 0.5304 / 0.496, 0.419)",
        avg_m(&m_single, |m| m.ipc),
        avg_m(&m_dual, |m| m.ipc)
    );
    let _ = writeln!(
        out,
        "  IPC_eff (avg) single {:.4} / dual {:.4} (paper: 0.7564 / 0.8635, 0.7865)",
        avg_m(&m_single, |m| m.ipc_eff),
        avg_m(&m_dual, |m| m.ipc_eff)
    );
    let _ = writeln!(
        out,
        "  Hazard stalls [%] single {:.3} / dual {:.3} (paper: 5.136 / 6.48, 9.15)",
        avg_m(&m_single, |m| m.hazard_stall_pct),
        avg_m(&m_dual, |m| m.hazard_stall_pct)
    );
    let _ = writeln!(
        out,
        "  I$ hit [%] {:.3}, D$ hit [%] {:.4} (paper: 98.7 / ~100)",
        avg_m(&m_single, |m| m.icache_hit_pct),
        avg_m(&m_single, |m| m.dcache_hit_pct)
    );
    let _ = writeln!(
        out,
        "  Mem intensity {:.2} (paper: 21.4)",
        avg_m(&m_single, |m| m.mem_intensity)
    );
    out
}

/// Table VII: standard-cell mapping results for both libraries.
pub fn table7() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table VII — FreePDK45 and ASAP7 standard-cell mapping (model)"
    );
    let _ = writeln!(out, "{:-<70}", "");
    let r45 = AsicReport::generate(AsicLibrary::FreePdk45);
    let r7 = AsicReport::generate(AsicLibrary::Asap7);
    let _ = writeln!(
        out,
        "{:<22} {:>14} {:>14}  unit",
        "Metric", "FreePDK45", "ASAP7"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>14.3} {:>14.3}  um^2",
        "Total area", r45.total_area_um2, r7.total_area_um2
    );
    for block in [
        Block::FetchDecode,
        Block::ICache,
        Block::DCache,
        Block::Hazard,
        Block::Alu,
        Block::Npu,
        Block::Dcu,
        Block::Other,
    ] {
        let _ = writeln!(
            out,
            "{:<22} {:>14.3} {:>14.3}  um^2",
            block.name(),
            r45.block_area(block),
            r7.block_area(block)
        );
    }
    let _ = writeln!(
        out,
        "{:<22} {:>14.2} {:>14.2}  mW",
        "Total power", r45.total_power_mw, r7.total_power_mw
    );
    let _ = writeln!(
        out,
        "{:<22} {:>14.2} {:>14.2}  mW",
        "  Internal", r45.internal_mw, r7.internal_mw
    );
    let _ = writeln!(
        out,
        "{:<22} {:>14.2} {:>14.2}  mW",
        "  Switching", r45.switching_mw, r7.switching_mw
    );
    let _ = writeln!(
        out,
        "{:<22} {:>14.5} {:>14.5}  mW",
        "  Leakage", r45.leakage_mw, r7.leakage_mw
    );
    let _ = writeln!(
        out,
        "{:<22} {:>14.1} {:>14.1}  MHz",
        "Clock freq.", r45.clock_mhz, r7.clock_mhz
    );
    let _ = writeln!(
        out,
        "{:<22} {:>14.1} {:>14.1}  MUpd/s",
        "Throughput",
        r45.throughput_upd_s / 1e6,
        r7.throughput_upd_s / 1e6
    );
    let _ = writeln!(
        out,
        "{:<22} {:>14.3} {:>14.3}  GUpd/s/W",
        "Power efficiency",
        r45.upd_per_s_per_w / 1e9,
        r7.upd_per_s_per_w / 1e9
    );
    let _ = writeln!(
        out,
        "{:<22} {:>14.3} {:>14.3}  GInstr/s",
        "Peak neural IPS",
        r45.peak_neural_ips / 1e9,
        r7.peak_neural_ips / 1e9
    );
    let _ = writeln!(
        out,
        "paper: 95654.664 / 6599.375 um^2, 49.5 / 10.9 mW, 201.5 / 316.3 MHz,\n\
         \x20      67.6 / 105.4 MUpd/s, 1.371 / 9.67 GUpd/s/W, 3.022 / 4.74 GInstr/s"
    );
    out
}

/// Fig. 2: raster plot of the 80-20 network simulated on the guest cores.
/// Returns `(report, raster_csv)`.
pub fn fig2(scale: Scale) -> (String, String) {
    let (_, _, ticks) = scale.net8020();
    let wl = net8020_scenario(scale, 2);
    let res = wl.run().expect("fig2 run failed");
    let rate = res.raster.population_rate();
    let alpha = band_power(&rate, 8, 13);
    let gamma = band_power(&rate, 30, 80);
    let high = band_power(&rate, 150, 300);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 2 — 80-20 raster ({} neurons x {ticks} ms)",
        wl.cfg().n
    );
    let _ = writeln!(out, "{:-<66}", "");
    let _ = writeln!(out, "total spikes: {}", res.raster.spikes.len());
    let _ = writeln!(out, "mean rate: {:.2} Hz/neuron", res.raster.mean_rate_hz());
    let _ = writeln!(out, "alpha band power (8-13 Hz):  {alpha:.2}");
    let _ = writeln!(out, "gamma band power (30-80 Hz): {gamma:.2}");
    let _ = writeln!(out, "high band power (150-300 Hz): {high:.2}");
    let _ = writeln!(
        out,
        "rhythmic (alpha+gamma vs high-frequency floor): {:.1}x",
        (alpha + gamma) / high.max(1e-12)
    );
    let _ = writeln!(out, "\nASCII raster (rows = neuron groups, cols = time):");
    out.push_str(&res.raster.to_ascii(40, 100));
    (out, res.raster.to_csv())
}

/// Fig. 3: ISI histograms of the three arithmetic arms.
pub fn fig3(scale: Scale) -> String {
    let (_, _, ticks) = scale.net8020();
    let built = net8020_scenario(scale, 1);
    let guest = built.run().expect("fig3 guest run failed").raster;
    // The host reference arms (double / fixed) need the generated network.
    let wl = built
        .as_any()
        .downcast_ref::<Net8020Workload>()
        .expect("net8020 wraps Net8020Workload");

    let set_noise = |sim_noise: &mut [f64]| {
        for (i, ns) in sim_noise.iter_mut().enumerate() {
            *ns = if wl.net.is_excitatory(i) {
                wl.net.exc_noise
            } else {
                wl.net.inh_noise
            };
        }
    };
    let mut f64_sim = F64Simulator::new(&wl.net.network, 2, 901);
    set_noise(&mut f64_sim.noise_std);
    let double = f64_sim.run(ticks);
    let mut fx_sim = FixedSimulator::new(&wl.net.network, 2, 902);
    set_noise(&mut fx_sim.noise_std);
    let fixed = fx_sim.run(ticks);

    let bins = 10;
    let max = 300;
    let hg = IsiHistogram::from_raster(&guest, bins, max);
    let hd = IsiHistogram::from_raster(&double, bins, max);
    let hf = IsiHistogram::from_raster(&fixed, bins, max);
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 3 — ISI histograms ({bins} ms bins, 0-{max} ms)");
    let _ = writeln!(out, "{:-<66}", "");
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>12}",
        "ISI [ms]", "double", "fixed", "IzhiRISC-V"
    );
    let nd = hd.normalized();
    let nf = hf.normalized();
    let ng = hg.normalized();
    for i in 0..nd.len() {
        let _ = writeln!(
            out,
            "{:<10} {:>12.4} {:>12.4} {:>12.4}",
            format!("{}-{}", i as u32 * bins, (i as u32 + 1) * bins),
            nd[i],
            nf[i],
            ng[i]
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "similarity double vs fixed:      {:.3}",
        hd.similarity(&hf)
    );
    let _ = writeln!(
        out,
        "similarity double vs IzhiRISC-V: {:.3}",
        hd.similarity(&hg)
    );
    let _ = writeln!(
        out,
        "similarity fixed  vs IzhiRISC-V: {:.3}",
        hf.similarity(&hg)
    );
    let _ = writeln!(
        out,
        "peak ISI [ms]: double {}, fixed {}, guest {}",
        hd.peak_isi_ms(),
        hf.peak_isi_ms(),
        hg.peak_isi_ms()
    );
    out
}

/// Fig. 4: the WTA inhibition topology.
pub fn fig4() -> String {
    use izhi_snn::sudoku::{WtaNetwork, WtaParams};
    let puzzle = SudokuGrid([0; 81]);
    let wta = WtaNetwork::build(&puzzle, WtaParams::default());
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 4 — WTA inhibition topology (729 neurons)");
    let _ = writeln!(out, "{:-<66}", "");
    let _ = writeln!(out, "neurons: {}", wta.network.len());
    let _ = writeln!(
        out,
        "synapses: {} (28 inhibitory + 1 self-connection per neuron)",
        wta.network.n_synapses()
    );
    let set = WtaNetwork::conflict_set(4, 4, 5);
    let _ = writeln!(
        out,
        "example: neuron (row 4, col 4, digit 5) inhibits {} peers:",
        set.len()
    );
    for idx in &set {
        let (r, c, d) = WtaNetwork::coords(*idx);
        let _ = write!(out, " [{r},{c},{d}]");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "\nDOT export of that neuron's out-edges:");
    let _ = writeln!(out, "digraph wta {{");
    let _ = writeln!(out, "  n_4_4_5 [color=green];");
    for idx in &set {
        let (r, c, d) = WtaNetwork::coords(*idx);
        let _ = writeln!(out, "  n_4_4_5 -> n_{r}_{c}_{d} [color=blue];");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Fig. 5: floorplan area fractions for both libraries.
pub fn fig5() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 5 — core floorplan area fractions (model)");
    let _ = writeln!(out, "{:-<66}", "");
    for lib in [AsicLibrary::FreePdk45, AsicLibrary::Asap7] {
        let r = AsicReport::generate(lib);
        let _ = writeln!(out, "-- {}:", lib.name());
        for (block, frac) in r.area_fractions() {
            let bar = "#".repeat((frac * 120.0).round() as usize);
            let _ = writeln!(
                out,
                "  {:<18} {:>5.1} % {}",
                block.name(),
                frac * 100.0,
                bar
            );
        }
    }
    let _ = writeln!(out, "paper claims: NPU <= ~20 % of core area, DCU < 2 %");
    out
}

/// §VI-C ablation: per-timestep cost of NPU vs base-ISA fixed point vs
/// soft-float, on the Sudoku-sized network.
pub fn ablation_softfloat() -> String {
    let puzzle = hard_corpus(1)[0];
    let ticks = 60;
    let mut rows = Vec::new();
    for variant in [Variant::Npu, Variant::BaseFixed, Variant::SoftFloat] {
        let wl = SudokuWorkload::with_params(
            puzzle,
            izhi_snn::sudoku::WtaParams::default(),
            ticks,
            1,
            42,
            variant,
        );
        let res = wl.solve(50).expect("ablation run failed");
        rows.push((
            variant,
            res.workload.time_per_tick_ms(),
            res.workload.instret,
        ));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation §VI-C — per-timestep cost by arithmetic (729 neurons)"
    );
    let _ = writeln!(out, "{:-<66}", "");
    let _ = writeln!(
        out,
        "{:<12} {:>16} {:>16} {:>10}",
        "variant", "ms/step @30MHz", "instructions", "vs NPU"
    );
    let npu_t = rows[0].1;
    for (v, t, i) in &rows {
        let _ = writeln!(
            out,
            "{:<12} {:>16.4} {:>16} {:>9.1}x",
            format!("{v:?}"),
            t,
            i,
            t / npu_t
        );
    }
    let _ = writeln!(
        out,
        "paper: ~40x reduction in execution time per timestep vs the\n\
         soft-float implementation (§VI-C)"
    );
    out
}

/// §V-B ablation: the proposed CSR writeback for nm results removes the
/// nm-writeback hazard stalls.
pub fn ablation_csr_writeback() -> String {
    let (n_exc, n_inh, ticks) = Scale::Quick.net8020();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation §V-B — CSR writeback for nm-instruction results"
    );
    let _ = writeln!(out, "{:-<72}", "");
    let _ = writeln!(
        out,
        "The paper's kernel consumes each nm result immediately (its focus was\n\
         correctness, §V-B), so nm-writeback hazards stall the pipeline; CSR\n\
         writeback is the proposed fix. A scheduled kernel hides them instead."
    );
    for (label, scheduled, csr) in [
        (
            "naive kernel, register-file writeback (paper)",
            false,
            false,
        ),
        ("naive kernel, CSR writeback (proposed fix)   ", false, true),
        ("hazard-scheduled kernel (compiler fix)       ", true, false),
    ] {
        let mut wl = Net8020Workload::sized(n_exc, n_inh, ticks, 1, 5, Variant::Npu);
        wl.cfg.scheduled = scheduled;
        wl.cfg.system.csr_writeback = csr;
        let res = wl.run().expect("csr ablation run failed");
        let m = &res.metrics[0];
        let _ = writeln!(
            out,
            "  {label}: hazard stalls {:.3} %, IPC {:.4}, exec {:.4} s",
            m.hazard_stall_pct, m.ipc, m.exec_time_s
        );
    }
    out
}

/// Design-choice ablation: cache-geometry sweep on the 80-20 workload
/// (the §VI-A note — the 3-core MAX10 build needed "drastically" smaller
/// caches and paid for it).
pub fn ablation_cache_sweep() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation — cache geometry on the 80-20 workload (quick scale)"
    );
    let _ = writeln!(out, "{:-<72}", "");
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>10} {:>10} {:>12}",
        "I$/D$ size", "IPC", "I$ hit %", "D$ hit %", "exec [ms]"
    );
    for kib in [1u32, 2, 4, 8] {
        let mut wl = Net8020Workload::sized(160, 40, 200, 1, 5, Variant::Npu);
        wl.cfg.system.icache = izhi_sim::CacheConfig {
            size_bytes: kib * 1024,
            line_bytes: 16,
        };
        wl.cfg.system.dcache = izhi_sim::CacheConfig {
            size_bytes: kib * 1024,
            line_bytes: 32,
        };
        let res = wl.run().expect("cache sweep run failed");
        let m = &res.metrics[0];
        let _ = writeln!(
            out,
            "{:<16} {:>10.4} {:>10.2} {:>10.2} {:>12.2}",
            format!("{kib} KiB"),
            m.ipc,
            m.icache_hit_pct,
            m.dcache_hit_pct,
            m.exec_time_s * 1000.0
        );
    }
    // The paper's 3-core fallback: 20 MHz + 1 KiB caches.
    let mut wl = Net8020Workload::sized(160, 40, 200, 3, 5, Variant::Npu);
    wl.cfg.system = izhi_sim::SystemConfig::max10_triple_core_reduced();
    wl.cfg.system.sdram_size = 32 * 1024 * 1024;
    let three = wl.run().expect("3-core run failed");
    let two = Net8020Workload::sized(160, 40, 200, 2, 5, Variant::Npu)
        .run()
        .unwrap();
    let _ = writeln!(
        out,
        "\n3 cores @ 20 MHz, 1 KiB caches (the paper's fallback): {:.2} ms\n\
         2 cores @ 30 MHz, 4 KiB caches (the shipped config):    {:.2} ms\n\
         => the paper kept the dual-core build ({:.2}x faster)",
        three.exec_time_s() * 1000.0,
        two.exec_time_s() * 1000.0,
        three.exec_time_s() / two.exec_time_s()
    );
    out
}

/// Strong-scaling study (1..8 cores on the 80-20 workload) plus the
/// paper's §VI-A projection discussion: the conclusion notes that beyond
/// tens of cores "a different type of connectivity is in order, e.g. a
/// NoC structure in place of a common bus". We measure the shared-bus
/// build directly and extrapolate both interconnects analytically.
pub fn scaling_study() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Scaling — 80-20 workload, 1..8 cores on the shared bus (measured)"
    );
    let _ = writeln!(out, "{:-<72}", "");
    let _ = writeln!(
        out,
        "{:<7} {:>12} {:>10} {:>12} {:>14}",
        "cores", "exec [ms]", "speedup", "efficiency", "bus util [%]"
    );
    let base = Net8020Workload::sized(320, 80, 150, 1, 5, Variant::Npu)
        .run()
        .expect("scaling base run failed");
    let t1 = base.exec_time_s();
    for cores in [1u32, 2, 4, 8] {
        let res = Net8020Workload::sized(320, 80, 150, cores, 5, Variant::Npu)
            .run()
            .expect("scaling run failed");
        let t = res.exec_time_s();
        let speedup = t1 / t;
        // Bus utilisation approximated from miss traffic over wall cycles.
        let miss_cycles: u64 = res
            .counters
            .iter()
            .map(|c| (c.icache_misses + c.dcache_misses) * 50)
            .sum();
        let util = miss_cycles as f64 / res.cycles.max(1) as f64 * 100.0;
        let _ = writeln!(
            out,
            "{:<7} {:>12.2} {:>9.2}x {:>11.1}% {:>14.1}",
            cores,
            t * 1000.0,
            speedup,
            speedup / cores as f64 * 100.0,
            util.min(100.0)
        );
    }
    let _ = writeln!(
        out,
        "\nAnalytical projection to the Agilex-7 192-core regime (fixed per-core\n\
         miss traffic m = 0.006/instr, 66-cycle refills, IPC0 = 0.72):"
    );
    let _ = writeln!(
        out,
        "{:<7} {:>22} {:>22}",
        "cores", "shared bus [eff. IPC]", "4x4-mesh NoC [eff. IPC]"
    );
    for n in [16u32, 64, 128, 192] {
        // Shared bus: one transaction at a time. Offered load per core =
        // m * IPC * 66 cycles; the bus saturates at total load 1.
        let m = 0.006;
        let refill = 66.0;
        let ipc0: f64 = 0.72;
        let offered = m * ipc0 * refill; // bus cycles per core per cycle
        let bus_ipc = if (n as f64) * offered <= 1.0 {
            ipc0
        } else {
            ipc0 / ((n as f64) * offered) // throughput-bound
        };
        // NoC: per-link capacity; bisection of a sqrt(n) x sqrt(n) mesh
        // grows with sqrt(n), so per-core capacity degrades as sqrt(n)/n.
        let links = (n as f64).sqrt();
        let noc_ipc = if (n as f64) * offered <= links {
            ipc0
        } else {
            ipc0 * links / ((n as f64) * offered)
        };
        let _ = writeln!(out, "{:<7} {:>22.3} {:>22.3}", n, bus_ipc, noc_ipc);
    }
    let _ = writeln!(
        out,
        "=> the common bus collapses near ~25 cores for this traffic, while a\n\
         mesh sustains it into the low hundreds — quantifying the paper's\n\
         closing remark that a NoC is required for the 192-core system."
    );
    out
}

/// A quick self-check run used by the integration tests: a tiny NPU
/// workload end to end, returning its total spike count.
pub fn smoke_run() -> usize {
    let net = izhi_snn::gen8020::Net8020::with_size(40, 10, 7);
    let n = net.len();
    let bias = vec![0.0; n];
    let noise: Vec<f64> = (0..n)
        .map(|i| if net.is_excitatory(i) { 5.0 } else { 2.0 })
        .collect();
    let image = GuestImage::from_network(&net.network, &bias, &noise, 100, 3);
    let cfg = EngineConfig::new(n, 100, 1, Variant::Npu);
    run_workload(&cfg, &image, 1_000_000_000)
        .expect("smoke run failed")
        .raster
        .spikes
        .len()
}

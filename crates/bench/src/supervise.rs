//! Supervised scenario execution: panic isolation, wall-clock deadlines,
//! a structured failure taxonomy and a retry policy.
//!
//! Everything above the simulator that runs workloads in bulk — the
//! battery runner, the scenario service — funnels each run through
//! [`run_supervised`] so a misbehaving run degrades into a *structured,
//! attributable failure* instead of taking its host thread (and every
//! sibling job) down with it:
//!
//! * the attempt executes under `catch_unwind`, so a host panic becomes
//!   [`RunErrorKind::Panic`] instead of poisoning shared state;
//! * the wall-clock budget is installed as the system's cooperative
//!   watchdog ([`izhi_sim::SystemConfig::wall_limit`]), so a stalled run
//!   surfaces as [`RunErrorKind::WallClockTimeout`] even when the guest
//!   clock is not advancing;
//! * simulator errors and verification rejections are classified into
//!   [`RunErrorKind`], replacing the stringly error plumbing;
//! * host-side transients are retried with capped exponential backoff
//!   ([`RetryPolicy`]); deterministic guest failures are not (they would
//!   reproduce bit-identically).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use izhi_programs::engine::WorkloadResult;
use izhi_programs::scenario::Workload;
use izhi_sim::SimError;

/// Classification of a failed supervised run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunErrorKind {
    /// The run panicked on the host; the panic was caught and isolated.
    Panic,
    /// The guest trapped (or its image failed to load).
    GuestTrap,
    /// The guest-cycle budget ran out before the workload halted.
    CycleBudget,
    /// The wall-clock deadline fired: a host-side condition (loaded
    /// machine, stalled host thread) that says nothing about the guest.
    WallClockTimeout,
    /// The run completed but the scenario's verification hook rejected
    /// the result.
    VerifyFailed,
}

impl RunErrorKind {
    /// Stable lowercase label for rows, JSON and logs.
    pub fn label(self) -> &'static str {
        match self {
            RunErrorKind::Panic => "panic",
            RunErrorKind::GuestTrap => "guest-trap",
            RunErrorKind::CycleBudget => "cycle-budget",
            RunErrorKind::WallClockTimeout => "wall-clock-timeout",
            RunErrorKind::VerifyFailed => "verify-failed",
        }
    }

    /// Classify a simulator error.
    pub fn of_sim_error(e: &SimError) -> RunErrorKind {
        match e {
            // A segment that does not fit is a broken guest image — the
            // guest's fault, like a trap, and just as deterministic.
            SimError::Trap { .. } | SimError::LoadError { .. } => RunErrorKind::GuestTrap,
            SimError::Timeout { .. } => RunErrorKind::CycleBudget,
            SimError::WallClock { .. } => RunErrorKind::WallClockTimeout,
        }
    }
}

impl core::fmt::Display for RunErrorKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// A failed supervised run: the structured replacement for the stringly
/// `row.error`. Composes with `?` and `Box<dyn Error>` call sites;
/// [`std::error::Error::source`] exposes the underlying [`SimError`]
/// when there is one.
#[derive(Debug, Clone)]
pub struct RunError {
    /// Failure class.
    pub kind: RunErrorKind,
    /// Human-readable detail (panic payload, trap description,
    /// verification message).
    pub message: String,
    /// Attempts made, including the final failing one (>= 1).
    pub attempts: u32,
    /// The simulator error underneath, for error-chain consumers.
    pub source: Option<SimError>,
}

impl core::fmt::Display for RunError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} after {} attempt(s): {}",
            self.kind, self.attempts, self.message
        )
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source
            .as_ref()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

/// Retry policy with capped exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed (>= 1; 1 means no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// Whether a failure class is worth retrying. Guest-deterministic
    /// failures (trap, cycle budget, rejected verification) reproduce
    /// bit-identically, so retrying them only burns time; panics are
    /// treated the same way (the simulator is deterministic — a panic
    /// will recur). Only the wall clock depends on host conditions.
    pub fn retryable(&self, kind: RunErrorKind) -> bool {
        matches!(kind, RunErrorKind::WallClockTimeout)
    }

    /// Backoff before retry number `retry` (1-based): capped exponential.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// Supervision knobs for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SuperviseConfig {
    /// Wall-clock budget installed into the workload's system config
    /// before each attempt (`None` leaves the workload's own setting).
    pub wall_limit: Option<Duration>,
    /// Guest-cycle budget override (`None` uses the workload's own
    /// [`Workload::max_cycles`]).
    pub max_cycles: Option<u64>,
    /// Retry policy for retryable failure classes.
    pub retry: RetryPolicy,
}

/// A successful supervised run.
#[derive(Debug, Clone)]
pub struct Supervised {
    /// The workload result (verification already passed).
    pub result: WorkloadResult,
    /// Attempts it took (> 1 only after retried transients).
    pub attempts: u32,
}

/// Best-effort text of a caught panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_string()
    }
}

/// Run a workload under full supervision: panic isolation, the wall-clock
/// watchdog, result verification and the retry policy. Returns the first
/// attempt that runs *and verifies*, or the structured error of the last
/// attempt.
pub fn run_supervised(
    wl: &mut dyn Workload,
    sup: &SuperviseConfig,
) -> Result<Supervised, RunError> {
    if let Some(limit) = sup.wall_limit {
        wl.cfg_mut().system.wall_limit = Some(limit);
    }
    let max_cycles = sup.max_cycles.unwrap_or_else(|| wl.max_cycles());
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match attempt(&*wl, max_cycles) {
            Ok(result) => return Ok(Supervised { result, attempts }),
            Err((kind, message, source)) => {
                let budget = sup.retry.max_attempts.max(1);
                if attempts < budget && sup.retry.retryable(kind) {
                    std::thread::sleep(sup.retry.backoff(attempts));
                    continue;
                }
                return Err(RunError {
                    kind,
                    message,
                    attempts,
                    source,
                });
            }
        }
    }
}

/// One supervised attempt: run under `catch_unwind`, classify the
/// outcome, verify on success. Runs go through
/// [`Workload::run_budgeted`], so template-backed workloads take the
/// cached-snapshot path under exactly the same supervision as cold ones.
#[allow(clippy::type_complexity)]
fn attempt(
    wl: &dyn Workload,
    max_cycles: u64,
) -> Result<WorkloadResult, (RunErrorKind, String, Option<SimError>)> {
    let caught = catch_unwind(AssertUnwindSafe(|| wl.run_budgeted(max_cycles)));
    match caught {
        Err(payload) => Err((RunErrorKind::Panic, panic_message(&*payload), None)),
        Ok(Err(e)) => Err((RunErrorKind::of_sim_error(&e), e.to_string(), Some(e))),
        Ok(Ok(res)) => match wl.verify(&res) {
            Ok(()) => Ok(res),
            Err(msg) => Err((RunErrorKind::VerifyFailed, msg, None)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(300),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(50));
        assert_eq!(p.backoff(2), Duration::from_millis(100));
        assert_eq!(p.backoff(3), Duration::from_millis(200));
        assert_eq!(p.backoff(4), Duration::from_millis(300), "capped");
        assert_eq!(p.backoff(60), Duration::from_millis(300), "no overflow");
    }

    #[test]
    fn only_wall_clock_failures_are_retryable() {
        let p = RetryPolicy::default();
        assert!(p.retryable(RunErrorKind::WallClockTimeout));
        for kind in [
            RunErrorKind::Panic,
            RunErrorKind::GuestTrap,
            RunErrorKind::CycleBudget,
            RunErrorKind::VerifyFailed,
        ] {
            assert!(!p.retryable(kind), "{kind} must not be retried");
        }
    }

    #[test]
    fn sim_errors_classify_into_the_taxonomy() {
        use izhi_sim::SimError;
        assert_eq!(
            RunErrorKind::of_sim_error(&SimError::Timeout { max_cycles: 1 }),
            RunErrorKind::CycleBudget
        );
        assert_eq!(
            RunErrorKind::of_sim_error(&SimError::WallClock {
                limit: Duration::from_secs(1)
            }),
            RunErrorKind::WallClockTimeout
        );
        assert_eq!(
            RunErrorKind::of_sim_error(&SimError::LoadError { base: 0 }),
            RunErrorKind::GuestTrap
        );
    }

    #[test]
    fn run_error_chains_to_the_sim_error() {
        let err = RunError {
            kind: RunErrorKind::CycleBudget,
            message: "budget".into(),
            attempts: 1,
            source: Some(SimError::Timeout { max_cycles: 7 }),
        };
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        let src = boxed.source().expect("chained source");
        assert!(src.to_string().contains("7 cycles"), "{src}");
    }
}

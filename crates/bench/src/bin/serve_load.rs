//! Load generator for the scenario service: burst jobs past the queue
//! capacity, assert backpressure and failure isolation, print a report.
//!
//! Two modes:
//!
//! * `serve_load` — self-hosted: starts an in-process server on an
//!   ephemeral port, bursts against it, shuts it down. This is what the
//!   CI serve-smoke job runs.
//! * `serve_load --addr 127.0.0.1:7171` — bursts against an already
//!   running `izhirisc serve`.
//!
//! Exits non-zero when the burst violates any of the service guarantees:
//! accepted jobs must all finish, rejections must carry a retry hint,
//! health checks must be answered throughout, and injected faults must
//! fail structurally without taking the server down.

use std::time::Duration;

use izhi_bench::serve::{
    failure_isolated, generate_load, tiny_job_body, LoadReport, ServeConfig, Server,
};

fn usage() -> ! {
    eprintln!(
        "usage: serve_load [--addr HOST:PORT] [--jobs N] [--queue-cap N] [--workers N] [--faults]\n\
         \n\
         Bursts N jobs (default 50) against the scenario service. Without\n\
         --addr a server is started in-process on an ephemeral port with\n\
         the given --queue-cap (default 8) and --workers (default 2).\n\
         --faults seeds the burst with a host-panic job and a guest-trap\n\
         job and asserts both are isolated."
    );
    std::process::exit(2);
}

struct Args {
    addr: Option<String>,
    jobs: usize,
    queue_cap: usize,
    workers: usize,
    faults: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        jobs: 50,
        queue_cap: 8,
        workers: 2,
        faults: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => args.addr = Some(value("--addr")),
            "--jobs" => {
                args.jobs = value("--jobs").parse().unwrap_or_else(|_| usage());
            }
            "--queue-cap" => {
                args.queue_cap = value("--queue-cap").parse().unwrap_or_else(|_| usage());
            }
            "--workers" => {
                args.workers = value("--workers").parse().unwrap_or_else(|_| usage());
            }
            "--faults" => args.faults = true,
            "--no-faults" => args.faults = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage();
            }
        }
    }
    args
}

fn print_report(r: &LoadReport) {
    println!("submitted            {}", r.submitted);
    println!("accepted             {}", r.accepted);
    println!("rejected (429)       {}", r.rejected);
    println!("completed            {}", r.completed);
    println!("failed (structured)  {}", r.failed);
    if !r.failure_kinds.is_empty() {
        println!("failure kinds        {}", r.failure_kinds.join(", "));
    }
    println!(
        "health checks        {}/{} ok",
        r.health_ok, r.health_checks
    );
    println!("backpressure hinted  {}", r.backpressure_hinted);
    println!("wall                 {:.3} s", r.wall_s);
    println!("throughput           {:.2} jobs/s", r.throughput_jobs_per_s);
}

fn main() {
    let args = parse_args();
    let mut bodies: Vec<String> = (0..args.jobs as u32).map(tiny_job_body).collect();
    if args.faults && bodies.len() >= 2 {
        bodies[0] = "{\"scenario\": \"net8020\", \"seed\": 5, \"sched\": \"relaxed\", \
                     \"ticks\": 10, \"n\": 60, \"fault\": \"panic\"}"
            .to_string();
        bodies[1] = "{\"scenario\": \"net8020\", \"seed\": 6, \"sched\": \"relaxed\", \
                     \"ticks\": 10, \"n\": 60, \"fault\": \"trap\"}"
            .to_string();
    }

    let (report, served_inline) = match &args.addr {
        Some(addr) => (
            generate_load(addr, &bodies, Duration::from_secs(180)),
            false,
        ),
        None => {
            let handle = Server::start(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                queue_cap: args.queue_cap,
                workers: args.workers,
                ..Default::default()
            })
            .unwrap_or_else(|e| {
                eprintln!("error: failed to start in-process server: {e}");
                std::process::exit(1);
            });
            let addr = handle.addr().to_string();
            println!(
                "serving in-process on {addr} (queue cap {}, {} workers)",
                args.queue_cap, args.workers
            );
            let report = generate_load(&addr, &bodies, Duration::from_secs(180));
            handle.shutdown_and_join();
            (report, true)
        }
    };

    let report = report.unwrap_or_else(|e| {
        eprintln!("error: burst failed: {e}");
        std::process::exit(1);
    });
    print_report(&report);

    let mut failures = Vec::new();
    if report.accepted + report.rejected != report.submitted {
        failures.push("some submissions neither accepted nor backpressured".to_string());
    }
    if report.completed + report.failed != report.accepted {
        failures.push("some accepted jobs never finished".to_string());
    }
    if !report.backpressure_hinted {
        failures.push("a 429 lacked the retry_after_ms hint".to_string());
    }
    if report.health_ok != report.health_checks {
        failures.push(format!(
            "{} of {} health checks went unanswered",
            report.health_checks - report.health_ok,
            report.health_checks
        ));
    }
    if served_inline && args.jobs > args.queue_cap * 3 && report.rejected == 0 {
        // A burst far past capacity that never saw a 429 means the
        // bounded queue is not actually bounding.
        failures.push("burst far beyond queue capacity saw no backpressure".to_string());
    }
    if args.faults && args.jobs >= 2 && !failure_isolated(&report) {
        failures.push("injected faults were not isolated as structured failures".to_string());
    }
    if failures.is_empty() {
        println!("OK: service guarantees held under the burst");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}

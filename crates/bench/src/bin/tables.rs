//! `tables` — regenerate every table and figure of the paper.
//!
//! ```text
//! tables [--quick] <experiment|all>
//! experiments: table1 table2 table3 table4 table5 table6 table7
//!              fig2 fig3 fig4 fig5 ablation_softfloat ablation_csr
//! ```
//!
//! Output goes to stdout and to `results/<experiment>.txt`
//! (plus `results/fig2_raster.csv` for the raster data).

use std::fs;
use std::path::Path;

use izhi_bench::{self as bench, Scale};

fn write_result(name: &str, text: &str) {
    println!("{text}");
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let _ = fs::write(dir.join(format!("{name}.txt")), text);
    }
}

fn run_one(name: &str, scale: Scale) -> bool {
    match name {
        "table1" => write_result("table1", &bench::table1()),
        "table2" => write_result("table2", &bench::table2()),
        "table3" => write_result("table3", &bench::table3()),
        "table4" => write_result("table4", &bench::table4()),
        "table5" => write_result("table5", &bench::table5(scale)),
        "table6" => write_result("table6", &bench::table6(scale)),
        "table7" => write_result("table7", &bench::table7()),
        "fig2" => {
            let (report, csv) = bench::fig2(scale);
            write_result("fig2", &report);
            let _ = fs::create_dir_all("results");
            let _ = fs::write("results/fig2_raster.csv", csv);
        }
        "fig3" => write_result("fig3", &bench::fig3(scale)),
        "fig4" => write_result("fig4", &bench::fig4()),
        "fig5" => write_result("fig5", &bench::fig5()),
        "ablation_softfloat" => write_result("ablation_softfloat", &bench::ablation_softfloat()),
        "ablation_csr" => write_result("ablation_csr", &bench::ablation_csr_writeback()),
        "ablation_cache" => write_result("ablation_cache", &bench::ablation_cache_sweep()),
        "scaling" => write_result("scaling", &bench::scaling_study()),
        _ => return false,
    }
    true
}

const ALL: [&str; 15] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "ablation_softfloat",
    "ablation_csr",
    "ablation_cache",
    "scaling",
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if let Some(pos) = args.iter().position(|a| a == "--quick") {
        args.remove(pos);
        Scale::Quick
    } else {
        Scale::Full
    };
    if args.is_empty() {
        eprintln!("usage: tables [--quick] <{}|all>", ALL.join("|"));
        std::process::exit(2);
    }
    for arg in &args {
        if arg == "all" {
            for name in ALL {
                eprintln!(">>> {name}");
                run_one(name, scale);
            }
        } else if !run_one(arg, scale) {
            eprintln!("unknown experiment `{arg}`");
            std::process::exit(2);
        }
    }
}

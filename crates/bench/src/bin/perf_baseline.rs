//! `perf_baseline` — the repo's reproducible simulator-throughput
//! measurement and CI perf-regression gate.
//!
//! Every workload is built through the scenario registry
//! (`izhi_programs::scenario`), so these rows and the CLI/tests/benches
//! all measure the same definitions. Four kinds of rows:
//!
//! * **Workload battery** (self-test, 80-20 at quick/paper scale, the
//!   barrier-light 80-20 sweep, an eased Sudoku instance — on 1 and 2
//!   cores): host wall time plus simulated cycles/s and instructions/s on
//!   the live `izhi_sim`.
//! * **Seed-vs-live comparison**: selected rows run again on the frozen
//!   seed interpreter (`izhi_bench::seedsim`), *interleaved* with the live
//!   ones in the same process and repeated `REPS` times per session (best
//!   run kept), so the reported speedups are immune to host-speed drift
//!   between measurement sessions. Each single-core workload produces a
//!   headline row (superblocks + assembler relaxation on — the shipping
//!   configuration), a `_norelax` diagnostic row (relaxation off) and a
//!   `_nosb` diagnostic row (superblocks off). The `_norelax` row must
//!   agree with the seed bit- and cycle-exactly (cycles, instret, full
//!   packed spike log) — relaxation is the *only* thing allowed to change
//!   the instruction stream. The headline row must reproduce the seed's
//!   spike log word for word (raster timestamps are simulation ticks, so
//!   relaxation cannot move them) while retiring strictly fewer
//!   instructions; the `_nosb` row must be bit-identical to the headline
//!   row (superblock fusion is dispatch-only, never semantic). Dual-core
//!   rows must agree on the *spike raster as a set*: the seed's
//!   multi-core scheduler batches eight steps per pick, so its interleaving
//!   (and therefore cycle/spin counts and log order) differs from both the
//!   live exact schedule and the relaxed one — the physics may not.
//! * **Scheduling-mode rows**: dual-core workloads are measured under the
//!   exact scheduler (`*_exact`, cycle-faithful, fused two-core loop) *and*
//!   under `SchedMode::Relaxed` (the headline `*_2core` rows — the
//!   configuration multi-core sweeps actually use). Relaxed rows report
//!   the relaxed clock (one cycle per instruction); their rasters are
//!   asserted identical to the exact rows'.
//!
//! * **Scenario battery**: every scenario in the
//!   `izhi_programs::scenario` registry at its quick parameters, fanned
//!   over its battery seeds × every sched × timing combination ({exact,
//!   relaxed, relaxed-par} under Unit timing plus {relaxed-est,
//!   relaxed-par-est} under Estimated timing) via
//!   [`izhi_bench::battery::BatteryRunner`]. Each row records the
//!   order-independent raster hash, the clock it was measured on and its
//!   self-verification outcome; cross-mode hash identity is asserted
//!   before the rows are written. From the battery, an
//!   `estimated_accuracy` section reports each scenario's estimated-vs-
//!   exact simulated-cycle ratio (summed over battery seeds) — the
//!   figure that makes relaxed rows comparable to exact rows on
//!   simulated time, bounded by the CI gate.
//!
//! * **Service burst**: an in-process scenario service
//!   (`izhi_bench::serve`) takes a burst of tiny jobs — two of them
//!   deliberately faulty (host panic, guest trap) — through a small
//!   bounded queue. The `service` section records the observed
//!   throughput plus the guarantee booleans (health availability,
//!   hinted backpressure, failure isolation); the gate requires the
//!   booleans and forward progress, never an absolute jobs/s.
//!
//! * **Template throughput**: the repeat-seed quick battery — every
//!   scenario at its first battery seed, short service-shaped jobs —
//!   timed twice in-process: cold-building every run vs instantiating
//!   from the (initially cleared) template cache
//!   (`izhi_programs::template`). Per-run raster-hash/cycle/instret
//!   identity between the arms is asserted before timing is reported;
//!   the `battery_throughput` section records both arms' runs/s and
//!   their ratio, which the gate requires to be at least
//!   `THROUGHPUT_FLOOR` × (a same-host ratio, so it is not a runner
//!   speed lottery).
//!
//! ```text
//! cargo run --release --bin perf_baseline -- [out.json]
//!     [--check baseline.json] [--min-ratio 0.85] [--battery-only]
//! ```
//!
//! Writes `BENCH_9.json` (or the given path). With `--check`, the
//! single-core `speedup_vs_seed` entries of the fresh measurement are
//! compared against the committed baseline file (exit non-zero if any
//! entry fell below `min-ratio` × its baseline value), the headline
//! single-core entries must additionally clear the absolute
//! [`izhi_bench::gate::SINGLE_CORE_FLOOR`], the relaxed single-core rows
//! must clear the kernel-offload gate
//! ([`izhi_bench::gate::RELAXED_SINGLE_CORE_FLOOR`] on the quick row and
//! [`izhi_bench::gate::KERNEL_SPEEDUP_FLOOR`] for every kernel-on vs
//! kernel-off pair), every battery key of the
//! baseline must be present and verified in the fresh run, and — when
//! the baseline carries the sections — every `estimated_accuracy`
//! scenario must reproduce a ratio inside the
//! `ACCURACY_LO..=ACCURACY_HI` band of [`izhi_bench::gate`], the
//! `battery_throughput` experiment must clear its floor, and the
//! `instret_reduction` of the relaxation pass on the quick 80-20 row
//! must clear [`izhi_bench::gate::INSTRET_REDUCTION_FLOOR`]. That set
//! is the CI perf-regression gate. `--battery-only` runs and gates
//! just the battery rows (the CI smoke job).

use std::fmt::Write as _;
use std::time::Instant;

use izhi_bench::battery::{self, BatteryRow, BatteryRunner, BatterySpec};
use izhi_bench::seedsim;
use izhi_bench::serve::{self, LoadReport};
use izhi_isa::Assembler;
use izhi_programs::engine::{build_asm, run_workload, EngineConfig, GuestImage, WorkloadResult};
use izhi_programs::scenario::{self, ScenarioParams, Workload};
use izhi_programs::sudoku_prog::SudokuWorkload;
use izhi_programs::template;
use izhi_programs::{layout, selftest};
use izhi_sim::{SchedMode, System, SystemConfig};

/// Interleaved repetitions per comparison session.
const REPS: usize = 5;
/// Comparison sessions per workload (the best session's rows are kept;
/// host-speed drift on this shared VM makes single sessions undershoot).
const SESSIONS: usize = 5;
/// Interleaved repetitions for the (expensive) Sudoku rows.
const SUDOKU_REPS: usize = 3;

/// One measured workload.
struct Row {
    name: String,
    /// Scheduling mode annotation: "exact", "relaxed", "relaxed-par" or
    /// "seed".
    sched: &'static str,
    /// Host threads driving the simulation (1 for every sequential
    /// scheduler; the forced worker count for `relaxed-par` rows, so the
    /// row stays interpretable on single-CPU CI runners).
    host_threads: u32,
    wall_s: f64,
    sim_cycles: u64,
    sim_instret: u64,
    spikes: u64,
    /// Full packed spike log (`t<<16|neuron` words) for exactness checks;
    /// empty for rows that don't compare rasters.
    spike_log: Vec<u32>,
}

impl Row {
    fn cycles_per_s(&self) -> f64 {
        self.sim_cycles as f64 / self.wall_s
    }

    fn instr_per_s(&self) -> f64 {
        self.sim_instret as f64 / self.wall_s
    }

    fn keep_best(self, best: &mut Option<Row>) {
        if best.as_ref().is_none_or(|b| self.wall_s < b.wall_s) {
            *best = Some(self);
        }
    }
}

fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

fn sorted(log: &[u32]) -> Vec<u32> {
    let mut s = log.to_vec();
    s.sort_unstable();
    s
}

fn packed_log(res: &WorkloadResult) -> Vec<u32> {
    res.raster
        .spikes
        .iter()
        .map(|&(t, n)| izhi_snn::analysis::SpikeRaster::pack(t, n))
        .collect()
}

/// Build a measurement row from a timed live-interpreter run.
fn row_from(
    name: &str,
    sched: &'static str,
    host_threads: u32,
    wall_s: f64,
    res: &WorkloadResult,
) -> Row {
    Row {
        name: name.into(),
        sched,
        host_threads,
        wall_s,
        sim_cycles: res.cycles,
        sim_instret: res.instret,
        spikes: res.raster.spikes.len() as u64,
        spike_log: packed_log(res),
    }
}

fn selftest_row() -> Row {
    let prog = Assembler::new()
        .assemble(&selftest::battery_asm())
        .expect("battery assembles");
    let (wall_s, (exit, failures)) = time(|| {
        let mut sys = System::new(SystemConfig::default());
        assert!(sys.load_program(&prog));
        let exit = sys.run(50_000_000).expect("battery run");
        let failures = sys
            .console()
            .lines()
            .last()
            .and_then(|l| l.trim().parse::<u32>().ok())
            .unwrap_or(u32::MAX);
        (exit, failures)
    });
    assert_eq!(failures, 0, "guest self-test battery failed");
    Row {
        name: "selftest_battery".into(),
        sched: "exact",
        host_threads: 1,
        wall_s,
        sim_cycles: exit.cycles,
        sim_instret: exit.instret,
        spikes: 0,
        spike_log: Vec::new(),
    }
}

/// Mirror of `GuestImage::load_into` against the frozen seed system
/// (dense NPU variant only — the configuration the comparison rows use).
fn load_image_seed(sys: &mut seedsim::System, image: &GuestImage) {
    let mem = &mut sys.shared_mut().mem;
    for (i, p) in image.params.iter().enumerate() {
        let (rs1, rs2) = p.pack();
        mem.write_u32(layout::PARAMS + 8 * i as u32, rs1);
        mem.write_u32(layout::PARAMS + 8 * i as u32 + 4, rs2);
    }
    for (i, &vu) in image.init_vu.iter().enumerate() {
        mem.write_u32(layout::VU + 4 * i as u32, vu);
        mem.write_u32(layout::ISYN + 4 * i as u32, 0);
    }
    for (i, &w) in image.weights_q.iter().enumerate() {
        mem.write_u16(layout::WEIGHTS + 2 * i as u32, w as u16);
    }
    for (i, &x) in image.noise_q.iter().enumerate() {
        mem.write_u16(layout::NOISE + 2 * i as u32, x as u16);
    }
}

fn seed_config(cfg: &SystemConfig) -> seedsim::SystemConfig {
    seedsim::SystemConfig {
        n_cores: cfg.n_cores,
        clock_hz: cfg.clock_hz,
        sdram_size: cfg.sdram_size,
        scratch_size: cfg.scratch_size,
        icache: seedsim::cache::CacheConfig {
            size_bytes: cfg.icache.size_bytes,
            line_bytes: cfg.icache.line_bytes,
        },
        dcache: seedsim::cache::CacheConfig {
            size_bytes: cfg.dcache.size_bytes,
            line_bytes: cfg.dcache.line_bytes,
        },
        bus: seedsim::bus::BusTimings {
            first_word: cfg.bus.first_word,
            per_word: cfg.bus.per_word,
        },
        div_latency: cfg.div_latency,
        csr_writeback: cfg.csr_writeback,
        rng_seed: cfg.rng_seed,
    }
}

/// One timed run of a workload on the frozen seed interpreter (assembly,
/// system construction and image load are inside the timed region, exactly
/// like the live side's `wl.run()`).
fn seed_run(name: &str, asm: &str, cfg: &EngineConfig, image: &GuestImage) -> Row {
    let (wall_s, (exit, spike_log)) = time(|| {
        let prog = Assembler::new().assemble(asm).expect("engine assembles");
        let mut sys = seedsim::System::new(seed_config(&cfg.system));
        assert!(sys.load_program(&prog));
        load_image_seed(&mut sys, image);
        let exit = sys.run(8_000_000_000).expect("seed run");
        let spike_log = sys.shared().dev.spike_log.clone();
        (exit, spike_log)
    });
    Row {
        name: format!("{name}_seed"),
        sched: "seed",
        host_threads: 1,
        wall_s,
        sim_cycles: exit.cycles,
        sim_instret: exit.instret,
        spikes: spike_log.len() as u64,
        spike_log,
    }
}

/// One timed run on the live interpreter under the workload's configured
/// scheduling mode.
fn live_run(name: &str, sched: &'static str, wl: &dyn Workload) -> Row {
    let (wall_s, res) = time(|| wl.run().expect("live run"));
    row_from(name, sched, 1, wall_s, &res)
}

/// Build a registered scenario (the only workload-construction path this
/// binary uses).
fn build_scenario(name: &str, params: ScenarioParams) -> Box<dyn Workload> {
    scenario::find(name)
        .unwrap_or_else(|| panic!("scenario `{name}` is not registered"))
        .build(&params)
}

fn engine_asm(cfg: &EngineConfig) -> String {
    let decay = (1.0 - 0.5 / cfg.tau as f64) as f32;
    format!(".equ DECAY_F32, {:#x}\n{}", decay.to_bits(), build_asm(cfg))
}

/// Interleaved seed-vs-live measurement of one single-core 80-20 setup.
/// Returns `(seed, live, norelax, nosb)` rows, each the best of [`REPS`]
/// runs:
///
/// * `live` — the headline shipping configuration (superblocks + assembler
///   relaxation forced on, regardless of `IZHI_SUPERBLOCKS`/`IZHI_RELAX`
///   in the environment, so the row means the same thing on every host).
/// * `norelax` — relaxation off, superblocks on. Must match the seed
///   interpreter bit- and cycle-exactly (cycles, instret, full packed
///   spike log): the superblock interpreter alone is semantics- and
///   timing-transparent, and relaxation is the only pass allowed to
///   change the instruction stream.
/// * `nosb` — relaxation on, superblocks off. Must be bit-identical to
///   the headline row: block fusion is a dispatch optimisation only.
///
/// The headline row itself must reproduce the seed's spike log word for
/// word (raster timestamps are simulation ticks — relaxation cannot move
/// a spike) while retiring strictly fewer instructions.
///
/// Two further rows measure the relaxed single-core configuration (the
/// one kernel batches engage under): `relaxed` — `SchedMode::Relaxed`
/// with kernel offload on — and `relaxed_nokernel` — identical but with
/// kernels forced off. The `relaxed` row must still reproduce the seed's
/// spike log word for word (relaxed timing changes the clock, never a
/// raster tick), and the `nokernel` row must be bit-identical to the
/// `relaxed` one (cycles, instret, full spike log): kernel offload is a
/// dispatch optimisation, never a semantic one.
struct CmpRows1 {
    seed: Row,
    live: Row,
    norelax: Row,
    nosb: Row,
    relaxed: Row,
    nokernel: Row,
}

fn compare_rows_1core(name: &str, n: usize, ticks: u32) -> CmpRows1 {
    let params = ScenarioParams::default()
        .with_n(n)
        .with_ticks(ticks)
        .with_cores(1)
        .with_seed(5);
    let configure = |relax: bool, superblocks: bool, sched: SchedMode, kernels: bool| {
        let mut wl = build_scenario("net8020", params);
        wl.cfg_mut().system.asm_relax = relax;
        wl.cfg_mut().system.superblocks = superblocks;
        wl.cfg_mut().system.sched = sched;
        wl.cfg_mut().system.kernels = kernels;
        wl
    };
    let wl = configure(true, true, SchedMode::Exact, true);
    let wl_norelax = configure(false, true, SchedMode::Exact, true);
    let wl_nosb = configure(true, false, SchedMode::Exact, true);
    let wl_relaxed = configure(true, true, SchedMode::relaxed(), true);
    let wl_nokernel = configure(true, true, SchedMode::relaxed(), false);
    let asm = engine_asm(wl.cfg());
    let mut seed_best: Option<Row> = None;
    let mut live_best: Option<Row> = None;
    let mut norelax_best: Option<Row> = None;
    let mut nosb_best: Option<Row> = None;
    let mut relaxed_best: Option<Row> = None;
    let mut nokernel_best: Option<Row> = None;
    for _ in 0..REPS {
        let seed = seed_run(name, &asm, wl.cfg(), wl.image());
        let live = live_run(name, "exact", &*wl);
        let norelax = live_run(&format!("{name}_norelax"), "exact", &*wl_norelax);
        let nosb = live_run(&format!("{name}_nosb"), "exact", &*wl_nosb);
        let relaxed = live_run(&format!("{name}_relaxed"), "relaxed", &*wl_relaxed);
        let nokernel = live_run(
            &format!("{name}_relaxed_nokernel"),
            "relaxed",
            &*wl_nokernel,
        );
        // Relaxation off => bit- and cycle-exact vs the seed interpreter:
        // same cycles, same retired instructions, and the *full* packed
        // spike log word for word.
        assert_eq!(
            seed.sim_cycles, norelax.sim_cycles,
            "{name}: cycle drift (relax off)"
        );
        assert_eq!(
            seed.sim_instret, norelax.sim_instret,
            "{name}: instret drift (relax off)"
        );
        assert_eq!(
            seed.spike_log, norelax.spike_log,
            "{name}: raster drift (relax off)"
        );
        // Headline (relaxed) row: identical physics, strictly fewer
        // retired instructions.
        assert_eq!(
            seed.spike_log, live.spike_log,
            "{name}: relaxation moved a spike"
        );
        assert!(
            live.sim_instret < seed.sim_instret,
            "{name}: relaxation saved no instructions ({} vs seed {})",
            live.sim_instret,
            seed.sim_instret
        );
        // Superblocks off => bit-identical to the headline row.
        assert_eq!(
            live.sim_cycles, nosb.sim_cycles,
            "{name}: superblocks changed the cycle count"
        );
        assert_eq!(
            live.sim_instret, nosb.sim_instret,
            "{name}: superblocks changed instret"
        );
        assert_eq!(
            live.spike_log, nosb.spike_log,
            "{name}: superblocks changed the spike log"
        );
        // Relaxed row: same physics as the seed (raster ticks cannot
        // move), same retired stream as the exact headline row.
        assert_eq!(
            seed.spike_log, relaxed.spike_log,
            "{name}: relaxed scheduling moved a spike"
        );
        assert_eq!(
            live.sim_instret, relaxed.sim_instret,
            "{name}: relaxed scheduling changed instret"
        );
        // Kernels off => bit-identical to the kernel-on relaxed row.
        assert_eq!(
            relaxed.sim_cycles, nokernel.sim_cycles,
            "{name}: kernel offload changed the cycle count"
        );
        assert_eq!(
            relaxed.sim_instret, nokernel.sim_instret,
            "{name}: kernel offload changed instret"
        );
        assert_eq!(
            relaxed.spike_log, nokernel.spike_log,
            "{name}: kernel offload changed the spike log"
        );
        seed.keep_best(&mut seed_best);
        live.keep_best(&mut live_best);
        norelax.keep_best(&mut norelax_best);
        nosb.keep_best(&mut nosb_best);
        relaxed.keep_best(&mut relaxed_best);
        nokernel.keep_best(&mut nokernel_best);
    }
    CmpRows1 {
        seed: seed_best.unwrap(),
        live: live_best.unwrap(),
        norelax: norelax_best.unwrap(),
        nosb: nosb_best.unwrap(),
        relaxed: relaxed_best.unwrap(),
        nokernel: nokernel_best.unwrap(),
    }
}

/// Interleaved seed-vs-live measurement of the dual-core 80-20 setup:
/// seed (its own 8-step-batch scheduler), live exact (fused two-core
/// loop) and live relaxed (the headline multi-core configuration) run
/// back-to-back each rep. All three must produce the identical spike
/// raster *as a set*; cycle counts legitimately differ between the three
/// schedules and are reported per row.
fn compare_rows_2core(name: &str, n: usize, ticks: u32) -> (Row, Row, Row) {
    let params = ScenarioParams::default()
        .with_n(n)
        .with_ticks(ticks)
        .with_cores(2)
        .with_seed(5);
    let exact_wl = build_scenario("net8020", params);
    let mut relaxed_wl = build_scenario("net8020", params);
    relaxed_wl.cfg_mut().system.sched = SchedMode::relaxed();
    let asm = engine_asm(exact_wl.cfg());
    let mut seed_best: Option<Row> = None;
    let mut relaxed_best: Option<Row> = None;
    let mut exact_best: Option<Row> = None;
    for _ in 0..REPS {
        let seed = seed_run(name, &asm, exact_wl.cfg(), exact_wl.image());
        let relaxed = live_run(name, "relaxed", &*relaxed_wl);
        let exact = live_run(&format!("{name}_exact"), "exact", &*exact_wl);
        let reference = sorted(&seed.spike_log);
        assert_eq!(
            reference,
            sorted(&relaxed.spike_log),
            "{name}: relaxed raster drift"
        );
        assert_eq!(
            reference,
            sorted(&exact.spike_log),
            "{name}: exact raster drift"
        );
        seed.keep_best(&mut seed_best);
        relaxed.keep_best(&mut relaxed_best);
        exact.keep_best(&mut exact_best);
    }
    (
        seed_best.unwrap(),
        relaxed_best.unwrap(),
        exact_best.unwrap(),
    )
}

/// Barrier-light 80-20 sweep: one independent population per core, no
/// per-tick barriers. The dual-core relaxed row is the showcase
/// configuration; the single-core exact row (same block-diagonal image in
/// one chunk) is its reference; the `relaxed-par` row runs the identical
/// workload under `SchedMode::RelaxedParallel` with **2 host threads
/// forced** (recorded in the row), so the threaded path is measured — and
/// its results pinned — even on single-CPU CI runners. Rasters must match
/// across all three; the parallel row must additionally reproduce the
/// relaxed row's spike log, cycles and instret *exactly* (the scheduler's
/// bit-identity contract).
fn sweep_rows(name: &str, n_per_core: usize, ticks: u32) -> (Row, Row, Row) {
    const SWEEP_HOST_THREADS: u32 = 2;
    let params = ScenarioParams::default()
        .with_n(n_per_core)
        .with_ticks(ticks)
        .with_cores(2)
        .with_seed(5);
    let wl = build_scenario("net8020_sweep", params);
    let mut relaxed = build_scenario("net8020_sweep", params);
    relaxed.cfg_mut().system.sched = SchedMode::relaxed();
    let mut parallel = build_scenario("net8020_sweep", params);
    parallel.cfg_mut().system.sched = SchedMode::RelaxedParallel {
        quantum: SchedMode::DEFAULT_QUANTUM,
        host_threads: SWEEP_HOST_THREADS,
        timing: izhi_sim::TimingModel::Unit,
    };
    let mut one_cfg = wl.cfg().clone();
    one_cfg.n_cores = 1;
    one_cfg.system.n_cores = 1;
    let mut one_best: Option<Row> = None;
    let mut two_best: Option<Row> = None;
    let mut par_best: Option<Row> = None;
    for _ in 0..REPS {
        let (wall_s, res1) =
            time(|| run_workload(&one_cfg, wl.image(), 8_000_000_000).expect("sweep 1-core run"));
        let one = row_from(&format!("{name}_1core"), "exact", 1, wall_s, &res1);
        let (wall_s, res2) = time(|| relaxed.run().expect("sweep 2-core run"));
        let two = row_from(&format!("{name}_2core"), "relaxed", 1, wall_s, &res2);
        let (wall_s, res3) = time(|| parallel.run().expect("sweep 2-core parallel run"));
        let par = row_from(
            &format!("{name}_2core_par"),
            "relaxed-par",
            SWEEP_HOST_THREADS,
            wall_s,
            &res3,
        );
        assert_eq!(
            sorted(&one.spike_log),
            sorted(&two.spike_log),
            "{name}: partitioning changed the sweep raster"
        );
        // Bit-identity of the threaded scheduler vs the sequential relaxed
        // one: same spike log (order included), same relaxed clock, same
        // retired instructions.
        assert_eq!(
            two.spike_log, par.spike_log,
            "{name}: parallel scheduling changed the spike log"
        );
        assert_eq!(
            two.sim_cycles, par.sim_cycles,
            "{name}: parallel scheduling changed the cycle count"
        );
        assert_eq!(
            two.sim_instret, par.sim_instret,
            "{name}: parallel scheduling changed instret"
        );
        one.keep_best(&mut one_best);
        two.keep_best(&mut two_best);
        par.keep_best(&mut par_best);
    }
    (one_best.unwrap(), two_best.unwrap(), par_best.unwrap())
}

/// The quick-scale instance of the paper's Table VI flow: one hard puzzle
/// eased by restoring half the blanks, 2500-tick budget. Returns the
/// single-core exact row, the dual-core relaxed row and the dual-core
/// exact row, interleaved best-of-[`SUDOKU_REPS`]; all rasters must match.
fn sudoku_rows() -> (Row, Row, Row) {
    let run_one = |name: &str, sched: &'static str, cores: u32, mode: SchedMode| -> Row {
        let mut wl = build_scenario(
            "sudoku",
            ScenarioParams::default()
                .with_ticks(2500)
                .with_cores(cores)
                .with_seed(100),
        );
        wl.cfg_mut().system.sched = mode;
        let sudoku = wl
            .as_any()
            .downcast_ref::<SudokuWorkload>()
            .expect("sudoku wraps SudokuWorkload");
        let (wall_s, res) = time(|| sudoku.solve(50).expect("sudoku run"));
        row_from(name, sched, 1, wall_s, &res.workload)
    };
    let mut one_best: Option<Row> = None;
    let mut relaxed_best: Option<Row> = None;
    let mut exact_best: Option<Row> = None;
    for _ in 0..SUDOKU_REPS {
        let one = run_one("sudoku_quick_1core", "exact", 1, SchedMode::Exact);
        let relaxed = run_one("sudoku_quick_2core", "relaxed", 2, SchedMode::relaxed());
        let exact = run_one("sudoku_quick_2core_exact", "exact", 2, SchedMode::Exact);
        let reference = sorted(&one.spike_log);
        assert_eq!(
            reference,
            sorted(&relaxed.spike_log),
            "sudoku relaxed raster drift"
        );
        assert_eq!(
            reference,
            sorted(&exact.spike_log),
            "sudoku exact raster drift"
        );
        one.keep_best(&mut one_best);
        relaxed.keep_best(&mut relaxed_best);
        exact.keep_best(&mut exact_best);
    }
    (
        one_best.unwrap(),
        relaxed_best.unwrap(),
        exact_best.unwrap(),
    )
}

fn json(
    rows: &[Row],
    speedups: &[(String, f64)],
    reductions: &[(String, f64)],
    battery: &[BatteryRow],
    accuracy: &[(String, f64)],
    service: Option<&LoadReport>,
    throughput: Option<&izhi_bench::gate::ThroughputSummary>,
) -> String {
    let mut out = String::from("{\n  \"schema\": \"izhirisc-perf-baseline-v11\",\n");
    let _ = writeln!(
        out,
        "  \"methodology\": \"seed rows: frozen seed interpreter, interleaved with live rows in-process, best of {REPS} reps x {SESSIONS} sessions; 1-core workloads produce a headline row (superblock interpreter + assembler relaxation on), a _norelax diagnostic row (relaxation off; asserted cycle/instret/spike-log identical to the seed — the superblock interpreter is timing-transparent) and a _nosb diagnostic row (superblocks off; asserted bit-identical to the headline row — fusion is dispatch-only), a _relaxed row (SchedMode::Relaxed with kernel offload on — the configuration relaxed sweeps ship; asserted seed spike-log word identity and headline-row instret identity) and a _relaxed_nokernel row (kernels forced off; asserted cycle/instret/spike-log bit-identical to the _relaxed row — kernel offload is dispatch-only); the headline row asserts seed spike-log word identity plus strictly fewer retired instructions; instret_reduction records the headline row's fractional instret saving vs the seed (deterministic, gated on the quick row); 2-core rows assert spike-raster set identity across seed/exact/relaxed schedules; relaxed rows run SchedMode::Relaxed (clock = 1 cycle per instruction, blocking barriers) and report that clock; relaxed-par rows run SchedMode::RelaxedParallel with the recorded host_threads forced and assert spike-log/cycle/instret bit-identity with the relaxed row (host_threads on sequential rows is 1); battery rows: every registered scenario at quick scale, seeds x (sched x timing) combinations sharded across host threads, raster-hash identity asserted across all combinations and each scenario's verification hook recorded; plastic (STDP) rows additionally record an order-independent hash of the final weight state, asserted bit-identical across all combinations; timing records the row's clock (exact = cycle-accurate, unit = 1 cycle/instruction, estimated = static per-op-class CostTable costs); estimated_accuracy: per scenario, estimated-vs-exact sim-cycle ratio summed over battery seeds (the gate bounds it); service: in-process scenario-service burst (bounded queue, supervised workers, two injected faults) — the gate requires health_ok/backpressure_hinted/failure_isolated and positive throughput, never an absolute jobs/s; battery_throughput: the repeat-seed quick battery (every scenario, first battery seed, {THROUGHPUT_TICKS}-tick service-shaped jobs, {THROUGHPUT_REPEATS} repeats) timed twice in-process — cold-building every run vs instantiating from the initially cleared template cache — with per-run hash/cycle/instret identity asserted between the arms; the gate requires cached/cold >= the floor (a same-host ratio, not an absolute runs/s)\","
    );
    let _ = writeln!(out, "  \"workloads\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"sched\": \"{}\", \"host_threads\": {}, \
             \"wall_s\": {:.6}, \"sim_cycles\": {}, \
             \"sim_instret\": {}, \"spikes\": {}, \"sim_cycles_per_s\": {:.0}, \
             \"sim_instr_per_s\": {:.0}}}",
            r.name,
            r.sched,
            r.host_threads,
            r.wall_s,
            r.sim_cycles,
            r.sim_instret,
            r.spikes,
            r.cycles_per_s(),
            r.instr_per_s(),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"battery\": {},", battery::rows_json(battery));
    if let Some(s) = service {
        let _ = writeln!(
            out,
            "  \"service\": {{\"jobs\": {}, \"accepted\": {}, \"rejected\": {}, \
             \"completed\": {}, \"failed\": {}, \"throughput_jobs_per_s\": {:.2}, \
             \"health_ok\": {}, \"backpressure_hinted\": {}, \"failure_isolated\": {}}},",
            s.submitted,
            s.accepted,
            s.rejected,
            s.completed,
            s.failed,
            s.throughput_jobs_per_s,
            s.health_ok == s.health_checks,
            s.backpressure_hinted,
            serve::failure_isolated(s),
        );
    }
    if let Some(t) = throughput {
        let _ = writeln!(
            out,
            "  \"battery_throughput\": {{\"runs\": {}, \"ticks\": {THROUGHPUT_TICKS}, \
             \"repeats\": {THROUGHPUT_REPEATS}, \"cold_runs_per_s\": {:.2}, \
             \"cached_runs_per_s\": {:.2}, \"speedup\": {:.3}}},",
            t.runs,
            t.cold_runs_per_s,
            t.cached_runs_per_s,
            t.speedup(),
        );
    }
    let _ = writeln!(out, "  \"estimated_accuracy\": {{");
    for (i, (name, r)) in accuracy.iter().enumerate() {
        let _ = write!(out, "    \"{name}\": {r:.3}");
        out.push_str(if i + 1 < accuracy.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(out, "  }},");
    if !reductions.is_empty() {
        let _ = writeln!(out, "  \"instret_reduction\": {{");
        for (i, (name, r)) in reductions.iter().enumerate() {
            let _ = write!(out, "    \"{name}\": {r:.4}");
            out.push_str(if i + 1 < reductions.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = writeln!(out, "  }},");
    }
    let _ = writeln!(out, "  \"speedup_vs_seed\": {{");
    for (i, (name, s)) in speedups.iter().enumerate() {
        let _ = write!(out, "    \"{name}\": {s:.3}");
        out.push_str(if i + 1 < speedups.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// Run the quick scenario battery: every registered scenario, its battery
/// seeds × {exact, relaxed, relaxed-par(2 host threads)}, sharded across
/// host worker threads. Cross-mode raster-hash identity and per-row
/// verification are asserted before the rows are reported.
fn battery_rows() -> Vec<BatteryRow> {
    const BATTERY_HOST_THREADS: u32 = 2;
    let specs: Vec<BatterySpec> = scenario::registry()
        .iter()
        .map(|s| BatterySpec::quick(s, BATTERY_HOST_THREADS))
        .collect();
    let rows = BatteryRunner::auto()
        .run(&specs)
        .expect("battery run failed");
    if let Err(e) = battery::check_rows(&rows) {
        eprintln!("{}", battery::rows_table(&rows));
        panic!("scenario battery failed: {e}");
    }
    rows
}

/// The CI regression gate (see [`izhi_bench::gate`] for the testable
/// core): every single-core `speedup_vs_seed` entry of the committed
/// baseline must be reproduced at `min_ratio` × its value or better, and
/// a baseline entry missing from the fresh measurement is an error, not a
/// silent pass. Multi-core / relaxed entries are informational only —
/// they depend on host parallel/throughput behaviour CI runners don't
/// promise.
fn check_gate(fresh: &[(String, f64)], baseline_path: &str, min_ratio: f64) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    println!("\nperf gate vs {baseline_path} (min ratio {min_ratio:.2}):");
    let report = izhi_bench::gate::check_gate(fresh, &text, min_ratio);
    for e in &report.checked {
        println!(
            "  {}: {:.3}x vs baseline {:.3}x (ratio {:.3})",
            e.name,
            e.fresh,
            e.baseline,
            e.ratio()
        );
    }
    for f in &report.failures {
        println!("  {f}");
    }
    report.passed()
}

/// The absolute-floor side of the CI gate (core in [`izhi_bench::gate`]):
/// every headline single-core speedup (the `*_1core` entries, excluding
/// the `_norelax`/`_nosb` diagnostic rows) must reach
/// [`izhi_bench::gate::SINGLE_CORE_FLOOR`] outright — not merely hold its
/// ratio vs a committed baseline, which would let the floor erode one
/// re-baseline at a time.
fn check_floor_gate(fresh: &[(String, f64)]) -> bool {
    let floor = izhi_bench::gate::SINGLE_CORE_FLOOR;
    let report = izhi_bench::gate::check_floor_gate(fresh, floor);
    println!("\nabsolute single-core floor ({floor:.1}x):");
    for e in &report.checked {
        println!("  {}: {:.3}x", e.name, e.fresh);
    }
    for f in &report.failures {
        println!("  {f}");
    }
    report.passed()
}

/// The kernel-offload side of the CI gate (core in [`izhi_bench::gate`]):
/// the relaxed quick row must clear the absolute
/// [`izhi_bench::gate::RELAXED_SINGLE_CORE_FLOOR`] and every `*_relaxed`
/// row must beat its `*_relaxed_nokernel` twin by at least
/// [`izhi_bench::gate::KERNEL_SPEEDUP_FLOOR`]. Both are absolute,
/// same-host ratios — no committed baseline is consulted.
fn check_kernel_gate(fresh: &[(String, f64)]) -> bool {
    let relaxed_floor = izhi_bench::gate::RELAXED_SINGLE_CORE_FLOOR;
    let kernel_floor = izhi_bench::gate::KERNEL_SPEEDUP_FLOOR;
    let report = izhi_bench::gate::check_kernel_gate(fresh, relaxed_floor, kernel_floor);
    println!(
        "\nkernel-offload gate (relaxed quick floor {relaxed_floor:.1}x, \
         kernel-on/off floor {kernel_floor:.2}x):"
    );
    for e in &report.checked {
        println!("  {}: kernel-on/off {:.3}x", e.name, e.fresh);
    }
    for f in &report.failures {
        println!("  {f}");
    }
    report.passed()
}

/// The relaxation side of the CI gate (core in [`izhi_bench::gate`]):
/// every workload of the baseline's `instret_reduction` section must be
/// reproduced, and the quick 80-20 row's reduction must reach
/// [`izhi_bench::gate::INSTRET_REDUCTION_FLOOR`]. The reduction is a
/// deterministic property of the emitted code, so this gate carries no
/// host noise at all. Baselines predating the relaxation pass (schema <=
/// v9) skip it.
fn check_instret_gate(reductions: &[(String, f64)], baseline_path: &str) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    if !izhi_bench::gate::has_instret_reduction(&text) {
        println!("instret gate: baseline {baseline_path} predates assembler relaxation — skipped");
        return true;
    }
    let floor = izhi_bench::gate::INSTRET_REDUCTION_FLOOR;
    let report = izhi_bench::gate::check_instret_gate(reductions, &text, floor);
    println!("instret-reduction gate vs {baseline_path} (quick-row floor {floor:.2}):");
    for e in &report.checked {
        println!(
            "  {}: {:.2}% fewer retired instructions (baseline {:.2}%)",
            e.name,
            e.fresh * 100.0,
            e.baseline * 100.0
        );
    }
    for f in &report.failures {
        println!("  {f}");
    }
    report.passed()
}

/// Per-scenario estimated-vs-exact simulated-cycle ratio, from the
/// battery rows: `sum(relaxed-est cycles) / sum(exact cycles)` over each
/// scenario's battery seeds (summing makes the ratio seed-stable). The
/// sequential estimated rows are used — `relaxed-par-est` is bit-identical
/// to them by the scheduler contract, so it would add nothing.
fn estimated_accuracy(battery: &[BatteryRow]) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    for row in battery {
        if row.sched != "exact" || out.iter().any(|(n, _)| *n == row.scenario) {
            continue;
        }
        let sum = |sched: &str| -> u64 {
            battery
                .iter()
                .filter(|r| r.scenario == row.scenario && r.sched == sched)
                .map(|r| r.sim_cycles)
                .sum()
        };
        let (exact, est) = (sum("exact"), sum("relaxed-est"));
        if exact > 0 && est > 0 {
            out.push((row.scenario.clone(), est as f64 / exact as f64));
        }
    }
    out
}

/// The estimated-accuracy side of the CI gate (core in
/// [`izhi_bench::gate`]): every scenario of the baseline's
/// `estimated_accuracy` section must reproduce a ratio inside the allowed
/// band. Baselines predating the section (schema <= v5) skip this gate.
fn check_accuracy_gate(accuracy: &[(String, f64)], baseline_path: &str) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    if !izhi_bench::gate::has_estimated_accuracy(&text) {
        println!("accuracy gate: baseline {baseline_path} predates estimated timing — skipped");
        return true;
    }
    let (lo, hi) = (izhi_bench::gate::ACCURACY_LO, izhi_bench::gate::ACCURACY_HI);
    let report = izhi_bench::gate::check_accuracy_gate(accuracy, &text, lo, hi);
    println!(
        "accuracy gate vs {baseline_path} (band [{lo:.2}, {hi:.2}]): {} scenarios checked",
        report.checked.len()
    );
    for e in &report.checked {
        println!(
            "  {}: estimated/exact cycle ratio {:.3} (baseline {:.3})",
            e.name, e.fresh, e.baseline
        );
    }
    for f in &report.failures {
        println!("  {f}");
    }
    report.passed()
}

/// The battery side of the CI gate (core in [`izhi_bench::gate`]): every
/// battery key of the committed baseline must be present *and* verified in
/// the fresh run.
fn check_battery_gate(battery: &[BatteryRow], baseline_path: &str) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let fresh: Vec<(String, bool)> = battery.iter().map(|r| (r.key(), r.verified)).collect();
    let report = izhi_bench::gate::check_battery_gate(&fresh, &text);
    println!(
        "battery gate vs {baseline_path}: {} keys checked",
        report.checked.len()
    );
    for f in &report.failures {
        println!("  {f}");
    }
    report.passed()
}

/// Number of jobs in the service burst (queue cap 8, 2 workers — far
/// past capacity, so backpressure must fire).
const SERVICE_BURST_JOBS: usize = 40;

/// Run the in-process service burst (see [`serve::service_benchmark`]).
fn service_burst() -> LoadReport {
    serve::service_benchmark(SERVICE_BURST_JOBS).expect("service burst failed")
}

fn service_summary(r: &LoadReport) -> izhi_bench::gate::ServiceSummary {
    izhi_bench::gate::ServiceSummary {
        completed: r.completed,
        throughput_jobs_per_s: r.throughput_jobs_per_s,
        health_ok: r.health_ok == r.health_checks,
        backpressure_hinted: r.backpressure_hinted,
        failure_isolated: serve::failure_isolated(r),
    }
}

/// The service side of the CI gate (core in [`izhi_bench::gate`]): when
/// the baseline carries a `service` section, the fresh burst must exist
/// and every service guarantee must hold. Baselines predating the
/// service (schema <= v6) skip this gate.
fn check_service_gate(service: Option<&LoadReport>, baseline_path: &str) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    if !izhi_bench::gate::has_service(&text) {
        println!("service gate: baseline {baseline_path} predates the scenario service — skipped");
        return true;
    }
    let summary = service.map(service_summary);
    let report = izhi_bench::gate::check_service_gate(summary.as_ref(), &text);
    for e in &report.checked {
        println!(
            "service gate vs {baseline_path}: {} {:.2} jobs/s (baseline {:.2}, informational)",
            e.name, e.fresh, e.baseline
        );
    }
    for f in &report.failures {
        println!("  {f}");
    }
    report.passed()
}

/// Repeats per scenario and arm of the template-throughput experiment.
/// The cached arm pays one template build (the cache is cleared first)
/// plus `THROUGHPUT_REPEATS` instantiations; more repeats amortise the
/// build further, fewer keep the experiment honest about it.
const THROUGHPUT_REPEATS: usize = 6;
/// Tick budget of the experiment's service-shaped jobs. Short runs are
/// the regime run templates exist for — a service stamping out many
/// small jobs of one shape — and they keep guest execution time from
/// drowning the build cost under measurement. The quick battery itself
/// (longer runs, build cost amortised anyway) is gated elsewhere.
const THROUGHPUT_TICKS: u32 = 25;

/// Repeat-seed job shape for one scenario: quick parameters with the
/// throughput tick budget and the scenario's first battery seed pinned.
fn throughput_params(sc: &scenario::Scenario) -> ScenarioParams {
    ScenarioParams::default()
        .with_ticks(THROUGHPUT_TICKS)
        .with_seed(sc.battery_seeds[0])
}

/// Measure the repeat-seed quick battery twice — cold-building every run
/// vs instantiating from the (initially cleared) template cache — and
/// assert the two arms bit-identical per run before reporting runs/s.
fn battery_throughput() -> izhi_bench::gate::ThroughputSummary {
    let registry = scenario::registry();
    let mut cold_results: Vec<(&str, u64, u64, u64)> = Vec::new();
    let (cold_s, ()) = time(|| {
        for sc in registry {
            let over = throughput_params(sc);
            for _ in 0..THROUGHPUT_REPEATS {
                let wl = sc.build_quick(&over);
                let res = wl.run_cold().expect("cold throughput run");
                cold_results.push((sc.name, res.raster_hash(), res.cycles, res.instret));
            }
        }
    });
    template::clear_cache();
    let mut cached_results: Vec<(&str, u64, u64, u64)> = Vec::new();
    let (cached_s, ()) = time(|| {
        for sc in registry {
            let over = throughput_params(sc);
            let seed = over.seed.expect("throughput params pin a seed");
            for _ in 0..THROUGHPUT_REPEATS {
                let inst = sc.template_quick(&over).instantiate(seed, SchedMode::Exact);
                let res = inst.run().expect("cached throughput run");
                cached_results.push((sc.name, res.raster_hash(), res.cycles, res.instret));
            }
        }
    });
    assert_eq!(
        cold_results, cached_results,
        "template instantiation drifted from the cold build"
    );
    let runs = cold_results.len();
    izhi_bench::gate::ThroughputSummary {
        runs,
        cold_runs_per_s: runs as f64 / cold_s,
        cached_runs_per_s: runs as f64 / cached_s,
    }
}

/// The throughput side of the CI gate (core in [`izhi_bench::gate`]):
/// when the baseline carries a `battery_throughput` section, the fresh
/// run must reproduce the experiment with the cached arm at least
/// `THROUGHPUT_FLOOR` × the cold arm. Baselines predating run templates
/// (schema <= v7) skip this gate.
fn check_throughput_gate(
    fresh: Option<&izhi_bench::gate::ThroughputSummary>,
    baseline_path: &str,
) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    if !izhi_bench::gate::has_battery_throughput(&text) {
        println!("throughput gate: baseline {baseline_path} predates run templates — skipped");
        return true;
    }
    let floor = izhi_bench::gate::THROUGHPUT_FLOOR;
    let report = izhi_bench::gate::check_throughput_gate(fresh, &text, floor);
    for e in &report.checked {
        println!(
            "throughput gate vs {baseline_path}: cached/cold {:.3}x (floor {floor:.1}x, baseline {:.3}x informational)",
            e.fresh, e.baseline
        );
    }
    for f in &report.failures {
        println!("  {f}");
    }
    report.passed()
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut min_ratio = 0.85f64;
    let mut battery_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check_path = args.next(),
            "--min-ratio" => {
                min_ratio = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--min-ratio needs a number");
            }
            "--battery-only" => battery_only = true,
            // Reject unknown flags loudly: a typoed `--check` silently
            // consumed as the output path would disable the CI gate while
            // staying green.
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}`; usage: perf_baseline [out.json] [--check baseline.json] [--min-ratio R] [--battery-only]");
                std::process::exit(2);
            }
            _ => out_path = Some(arg),
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_9.json".into());

    // BENCH_CMP_ONLY=1 runs just the interleaved seed-vs-live rows (fast
    // inner loop for performance work on the interpreter itself).
    let cmp_only = std::env::var_os("BENCH_CMP_ONLY").is_some();
    if cmp_only && battery_only {
        // Together they would skip both halves of the gate — a green run
        // that checked nothing.
        eprintln!("BENCH_CMP_ONLY and --battery-only are mutually exclusive");
        std::process::exit(2);
    }
    let mut rows = if cmp_only || battery_only {
        Vec::new()
    } else {
        vec![selftest_row()]
    };
    let mut speedups = Vec::new();
    let mut reductions = Vec::new();

    if !battery_only {
        for (name, n, ticks) in [
            ("net8020_quick_1core", 200, 300u32),
            ("net8020_paper_1core_100ms", 1000, 100),
        ] {
            let best = (0..SESSIONS)
                .map(|_| compare_rows_1core(name, n, ticks))
                .max_by(|a, b| {
                    (a.seed.wall_s / a.live.wall_s).total_cmp(&(b.seed.wall_s / b.live.wall_s))
                })
                .expect("at least one session");
            let CmpRows1 {
                seed,
                live,
                norelax,
                nosb,
                relaxed,
                nokernel,
            } = best;
            speedups.push((name.to_string(), seed.wall_s / live.wall_s));
            speedups.push((format!("{name}_norelax"), seed.wall_s / norelax.wall_s));
            speedups.push((format!("{name}_nosb"), seed.wall_s / nosb.wall_s));
            speedups.push((format!("{name}_relaxed"), seed.wall_s / relaxed.wall_s));
            speedups.push((
                format!("{name}_relaxed_nokernel"),
                seed.wall_s / nokernel.wall_s,
            ));
            reductions.push((
                name.to_string(),
                (seed.sim_instret - live.sim_instret) as f64 / seed.sim_instret as f64,
            ));
            rows.push(seed);
            rows.push(live);
            rows.push(norelax);
            rows.push(nosb);
            rows.push(relaxed);
            rows.push(nokernel);
        }

        let name = "net8020_quick_2core";
        let (seed, relaxed, exact) = (0..SESSIONS)
            .map(|_| compare_rows_2core(name, 200, 300))
            .max_by(|a, b| (a.0.wall_s / a.1.wall_s).total_cmp(&(b.0.wall_s / b.1.wall_s)))
            .expect("at least one session");
        speedups.push((name.to_string(), seed.wall_s / relaxed.wall_s));
        speedups.push((format!("{name}_exact"), seed.wall_s / exact.wall_s));
        rows.push(seed);
        rows.push(relaxed);
        rows.push(exact);
    }

    if !cmp_only && !battery_only {
        let (one, two, par) = sweep_rows("net8020_sweep_quick", 200, 300);
        rows.push(one);
        rows.push(two);
        rows.push(par);
        let (one, relaxed, exact) = sudoku_rows();
        rows.push(one);
        rows.push(relaxed);
        rows.push(exact);
    }

    let battery = if cmp_only { Vec::new() } else { battery_rows() };
    let accuracy = estimated_accuracy(&battery);
    let service = (!cmp_only && !battery_only).then(service_burst);
    let throughput = (!cmp_only && !battery_only).then(battery_throughput);

    println!(
        "{:<32} {:>11} {:>3} {:>9} {:>14} {:>14} {:>12} {:>12}",
        "workload", "sched", "ht", "wall [s]", "sim cycles", "sim instret", "Mcycles/s", "Minstr/s"
    );
    for r in &rows {
        println!(
            "{:<32} {:>11} {:>3} {:>9.3} {:>14} {:>14} {:>12.2} {:>12.2}",
            r.name,
            r.sched,
            r.host_threads,
            r.wall_s,
            r.sim_cycles,
            r.sim_instret,
            r.cycles_per_s() / 1e6,
            r.instr_per_s() / 1e6,
        );
    }
    for (name, s) in &speedups {
        println!("speedup vs seed interpreter on {name}: {s:.3}x");
    }
    for (name, r) in &reductions {
        println!("relaxation instret reduction on {name}: {:.2}%", r * 100.0);
    }
    if !battery.is_empty() {
        println!("\nscenario battery (registry-driven, cross-mode raster identity verified):");
        print!("{}", battery::rows_table(&battery));
    }
    if !accuracy.is_empty() {
        println!("\nestimated-vs-exact cycle accuracy (battery, per scenario):");
        for (name, r) in &accuracy {
            println!("  {name}: {r:.3}");
        }
    }
    if let Some(s) = &service {
        println!(
            "\nservice burst: {} jobs -> {} accepted / {} backpressured, \
             {} completed + {} structured failures, {:.1} jobs/s, health {}/{}, isolation {}",
            s.submitted,
            s.accepted,
            s.rejected,
            s.completed,
            s.failed,
            s.throughput_jobs_per_s,
            s.health_ok,
            s.health_checks,
            serve::failure_isolated(s),
        );
    }
    if let Some(t) = &throughput {
        println!(
            "\nbattery throughput ({} runs of {THROUGHPUT_TICKS}-tick repeat-seed jobs per arm): \
             cold {:.1} runs/s, template-cached {:.1} runs/s, speedup {:.2}x",
            t.runs,
            t.cold_runs_per_s,
            t.cached_runs_per_s,
            t.speedup(),
        );
    }
    std::fs::write(
        &out_path,
        json(
            &rows,
            &speedups,
            &reductions,
            &battery,
            &accuracy,
            service.as_ref(),
            throughput.as_ref(),
        ),
    )
    .expect("write json");
    println!("\nwrote {out_path}");

    if let Some(baseline) = check_path {
        let mut ok = true;
        if !battery_only {
            ok &= check_gate(&speedups, &baseline, min_ratio);
            ok &= check_floor_gate(&speedups);
            ok &= check_kernel_gate(&speedups);
            ok &= check_instret_gate(&reductions, &baseline);
        }
        if !cmp_only {
            ok &= check_battery_gate(&battery, &baseline);
            ok &= check_accuracy_gate(&accuracy, &baseline);
        }
        if !cmp_only && !battery_only {
            ok &= check_service_gate(service.as_ref(), &baseline);
            ok &= check_throughput_gate(throughput.as_ref(), &baseline);
        }
        if !ok {
            eprintln!("perf gate FAILED");
            std::process::exit(1);
        }
        println!("perf gate passed");
    }
}

//! `perf_baseline` — the repo's reproducible simulator-throughput
//! measurement.
//!
//! Two kinds of rows:
//!
//! * **Workload battery** (self-test, 80-20 at quick/paper scale on 1 and
//!   2 cores, an eased Sudoku instance on 1 and 2 cores): host wall time
//!   plus simulated cycles/s and instructions/s on the live `izhi_sim`.
//! * **Seed-vs-live comparison**: the single-core 80-20 rows run again on
//!   the frozen seed interpreter (`izhi_bench::seedsim`), *interleaved*
//!   with the live one in the same process and repeated `REPS` times
//!   (best run kept), so the reported speedup is immune to host-speed
//!   drift between measurement sessions. Both interpreters must agree on
//!   simulated cycles / instructions / spike count — asserted, which
//!   doubles as an end-to-end regression check of the predecode rework.
//!
//! ```text
//! cargo run --release --bin perf_baseline [-- <out.json>]
//! ```
//!
//! Writes `BENCH_1.json` (or the given path).

use std::fmt::Write as _;
use std::time::Instant;

use izhi_bench::seedsim;
use izhi_isa::Assembler;
use izhi_programs::engine::{build_asm, GuestImage, Variant};
use izhi_programs::net8020::Net8020Workload;
use izhi_programs::sudoku_prog::SudokuWorkload;
use izhi_programs::{layout, selftest};
use izhi_sim::{System, SystemConfig};
use izhi_snn::sudoku::hard_corpus;

/// Interleaved repetitions per comparison session.
const REPS: usize = 5;
/// Comparison sessions per workload (the best session's rows are kept;
/// host-speed drift on this shared VM makes single sessions undershoot).
const SESSIONS: usize = 5;

/// One measured workload.
struct Row {
    name: String,
    wall_s: f64,
    sim_cycles: u64,
    sim_instret: u64,
    spikes: u64,
    /// Full packed spike log (`t<<16|neuron` words) for exactness checks;
    /// empty for rows that don't compare rasters.
    spike_log: Vec<u32>,
}

impl Row {
    fn cycles_per_s(&self) -> f64 {
        self.sim_cycles as f64 / self.wall_s
    }

    fn instr_per_s(&self) -> f64 {
        self.sim_instret as f64 / self.wall_s
    }
}

fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

fn selftest_row() -> Row {
    let prog = Assembler::new()
        .assemble(&selftest::battery_asm())
        .expect("battery assembles");
    let (wall_s, (exit, failures)) = time(|| {
        let mut sys = System::new(SystemConfig::default());
        assert!(sys.load_program(&prog));
        let exit = sys.run(50_000_000).expect("battery run");
        let failures = sys
            .console()
            .lines()
            .last()
            .and_then(|l| l.trim().parse::<u32>().ok())
            .unwrap_or(u32::MAX);
        (exit, failures)
    });
    assert_eq!(failures, 0, "guest self-test battery failed");
    Row {
        name: "selftest_battery".into(),
        wall_s,
        sim_cycles: exit.cycles,
        sim_instret: exit.instret,
        spikes: 0,
        spike_log: Vec::new(),
    }
}

fn net8020_row(name: &str, n_exc: usize, n_inh: usize, ticks: u32, cores: u32) -> Row {
    let wl = Net8020Workload::sized(n_exc, n_inh, ticks, cores, 5, Variant::Npu);
    let (wall_s, res) = time(|| wl.run().expect("net8020 run"));
    Row {
        name: name.into(),
        wall_s,
        sim_cycles: res.cycles,
        sim_instret: res.instret,
        spikes: res.raster.spikes.len() as u64,
        spike_log: Vec::new(),
    }
}

fn sudoku_row(name: &str, cores: u32) -> Row {
    // The quick-scale instance of the paper's Table VI flow: one hard
    // puzzle eased by restoring half the blanks, 2500-tick budget.
    let mut puzzle = hard_corpus(1)[0];
    let sol = puzzle.solve().expect("classical solver");
    for i in (0..81).step_by(2) {
        if puzzle.0[i] == 0 {
            puzzle.0[i] = sol.0[i];
        }
    }
    let wl = SudokuWorkload::new(puzzle, 2500, cores, 100);
    let (wall_s, res) = time(|| wl.run(50).expect("sudoku run"));
    Row {
        name: name.into(),
        wall_s,
        sim_cycles: res.workload.cycles,
        sim_instret: res.workload.instret,
        spikes: res.workload.raster.spikes.len() as u64,
        spike_log: Vec::new(),
    }
}

/// Mirror of `GuestImage::load_into` against the frozen seed system
/// (dense NPU variant only — the configuration the comparison rows use).
fn load_image_seed(sys: &mut seedsim::System, image: &GuestImage, n: usize) {
    let mem = &mut sys.shared_mut().mem;
    for (i, p) in image.params.iter().enumerate() {
        let (rs1, rs2) = p.pack();
        mem.write_u32(layout::PARAMS + 8 * i as u32, rs1);
        mem.write_u32(layout::PARAMS + 8 * i as u32 + 4, rs2);
    }
    for (i, &vu) in image.init_vu.iter().enumerate() {
        mem.write_u32(layout::VU + 4 * i as u32, vu);
        mem.write_u32(layout::ISYN + 4 * i as u32, 0);
    }
    for (i, &w) in image.weights_q.iter().enumerate() {
        mem.write_u16(layout::WEIGHTS + 2 * i as u32, w as u16);
    }
    for (i, &x) in image.noise_q.iter().enumerate() {
        mem.write_u16(layout::NOISE + 2 * i as u32, x as u16);
    }
    let _ = n;
}

fn seed_config(cfg: &SystemConfig) -> seedsim::SystemConfig {
    seedsim::SystemConfig {
        n_cores: cfg.n_cores,
        clock_hz: cfg.clock_hz,
        sdram_size: cfg.sdram_size,
        scratch_size: cfg.scratch_size,
        icache: seedsim::cache::CacheConfig {
            size_bytes: cfg.icache.size_bytes,
            line_bytes: cfg.icache.line_bytes,
        },
        dcache: seedsim::cache::CacheConfig {
            size_bytes: cfg.dcache.size_bytes,
            line_bytes: cfg.dcache.line_bytes,
        },
        bus: seedsim::bus::BusTimings {
            first_word: cfg.bus.first_word,
            per_word: cfg.bus.per_word,
        },
        div_latency: cfg.div_latency,
        csr_writeback: cfg.csr_writeback,
        rng_seed: cfg.rng_seed,
    }
}

/// Interleaved seed-vs-live measurement of one single-core 80-20 setup.
/// Returns `(seed_row, live_row)`, each the best of [`REPS`] runs.
fn compare_rows(name: &str, n_exc: usize, n_inh: usize, ticks: u32) -> (Row, Row) {
    let wl = Net8020Workload::sized(n_exc, n_inh, ticks, 1, 5, Variant::Npu);
    let decay = (1.0 - 0.5 / wl.cfg.tau as f64) as f32;
    let asm = format!(
        ".equ DECAY_F32, {:#x}\n{}",
        decay.to_bits(),
        build_asm(&wl.cfg)
    );

    let mut seed_best: Option<Row> = None;
    let mut live_best: Option<Row> = None;
    for _ in 0..REPS {
        // Seed interpreter. Symmetric with the live side's `wl.run()`:
        // assembling the program and building/loading the system are part
        // of the timed region on both sides.
        let (wall_s, (exit, spike_log)) = time(|| {
            let prog = Assembler::new().assemble(&asm).expect("engine assembles");
            let mut sys = seedsim::System::new(seed_config(&wl.cfg.system));
            assert!(sys.load_program(&prog));
            load_image_seed(&mut sys, &wl.image, wl.cfg.n);
            let exit = sys.run(1_000_000_000).expect("seed run");
            let spike_log = sys.shared().dev.spike_log.clone();
            (exit, spike_log)
        });
        let row = Row {
            name: format!("{name}_seed"),
            wall_s,
            sim_cycles: exit.cycles,
            sim_instret: exit.instret,
            spikes: spike_log.len() as u64,
            spike_log,
        };
        if seed_best.as_ref().is_none_or(|b| row.wall_s < b.wall_s) {
            seed_best = Some(row);
        }
        // Live interpreter, same program/image, immediately after.
        let (wall_s, res) = time(|| wl.run().expect("live run"));
        let row = Row {
            name: name.into(),
            wall_s,
            sim_cycles: res.cycles,
            sim_instret: res.instret,
            spikes: res.raster.spikes.len() as u64,
            spike_log: res
                .raster
                .spikes
                .iter()
                .map(|&(t, n)| izhi_snn::analysis::SpikeRaster::pack(t, n))
                .collect(),
        };
        if live_best.as_ref().is_none_or(|b| row.wall_s < b.wall_s) {
            live_best = Some(row);
        }
    }
    let (seed, live) = (seed_best.unwrap(), live_best.unwrap());
    // The rework must be bit- and cycle-exact vs the seed interpreter:
    // same cycles, same retired instructions, and the *full* packed spike
    // log word for word.
    assert_eq!(seed.sim_cycles, live.sim_cycles, "{name}: cycle drift");
    assert_eq!(seed.sim_instret, live.sim_instret, "{name}: instret drift");
    assert_eq!(seed.spike_log, live.spike_log, "{name}: raster drift");
    (seed, live)
}

fn json(rows: &[Row], speedups: &[(String, f64)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"izhirisc-perf-baseline-v2\",\n");
    let _ = writeln!(
        out,
        "  \"methodology\": \"seed rows: frozen seed interpreter, interleaved with live rows in-process, best of {REPS} reps x {SESSIONS} sessions; sim cycles/instret and full packed spike logs asserted identical\","
    );
    let _ = writeln!(out, "  \"workloads\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"wall_s\": {:.6}, \"sim_cycles\": {}, \
             \"sim_instret\": {}, \"spikes\": {}, \"sim_cycles_per_s\": {:.0}, \
             \"sim_instr_per_s\": {:.0}}}",
            r.name,
            r.wall_s,
            r.sim_cycles,
            r.sim_instret,
            r.spikes,
            r.cycles_per_s(),
            r.instr_per_s(),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"speedup_vs_seed\": {{");
    for (i, (name, s)) in speedups.iter().enumerate() {
        let _ = write!(out, "    \"{name}\": {s:.3}");
        out.push_str(if i + 1 < speedups.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_1.json".into());
    // BENCH_CMP_ONLY=1 runs just the interleaved seed-vs-live rows (fast
    // inner loop for performance work on the interpreter itself).
    let cmp_only = std::env::var_os("BENCH_CMP_ONLY").is_some();
    let mut rows = if cmp_only {
        Vec::new()
    } else {
        vec![selftest_row()]
    };
    let mut speedups = Vec::new();
    for (name, n_exc, n_inh, ticks) in [
        ("net8020_quick_1core", 160, 40, 300u32),
        ("net8020_paper_1core_100ms", 800, 200, 100),
    ] {
        let (seed, live) = (0..SESSIONS)
            .map(|_| compare_rows(name, n_exc, n_inh, ticks))
            .max_by(|a, b| (a.0.wall_s / a.1.wall_s).total_cmp(&(b.0.wall_s / b.1.wall_s)))
            .expect("at least one session");
        speedups.push((name.to_string(), seed.wall_s / live.wall_s));
        rows.push(seed);
        rows.push(live);
    }
    if !cmp_only {
        rows.push(net8020_row("net8020_quick_2core", 160, 40, 300, 2));
        rows.push(sudoku_row("sudoku_quick_1core", 1));
        rows.push(sudoku_row("sudoku_quick_2core", 2));
    }
    println!(
        "{:<30} {:>9} {:>14} {:>14} {:>12} {:>12}",
        "workload", "wall [s]", "sim cycles", "sim instret", "Mcycles/s", "Minstr/s"
    );
    for r in &rows {
        println!(
            "{:<30} {:>9.3} {:>14} {:>14} {:>12.2} {:>12.2}",
            r.name,
            r.wall_s,
            r.sim_cycles,
            r.sim_instret,
            r.cycles_per_s() / 1e6,
            r.instr_per_s() / 1e6,
        );
    }
    for (name, s) in &speedups {
        println!("speedup vs seed interpreter on {name}: {s:.3}x");
    }
    std::fs::write(&out_path, json(&rows, &speedups)).expect("write json");
    println!("\nwrote {out_path}");
}

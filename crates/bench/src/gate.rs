//! The CI perf-regression gate behind `perf_baseline --check`.
//!
//! Lives in the library (rather than the binary) so the failure modes are
//! unit-testable — in particular the one that must never pass silently:
//! a baseline entry that is **missing** from the fresh measurement. A
//! renamed or dropped row would otherwise disable its own gate while CI
//! stayed green.

/// Extract the `"speedup_vs_seed"` object of a baseline JSON written by
/// `perf_baseline` (hand-rolled: the workspace builds offline, without
/// serde). Unparseable text yields an empty list, which the gate treats
/// as a failing baseline.
pub fn parse_speedups(text: &str) -> Vec<(String, f64)> {
    let Some(idx) = text.find("\"speedup_vs_seed\"") else {
        return Vec::new();
    };
    let rest = &text[idx..];
    let Some(open) = rest.find('{') else {
        return Vec::new();
    };
    let Some(close) = rest[open..].find('}') else {
        return Vec::new();
    };
    rest[open + 1..open + close]
        .split(',')
        .filter_map(|entry| {
            let (k, v) = entry.split_once(':')?;
            let k = k.trim().trim_matches('"');
            let v: f64 = v.trim().parse().ok()?;
            (!k.is_empty()).then(|| (k.to_string(), v))
        })
        .collect()
}

/// Why the gate failed.
#[derive(Debug, Clone, PartialEq)]
pub enum GateFailure {
    /// The baseline text has no gated (single-core) speedup entries at
    /// all — an empty gate must fail, not vacuously pass.
    NoGatedEntries,
    /// A baseline entry does not exist in the fresh measurement (renamed
    /// or dropped row). This must error: silently skipping it would
    /// disable the entry's own regression gate.
    MissingEntry(String),
    /// The fresh speedup fell below `min_ratio` × its baseline value.
    Regressed {
        /// Gated entry name.
        name: String,
        /// Fresh measurement.
        fresh: f64,
        /// Committed baseline value.
        baseline: f64,
    },
    /// A battery row present in the committed baseline failed its
    /// scenario verification hook in the fresh run.
    Unverified(String),
    /// A scenario's estimated-vs-exact cycle ratio left the allowed band.
    AccuracyOutOfBand {
        /// Scenario name.
        name: String,
        /// Fresh estimated/exact cycle ratio.
        ratio: f64,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// A service guarantee (health, backpressure hinting, failure
    /// isolation, forward progress) did not hold in the fresh burst.
    ServiceGuarantee(String),
    /// The template-cached battery throughput fell below the required
    /// multiple of the cold-build throughput (or was not measurable).
    TemplateSpeedupBelowFloor {
        /// Fresh cached/cold runs-per-second ratio.
        speedup: f64,
        /// Required minimum ratio.
        floor: f64,
    },
    /// A headline single-core speedup fell below the absolute floor
    /// (independent of the committed baseline — the floor is a same-host
    /// seed-vs-live ratio, so it is not a runner speed lottery).
    BelowAbsoluteFloor {
        /// Gated entry name.
        name: String,
        /// Fresh speedup.
        fresh: f64,
        /// Required minimum speedup.
        floor: f64,
    },
    /// The assembler-relaxation instret reduction on the gated workload
    /// fell below the required floor.
    InstretReductionBelowFloor {
        /// Gated entry name.
        name: String,
        /// Fresh fractional reduction (`1 - relaxed/unrelaxed`).
        fresh: f64,
        /// Required minimum fraction.
        floor: f64,
    },
    /// A kernel-on relaxed row failed to beat its kernel-off twin by the
    /// required multiple (both speedups are vs the same seed run, so the
    /// ratio is a pure kernel-on/off wall-time ratio — host-stable).
    KernelSpeedupBelowFloor {
        /// Kernel-on entry name (the `*_relaxed` row).
        name: String,
        /// Fresh kernel-on speedup vs seed.
        on: f64,
        /// Fresh kernel-off speedup vs seed.
        off: f64,
        /// Required minimum on/off ratio.
        floor: f64,
    },
}

impl core::fmt::Display for GateFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GateFailure::NoGatedEntries => {
                write!(f, "baseline has no single-core speedup entries")
            }
            GateFailure::MissingEntry(name) => {
                write!(f, "{name}: MISSING from fresh measurement")
            }
            GateFailure::Regressed {
                name,
                fresh,
                baseline,
            } => write!(
                f,
                "{name}: {fresh:.3}x REGRESSED vs baseline {baseline:.3}x"
            ),
            GateFailure::Unverified(key) => {
                write!(f, "{key}: battery row UNVERIFIED in fresh run")
            }
            GateFailure::AccuracyOutOfBand {
                name,
                ratio,
                lo,
                hi,
            } => write!(
                f,
                "{name}: estimated/exact cycle ratio {ratio:.3} outside [{lo:.2}, {hi:.2}]"
            ),
            GateFailure::ServiceGuarantee(what) => {
                write!(f, "service: {what}")
            }
            GateFailure::TemplateSpeedupBelowFloor { speedup, floor } => write!(
                f,
                "battery_throughput: cached/cold {speedup:.3}x BELOW the {floor:.1}x floor"
            ),
            GateFailure::BelowAbsoluteFloor { name, fresh, floor } => write!(
                f,
                "{name}: {fresh:.3}x BELOW the absolute {floor:.1}x single-core floor"
            ),
            GateFailure::InstretReductionBelowFloor { name, fresh, floor } => write!(
                f,
                "{name}: instret reduction {:.2}% BELOW the {:.1}% floor",
                fresh * 100.0,
                floor * 100.0
            ),
            GateFailure::KernelSpeedupBelowFloor {
                name,
                on,
                off,
                floor,
            } => write!(
                f,
                "{name}: kernel-on {on:.3}x vs kernel-off {off:.3}x — ratio {:.3} BELOW the {floor:.2}x kernel floor",
                on / off
            ),
        }
    }
}

/// One baseline entry that was found in the fresh measurement (reporting
/// data for the caller — the gate itself never prints).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedEntry {
    /// Gated entry name.
    pub name: String,
    /// Fresh measurement.
    pub fresh: f64,
    /// Committed baseline value.
    pub baseline: f64,
}

impl CheckedEntry {
    /// Fresh / baseline.
    pub fn ratio(&self) -> f64 {
        self.fresh / self.baseline
    }
}

/// Everything the gate determined; presentation is the caller's job.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GateReport {
    /// Entries present in both baseline and fresh run (pass or fail).
    pub checked: Vec<CheckedEntry>,
    /// All failures; empty means the gate passed.
    pub failures: Vec<GateFailure>,
}

impl GateReport {
    /// Whether the gate passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Gate the fresh `speedup_vs_seed` entries against a committed baseline
/// text. Every **single-core** baseline entry must be present in `fresh`
/// at `min_ratio` × its value or better; multi-core / relaxed entries are
/// informational only (they depend on host parallel behaviour CI runners
/// do not promise).
pub fn check_gate(fresh: &[(String, f64)], baseline_text: &str, min_ratio: f64) -> GateReport {
    let baseline = parse_speedups(baseline_text);
    let gated: Vec<_> = baseline
        .iter()
        .filter(|(name, _)| name.contains("_1core"))
        .collect();
    if gated.is_empty() {
        return GateReport {
            checked: Vec::new(),
            failures: vec![GateFailure::NoGatedEntries],
        };
    }
    let mut report = GateReport::default();
    for (name, base) in gated {
        match fresh.iter().find(|(n, _)| n == name) {
            None => report
                .failures
                .push(GateFailure::MissingEntry(name.clone())),
            Some((_, v)) => {
                let entry = CheckedEntry {
                    name: name.clone(),
                    fresh: *v,
                    baseline: *base,
                };
                if entry.ratio() < min_ratio {
                    report.failures.push(GateFailure::Regressed {
                        name: name.clone(),
                        fresh: *v,
                        baseline: *base,
                    });
                }
                report.checked.push(entry);
            }
        }
    }
    report
}

/// Absolute floor on the headline single-core speedup-vs-seed rows
/// (entries named `*_1core`, excluding the `*_norelax` / `*_nosb`
/// diagnostic rows). The superblock interpreter + relaxation pass land
/// the `net8020` quick row at ~2.2-2.3x on this host; the floor sits
/// under that with margin for runner-scheduling noise — the interleaved
/// same-process measurement makes the *ratio* host-stable, but not
/// noise-free. (The original 2.8x target for this stack was not reached:
/// the exact-path interpreter is dispatch-bound after the superblock
/// work, see the README's interpreter-core notes.)
pub const SINGLE_CORE_FLOOR: f64 = 2.0;

/// Absolute floor on the relaxed single-core quick row
/// (`net8020_quick_1core_relaxed`: `SchedMode::Relaxed`, kernel offload
/// on — the configuration relaxed sweeps actually ship). The native
/// closed-form kernel tier lands it at ~3.5x+ on this host; the floor
/// sits below that with runner-noise margin. This is the 2.8x target the
/// exact path (see [`SINGLE_CORE_FLOOR`]) could not reach.
pub const RELAXED_SINGLE_CORE_FLOOR: f64 = 2.8;

/// Required wall-time multiple of every kernel-on relaxed row over its
/// kernel-off twin (`*_relaxed` vs `*_relaxed_nokernel`). Both rows'
/// speedups are measured against the same interleaved seed run, so the
/// ratio cancels the seed and is a pure same-host kernel-on/off ratio.
pub const KERNEL_SPEEDUP_FLOOR: f64 = 1.25;

/// Required fractional instret reduction (`1 - relaxed/unrelaxed`) from
/// the assembler relaxation + peephole pass on the gated workload
/// (`net8020_quick_1core`). The reduction is a deterministic property of
/// the emitted code — no host noise — so the floor can sit directly
/// under the measured 3.05%.
pub const INSTRET_REDUCTION_FLOOR: f64 = 0.03;

/// Gate the headline single-core speedups against the absolute
/// [`SINGLE_CORE_FLOOR`]-style floor: every fresh `*_1core` entry that is
/// not a `*_norelax` / `*_nosb` / `*_nokernel` diagnostic row must reach
/// `floor` (the `*_relaxed_nokernel` rows exist to price the kernel tier,
/// not to clear headline floors — [`check_kernel_gate`] owns them). No
/// baseline is consulted — the floor is absolute — but an empty gated set
/// fails, mirroring the other gates' empty rule (the relative
/// [`check_gate`] separately errors if a baseline row went missing).
pub fn check_floor_gate(fresh: &[(String, f64)], floor: f64) -> GateReport {
    let gated: Vec<_> = fresh
        .iter()
        .filter(|(name, _)| {
            name.contains("_1core")
                && !name.ends_with("_norelax")
                && !name.ends_with("_nosb")
                && !name.ends_with("_nokernel")
        })
        .collect();
    if gated.is_empty() {
        return GateReport {
            checked: Vec::new(),
            failures: vec![GateFailure::NoGatedEntries],
        };
    }
    let mut report = GateReport::default();
    for (name, v) in gated {
        if *v < floor {
            report.failures.push(GateFailure::BelowAbsoluteFloor {
                name: name.clone(),
                fresh: *v,
                floor,
            });
        }
        report.checked.push(CheckedEntry {
            name: name.clone(),
            fresh: *v,
            baseline: floor,
        });
    }
    report
}

/// Gate the kernel-offload rows of a fresh measurement. Two absolute,
/// same-host checks (no committed baseline is consulted):
///
/// * every `*_relaxed` entry must have a `*_relaxed_nokernel` twin (a
///   missing twin is an error — it would silently disable the ratio
///   check) and beat it by at least `kernel_floor` — both speedups are
///   vs the same interleaved seed run, so the ratio cancels the seed and
///   is a pure kernel-on/off wall-time ratio;
/// * the `net8020_quick_1core_relaxed` row must reach `relaxed_floor`
///   outright, and must be present at all.
///
/// Each checked entry reports the on/off ratio as `fresh` against
/// `kernel_floor` as `baseline`.
pub fn check_kernel_gate(
    fresh: &[(String, f64)],
    relaxed_floor: f64,
    kernel_floor: f64,
) -> GateReport {
    const GATED_RELAXED_ROW: &str = "net8020_quick_1core_relaxed";
    let on_rows: Vec<_> = fresh
        .iter()
        .filter(|(name, _)| name.ends_with("_relaxed"))
        .collect();
    if on_rows.is_empty() {
        return GateReport {
            checked: Vec::new(),
            failures: vec![GateFailure::NoGatedEntries],
        };
    }
    let mut report = GateReport::default();
    if !on_rows.iter().any(|(name, _)| name == GATED_RELAXED_ROW) {
        report
            .failures
            .push(GateFailure::MissingEntry(GATED_RELAXED_ROW.to_string()));
    }
    for (name, on) in on_rows {
        match fresh.iter().find(|(n, _)| *n == format!("{name}_nokernel")) {
            None => report
                .failures
                .push(GateFailure::MissingEntry(format!("{name}_nokernel"))),
            Some((_, off)) => {
                if on / off < kernel_floor {
                    report.failures.push(GateFailure::KernelSpeedupBelowFloor {
                        name: name.clone(),
                        on: *on,
                        off: *off,
                        floor: kernel_floor,
                    });
                }
                report.checked.push(CheckedEntry {
                    name: name.clone(),
                    fresh: on / off,
                    baseline: kernel_floor,
                });
            }
        }
        if name == GATED_RELAXED_ROW && *on < relaxed_floor {
            report.failures.push(GateFailure::BelowAbsoluteFloor {
                name: name.clone(),
                fresh: *on,
                floor: relaxed_floor,
            });
        }
    }
    report
}

/// Whether a baseline file carries an `"instret_reduction"` section at
/// all. Old baselines (schema <= v9) legitimately predate the relaxation
/// pass; the caller skips this gate for them instead of failing on a
/// section that could not exist.
pub fn has_instret_reduction(text: &str) -> bool {
    text.contains("\"instret_reduction\"")
}

/// Extract the `"instret_reduction"` object of a baseline JSON: per
/// workload, the fractional instret saving of the relaxation pass.
/// Unparseable or sectionless text yields an empty list.
pub fn parse_instret_reduction(text: &str) -> Vec<(String, f64)> {
    let Some(idx) = text.find("\"instret_reduction\"") else {
        return Vec::new();
    };
    let rest = &text[idx + "\"instret_reduction\"".len()..];
    let Some(open) = rest.find('{') else {
        return Vec::new();
    };
    let Some(close) = rest[open..].find('}') else {
        return Vec::new();
    };
    rest[open + 1..open + close]
        .split(',')
        .filter_map(|entry| {
            let (k, v) = entry.split_once(':')?;
            let k = k.trim().trim_matches('"');
            let v: f64 = v.trim().parse().ok()?;
            (!k.is_empty()).then(|| (k.to_string(), v))
        })
        .collect()
}

/// Gate the fresh relaxation instret reductions against a committed
/// baseline that carries an `"instret_reduction"` section: every baseline
/// entry must be present in the fresh run (a dropped row errors rather
/// than silently disabling its own gate), and the `net8020_quick_1core`
/// entry must reach `floor`. Other entries (e.g. the paper shape, whose
/// integration loops relax less) are presence-checked but informational.
pub fn check_instret_gate(fresh: &[(String, f64)], baseline_text: &str, floor: f64) -> GateReport {
    let baseline = parse_instret_reduction(baseline_text);
    if baseline.is_empty() {
        return GateReport {
            checked: Vec::new(),
            failures: vec![GateFailure::NoGatedEntries],
        };
    }
    let mut report = GateReport::default();
    for (name, base) in baseline {
        match fresh.iter().find(|(n, _)| *n == name) {
            None => report.failures.push(GateFailure::MissingEntry(name)),
            Some((_, v)) => {
                if name == "net8020_quick_1core" && *v < floor {
                    report
                        .failures
                        .push(GateFailure::InstretReductionBelowFloor {
                            name: name.clone(),
                            fresh: *v,
                            floor,
                        });
                }
                report.checked.push(CheckedEntry {
                    name,
                    fresh: *v,
                    baseline: base,
                });
            }
        }
    }
    report
}

/// Extract the battery-row gate keys of a baseline JSON: the `"key"`
/// fields of the `"battery"` array. Unparseable or battery-less text
/// yields an empty list.
pub fn parse_battery_keys(text: &str) -> Vec<String> {
    let Some(idx) = text.find("\"battery\"") else {
        return Vec::new();
    };
    let rest = &text[idx..];
    let Some(open) = rest.find('[') else {
        return Vec::new();
    };
    let Some(close) = rest[open..].find(']') else {
        return Vec::new();
    };
    let mut keys = Vec::new();
    let mut body = &rest[open + 1..open + close];
    while let Some(k) = body.find("\"key\"") {
        let tail = &body[k + 5..];
        let Some(q0) = tail.find('"') else { break };
        let Some(q1) = tail[q0 + 1..].find('"') else {
            break;
        };
        keys.push(tail[q0 + 1..q0 + 1 + q1].to_string());
        body = &tail[q0 + 1 + q1..];
    }
    keys
}

/// Gate the fresh battery rows — `(key, verified)` pairs — against a
/// committed baseline: every baseline battery key must be present in the
/// fresh run (a renamed or dropped row errors rather than silently
/// disabling its own gate) *and* verified. A baseline without battery
/// keys gates nothing and fails, mirroring the speedup gate's
/// empty-baseline rule.
pub fn check_battery_gate(fresh: &[(String, bool)], baseline_text: &str) -> GateReport {
    let keys = parse_battery_keys(baseline_text);
    if keys.is_empty() {
        return GateReport {
            checked: Vec::new(),
            failures: vec![GateFailure::NoGatedEntries],
        };
    }
    let mut report = GateReport::default();
    for key in keys {
        match fresh.iter().find(|(k, _)| *k == key) {
            None => report.failures.push(GateFailure::MissingEntry(key)),
            Some((_, false)) => report.failures.push(GateFailure::Unverified(key)),
            Some((_, true)) => report.checked.push(CheckedEntry {
                name: key,
                fresh: 1.0,
                baseline: 1.0,
            }),
        }
    }
    report
}

/// Allowed band for the estimated-vs-exact cycle ratio: deliberately
/// generous for now (the cost table is a first-order static collapse of a
/// dynamic model); tighten as the table is calibrated. The band is
/// absolute — centred on 1.0 — because the ratio is a *model-accuracy*
/// statement, not a host-speed measurement.
pub const ACCURACY_LO: f64 = 0.5;
/// Upper bound of the estimated-accuracy band (see [`ACCURACY_LO`]).
pub const ACCURACY_HI: f64 = 2.0;
/// Relative factor for scenarios whose *committed* ratio already sits
/// outside the absolute band. Structurally possible for barrier-heavy
/// scale-out shapes (e.g. a 16-core sharded net): the exact clock is
/// dominated by simulated barrier spin-wait, which the relaxed
/// schedulers deschedule — so their estimated clock legitimately
/// undercounts. The absolute band would reject every fresh run of such
/// a scenario unconditionally; instead the fresh ratio is held to
/// within this factor of the committed value (both directions), which
/// still catches drift.
pub const ACCURACY_REL: f64 = 2.0;

/// Whether a baseline file carries an `"estimated_accuracy"` section at
/// all. Old baselines (schema <= v5) legitimately predate the estimated
/// timing model; the caller skips the accuracy gate for them instead of
/// failing on a section that could not exist.
pub fn has_estimated_accuracy(text: &str) -> bool {
    text.contains("\"estimated_accuracy\"")
}

/// Extract the `"estimated_accuracy"` object of a baseline JSON: per
/// scenario, the estimated-vs-exact simulated-cycle ratio. Unparseable or
/// sectionless text yields an empty list.
pub fn parse_estimated_accuracy(text: &str) -> Vec<(String, f64)> {
    let Some(idx) = text.find("\"estimated_accuracy\"") else {
        return Vec::new();
    };
    let rest = &text[idx + "\"estimated_accuracy\"".len()..];
    let Some(open) = rest.find('{') else {
        return Vec::new();
    };
    let Some(close) = rest[open..].find('}') else {
        return Vec::new();
    };
    rest[open + 1..open + close]
        .split(',')
        .filter_map(|entry| {
            let (k, v) = entry.split_once(':')?;
            let k = k.trim().trim_matches('"');
            let v: f64 = v.trim().parse().ok()?;
            (!k.is_empty()).then(|| (k.to_string(), v))
        })
        .collect()
}

/// Gate the fresh estimated-accuracy ratios against a committed baseline:
/// every scenario of the baseline's `estimated_accuracy` section must be
/// present in the fresh run (a dropped scenario errors rather than
/// silently disabling its own gate) with its ratio inside `[lo, hi]` —
/// or, when the committed ratio itself lies outside the band
/// (barrier-dominated scale-out shapes, see [`ACCURACY_REL`]), within
/// [`ACCURACY_REL`]× of the committed value. A
/// baseline whose section is present but empty/garbled gates nothing and
/// fails, mirroring the other gates' empty-baseline rule (callers skip
/// this gate entirely for baselines without the section — see
/// [`has_estimated_accuracy`]).
pub fn check_accuracy_gate(
    fresh: &[(String, f64)],
    baseline_text: &str,
    lo: f64,
    hi: f64,
) -> GateReport {
    let baseline = parse_estimated_accuracy(baseline_text);
    if baseline.is_empty() {
        return GateReport {
            checked: Vec::new(),
            failures: vec![GateFailure::NoGatedEntries],
        };
    }
    let mut report = GateReport::default();
    for (name, base) in baseline {
        match fresh.iter().find(|(n, _)| *n == name) {
            None => report.failures.push(GateFailure::MissingEntry(name)),
            Some((_, ratio)) => {
                let in_band = (lo..=hi).contains(ratio);
                // Committed-out-of-band scenarios are gated relative to
                // their committed ratio instead (the absolute band could
                // never pass them); in-band baselines keep the absolute
                // semantics untouched.
                let rel_ok = !(lo..=hi).contains(&base)
                    && base > 0.0
                    && (1.0 / ACCURACY_REL..=ACCURACY_REL).contains(&(ratio / base));
                if !in_band && !rel_ok {
                    report.failures.push(GateFailure::AccuracyOutOfBand {
                        name: name.clone(),
                        ratio: *ratio,
                        lo,
                        hi,
                    });
                }
                report.checked.push(CheckedEntry {
                    name,
                    fresh: *ratio,
                    baseline: base,
                });
            }
        }
    }
    report
}

/// Summary of the fresh run's in-process service burst, as gated: the
/// booleans are hard guarantees; the throughput is recorded but only
/// required to be *positive* (absolute jobs/s would make the gate a host
/// speed lottery).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSummary {
    /// Accepted jobs that completed successfully.
    pub completed: usize,
    /// Completed jobs per second of burst wall time.
    pub throughput_jobs_per_s: f64,
    /// Every health check during the burst was answered `200`.
    pub health_ok: bool,
    /// Every backpressure rejection carried a `retry_after_ms` hint.
    pub backpressure_hinted: bool,
    /// Injected faults became structured per-job failures while the rest
    /// of the burst completed (see `serve::failure_isolated`).
    pub failure_isolated: bool,
}

/// Whether a baseline file carries a `"service"` section at all. Old
/// baselines (schema <= v6) legitimately predate the scenario service;
/// the caller skips the service gate for them instead of failing on a
/// section that could not exist.
pub fn has_service(text: &str) -> bool {
    text.contains("\"service\"")
}

/// Extract the baseline's `"service"` throughput (informational — shown
/// next to the fresh value, never gated on).
pub fn parse_service_throughput(text: &str) -> Option<f64> {
    let idx = text.find("\"service\"")?;
    let rest = &text[idx..];
    let open = rest.find('{')?;
    let close = rest[open..].find('}')?;
    rest[open + 1..open + close]
        .split(',')
        .filter_map(|entry| entry.split_once(':'))
        .find(|(k, _)| k.trim().trim_matches('"') == "throughput_jobs_per_s")
        .and_then(|(_, v)| v.trim().parse().ok())
}

/// Gate the fresh service burst against a committed baseline that carries
/// a `"service"` section: the fresh run must have produced a burst at all
/// (a missing section would silently disable this gate), the burst must
/// have made forward progress, and every service guarantee — health
/// availability, hinted backpressure, failure isolation — must hold.
/// Throughput is reported (`checked`) but not thresholded.
pub fn check_service_gate(fresh: Option<&ServiceSummary>, baseline_text: &str) -> GateReport {
    let Some(fresh) = fresh else {
        return GateReport {
            checked: Vec::new(),
            failures: vec![GateFailure::MissingEntry("service section".to_string())],
        };
    };
    let mut report = GateReport::default();
    if fresh.completed == 0 {
        report.failures.push(GateFailure::ServiceGuarantee(
            "no job of the burst completed".to_string(),
        ));
    }
    // `partial_cmp` so a NaN throughput fails the gate too.
    if fresh.throughput_jobs_per_s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        report.failures.push(GateFailure::ServiceGuarantee(
            "throughput is not positive".to_string(),
        ));
    }
    if !fresh.health_ok {
        report.failures.push(GateFailure::ServiceGuarantee(
            "health checks went unanswered during the burst".to_string(),
        ));
    }
    if !fresh.backpressure_hinted {
        report.failures.push(GateFailure::ServiceGuarantee(
            "a 429 rejection lacked the retry_after_ms hint".to_string(),
        ));
    }
    if !fresh.failure_isolated {
        report.failures.push(GateFailure::ServiceGuarantee(
            "injected faults were not isolated as structured failures".to_string(),
        ));
    }
    report.checked.push(CheckedEntry {
        name: "service_throughput".to_string(),
        fresh: fresh.throughput_jobs_per_s,
        baseline: parse_service_throughput(baseline_text).unwrap_or(0.0),
    });
    report
}

/// Summary of the fresh run's template-throughput experiment: the same
/// repeat-seed quick battery timed twice, once cold-building every run
/// and once instantiating from the template cache.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputSummary {
    /// Runs timed per arm (cold and cached each execute this many).
    pub runs: usize,
    /// Cold arm: build + run, no template cache.
    pub cold_runs_per_s: f64,
    /// Cached arm: template instantiation + run.
    pub cached_runs_per_s: f64,
}

impl ThroughputSummary {
    /// Cached / cold runs-per-second ratio (NaN when cold is zero —
    /// which the gate then fails on).
    pub fn speedup(&self) -> f64 {
        self.cached_runs_per_s / self.cold_runs_per_s
    }
}

/// Required multiple of cold-build throughput the template cache must
/// deliver on the repeat-seed quick battery. A ratio of two arms timed
/// on the same host in the same process, so — unlike absolute jobs/s —
/// it is *not* a host-speed lottery and can be gated hard.
pub const THROUGHPUT_FLOOR: f64 = 2.0;

/// Whether a baseline file carries a `"battery_throughput"` section at
/// all. Old baselines (schema <= v7) legitimately predate run templates;
/// the caller skips the throughput gate for them instead of failing on a
/// section that could not exist.
pub fn has_battery_throughput(text: &str) -> bool {
    text.contains("\"battery_throughput\"")
}

/// Extract the baseline's `"battery_throughput"` speedup (informational —
/// shown next to the fresh value, never gated on).
pub fn parse_battery_throughput_speedup(text: &str) -> Option<f64> {
    let idx = text.find("\"battery_throughput\"")?;
    let rest = &text[idx..];
    let open = rest.find('{')?;
    let close = rest[open..].find('}')?;
    rest[open + 1..open + close]
        .split(',')
        .filter_map(|entry| entry.split_once(':'))
        .find(|(k, _)| k.trim().trim_matches('"') == "speedup")
        .and_then(|(_, v)| v.trim().parse().ok())
}

/// Gate the fresh template-throughput experiment against a committed
/// baseline that carries a `"battery_throughput"` section: the fresh run
/// must have produced the section at all (a missing experiment would
/// silently disable this gate), both arms must have made forward
/// progress, and the cached arm must be at least `floor` × the cold arm.
/// The absolute runs/s numbers are reported (`checked`) but only their
/// ratio is thresholded.
pub fn check_throughput_gate(
    fresh: Option<&ThroughputSummary>,
    baseline_text: &str,
    floor: f64,
) -> GateReport {
    let Some(fresh) = fresh else {
        return GateReport {
            checked: Vec::new(),
            failures: vec![GateFailure::MissingEntry(
                "battery_throughput section".to_string(),
            )],
        };
    };
    let mut report = GateReport::default();
    if fresh.runs == 0 {
        report.failures.push(GateFailure::ServiceGuarantee(
            "battery_throughput timed zero runs".to_string(),
        ));
    }
    // `partial_cmp` so NaN (e.g. a zero-duration cold arm) fails too.
    let positive = |v: f64| v.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
    if !positive(fresh.cold_runs_per_s) || !positive(fresh.cached_runs_per_s) {
        report.failures.push(GateFailure::ServiceGuarantee(
            "battery_throughput arm is not positive".to_string(),
        ));
    } else if fresh.speedup() < floor {
        report
            .failures
            .push(GateFailure::TemplateSpeedupBelowFloor {
                speedup: fresh.speedup(),
                floor,
            });
    }
    report.checked.push(CheckedEntry {
        name: "template_speedup".to_string(),
        fresh: fresh.speedup(),
        baseline: parse_battery_throughput_speedup(baseline_text).unwrap_or(0.0),
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
  "schema": "izhirisc-perf-baseline-v4",
  "workloads": [],
  "speedup_vs_seed": {
    "net8020_quick_1core": 2.000,
    "net8020_paper_1core_100ms": 1.900,
    "net8020_quick_2core": 2.790
  }
}"#;

    fn fresh(entries: &[(&str, f64)]) -> Vec<(String, f64)> {
        entries.iter().map(|&(n, v)| (n.to_string(), v)).collect()
    }

    #[test]
    fn parses_speedup_entries() {
        let entries = parse_speedups(BASELINE);
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0], ("net8020_quick_1core".to_string(), 2.0));
    }

    #[test]
    fn passes_when_all_entries_hold() {
        let f = fresh(&[
            ("net8020_quick_1core", 1.95),
            ("net8020_paper_1core_100ms", 1.88),
            // 2-core entries are informational: absent or regressed is fine.
        ]);
        let report = check_gate(&f, BASELINE, 0.85);
        assert!(report.passed());
        assert_eq!(report.checked.len(), 2);
    }

    #[test]
    fn missing_baseline_key_errors_instead_of_passing() {
        // A fresh run that lost (e.g. renamed) a gated row must fail the
        // gate even though every entry it *does* have looks healthy.
        let f = fresh(&[("net8020_quick_1core", 2.5)]);
        let report = check_gate(&f, BASELINE, 0.85);
        assert!(!report.passed());
        assert_eq!(
            report.failures,
            vec![GateFailure::MissingEntry(
                "net8020_paper_1core_100ms".to_string()
            )]
        );
    }

    #[test]
    fn regression_below_min_ratio_errors() {
        let f = fresh(&[
            ("net8020_quick_1core", 1.0), // 0.5x of baseline
            ("net8020_paper_1core_100ms", 1.9),
        ]);
        let report = check_gate(&f, BASELINE, 0.85);
        assert_eq!(report.failures.len(), 1);
        assert!(matches!(
            &report.failures[0],
            GateFailure::Regressed { name, .. } if name == "net8020_quick_1core"
        ));
    }

    #[test]
    fn empty_or_garbled_baseline_errors() {
        let f = fresh(&[("net8020_quick_1core", 2.0)]);
        assert_eq!(
            check_gate(&f, "not json at all", 0.85).failures,
            vec![GateFailure::NoGatedEntries]
        );
        // A baseline with only multi-core entries gates nothing — that is
        // an error too, not a vacuous pass.
        let multi_only = r#"{"speedup_vs_seed": {"net8020_quick_2core": 2.79}}"#;
        assert_eq!(
            check_gate(&f, multi_only, 0.85).failures,
            vec![GateFailure::NoGatedEntries]
        );
    }

    const BATTERY_BASELINE: &str = r#"{
  "battery": [
    {"key": "net8020:5:exact", "verified": true},
    {"key": "net8020:5:relaxed-par", "verified": true}
  ]
}"#;

    fn fresh_battery(entries: &[(&str, bool)]) -> Vec<(String, bool)> {
        entries.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn battery_gate_passes_when_keys_hold() {
        let f = fresh_battery(&[
            ("net8020:5:exact", true),
            ("net8020:5:relaxed-par", true),
            ("extra:1:exact", true), // extra fresh rows are fine
        ]);
        let report = check_battery_gate(&f, BATTERY_BASELINE);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.checked.len(), 2);
    }

    #[test]
    fn battery_gate_errors_on_missing_key() {
        let f = fresh_battery(&[("net8020:5:exact", true)]);
        let report = check_battery_gate(&f, BATTERY_BASELINE);
        assert_eq!(
            report.failures,
            vec![GateFailure::MissingEntry(
                "net8020:5:relaxed-par".to_string()
            )]
        );
    }

    #[test]
    fn battery_gate_errors_on_unverified_row() {
        let f = fresh_battery(&[("net8020:5:exact", true), ("net8020:5:relaxed-par", false)]);
        let report = check_battery_gate(&f, BATTERY_BASELINE);
        assert_eq!(
            report.failures,
            vec![GateFailure::Unverified("net8020:5:relaxed-par".to_string())]
        );
    }

    #[test]
    fn battery_gate_errors_on_batteryless_baseline() {
        let f = fresh_battery(&[("net8020:5:exact", true)]);
        assert_eq!(
            check_battery_gate(&f, BASELINE).failures,
            vec![GateFailure::NoGatedEntries]
        );
    }

    const ACCURACY_BASELINE: &str = r#"{
  "estimated_accuracy": {
    "net8020": 0.912,
    "sudoku": 1.104
  }
}"#;

    #[test]
    fn accuracy_gate_passes_inside_the_band() {
        let f = fresh(&[("net8020", 1.2), ("sudoku", 0.8), ("extra", 9.0)]);
        let report = check_accuracy_gate(&f, ACCURACY_BASELINE, 0.5, 2.0);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.checked.len(), 2);
    }

    #[test]
    fn accuracy_gate_errors_outside_the_band() {
        let f = fresh(&[("net8020", 2.5), ("sudoku", 1.0)]);
        let report = check_accuracy_gate(&f, ACCURACY_BASELINE, 0.5, 2.0);
        assert_eq!(report.failures.len(), 1);
        assert!(matches!(
            &report.failures[0],
            GateFailure::AccuracyOutOfBand { name, ratio, .. }
                if name == "net8020" && (*ratio - 2.5).abs() < 1e-12
        ));
    }

    #[test]
    fn accuracy_gate_errors_on_missing_scenario() {
        let f = fresh(&[("net8020", 1.0)]);
        let report = check_accuracy_gate(&f, ACCURACY_BASELINE, 0.5, 2.0);
        assert_eq!(
            report.failures,
            vec![GateFailure::MissingEntry("sudoku".to_string())]
        );
    }

    #[test]
    fn out_of_band_baselines_are_gated_relative_to_their_committed_ratio() {
        // A barrier-dominated scale-out scenario commits a ratio below
        // the absolute band: reproducing it (within the relative factor)
        // must pass, drifting past the factor must fail, and in-band
        // scenarios in the same baseline keep the absolute semantics.
        let baseline = r#"{
  "estimated_accuracy": {
    "net8020_sharded": 0.250,
    "net8020": 1.026
  }
}"#;
        let ok = fresh(&[("net8020_sharded", 0.26), ("net8020", 1.0)]);
        assert!(check_accuracy_gate(&ok, baseline, 0.5, 2.0).passed());
        let drifted = fresh(&[("net8020_sharded", 0.06), ("net8020", 1.0)]);
        let report = check_accuracy_gate(&drifted, baseline, 0.5, 2.0);
        assert!(matches!(
            &report.failures[..],
            [GateFailure::AccuracyOutOfBand { name, .. }] if name == "net8020_sharded"
        ));
        // An in-band baseline never unlocks the relative escape hatch:
        // 1.9 is within 2x of the committed 1.026 but outside the band.
        let escaped = fresh(&[("net8020_sharded", 0.25), ("net8020", 2.05)]);
        let report = check_accuracy_gate(&escaped, baseline, 0.5, 2.0);
        assert!(matches!(
            &report.failures[..],
            [GateFailure::AccuracyOutOfBand { name, .. }] if name == "net8020"
        ));
    }

    #[test]
    fn accuracy_gate_detects_the_section() {
        assert!(has_estimated_accuracy(ACCURACY_BASELINE));
        assert!(!has_estimated_accuracy(BASELINE));
        // Old baselines without the section are the caller's skip case; a
        // present-but-garbled section must fail, not pass.
        assert_eq!(
            check_accuracy_gate(&fresh(&[]), r#"{"estimated_accuracy": "zap"}"#, 0.5, 2.0).failures,
            vec![GateFailure::NoGatedEntries]
        );
        assert_eq!(
            check_accuracy_gate(&fresh(&[("a", 1.0)]), BASELINE, 0.5, 2.0).failures,
            vec![GateFailure::NoGatedEntries]
        );
    }

    const SERVICE_BASELINE: &str = r#"{
  "service": {"jobs": 40, "completed": 38, "throughput_jobs_per_s": 410.5, "health_ok": true}
}"#;

    fn healthy_summary() -> ServiceSummary {
        ServiceSummary {
            completed: 38,
            throughput_jobs_per_s: 350.0,
            health_ok: true,
            backpressure_hinted: true,
            failure_isolated: true,
        }
    }

    #[test]
    fn service_gate_passes_when_guarantees_hold() {
        let report = check_service_gate(Some(&healthy_summary()), SERVICE_BASELINE);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.checked.len(), 1);
        assert_eq!(
            report.checked[0].baseline, 410.5,
            "baseline throughput parsed"
        );
    }

    #[test]
    fn service_gate_errors_on_each_broken_guarantee() {
        for (mutate, what) in [
            (
                (|s: &mut ServiceSummary| s.completed = 0) as fn(&mut ServiceSummary),
                "no job",
            ),
            (|s| s.throughput_jobs_per_s = 0.0, "not positive"),
            (|s| s.health_ok = false, "health"),
            (|s| s.backpressure_hinted = false, "retry_after_ms"),
            (|s| s.failure_isolated = false, "not isolated"),
        ] {
            let mut s = healthy_summary();
            mutate(&mut s);
            let report = check_service_gate(Some(&s), SERVICE_BASELINE);
            assert!(
                report.failures.iter().any(|f| f.to_string().contains(what)),
                "expected a failure mentioning `{what}`, got {:?}",
                report.failures
            );
        }
    }

    #[test]
    fn service_gate_errors_when_fresh_run_has_no_burst() {
        // The baseline promises a service section; a fresh run without
        // one must fail rather than silently skipping its own gate.
        let report = check_service_gate(None, SERVICE_BASELINE);
        assert_eq!(
            report.failures,
            vec![GateFailure::MissingEntry("service section".to_string())]
        );
    }

    #[test]
    fn service_section_detection_and_skip_case() {
        assert!(has_service(SERVICE_BASELINE));
        assert!(!has_service(BASELINE), "old baselines skip the gate");
        assert_eq!(parse_service_throughput(SERVICE_BASELINE), Some(410.5));
        assert_eq!(parse_service_throughput(BASELINE), None);
    }

    const THROUGHPUT_BASELINE: &str = r#"{
  "battery_throughput": {"runs": 24, "cold_runs_per_s": 10.0, "cached_runs_per_s": 55.0, "speedup": 5.500}
}"#;

    fn healthy_throughput() -> ThroughputSummary {
        ThroughputSummary {
            runs: 24,
            cold_runs_per_s: 10.0,
            cached_runs_per_s: 30.0,
        }
    }

    #[test]
    fn throughput_gate_passes_above_the_floor() {
        let report = check_throughput_gate(Some(&healthy_throughput()), THROUGHPUT_BASELINE, 2.0);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.checked.len(), 1);
        assert!((report.checked[0].fresh - 3.0).abs() < 1e-12, "speedup 3x");
        assert_eq!(
            report.checked[0].baseline, 5.5,
            "baseline speedup parsed for display"
        );
    }

    #[test]
    fn throughput_gate_errors_below_the_floor() {
        let mut s = healthy_throughput();
        s.cached_runs_per_s = 15.0; // 1.5x < 2x floor
        let report = check_throughput_gate(Some(&s), THROUGHPUT_BASELINE, 2.0);
        assert_eq!(report.failures.len(), 1);
        assert!(matches!(
            &report.failures[0],
            GateFailure::TemplateSpeedupBelowFloor { speedup, floor }
                if (*speedup - 1.5).abs() < 1e-12 && *floor == 2.0
        ));
    }

    #[test]
    fn throughput_gate_errors_on_degenerate_arms() {
        for mutate in [
            (|s: &mut ThroughputSummary| s.runs = 0) as fn(&mut ThroughputSummary),
            |s| s.cold_runs_per_s = 0.0,
            |s| s.cached_runs_per_s = f64::NAN,
        ] {
            let mut s = healthy_throughput();
            mutate(&mut s);
            assert!(
                !check_throughput_gate(Some(&s), THROUGHPUT_BASELINE, 2.0).passed(),
                "degenerate summary {s:?} must fail"
            );
        }
    }

    #[test]
    fn throughput_gate_errors_when_fresh_run_has_no_section() {
        // The baseline promises the section; a fresh run without one must
        // fail rather than silently skipping its own gate.
        let report = check_throughput_gate(None, THROUGHPUT_BASELINE, THROUGHPUT_FLOOR);
        assert_eq!(
            report.failures,
            vec![GateFailure::MissingEntry(
                "battery_throughput section".to_string()
            )]
        );
    }

    #[test]
    fn throughput_section_detection_and_skip_case() {
        assert!(has_battery_throughput(THROUGHPUT_BASELINE));
        assert!(!has_battery_throughput(BASELINE), "old baselines skip");
        assert_eq!(
            parse_battery_throughput_speedup(THROUGHPUT_BASELINE),
            Some(5.5)
        );
        assert_eq!(parse_battery_throughput_speedup(BASELINE), None);
    }

    #[test]
    fn multi_core_entries_are_informational() {
        // The 2-core baseline entry exists but the fresh run reports it
        // far lower: must still pass (host-dependent row).
        let f = fresh(&[
            ("net8020_quick_1core", 2.0),
            ("net8020_paper_1core_100ms", 1.9),
            ("net8020_quick_2core", 0.1),
        ]);
        assert!(check_gate(&f, BASELINE, 0.85).passed());
    }

    #[test]
    fn floor_gate_checks_only_headline_single_core_rows() {
        // Diagnostic (_norelax/_nosb/_nokernel) and multi-core rows are
        // exempt from the absolute floor even when they sit far below it;
        // the kernel-on relaxed row is headline and stays gated.
        let f = fresh(&[
            ("net8020_quick_1core", 2.2),
            ("net8020_quick_1core_norelax", 1.1),
            ("net8020_quick_1core_nosb", 0.9),
            ("net8020_quick_1core_relaxed", 3.5),
            ("net8020_quick_1core_relaxed_nokernel", 1.4),
            ("net8020_quick_2core", 1.2),
        ]);
        let report = check_floor_gate(&f, SINGLE_CORE_FLOOR);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.checked.len(), 2);
        assert_eq!(report.checked[0].name, "net8020_quick_1core");
        assert_eq!(report.checked[1].name, "net8020_quick_1core_relaxed");
    }

    #[test]
    fn kernel_gate_passes_when_both_floors_clear() {
        let f = fresh(&[
            ("net8020_quick_1core", 2.2),
            ("net8020_quick_1core_relaxed", 3.5),
            ("net8020_quick_1core_relaxed_nokernel", 1.4),
            ("net8020_paper_1core_100ms_relaxed", 6.0),
            ("net8020_paper_1core_100ms_relaxed_nokernel", 2.1),
        ]);
        let report = check_kernel_gate(&f, RELAXED_SINGLE_CORE_FLOOR, KERNEL_SPEEDUP_FLOOR);
        assert!(report.passed(), "{:?}", report.failures);
        // One checked entry per on/off pair, carrying the on/off ratio.
        assert_eq!(report.checked.len(), 2);
        assert!((report.checked[0].fresh - 2.5).abs() < 1e-9);
    }

    #[test]
    fn kernel_gate_errors_on_low_ratio_low_quick_row_or_missing_twin() {
        // On/off ratio below the kernel floor.
        let low_ratio = fresh(&[
            ("net8020_quick_1core_relaxed", 3.0),
            ("net8020_quick_1core_relaxed_nokernel", 2.9),
        ]);
        let report = check_kernel_gate(&low_ratio, 2.8, 1.25);
        assert!(matches!(
            &report.failures[..],
            [GateFailure::KernelSpeedupBelowFloor { name, on, off, floor }]
                if name == "net8020_quick_1core_relaxed"
                    && *on == 3.0 && *off == 2.9 && *floor == 1.25
        ));
        // Quick relaxed row below its absolute floor (ratio fine).
        let low_quick = fresh(&[
            ("net8020_quick_1core_relaxed", 2.0),
            ("net8020_quick_1core_relaxed_nokernel", 1.0),
        ]);
        let report = check_kernel_gate(&low_quick, 2.8, 1.25);
        assert!(matches!(
            &report.failures[..],
            [GateFailure::BelowAbsoluteFloor { name, fresh, floor }]
                if name == "net8020_quick_1core_relaxed" && *fresh == 2.0 && *floor == 2.8
        ));
        // A kernel-on row without its nokernel twin cannot silently skip
        // the ratio check.
        let no_twin = fresh(&[("net8020_quick_1core_relaxed", 3.5)]);
        let report = check_kernel_gate(&no_twin, 2.8, 1.25);
        assert!(report
            .failures
            .iter()
            .any(|e| matches!(e, GateFailure::MissingEntry(n)
                if n == "net8020_quick_1core_relaxed_nokernel")));
        // No relaxed rows at all gates nothing — an error, not a pass.
        let none = fresh(&[("net8020_quick_1core", 2.2)]);
        assert_eq!(
            check_kernel_gate(&none, 2.8, 1.25).failures,
            vec![GateFailure::NoGatedEntries]
        );
        // The gated quick row itself must exist.
        let paper_only = fresh(&[
            ("net8020_paper_1core_100ms_relaxed", 6.0),
            ("net8020_paper_1core_100ms_relaxed_nokernel", 2.1),
        ]);
        let report = check_kernel_gate(&paper_only, 2.8, 1.25);
        assert!(report
            .failures
            .iter()
            .any(|e| matches!(e, GateFailure::MissingEntry(n)
                if n == "net8020_quick_1core_relaxed")));
    }

    #[test]
    fn floor_gate_errors_below_the_floor_and_on_empty_gated_set() {
        let f = fresh(&[("net8020_quick_1core", 1.7)]);
        let report = check_floor_gate(&f, 2.0);
        assert!(matches!(
            &report.failures[..],
            [GateFailure::BelowAbsoluteFloor { name, fresh, floor }]
                if name == "net8020_quick_1core" && *fresh == 1.7 && *floor == 2.0
        ));
        // A fresh run with no headline single-core rows gates nothing —
        // an error, not a vacuous pass.
        let diag_only = fresh(&[("net8020_quick_1core_nosb", 2.5)]);
        assert_eq!(
            check_floor_gate(&diag_only, 2.0).failures,
            vec![GateFailure::NoGatedEntries]
        );
    }

    const INSTRET_BASELINE: &str = r#"{
  "instret_reduction": {
    "net8020_quick_1core": 0.0305,
    "net8020_paper_1core_100ms": 0.012
  }
}"#;

    #[test]
    fn instret_section_parses_and_is_detected() {
        assert!(has_instret_reduction(INSTRET_BASELINE));
        assert!(!has_instret_reduction(BASELINE), "old baselines skip");
        let entries = parse_instret_reduction(INSTRET_BASELINE);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0], ("net8020_quick_1core".to_string(), 0.0305));
    }

    #[test]
    fn instret_gate_floors_the_quick_row_only() {
        // The paper shape relaxes less (its integration loops dominate);
        // it is presence-checked but not floored.
        let ok = fresh(&[
            ("net8020_quick_1core", 0.031),
            ("net8020_paper_1core_100ms", 0.001),
        ]);
        let report = check_instret_gate(&ok, INSTRET_BASELINE, INSTRET_REDUCTION_FLOOR);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.checked.len(), 2);

        let low = fresh(&[
            ("net8020_quick_1core", 0.004),
            ("net8020_paper_1core_100ms", 0.012),
        ]);
        let report = check_instret_gate(&low, INSTRET_BASELINE, 0.03);
        assert!(matches!(
            &report.failures[..],
            [GateFailure::InstretReductionBelowFloor { name, fresh, floor }]
                if name == "net8020_quick_1core" && *fresh == 0.004 && *floor == 0.03
        ));
    }

    #[test]
    fn instret_gate_errors_on_missing_row_or_sectionless_baseline() {
        let f = fresh(&[("net8020_quick_1core", 0.031)]);
        let report = check_instret_gate(&f, INSTRET_BASELINE, 0.03);
        assert_eq!(
            report.failures,
            vec![GateFailure::MissingEntry(
                "net8020_paper_1core_100ms".to_string()
            )]
        );
        assert_eq!(
            check_instret_gate(&f, BASELINE, 0.03).failures,
            vec![GateFailure::NoGatedEntries]
        );
    }
}

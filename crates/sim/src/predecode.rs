//! Predecoded instruction stream.
//!
//! The seed interpreter paid, on **every** executed instruction, a
//! `region_of` range classification, an `Option`-cache decode lookup and a
//! hazard test that built and scanned a `[Option<Reg>; 3]` array. This
//! module removes all three: every executable word in the SDRAM code
//! window and the scratchpad lowers (eagerly at program load, lazily on
//! first fetch) into a [`PreInst`] — the decoded [`Inst`] plus everything
//! the hot loop would otherwise recompute per step:
//!
//! * a **source-register bitmask** and **destination index**, so the
//!   load-use / nm-writeback hazard test is one shift-and-mask;
//! * the slot's **region class** ([`SlotState::Sdram`] vs
//!   [`SlotState::Scratch`]), so fetch needs no address classification —
//!   the state byte tells the core directly whether the I-cache applies;
//! * a **staleness bit**, which doubles as the self-modifying-code guard:
//!   every guest store into a materialised code window flips the covered
//!   slot back to [`SlotState::Stale`], forcing a re-decode on next fetch.
//!
//! Two layout decisions came out of measurement rather than first
//! principles:
//!
//! * `PreInst` is exactly 16 bytes so `fetch` returns it in a register
//!   pair. (A variant that also precomputed the I-cache set/tag made the
//!   struct 20 bytes; it then travelled through a stack slot on every
//!   fetch and measured *slower* than recomputing two shifts, so the
//!   set/tag stay in the cache model.)
//! * The tables are **flat** `Vec<PreInst>`s — a fetch is one length check
//!   and one indexed load. (A demand-paged two-level variant added a
//!   dependent pointer chase to the per-instruction critical path.) The
//!   flat windows are instead materialised lazily: nothing is allocated
//!   until code actually executes or is preloaded, and the SDRAM window
//!   grows in `GROW_BYTES` steps up to [`CODE_WINDOW_MAX`].
//!
//! Executable SDRAM is therefore the low [`CODE_WINDOW_MAX`] bytes (the
//! same window the seed's decode cache memoised) — but where the seed
//! silently decoded-without-caching above it, a fetch beyond the window
//! now traps as `BadFetch`, like any fetch outside SDRAM/scratch.
//!
//! Host-side writes through [`crate::mem::MainMemory`] are only observed
//! until a slot is first fetched (lazy decode); rewriting code from the
//! host after execution started was already unsupported in the seed.

use izhi_isa::decode;
use izhi_isa::inst::Inst;

use crate::counters::CostTable;
use crate::kernel::{KernelSpan, SpanTable};
use crate::mem::{layout, MainMemory};

/// Word-granular read access to guest memory, as the decode paths need it.
///
/// [`CodeTable`] is a pure cache over the bytes actually resident in RAM;
/// abstracting the word read lets the same table logic run against
/// [`MainMemory`] (the exact and relaxed schedulers) *and* against the
/// raw sharded RAM view the host-parallel scheduler hands each worker
/// thread (which cannot hold a `&MainMemory` while other threads write
/// disjoint guest addresses).
pub trait CodeMem {
    /// Read the aligned 32-bit word at `addr`; `None` if unmapped.
    fn code_word(&self, addr: u32) -> Option<u32>;
}

impl CodeMem for MainMemory {
    #[inline]
    fn code_word(&self, addr: u32) -> Option<u32> {
        self.read_u32(addr)
    }
}

/// Decode state of one 4-byte code slot — doubles as the region class of
/// a successfully fetched slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SlotState {
    /// Never decoded, or invalidated by a store into the slot.
    Stale = 0,
    /// Decoded, resident in SDRAM (the I-cache applies on fetch).
    Sdram,
    /// Decoded, resident in the single-cycle scratchpad (uncached).
    Scratch,
    /// The word does not decode; fetching it traps.
    Illegal,
    /// Never stored: returned by `fetch` for pcs outside every executable
    /// window.
    OutOfRange,
}

/// Sentinel destination meaning "no register writeback" (safe shift index).
pub const NO_DEST: u8 = 63;

/// Flattened opcode of a predecoded slot: one jump resolves the whole
/// operation (the seed's `Inst` enum needed a second nested dispatch for
/// ALU / branch / nm subclasses on every step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum MicroOp {
    Lui,
    Auipc,
    Jal,
    Jalr,
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    Lb,
    Lh,
    Lw,
    Lbu,
    Lhu,
    Sb,
    Sh,
    Sw,
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Fence,
    Ecall,
    Ebreak,
    /// Both Zicsr forms: this core's CSRs are read-only, so only the read
    /// matters; `imm` carries the CSR number.
    Csr,
    Nmldl,
    Nmldh,
    Nmpn,
    Nmdec,
}

impl MicroOp {
    /// Every decodable micro-op, in declaration order, for exhaustive
    /// sweeps (the cost-model tests assert that each one is charged at
    /// least one cycle, and that this list stays gap-free against the
    /// `repr(u8)` discriminants). When adding a variant, append it here
    /// too — `OpClass::of`'s exhaustive match will force the cost
    /// assignment in the same change.
    pub const ALL: &'static [MicroOp] = &[
        MicroOp::Lui,
        MicroOp::Auipc,
        MicroOp::Jal,
        MicroOp::Jalr,
        MicroOp::Beq,
        MicroOp::Bne,
        MicroOp::Blt,
        MicroOp::Bge,
        MicroOp::Bltu,
        MicroOp::Bgeu,
        MicroOp::Lb,
        MicroOp::Lh,
        MicroOp::Lw,
        MicroOp::Lbu,
        MicroOp::Lhu,
        MicroOp::Sb,
        MicroOp::Sh,
        MicroOp::Sw,
        MicroOp::Addi,
        MicroOp::Slti,
        MicroOp::Sltiu,
        MicroOp::Xori,
        MicroOp::Ori,
        MicroOp::Andi,
        MicroOp::Slli,
        MicroOp::Srli,
        MicroOp::Srai,
        MicroOp::Add,
        MicroOp::Sub,
        MicroOp::Sll,
        MicroOp::Slt,
        MicroOp::Sltu,
        MicroOp::Xor,
        MicroOp::Srl,
        MicroOp::Sra,
        MicroOp::Or,
        MicroOp::And,
        MicroOp::Mul,
        MicroOp::Mulh,
        MicroOp::Mulhsu,
        MicroOp::Mulhu,
        MicroOp::Div,
        MicroOp::Divu,
        MicroOp::Rem,
        MicroOp::Remu,
        MicroOp::Fence,
        MicroOp::Ecall,
        MicroOp::Ebreak,
        MicroOp::Csr,
        MicroOp::Nmldl,
        MicroOp::Nmldh,
        MicroOp::Nmpn,
        MicroOp::Nmdec,
    ];

    /// Control transfers end a superblock but execute as its final op
    /// (their `next_pc` is simply where the core resumes single-stepping).
    pub(crate) fn ends_superblock(self) -> bool {
        matches!(
            self,
            MicroOp::Jal
                | MicroOp::Jalr
                | MicroOp::Beq
                | MicroOp::Bne
                | MicroOp::Blt
                | MicroOp::Bge
                | MicroOp::Bltu
                | MicroOp::Bgeu
        )
    }

    /// Ops a superblock must stop *before*: `ecall`/`ebreak` drive the
    /// halt machinery, and `csr` reads the live clock/instret — both are
    /// stale inside a batched block under the relaxed clocks, and the
    /// fused tables are shared across timing policies, so exclusion must
    /// be timing-agnostic.
    pub(crate) fn excluded_from_superblock(self) -> bool {
        matches!(self, MicroOp::Ecall | MicroOp::Ebreak | MicroOp::Csr)
    }
}

/// One predecoded 4-byte slot (16 bytes, returned by value in registers).
///
/// `imm` is pre-resolved where the slot's pc allows it: branches and `jal`
/// store their **absolute target**, `auipc` stores the final `pc + imm`
/// value, and `Csr` stores the CSR number.
#[derive(Debug, Clone, Copy)]
pub struct PreInst {
    /// Flat opcode.
    pub op: MicroOp,
    /// rd field (0–31; writes to x0 are discarded by the register file).
    pub rd: u8,
    /// rs1 field (0–31).
    pub rs1: u8,
    /// rs2 field (0–31).
    pub rs2: u8,
    /// Immediate / absolute target / CSR number (see struct docs).
    pub imm: i32,
    /// Bit `r` set iff architectural register `r != x0` is a source.
    pub src_mask: u32,
    /// Destination register index, or [`NO_DEST`].
    pub dest: u8,
    /// Decode state / region class.
    pub state: SlotState,
}

impl PreInst {
    pub(crate) const EMPTY: PreInst = PreInst {
        op: MicroOp::Ebreak,
        rd: 0,
        rs1: 0,
        rs2: 0,
        imm: 0,
        src_mask: 0,
        dest: NO_DEST,
        state: SlotState::Stale,
    };

    const OUT_OF_RANGE: PreInst = PreInst {
        state: SlotState::OutOfRange,
        ..PreInst::EMPTY
    };
}

/// Executable SDRAM is the low 1 MiB (the seed's decode-cache window).
pub const CODE_WINDOW_MAX: u32 = 1024 * 1024;
/// Window growth increment when a fetch or preload lands beyond the
/// currently materialised slots.
const GROW_BYTES: u32 = 64 * 1024;

/// Maximum superblock length in instructions. Long enough to swallow the
/// engine's phase-B neuron body in one block, short enough that the
/// store-invalidation backscan and the per-entry stack copy stay cheap.
pub const MAX_SB: usize = 32;

/// The per-system predecode tables (shared by all cores under the exact
/// and relaxed schedulers; the host-parallel scheduler clones one shard
/// per core — the table is a pure cache, so divergent shards stay correct).
///
/// Alongside the per-slot stream the table carries the **superblock
/// index**: `sb_len[x]` is the length of the straight-line fused run
/// starting at SDRAM slot `x` (`0` = not yet formed, `1` = unfusible,
/// `>= 2` = a run the interpreter may execute as one dispatch), and
/// `sb_est[x]` its total [`CostTable::DEFAULT`] cost (the relaxed
/// schedulers' conservative bound-check sum). Formation only ever fuses
/// already-decoded SDRAM slots, so a `Stale` slot is never covered by a
/// block — the store-to-code guard relies on that invariant to skip the
/// overlap backscan for never-executed (data) slots.
#[derive(Debug, Clone)]
pub struct CodeTable {
    /// Covers `[0, sdram.len() * 4)`; grown on demand up to `sdram_cap`.
    sdram: Vec<PreInst>,
    /// Superblock length per SDRAM slot (kept sized with `sdram`).
    sb_len: Vec<u16>,
    /// Total estimated-timing cost per superblock (sized with `sdram`).
    sb_est: Vec<u32>,
    /// Empty until scratch-resident code first runs, then the full region.
    scratch: Vec<PreInst>,
    /// Exclusive upper bound of executable SDRAM.
    sdram_cap: u32,
    scratch_size: u32,
    /// Registered kernel spans (see [`crate::kernel`]). Rides the table's
    /// clones into run templates and per-core shards, and shares the
    /// store-to-code guard below.
    pub(crate) kernels: SpanTable,
}

impl CodeTable {
    /// Build empty tables for the given memory sizes. Nothing is
    /// allocated until code is preloaded or fetched.
    pub fn new(sdram_size: u32, scratch_size: u32) -> Self {
        CodeTable {
            sdram: Vec::new(),
            sb_len: Vec::new(),
            sb_est: Vec::new(),
            scratch: Vec::new(),
            sdram_cap: sdram_size.min(CODE_WINDOW_MAX) & !3,
            scratch_size: scratch_size & !3,
            kernels: SpanTable::default(),
        }
    }

    /// Exclusive upper bound of executable SDRAM (test hook).
    pub fn sdram_limit(&self) -> u32 {
        self.sdram_cap
    }

    /// The registered kernel spans (inspection/tests).
    pub fn kernel_spans(&self) -> &[KernelSpan] {
        self.kernels.spans()
    }

    /// Move the kernel spans out of this table (see
    /// [`SpanTable::take`]); used when a fresh table replaces this one
    /// across a run boundary.
    pub fn take_kernel_spans(&mut self) -> Vec<KernelSpan> {
        self.kernels.take()
    }

    /// Re-install spans taken from a previous table; every surviving span
    /// comes back [`crate::kernel::SpanState::Dirty`] and must re-verify
    /// its fingerprint before the next batch (see [`SpanTable::adopt`]).
    pub fn adopt_kernel_spans(&mut self, spans: Vec<KernelSpan>) {
        self.kernels.adopt(spans);
    }

    fn lower(pc: u32, word: u32, in_scratch: bool) -> PreInst {
        use izhi_isa::inst::{AluImmOp, AluOp, BranchOp, LoadOp, NmOp, StoreOp};
        let Ok(inst) = decode(word) else {
            return PreInst {
                state: SlotState::Illegal,
                ..PreInst::EMPTY
            };
        };
        let mut src_mask = 0u32;
        for src in inst.sources().into_iter().flatten() {
            src_mask |= 1u32 << src.idx();
        }
        let mut pre = PreInst {
            src_mask,
            dest: inst.dest().map_or(NO_DEST, |r| r.idx() as u8),
            state: if in_scratch {
                SlotState::Scratch
            } else {
                SlotState::Sdram
            },
            ..PreInst::EMPTY
        };
        let target = |imm: i32| pc.wrapping_add(imm as u32) as i32;
        match inst {
            Inst::Lui { rd, imm } => {
                (pre.op, pre.rd, pre.imm) = (MicroOp::Lui, rd.idx() as u8, imm);
            }
            Inst::Auipc { rd, imm } => {
                // Fully resolved: auipc is a constant load at a fixed pc.
                (pre.op, pre.rd, pre.imm) = (MicroOp::Auipc, rd.idx() as u8, target(imm));
            }
            Inst::Jal { rd, imm } => {
                (pre.op, pre.rd, pre.imm) = (MicroOp::Jal, rd.idx() as u8, target(imm));
            }
            Inst::Jalr { rd, rs1, imm } => {
                (pre.op, pre.rd, pre.rs1, pre.imm) =
                    (MicroOp::Jalr, rd.idx() as u8, rs1.idx() as u8, imm);
            }
            Inst::Branch { op, rs1, rs2, imm } => {
                pre.op = match op {
                    BranchOp::Eq => MicroOp::Beq,
                    BranchOp::Ne => MicroOp::Bne,
                    BranchOp::Lt => MicroOp::Blt,
                    BranchOp::Ge => MicroOp::Bge,
                    BranchOp::Ltu => MicroOp::Bltu,
                    BranchOp::Geu => MicroOp::Bgeu,
                };
                (pre.rs1, pre.rs2, pre.imm) = (rs1.idx() as u8, rs2.idx() as u8, target(imm));
            }
            Inst::Load { op, rd, rs1, imm } => {
                pre.op = match op {
                    LoadOp::Lb => MicroOp::Lb,
                    LoadOp::Lh => MicroOp::Lh,
                    LoadOp::Lw => MicroOp::Lw,
                    LoadOp::Lbu => MicroOp::Lbu,
                    LoadOp::Lhu => MicroOp::Lhu,
                };
                (pre.rd, pre.rs1, pre.imm) = (rd.idx() as u8, rs1.idx() as u8, imm);
            }
            Inst::Store { op, rs1, rs2, imm } => {
                pre.op = match op {
                    StoreOp::Sb => MicroOp::Sb,
                    StoreOp::Sh => MicroOp::Sh,
                    StoreOp::Sw => MicroOp::Sw,
                };
                (pre.rs1, pre.rs2, pre.imm) = (rs1.idx() as u8, rs2.idx() as u8, imm);
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                pre.op = match op {
                    AluImmOp::Addi => MicroOp::Addi,
                    AluImmOp::Slti => MicroOp::Slti,
                    AluImmOp::Sltiu => MicroOp::Sltiu,
                    AluImmOp::Xori => MicroOp::Xori,
                    AluImmOp::Ori => MicroOp::Ori,
                    AluImmOp::Andi => MicroOp::Andi,
                    AluImmOp::Slli => MicroOp::Slli,
                    AluImmOp::Srli => MicroOp::Srli,
                    AluImmOp::Srai => MicroOp::Srai,
                };
                (pre.rd, pre.rs1, pre.imm) = (rd.idx() as u8, rs1.idx() as u8, imm);
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                pre.op = match op {
                    AluOp::Add => MicroOp::Add,
                    AluOp::Sub => MicroOp::Sub,
                    AluOp::Sll => MicroOp::Sll,
                    AluOp::Slt => MicroOp::Slt,
                    AluOp::Sltu => MicroOp::Sltu,
                    AluOp::Xor => MicroOp::Xor,
                    AluOp::Srl => MicroOp::Srl,
                    AluOp::Sra => MicroOp::Sra,
                    AluOp::Or => MicroOp::Or,
                    AluOp::And => MicroOp::And,
                    AluOp::Mul => MicroOp::Mul,
                    AluOp::Mulh => MicroOp::Mulh,
                    AluOp::Mulhsu => MicroOp::Mulhsu,
                    AluOp::Mulhu => MicroOp::Mulhu,
                    AluOp::Div => MicroOp::Div,
                    AluOp::Divu => MicroOp::Divu,
                    AluOp::Rem => MicroOp::Rem,
                    AluOp::Remu => MicroOp::Remu,
                };
                (pre.rd, pre.rs1, pre.rs2) = (rd.idx() as u8, rs1.idx() as u8, rs2.idx() as u8);
            }
            Inst::Fence => pre.op = MicroOp::Fence,
            Inst::Ecall => pre.op = MicroOp::Ecall,
            Inst::Ebreak => pre.op = MicroOp::Ebreak,
            // The core's CSRs are read-only: both Zicsr forms reduce to
            // "rd <- csr_read(csr)" (set/clear/write are dropped, as in
            // the seed).
            Inst::Csr { rd, csr, .. } | Inst::CsrImm { rd, csr, .. } => {
                (pre.op, pre.rd, pre.imm) = (MicroOp::Csr, rd.idx() as u8, i32::from(csr));
            }
            Inst::Nm { op, rd, rs1, rs2 } => {
                pre.op = match op {
                    NmOp::Nmldl => MicroOp::Nmldl,
                    NmOp::Nmldh => MicroOp::Nmldh,
                    NmOp::Nmpn => MicroOp::Nmpn,
                    NmOp::Nmdec => MicroOp::Nmdec,
                };
                (pre.rd, pre.rs1, pre.rs2) = (rd.idx() as u8, rs1.idx() as u8, rs2.idx() as u8);
            }
        }
        pre
    }

    /// Fetch the slot covering the 4-aligned `pc`, decoding it on first
    /// use. `mem` is only read on the stale/illegal/grow paths. The
    /// returned slot's `state` is the region class (or `Illegal` /
    /// `OutOfRange`).
    #[inline]
    pub fn fetch<M: CodeMem>(&mut self, pc: u32, mem: &M) -> PreInst {
        if let Some(slot) = self.sdram.get((pc >> 2) as usize) {
            if slot.state != SlotState::Stale {
                return *slot;
            }
            return self.fetch_slow(pc, mem);
        }
        let off = pc.wrapping_sub(layout::SCRATCH_BASE);
        if let Some(slot) = self.scratch.get((off >> 2) as usize) {
            if slot.state != SlotState::Stale {
                return *slot;
            }
        }
        self.fetch_slow(pc, mem)
    }

    /// Materialise/decode path: grows the owning window if needed, lowers
    /// the word, and caches it.
    #[cold]
    fn fetch_slow<M: CodeMem>(&mut self, pc: u32, mem: &M) -> PreInst {
        let (in_scratch, idx) = if pc < self.sdram_cap {
            let needed = (pc.saturating_add(GROW_BYTES)).min(self.sdram_cap);
            if (needed / 4) as usize > self.sdram.len() {
                self.sdram.resize((needed / 4) as usize, PreInst::EMPTY);
                self.sb_len.resize(self.sdram.len(), 0);
                self.sb_est.resize(self.sdram.len(), 0);
            }
            (false, (pc >> 2) as usize)
        } else {
            let off = pc.wrapping_sub(layout::SCRATCH_BASE);
            if off < self.scratch_size {
                if self.scratch.is_empty() {
                    self.scratch = vec![PreInst::EMPTY; (self.scratch_size / 4) as usize];
                }
                (true, (off >> 2) as usize)
            } else {
                return PreInst::OUT_OF_RANGE;
            }
        };
        let Some(word) = mem.code_word(pc) else {
            return PreInst::OUT_OF_RANGE;
        };
        let table = if in_scratch {
            &mut self.scratch
        } else {
            &mut self.sdram
        };
        if table[idx].state == SlotState::Stale {
            table[idx] = Self::lower(pc, word, in_scratch);
        }
        table[idx]
    }

    /// Store-to-code guard: a guest store to `addr` invalidates the slot
    /// whose word it touches (alignment rules keep every store within one
    /// word) and every superblock overlapping that slot. Stores into
    /// windows never materialised are free, and stores to already-stale
    /// slots skip the overlap backscan entirely (a stale slot is never
    /// covered by a block — see the struct docs), so repeated data stores
    /// inside the code window stay one branch each.
    #[inline]
    pub fn invalidate_store(&mut self, addr: u32) {
        // Kernel spans carry decoded copies of their code words, so the
        // guard must reach them even when the covered slot is already
        // Stale (e.g. right after a table rebuild adopted the spans).
        self.kernels.note_store(addr);
        let x = (addr >> 2) as usize;
        if let Some(slot) = self.sdram.get_mut(x) {
            if slot.state != SlotState::Stale {
                slot.state = SlotState::Stale;
                for y in x.saturating_sub(MAX_SB - 1)..=x {
                    if usize::from(self.sb_len[y]) > x - y {
                        self.sb_len[y] = 0;
                    }
                }
            }
        } else {
            let off = addr.wrapping_sub(layout::SCRATCH_BASE);
            if let Some(slot) = self.scratch.get_mut((off >> 2) as usize) {
                slot.state = SlotState::Stale;
            }
        }
    }

    /// Look up (forming on first use) the superblock starting at the
    /// 4-aligned `pc`. On a hit the fused run is copied into `buf` and
    /// `(len, est)` is returned, where `len >= 2` is the instruction count
    /// and `est` the block's total [`CostTable::DEFAULT`] cost; `(0, 0)`
    /// means "single-step this pc" (scratch-resident, unfusible, or not
    /// yet decodable).
    #[inline]
    pub(crate) fn superblock(&mut self, pc: u32, buf: &mut [PreInst; MAX_SB]) -> (u32, u32) {
        let x = (pc >> 2) as usize;
        let mut len = match self.sb_len.get(x) {
            Some(&l) => l,
            None => return (0, 0),
        };
        if len == 0 {
            len = self.form_superblock(x);
        }
        if len < 2 {
            return (0, 0);
        }
        let len = usize::from(len);
        buf[..len].copy_from_slice(&self.sdram[x..x + len]);
        (len as u32, self.sb_est[x])
    }

    /// Formation scan: fuse decoded straight-line SDRAM slots from `x`
    /// until a control transfer (included as the terminal op), an excluded
    /// op (`ecall`/`ebreak`/`csr` — the block ends *before* it), an
    /// undecoded/illegal slot, or [`MAX_SB`]. Runs shorter than 2 are
    /// marked unfusible (`sb_len = 1`) — except when the scan stopped at a
    /// `Stale` slot, which stays unformed (`0`) so the block re-forms once
    /// the neighbour decodes through a normal fetch.
    #[cold]
    fn form_superblock(&mut self, x: usize) -> u16 {
        let max = MAX_SB.min(self.sdram.len() - x);
        let mut len = 0usize;
        let mut est = 0u32;
        let mut stale_stop = false;
        while len < max {
            let slot = self.sdram[x + len];
            match slot.state {
                SlotState::Sdram => {}
                SlotState::Stale => {
                    stale_stop = true;
                    break;
                }
                _ => break,
            }
            if slot.op.excluded_from_superblock() {
                break;
            }
            est = est.saturating_add(CostTable::DEFAULT.op_cost(slot.op) as u32);
            len += 1;
            if slot.op.ends_superblock() {
                break;
            }
        }
        if len >= 2 {
            self.sb_len[x] = len as u16;
            self.sb_est[x] = est;
            len as u16
        } else {
            if !stale_stop {
                self.sb_len[x] = 1;
            }
            0
        }
    }

    /// Eagerly lower `[base, base + len)` (used right after program load
    /// so the first pass through the code pays no decode cost at all).
    /// Spans beyond the executable windows are skipped — they can hold
    /// data, but fetching from them traps.
    pub fn preload(&mut self, base: u32, len: u32, mem: &MainMemory) {
        let end = base.saturating_add(len);
        let mut pc = base & !3;
        while pc < end {
            let in_window =
                pc < self.sdram_cap || pc.wrapping_sub(layout::SCRATCH_BASE) < self.scratch_size;
            if !in_window {
                pc += 4;
                continue;
            }
            // Route through the slow path so windows materialise and the
            // slot decodes exactly as a first fetch would. Going through
            // the store guard also drops any superblock (or unfusible
            // mark) formed over a previous load of this span.
            self.invalidate_store(pc);
            self.fetch_slow(pc, mem);
            pc += 4;
        }
        // Pre-form the superblock index over the span so template-stamped
        // runs (and the first pass through freshly loaded code) start hot.
        let mut pc = base & !3;
        while pc < end.min(self.sdram_cap) {
            let x = (pc >> 2) as usize;
            if x >= self.sdram.len() {
                break;
            }
            if self.sb_len[x] == 0 {
                self.form_superblock(x);
            }
            pc += 4;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{CostTable, OpClass};
    use crate::mem::MainMemory;
    use izhi_isa::encode;
    use izhi_isa::inst::{AluOp, BranchOp, CsrOp, Inst, LoadOp, NmOp, StoreOp};
    use izhi_isa::reg::Reg;

    /// Write `insts` at pc 0, preload, and return the superblock formed
    /// there: the fused ops and the formation-time `sb_est` cost sum.
    fn form(insts: &[Inst]) -> (Vec<MicroOp>, u32) {
        let mut mem = MainMemory::new(64 * 1024, 4096);
        let mut code = CodeTable::new(64 * 1024, 4096);
        for (i, inst) in insts.iter().enumerate() {
            mem.write_u32(4 * i as u32, encode(*inst));
        }
        code.preload(0, 4 * insts.len() as u32, &mem);
        let mut buf = [PreInst::EMPTY; MAX_SB];
        let (len, est) = code.superblock(0, &mut buf);
        (buf[..len as usize].iter().map(|p| p.op).collect(), est)
    }

    /// The superblock cost audit: a block's formation-time `sb_est` must
    /// equal the per-op sum the Estimated policy charges when the block
    /// retires (`exec_block` adds `CostTable::DEFAULT.op_cost` per op),
    /// exercised per [`OpClass`]. Any drift between the two sums would
    /// let the relaxed bound check (`time + est > stop`) disagree with
    /// the clock the block actually advances.
    #[test]
    fn superblock_est_equals_per_op_sum_for_every_op_class() {
        let x1 = Reg(1);
        let x2 = Reg(2);
        // One fusible representative per class (Branch-class ops are
        // block *terminators*; Csr-class ops are excluded entirely and
        // covered by their own test below).
        let reps: [(OpClass, Inst); 6] = [
            (
                OpClass::Alu,
                Inst::Op {
                    op: AluOp::Add,
                    rd: x1,
                    rs1: x1,
                    rs2: x2,
                },
            ),
            (
                OpClass::Load,
                Inst::Load {
                    op: LoadOp::Lw,
                    rd: x1,
                    rs1: x2,
                    imm: 0,
                },
            ),
            (
                OpClass::Store,
                Inst::Store {
                    op: StoreOp::Sw,
                    rs1: x2,
                    rs2: x1,
                    imm: 0,
                },
            ),
            (
                OpClass::Mul,
                Inst::Op {
                    op: AluOp::Mul,
                    rd: x1,
                    rs1: x1,
                    rs2: x2,
                },
            ),
            (
                OpClass::Div,
                Inst::Op {
                    op: AluOp::Div,
                    rd: x1,
                    rs1: x1,
                    rs2: x2,
                },
            ),
            (
                OpClass::Npu,
                Inst::Nm {
                    op: NmOp::Nmdec,
                    rd: x1,
                    rs1: x1,
                    rs2: x2,
                },
            ),
        ];
        let table = CostTable::DEFAULT;
        for (class, rep) in reps {
            let (ops, est) = form(&[rep, rep, rep, Inst::Jal { rd: Reg(0), imm: 8 }]);
            assert_eq!(ops.len(), 4, "{class:?}: three ops + terminal jump fuse");
            let per_op: u64 = ops.iter().map(|&op| table.op_cost(op)).sum();
            assert_eq!(
                u64::from(est),
                per_op,
                "{class:?}: sb_est diverges from the per-op Estimated sum"
            );
            assert_eq!(
                u64::from(est),
                3 * table.cost(class) + table.cost(OpClass::Branch),
                "{class:?}: closed-form class cost"
            );
            // `est` must also stay a conservative bound for Unit timing,
            // which charges one cycle per retired op.
            assert!(u64::from(est) >= ops.len() as u64);
        }
    }

    /// Branch-class ops terminate a block and are charged *inside* it.
    #[test]
    fn superblock_est_charges_the_terminal_branch() {
        let add = Inst::Op {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(1),
            rs2: Reg(2),
        };
        let beq = Inst::Branch {
            op: BranchOp::Eq,
            rs1: Reg(1),
            rs2: Reg(2),
            imm: 8,
        };
        let (ops, est) = form(&[add, beq, add, add]);
        assert_eq!(ops, [MicroOp::Add, MicroOp::Beq]);
        let table = CostTable::DEFAULT;
        assert_eq!(
            u64::from(est),
            table.cost(OpClass::Alu) + table.cost(OpClass::Branch)
        );
    }

    /// Csr-class ops (`csr`/`ecall`/`ebreak`) never enter a block: the
    /// block ends *before* them and their cost is charged by the
    /// single-step fallback, so `sb_est` must not include them.
    #[test]
    fn superblock_est_excludes_csr_class_ops() {
        let add = Inst::Op {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(1),
            rs2: Reg(2),
        };
        let csr = Inst::Csr {
            op: CsrOp::Rs,
            rd: Reg(1),
            rs1: Reg(0),
            csr: 0xC00,
        };
        for stopper in [csr, Inst::Ecall, Inst::Ebreak] {
            let (ops, est) = form(&[add, add, stopper, add]);
            assert_eq!(ops, [MicroOp::Add, MicroOp::Add]);
            assert_eq!(u64::from(est), 2 * CostTable::DEFAULT.cost(OpClass::Alu));
        }
    }
}

//! Predecoded instruction stream.
//!
//! The seed interpreter paid, on **every** executed instruction, a
//! `region_of` range classification, an `Option`-cache decode lookup and a
//! hazard test that built and scanned a `[Option<Reg>; 3]` array. This
//! module removes all three: every executable word in the SDRAM code
//! window and the scratchpad lowers (eagerly at program load, lazily on
//! first fetch) into a [`PreInst`] — the decoded [`Inst`] plus everything
//! the hot loop would otherwise recompute per step:
//!
//! * a **source-register bitmask** and **destination index**, so the
//!   load-use / nm-writeback hazard test is one shift-and-mask;
//! * the slot's **region class** ([`SlotState::Sdram`] vs
//!   [`SlotState::Scratch`]), so fetch needs no address classification —
//!   the state byte tells the core directly whether the I-cache applies;
//! * a **staleness bit**, which doubles as the self-modifying-code guard:
//!   every guest store into a materialised code window flips the covered
//!   slot back to [`SlotState::Stale`], forcing a re-decode on next fetch.
//!
//! Two layout decisions came out of measurement rather than first
//! principles:
//!
//! * `PreInst` is exactly 16 bytes so `fetch` returns it in a register
//!   pair. (A variant that also precomputed the I-cache set/tag made the
//!   struct 20 bytes; it then travelled through a stack slot on every
//!   fetch and measured *slower* than recomputing two shifts, so the
//!   set/tag stay in the cache model.)
//! * The tables are **flat** `Vec<PreInst>`s — a fetch is one length check
//!   and one indexed load. (A demand-paged two-level variant added a
//!   dependent pointer chase to the per-instruction critical path.) The
//!   flat windows are instead materialised lazily: nothing is allocated
//!   until code actually executes or is preloaded, and the SDRAM window
//!   grows in `GROW_BYTES` steps up to [`CODE_WINDOW_MAX`].
//!
//! Executable SDRAM is therefore the low [`CODE_WINDOW_MAX`] bytes (the
//! same window the seed's decode cache memoised) — but where the seed
//! silently decoded-without-caching above it, a fetch beyond the window
//! now traps as `BadFetch`, like any fetch outside SDRAM/scratch.
//!
//! Host-side writes through [`crate::mem::MainMemory`] are only observed
//! until a slot is first fetched (lazy decode); rewriting code from the
//! host after execution started was already unsupported in the seed.

use izhi_isa::decode;
use izhi_isa::inst::Inst;

use crate::mem::{layout, MainMemory};

/// Word-granular read access to guest memory, as the decode paths need it.
///
/// [`CodeTable`] is a pure cache over the bytes actually resident in RAM;
/// abstracting the word read lets the same table logic run against
/// [`MainMemory`] (the exact and relaxed schedulers) *and* against the
/// raw sharded RAM view the host-parallel scheduler hands each worker
/// thread (which cannot hold a `&MainMemory` while other threads write
/// disjoint guest addresses).
pub trait CodeMem {
    /// Read the aligned 32-bit word at `addr`; `None` if unmapped.
    fn code_word(&self, addr: u32) -> Option<u32>;
}

impl CodeMem for MainMemory {
    #[inline]
    fn code_word(&self, addr: u32) -> Option<u32> {
        self.read_u32(addr)
    }
}

/// Decode state of one 4-byte code slot — doubles as the region class of
/// a successfully fetched slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SlotState {
    /// Never decoded, or invalidated by a store into the slot.
    Stale = 0,
    /// Decoded, resident in SDRAM (the I-cache applies on fetch).
    Sdram,
    /// Decoded, resident in the single-cycle scratchpad (uncached).
    Scratch,
    /// The word does not decode; fetching it traps.
    Illegal,
    /// Never stored: returned by `fetch` for pcs outside every executable
    /// window.
    OutOfRange,
}

/// Sentinel destination meaning "no register writeback" (safe shift index).
pub const NO_DEST: u8 = 63;

/// Flattened opcode of a predecoded slot: one jump resolves the whole
/// operation (the seed's `Inst` enum needed a second nested dispatch for
/// ALU / branch / nm subclasses on every step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum MicroOp {
    Lui,
    Auipc,
    Jal,
    Jalr,
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    Lb,
    Lh,
    Lw,
    Lbu,
    Lhu,
    Sb,
    Sh,
    Sw,
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Fence,
    Ecall,
    Ebreak,
    /// Both Zicsr forms: this core's CSRs are read-only, so only the read
    /// matters; `imm` carries the CSR number.
    Csr,
    Nmldl,
    Nmldh,
    Nmpn,
    Nmdec,
}

impl MicroOp {
    /// Every decodable micro-op, in declaration order, for exhaustive
    /// sweeps (the cost-model tests assert that each one is charged at
    /// least one cycle, and that this list stays gap-free against the
    /// `repr(u8)` discriminants). When adding a variant, append it here
    /// too — `OpClass::of`'s exhaustive match will force the cost
    /// assignment in the same change.
    pub const ALL: &'static [MicroOp] = &[
        MicroOp::Lui,
        MicroOp::Auipc,
        MicroOp::Jal,
        MicroOp::Jalr,
        MicroOp::Beq,
        MicroOp::Bne,
        MicroOp::Blt,
        MicroOp::Bge,
        MicroOp::Bltu,
        MicroOp::Bgeu,
        MicroOp::Lb,
        MicroOp::Lh,
        MicroOp::Lw,
        MicroOp::Lbu,
        MicroOp::Lhu,
        MicroOp::Sb,
        MicroOp::Sh,
        MicroOp::Sw,
        MicroOp::Addi,
        MicroOp::Slti,
        MicroOp::Sltiu,
        MicroOp::Xori,
        MicroOp::Ori,
        MicroOp::Andi,
        MicroOp::Slli,
        MicroOp::Srli,
        MicroOp::Srai,
        MicroOp::Add,
        MicroOp::Sub,
        MicroOp::Sll,
        MicroOp::Slt,
        MicroOp::Sltu,
        MicroOp::Xor,
        MicroOp::Srl,
        MicroOp::Sra,
        MicroOp::Or,
        MicroOp::And,
        MicroOp::Mul,
        MicroOp::Mulh,
        MicroOp::Mulhsu,
        MicroOp::Mulhu,
        MicroOp::Div,
        MicroOp::Divu,
        MicroOp::Rem,
        MicroOp::Remu,
        MicroOp::Fence,
        MicroOp::Ecall,
        MicroOp::Ebreak,
        MicroOp::Csr,
        MicroOp::Nmldl,
        MicroOp::Nmldh,
        MicroOp::Nmpn,
        MicroOp::Nmdec,
    ];
}

/// One predecoded 4-byte slot (16 bytes, returned by value in registers).
///
/// `imm` is pre-resolved where the slot's pc allows it: branches and `jal`
/// store their **absolute target**, `auipc` stores the final `pc + imm`
/// value, and `Csr` stores the CSR number.
#[derive(Debug, Clone, Copy)]
pub struct PreInst {
    /// Flat opcode.
    pub op: MicroOp,
    /// rd field (0–31; writes to x0 are discarded by the register file).
    pub rd: u8,
    /// rs1 field (0–31).
    pub rs1: u8,
    /// rs2 field (0–31).
    pub rs2: u8,
    /// Immediate / absolute target / CSR number (see struct docs).
    pub imm: i32,
    /// Bit `r` set iff architectural register `r != x0` is a source.
    pub src_mask: u32,
    /// Destination register index, or [`NO_DEST`].
    pub dest: u8,
    /// Decode state / region class.
    pub state: SlotState,
}

impl PreInst {
    const EMPTY: PreInst = PreInst {
        op: MicroOp::Ebreak,
        rd: 0,
        rs1: 0,
        rs2: 0,
        imm: 0,
        src_mask: 0,
        dest: NO_DEST,
        state: SlotState::Stale,
    };

    const OUT_OF_RANGE: PreInst = PreInst {
        state: SlotState::OutOfRange,
        ..PreInst::EMPTY
    };
}

/// Executable SDRAM is the low 1 MiB (the seed's decode-cache window).
pub const CODE_WINDOW_MAX: u32 = 1024 * 1024;
/// Window growth increment when a fetch or preload lands beyond the
/// currently materialised slots.
const GROW_BYTES: u32 = 64 * 1024;

/// The per-system predecode tables (shared by all cores under the exact
/// and relaxed schedulers; the host-parallel scheduler clones one shard
/// per core — the table is a pure cache, so divergent shards stay correct).
#[derive(Debug, Clone)]
pub struct CodeTable {
    /// Covers `[0, sdram.len() * 4)`; grown on demand up to `sdram_cap`.
    sdram: Vec<PreInst>,
    /// Empty until scratch-resident code first runs, then the full region.
    scratch: Vec<PreInst>,
    /// Exclusive upper bound of executable SDRAM.
    sdram_cap: u32,
    scratch_size: u32,
}

impl CodeTable {
    /// Build empty tables for the given memory sizes. Nothing is
    /// allocated until code is preloaded or fetched.
    pub fn new(sdram_size: u32, scratch_size: u32) -> Self {
        CodeTable {
            sdram: Vec::new(),
            scratch: Vec::new(),
            sdram_cap: sdram_size.min(CODE_WINDOW_MAX) & !3,
            scratch_size: scratch_size & !3,
        }
    }

    /// Exclusive upper bound of executable SDRAM (test hook).
    pub fn sdram_limit(&self) -> u32 {
        self.sdram_cap
    }

    fn lower(pc: u32, word: u32, in_scratch: bool) -> PreInst {
        use izhi_isa::inst::{AluImmOp, AluOp, BranchOp, LoadOp, NmOp, StoreOp};
        let Ok(inst) = decode(word) else {
            return PreInst {
                state: SlotState::Illegal,
                ..PreInst::EMPTY
            };
        };
        let mut src_mask = 0u32;
        for src in inst.sources().into_iter().flatten() {
            src_mask |= 1u32 << src.idx();
        }
        let mut pre = PreInst {
            src_mask,
            dest: inst.dest().map_or(NO_DEST, |r| r.idx() as u8),
            state: if in_scratch {
                SlotState::Scratch
            } else {
                SlotState::Sdram
            },
            ..PreInst::EMPTY
        };
        let target = |imm: i32| pc.wrapping_add(imm as u32) as i32;
        match inst {
            Inst::Lui { rd, imm } => {
                (pre.op, pre.rd, pre.imm) = (MicroOp::Lui, rd.idx() as u8, imm);
            }
            Inst::Auipc { rd, imm } => {
                // Fully resolved: auipc is a constant load at a fixed pc.
                (pre.op, pre.rd, pre.imm) = (MicroOp::Auipc, rd.idx() as u8, target(imm));
            }
            Inst::Jal { rd, imm } => {
                (pre.op, pre.rd, pre.imm) = (MicroOp::Jal, rd.idx() as u8, target(imm));
            }
            Inst::Jalr { rd, rs1, imm } => {
                (pre.op, pre.rd, pre.rs1, pre.imm) =
                    (MicroOp::Jalr, rd.idx() as u8, rs1.idx() as u8, imm);
            }
            Inst::Branch { op, rs1, rs2, imm } => {
                pre.op = match op {
                    BranchOp::Eq => MicroOp::Beq,
                    BranchOp::Ne => MicroOp::Bne,
                    BranchOp::Lt => MicroOp::Blt,
                    BranchOp::Ge => MicroOp::Bge,
                    BranchOp::Ltu => MicroOp::Bltu,
                    BranchOp::Geu => MicroOp::Bgeu,
                };
                (pre.rs1, pre.rs2, pre.imm) = (rs1.idx() as u8, rs2.idx() as u8, target(imm));
            }
            Inst::Load { op, rd, rs1, imm } => {
                pre.op = match op {
                    LoadOp::Lb => MicroOp::Lb,
                    LoadOp::Lh => MicroOp::Lh,
                    LoadOp::Lw => MicroOp::Lw,
                    LoadOp::Lbu => MicroOp::Lbu,
                    LoadOp::Lhu => MicroOp::Lhu,
                };
                (pre.rd, pre.rs1, pre.imm) = (rd.idx() as u8, rs1.idx() as u8, imm);
            }
            Inst::Store { op, rs1, rs2, imm } => {
                pre.op = match op {
                    StoreOp::Sb => MicroOp::Sb,
                    StoreOp::Sh => MicroOp::Sh,
                    StoreOp::Sw => MicroOp::Sw,
                };
                (pre.rs1, pre.rs2, pre.imm) = (rs1.idx() as u8, rs2.idx() as u8, imm);
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                pre.op = match op {
                    AluImmOp::Addi => MicroOp::Addi,
                    AluImmOp::Slti => MicroOp::Slti,
                    AluImmOp::Sltiu => MicroOp::Sltiu,
                    AluImmOp::Xori => MicroOp::Xori,
                    AluImmOp::Ori => MicroOp::Ori,
                    AluImmOp::Andi => MicroOp::Andi,
                    AluImmOp::Slli => MicroOp::Slli,
                    AluImmOp::Srli => MicroOp::Srli,
                    AluImmOp::Srai => MicroOp::Srai,
                };
                (pre.rd, pre.rs1, pre.imm) = (rd.idx() as u8, rs1.idx() as u8, imm);
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                pre.op = match op {
                    AluOp::Add => MicroOp::Add,
                    AluOp::Sub => MicroOp::Sub,
                    AluOp::Sll => MicroOp::Sll,
                    AluOp::Slt => MicroOp::Slt,
                    AluOp::Sltu => MicroOp::Sltu,
                    AluOp::Xor => MicroOp::Xor,
                    AluOp::Srl => MicroOp::Srl,
                    AluOp::Sra => MicroOp::Sra,
                    AluOp::Or => MicroOp::Or,
                    AluOp::And => MicroOp::And,
                    AluOp::Mul => MicroOp::Mul,
                    AluOp::Mulh => MicroOp::Mulh,
                    AluOp::Mulhsu => MicroOp::Mulhsu,
                    AluOp::Mulhu => MicroOp::Mulhu,
                    AluOp::Div => MicroOp::Div,
                    AluOp::Divu => MicroOp::Divu,
                    AluOp::Rem => MicroOp::Rem,
                    AluOp::Remu => MicroOp::Remu,
                };
                (pre.rd, pre.rs1, pre.rs2) = (rd.idx() as u8, rs1.idx() as u8, rs2.idx() as u8);
            }
            Inst::Fence => pre.op = MicroOp::Fence,
            Inst::Ecall => pre.op = MicroOp::Ecall,
            Inst::Ebreak => pre.op = MicroOp::Ebreak,
            // The core's CSRs are read-only: both Zicsr forms reduce to
            // "rd <- csr_read(csr)" (set/clear/write are dropped, as in
            // the seed).
            Inst::Csr { rd, csr, .. } | Inst::CsrImm { rd, csr, .. } => {
                (pre.op, pre.rd, pre.imm) = (MicroOp::Csr, rd.idx() as u8, i32::from(csr));
            }
            Inst::Nm { op, rd, rs1, rs2 } => {
                pre.op = match op {
                    NmOp::Nmldl => MicroOp::Nmldl,
                    NmOp::Nmldh => MicroOp::Nmldh,
                    NmOp::Nmpn => MicroOp::Nmpn,
                    NmOp::Nmdec => MicroOp::Nmdec,
                };
                (pre.rd, pre.rs1, pre.rs2) = (rd.idx() as u8, rs1.idx() as u8, rs2.idx() as u8);
            }
        }
        pre
    }

    /// Fetch the slot covering the 4-aligned `pc`, decoding it on first
    /// use. `mem` is only read on the stale/illegal/grow paths. The
    /// returned slot's `state` is the region class (or `Illegal` /
    /// `OutOfRange`).
    #[inline]
    pub fn fetch<M: CodeMem>(&mut self, pc: u32, mem: &M) -> PreInst {
        if let Some(slot) = self.sdram.get((pc >> 2) as usize) {
            if slot.state != SlotState::Stale {
                return *slot;
            }
            return self.fetch_slow(pc, mem);
        }
        let off = pc.wrapping_sub(layout::SCRATCH_BASE);
        if let Some(slot) = self.scratch.get((off >> 2) as usize) {
            if slot.state != SlotState::Stale {
                return *slot;
            }
        }
        self.fetch_slow(pc, mem)
    }

    /// Materialise/decode path: grows the owning window if needed, lowers
    /// the word, and caches it.
    #[cold]
    fn fetch_slow<M: CodeMem>(&mut self, pc: u32, mem: &M) -> PreInst {
        let (in_scratch, idx) = if pc < self.sdram_cap {
            let needed = (pc.saturating_add(GROW_BYTES)).min(self.sdram_cap);
            if (needed / 4) as usize > self.sdram.len() {
                self.sdram.resize((needed / 4) as usize, PreInst::EMPTY);
            }
            (false, (pc >> 2) as usize)
        } else {
            let off = pc.wrapping_sub(layout::SCRATCH_BASE);
            if off < self.scratch_size {
                if self.scratch.is_empty() {
                    self.scratch = vec![PreInst::EMPTY; (self.scratch_size / 4) as usize];
                }
                (true, (off >> 2) as usize)
            } else {
                return PreInst::OUT_OF_RANGE;
            }
        };
        let Some(word) = mem.code_word(pc) else {
            return PreInst::OUT_OF_RANGE;
        };
        let table = if in_scratch {
            &mut self.scratch
        } else {
            &mut self.sdram
        };
        if table[idx].state == SlotState::Stale {
            table[idx] = Self::lower(pc, word, in_scratch);
        }
        table[idx]
    }

    /// Store-to-code guard: a guest store to `addr` invalidates the slot
    /// whose word it touches (alignment rules keep every store within one
    /// word). Stores into windows never materialised are free.
    #[inline]
    pub fn invalidate_store(&mut self, addr: u32) {
        if let Some(slot) = self.sdram.get_mut((addr >> 2) as usize) {
            slot.state = SlotState::Stale;
        } else {
            let off = addr.wrapping_sub(layout::SCRATCH_BASE);
            if let Some(slot) = self.scratch.get_mut((off >> 2) as usize) {
                slot.state = SlotState::Stale;
            }
        }
    }

    /// Eagerly lower `[base, base + len)` (used right after program load
    /// so the first pass through the code pays no decode cost at all).
    /// Spans beyond the executable windows are skipped — they can hold
    /// data, but fetching from them traps.
    pub fn preload(&mut self, base: u32, len: u32, mem: &MainMemory) {
        let end = base.saturating_add(len);
        let mut pc = base & !3;
        while pc < end {
            let in_window =
                pc < self.sdram_cap || pc.wrapping_sub(layout::SCRATCH_BASE) < self.scratch_size;
            if !in_window {
                pc += 4;
                continue;
            }
            // Route through the slow path so windows materialise and the
            // slot decodes exactly as a first fetch would.
            if let Some(slot) = self.slot_mut(pc) {
                slot.state = SlotState::Stale;
            }
            self.fetch_slow(pc, mem);
            pc += 4;
        }
    }

    fn slot_mut(&mut self, pc: u32) -> Option<&mut PreInst> {
        if pc < self.sdram_cap {
            self.sdram.get_mut((pc >> 2) as usize)
        } else {
            let off = pc.wrapping_sub(layout::SCRATCH_BASE);
            self.scratch.get_mut((off >> 2) as usize)
        }
    }
}

//! Direct-mapped write-back cache model.
//!
//! Used for both the I-cache (read-only) and D-cache of each core. The
//! model tracks tags, valid and dirty bits only — data always lives in the
//! functional [`crate::mem::MainMemory`], so the cache purely produces
//! timing (hit/miss and writeback traffic).

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (power of two).
    pub size_bytes: u32,
    /// Line size in bytes (power of two, ≥ 4).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Number of lines.
    pub const fn lines(&self) -> u32 {
        self.size_bytes / self.line_bytes
    }

    /// Words per line.
    pub const fn line_words(&self) -> u32 {
        self.line_bytes / 4
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        // The MAX10 build gives each core a few KiB of cache; 4 KiB with
        // 16-byte lines reproduces the paper's hit-rate regime.
        CacheConfig {
            size_bytes: 4096,
            line_bytes: 16,
        }
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line present.
    Hit,
    /// Line absent; refill needed. `writeback` is true when the evicted
    /// line was dirty and must be written to SDRAM first.
    Miss {
        /// Evicted line must be written back.
        writeback: bool,
    },
}

/// A direct-mapped, write-back, write-allocate cache (tags only).
///
/// Each line packs valid bit, dirty bit and tag into one `u32`
/// (`VALID` | `DIRTY` | tag), so a probe touches one
/// array slot instead of three parallel ones — this is on the simulator's
/// per-instruction fast path. Tags fit below bit 30 because
/// `offset_bits + index_bits >= 2` for every legal geometry.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<u32>,
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
    offset_bits: u32,
    index_bits: u32,
}

impl Cache {
    /// Line-present bit of a packed line entry.
    const VALID: u32 = 1 << 31;
    /// Line-modified bit of a packed line entry.
    const DIRTY: u32 = 1 << 30;

    /// Build an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(cfg.line_bytes.is_power_of_two() && cfg.line_bytes >= 4);
        assert!(cfg.size_bytes >= cfg.line_bytes);
        let lines = cfg.lines();
        Cache {
            cfg,
            lines: vec![0; lines as usize],
            hits: 0,
            misses: 0,
            writebacks: 0,
            offset_bits: cfg.line_bytes.trailing_zeros(),
            index_bits: lines.trailing_zeros(),
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    #[inline]
    fn index_tag(&self, addr: u32) -> (usize, u32) {
        let line = addr >> self.offset_bits;
        let index = (line & ((1 << self.index_bits) - 1)) as usize;
        let tag = line >> self.index_bits;
        (index, tag)
    }

    /// Access `addr`; `write` marks the line dirty on hit or after refill.
    #[inline]
    pub fn access(&mut self, addr: u32, write: bool) -> Access {
        let (index, tag) = self.index_tag(addr);
        let entry = self.lines[index];
        if entry & !Self::DIRTY == Self::VALID | tag {
            self.hits += 1;
            if write {
                self.lines[index] = entry | Self::DIRTY;
            }
            return Access::Hit;
        }
        self.misses += 1;
        let writeback = entry & (Self::VALID | Self::DIRTY) == Self::VALID | Self::DIRTY;
        if writeback {
            self.writebacks += 1;
        }
        self.lines[index] = Self::VALID | tag | if write { Self::DIRTY } else { 0 };
        Access::Miss { writeback }
    }

    /// Hit rate in percent.
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            100.0
        } else {
            self.hits as f64 / total as f64 * 100.0
        }
    }

    /// Invalidate everything and clear statistics.
    pub fn reset(&mut self) {
        self.lines.iter_mut().for_each(|l| *l = 0);
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }

    /// Non-mutating read-probe: would `access(addr, false)` hit? Touches
    /// neither the line array nor the statistics — the superblock fetch
    /// path uses it to end a block *before* a miss moves any state.
    #[inline]
    #[must_use]
    pub fn would_hit(&self, addr: u32) -> bool {
        let (index, tag) = self.index_tag(addr);
        self.lines[index] & !Self::DIRTY == Self::VALID | tag
    }

    /// Read-probe by a precomputed (set, tag) pair. Equivalent to
    /// `access(addr, false)` for the address that lowered to this pair.
    #[inline]
    pub fn probe_read(&mut self, set: usize, tag: u32) -> bool {
        if self.lines[set] & !Self::DIRTY == Self::VALID | tag {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            self.lines[set] = Self::VALID | tag;
            false
        }
    }

    /// Snapshot (hits, misses) — used for ROI deltas.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 16,
        }) // 16 lines
    }

    #[test]
    fn cold_miss_then_hits_within_line() {
        let mut c = small();
        assert!(matches!(
            c.access(0x100, false),
            Access::Miss { writeback: false }
        ));
        for off in [0, 4, 8, 12] {
            assert_eq!(c.access(0x100 + off, false), Access::Hit);
        }
        assert_eq!(c.misses, 1);
        assert_eq!(c.hits, 4);
    }

    #[test]
    fn conflicting_lines_evict() {
        let mut c = small();
        // 0x000 and 0x100 map to the same index (index bits cover 256 B).
        c.access(0x000, false);
        c.access(0x100, false);
        assert!(matches!(c.access(0x000, false), Access::Miss { .. }));
        assert_eq!(c.misses, 3);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0x000, true); // miss, allocate dirty
        match c.access(0x100, false) {
            Access::Miss { writeback } => assert!(writeback),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.writebacks, 1);
        // Clean eviction has no writeback.
        match c.access(0x200, false) {
            Access::Miss { writeback } => assert!(!writeback),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0x40, false); // clean line
        c.access(0x40, true); // write hit -> dirty
        match c.access(0x140, false) {
            Access::Miss { writeback } => assert!(writeback),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sequential_walk_hit_rate() {
        let mut c = Cache::new(CacheConfig::default()); // 4 KiB / 16 B
        for addr in (0..16 * 1024).step_by(4) {
            c.access(addr, false);
        }
        // 1 miss per 4 words.
        assert_eq!(c.misses, 1024);
        assert_eq!(c.hits, 3072);
        assert!((c.hit_rate_pct() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let mut c = small();
        c.access(0, true);
        c.reset();
        assert_eq!(c.stats(), (0, 0));
        assert!(matches!(
            c.access(0, false),
            Access::Miss { writeback: false }
        ));
    }
}

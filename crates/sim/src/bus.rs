//! Shared-bus arbiter and SDRAM timing model.
//!
//! All cores share one Avalon-style bus to the off-chip SDRAM (paper §VI-A:
//! "2 IzhiRISC-V cores ... connected to a common Avalon bus"). The arbiter
//! serialises cache-line refills: a transaction issued at local time `t`
//! starts at `max(t, bus_free)` and occupies the bus for the full burst.
//! Contention between cores therefore shows up as extra miss latency, which
//! is what bounds multi-core speedup in Tables V/VI.

/// SDRAM/bus timing parameters (in core clock cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusTimings {
    /// Cycles from grant to first word (row activation + CAS).
    pub first_word: u64,
    /// Cycles per subsequent word of the burst.
    pub per_word: u64,
}

impl Default for BusTimings {
    fn default() -> Self {
        // ~30 MHz core talking to single-data-rate SDRAM through an Avalon
        // fabric: row activate + CAS + fabric round trip ≈ 34 cycles to the
        // first word, 4 cycles per streamed word thereafter.
        BusTimings {
            first_word: 34,
            per_word: 4,
        }
    }
}

impl BusTimings {
    /// Duration of a burst of `words` 32-bit transfers.
    #[inline]
    pub fn burst(&self, words: u64) -> u64 {
        self.first_word + self.per_word * words
    }
}

/// First-come-first-served bus arbiter with single outstanding transaction.
#[derive(Debug, Clone, Default)]
pub struct BusArbiter {
    free_at: u64,
    /// Total cycles the bus spent transferring data.
    pub busy_cycles: u64,
    /// Total cycles requesters spent waiting for a grant.
    pub contention_cycles: u64,
    /// Number of transactions served.
    pub transactions: u64,
}

impl BusArbiter {
    /// New idle bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request the bus at local time `now` for `duration` cycles. Returns
    /// the completion time of the transfer.
    pub fn acquire(&mut self, now: u64, duration: u64) -> u64 {
        let start = self.free_at.max(now);
        self.contention_cycles += start - now;
        self.free_at = start + duration;
        self.busy_cycles += duration;
        self.transactions += 1;
        self.free_at
    }

    /// Time at which the bus next becomes free.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Bus utilisation over `elapsed` cycles (0..=1).
    pub fn utilisation(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_requests_start_immediately() {
        let mut bus = BusArbiter::new();
        assert_eq!(bus.acquire(100, 36), 136);
        assert_eq!(bus.contention_cycles, 0);
        assert_eq!(bus.acquire(200, 36), 236);
        assert_eq!(bus.contention_cycles, 0);
        assert_eq!(bus.transactions, 2);
    }

    #[test]
    fn overlapping_requests_serialise() {
        let mut bus = BusArbiter::new();
        assert_eq!(bus.acquire(100, 36), 136);
        // Second core asks at 110 while the bus is busy until 136.
        assert_eq!(bus.acquire(110, 36), 172);
        assert_eq!(bus.contention_cycles, 26);
    }

    #[test]
    fn burst_duration() {
        let t = BusTimings::default();
        assert_eq!(t.burst(4), 34 + 16);
        assert_eq!(t.burst(8), 34 + 32);
    }

    #[test]
    fn utilisation_tracks_busy_fraction() {
        let mut bus = BusArbiter::new();
        bus.acquire(0, 50);
        assert!((bus.utilisation(100) - 0.5).abs() < 1e-12);
        assert_eq!(bus.utilisation(0), 0.0);
    }
}

//! One IzhiRISC-V core: functional RV32IM+Zicsr+custom-0 execution with the
//! 3-stage-pipeline timing annotations described in the crate docs.
//!
//! The hot loop runs on the predecoded instruction stream
//! ([`crate::predecode`]): fetch is a direct table index plus a
//! precomputed-set/tag I-cache probe, the hazard test is a shift into the
//! slot's source-register bitmask, and data accesses classify their region
//! exactly once, with cache-miss / MMIO / trap handling kept out of line.

use izhi_core::dcu::Dcu;
use izhi_core::nmregs::NmRegs;
use izhi_core::npu::NpUnit;
use izhi_fixed::Q15_16;
use izhi_isa::inst::{LoadOp, StoreOp};
use izhi_isa::reg::Reg;

use crate::cache::{Access, Cache};
use crate::counters::{self, CostTable, PerfCounters};
use crate::kernel::{KernelHeader, SpanState};
use crate::mem::layout;
use crate::mmio::{FaultKind, MmioEffect};
use crate::predecode::{MicroOp, PreInst, SlotState, MAX_SB, NO_DEST};
use crate::system::Shared;

/// A timing policy: how the local clock advances per retired instruction.
///
/// The interpreter ([`Core::exec_one`]) is monomorphised per policy, so
/// selecting one costs nothing per instruction:
///
/// * [`ExactTiming`] — the cycle-accurate model: cache/bus/hazard/flush/
///   divider state is consulted and charged per instruction (the
///   historical `TIMING = true` hot loop, bit for bit).
/// * [`UnitTiming`] — the relaxed determinism baseline: exactly one cycle
///   per retired instruction, no timing state touched (the historical
///   `TIMING = false` loop).
/// * [`EstimatedTiming`] — static per-op-class costs from
///   [`CostTable::DEFAULT`]: still no shared mutable state (safe under the
///   host-parallel scheduler, bit-identical at every host-thread count),
///   but the clock now approximates the exact model instead of counting
///   instructions.
pub(crate) trait Timing {
    /// Whether the full cycle-exact machinery (caches, shared bus,
    /// hazard/flush stalls, iterative divider) runs. Non-exact policies
    /// park cores at incomplete barrier rounds instead of simulating the
    /// spin loop.
    const EXACT: bool;
    /// Cycles charged for one retired `op` under a non-exact policy;
    /// never called when [`Timing::EXACT`] (the exact clock is advanced
    /// from the pipeline/memory models instead).
    fn op_cost(op: MicroOp) -> u64;
}

/// Cycle-accurate timing (see [`Timing`]).
pub(crate) struct ExactTiming;

impl Timing for ExactTiming {
    const EXACT: bool = true;

    #[inline(always)]
    fn op_cost(_op: MicroOp) -> u64 {
        1
    }
}

/// One cycle per retired instruction (see [`Timing`]).
pub(crate) struct UnitTiming;

impl Timing for UnitTiming {
    const EXACT: bool = false;

    #[inline(always)]
    fn op_cost(_op: MicroOp) -> u64 {
        1
    }
}

/// Static per-op-class costs from [`CostTable::DEFAULT`] (see [`Timing`]).
pub(crate) struct EstimatedTiming;

impl Timing for EstimatedTiming {
    const EXACT: bool = false;

    #[inline(always)]
    fn op_cost(op: MicroOp) -> u64 {
        CostTable::DEFAULT.op_cost(op)
    }
}

/// Everything one instruction needs from the world outside the core.
///
/// The interpreter ([`Core::exec_one`]) is generic over this trait so the
/// same hot loop monomorphises against two very different backings:
///
/// * [`Shared`] — the whole-system state used by the exact and
///   single-threaded relaxed schedulers (the historical code path; every
///   method inlines to exactly the field accesses the loop made before the
///   trait existed);
/// * the per-core shard contexts of the host-parallel relaxed scheduler
///   ([`crate::parallel`]), which route RAM through a raw sharded view,
///   buffer append-only device traffic per core, and never touch the
///   exact timing machinery (they only ever instantiate non-exact
///   [`Timing`] policies).
///
/// The timing hooks (`bus_acquire`, `burst`, `div_latency`) are only
/// reached from [`ExactTiming`] instantiations.
pub(crate) trait ExecCtx {
    /// Fetch the predecoded slot covering `pc` (decoding on first use).
    fn fetch(&mut self, pc: u32) -> PreInst;
    /// The raw instruction word at `pc` (trap reporting only).
    fn code_word(&self, pc: u32) -> Option<u32>;
    /// Scratchpad size in bytes.
    fn scratch_size(&self) -> u32;
    /// SDRAM size in bytes.
    fn sdram_size(&self) -> u32;
    /// Functional read from the scratchpad at byte offset `off`.
    fn read_scratch(&self, off: usize, op: LoadOp) -> Option<u32>;
    /// Functional read from SDRAM at byte offset `off`.
    fn read_sdram(&self, off: usize, op: LoadOp) -> Option<u32>;
    /// Functional write into the scratchpad.
    fn write_scratch(&mut self, off: usize, value: u32, op: StoreOp) -> bool;
    /// Functional write into SDRAM.
    fn write_sdram(&mut self, off: usize, value: u32, op: StoreOp) -> bool;
    /// Store-to-code guard for a store to `addr`.
    fn invalidate_store(&mut self, addr: u32);
    /// 32-bit MMIO read at `offset` from `core_id` at local time `now`.
    fn mmio_read(&mut self, core_id: u32, offset: u32, now: u64) -> u32;
    /// 32-bit MMIO write; returns the effect the core must apply.
    fn mmio_write(&mut self, core_id: u32, offset: u32, value: u32) -> MmioEffect;
    /// Append bytes to the console (`ecall` host services).
    fn console_extend(&mut self, bytes: &[u8]);
    /// Arbitrate for the shared bus (timing model only).
    fn bus_acquire(&mut self, now: u64, duration: u64) -> u64;
    /// Burst duration for `words` transfers (timing model only).
    fn burst(&self, words: u64) -> u64;
    /// Iterative-divider latency (timing model only).
    fn div_latency(&self) -> u64;
    /// Whether the CSR-writeback hazard fix is modelled.
    fn csr_writeback(&self) -> bool;
    /// Whether superblock execution is enabled for this run (the
    /// `IZHI_SUPERBLOCKS` / `--no-superblocks` escape hatch).
    fn superblocks_enabled(&self) -> bool;
    /// Look up (forming on first use) the fused superblock starting at
    /// `pc`; see [`crate::predecode::CodeTable::superblock`].
    fn superblock(&mut self, pc: u32, buf: &mut [PreInst; MAX_SB]) -> (u32, u32);
    /// Whether kernel-span batch execution is enabled for this run *and*
    /// any span is registered (the `IZHI_KERNELS` / `--no-kernels` escape
    /// hatch; runs without registered spans pay nothing either way).
    fn kernels_enabled(&self) -> bool;
    /// Header of the kernel span whose entry is exactly `pc`, if any.
    fn kernel_match(&self, pc: u32) -> Option<KernelHeader>;
    /// Copy span `idx`'s decoded trace into `buf`; returns the length.
    fn kernel_copy(&self, idx: u8, buf: &mut [PreInst]) -> usize;
    /// Write back a span's lifecycle state after re-verification.
    fn kernel_set_state(&mut self, idx: u8, state: SpanState);
}

/// Why a core stopped abnormally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapCause {
    /// Undecodable instruction word.
    IllegalInstruction {
        /// Faulting pc.
        pc: u32,
        /// The word that failed to decode.
        word: u32,
    },
    /// Instruction fetch outside mapped, executable memory.
    BadFetch {
        /// Faulting pc.
        pc: u32,
    },
    /// Data access outside mapped memory.
    BadAccess {
        /// pc of the access instruction.
        pc: u32,
        /// Offending data address.
        addr: u32,
        /// Whether it was a store.
        store: bool,
    },
    /// Misaligned word/half access (the core does not split accesses).
    Misaligned {
        /// pc of the access instruction.
        pc: u32,
        /// Offending data address.
        addr: u32,
    },
    /// A scheduled fault from the system's
    /// [`FaultPlan`](crate::mmio::FaultPlan) fired as a guest trap.
    InjectedFault {
        /// pc at the trigger point.
        pc: u32,
        /// Retired-instruction count at the trigger point.
        instret: u64,
    },
}

impl core::fmt::Display for TrapCause {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            TrapCause::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#010x}")
            }
            TrapCause::BadFetch { pc } => write!(f, "instruction fetch fault at pc {pc:#010x}"),
            TrapCause::BadAccess { pc, addr, store } => write!(
                f,
                "{} fault at address {addr:#010x} (pc {pc:#010x})",
                if store { "store" } else { "load" }
            ),
            TrapCause::Misaligned { pc, addr } => {
                write!(f, "misaligned access to {addr:#010x} (pc {pc:#010x})")
            }
            TrapCause::InjectedFault { pc, instret } => {
                write!(f, "injected fault at pc {pc:#010x} (instret {instret})")
            }
        }
    }
}

/// Why [`Core::run_while`] returned without a trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RunStop {
    /// The core halted (ebreak / MMIO halt / ecall exit).
    Halted,
    /// `time` passed the scheduler bound; another core must run first.
    Bound,
    /// `time` passed the caller's cycle budget (timeout).
    Budget,
    /// The core arrived at an incomplete barrier round (relaxed scheduling
    /// only): it must be descheduled until the barrier releases.
    Parked,
    /// The next instruction targets a shared-interactive MMIO register
    /// (mutex / barrier / RNG). Only produced by the host-parallel
    /// scheduler's pre-checked quantum loop — never by [`Core::run_while`]
    /// itself — and it stops the core *before* the access executes, so
    /// the sequential commit phase can replay it against the real devices.
    SharedOp,
}

/// Hazard class of the previously retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PrevKind {
    /// Fully bypassed (ALU etc.) — no stall possible.
    Bypassed,
    /// Load: value arrives from MEM+WB, one bubble for an immediate user.
    Load,
    /// Neuromorphic instruction with register-file writeback: the paper's
    /// nm-result hazard (removed by the CSR-writeback option).
    NmWriteback,
}

/// In-arm exit signal from a `BLOCK`-mode [`Core::exec_op`] dispatch —
/// the superblock loop reads it after each op so the memory arms can
/// screen their own effective addresses (one dispatch per op instead of
/// a separate pre-classification pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockExit {
    /// The op retired normally; keep running the block.
    None,
    /// MMIO-classified access: the op did **not** run and no state —
    /// architectural or model — moved. The caller ends the block and
    /// single-steps the op with a flushed clock.
    Defer,
    /// The op retired but stored into the block's not-yet-executed tail:
    /// the fused buffer is stale — end the block after this op.
    StoreTail,
}

/// One processor core with private caches and counters.
#[derive(Debug, Clone)]
pub struct Core {
    /// Hart id.
    pub id: u32,
    pub(crate) regs: [u32; 32],
    pub(crate) pc: u32,
    /// Local clock in cycles.
    pub time: u64,
    halted: bool,
    /// Set when the core arrived at an incomplete barrier round under
    /// relaxed scheduling; the scheduler deschedules it until release.
    parked: bool,
    pub(crate) nmregs: NmRegs,
    icache: Cache,
    dcache: Cache,
    /// Cumulative event counters.
    pub counters: PerfCounters,
    /// Instructions retired inside kernel-span batches (a host-side
    /// coverage figure, *not* part of [`PerfCounters`]: it necessarily
    /// differs between kernel-on and kernel-off runs).
    pub kernel_instret: u64,
    /// Whether the per-op-class histogram is collected (latched from
    /// [`counters::profile_enabled`] at construction).
    pub(crate) profile: bool,
    roi_active: bool,
    roi_base: PerfCounters,
    roi_final: Option<PerfCounters>,
    /// Destination index of the previous instruction when it can stall a
    /// dependent consumer (load / nm writeback), otherwise [`NO_DEST`].
    /// A shift into the current slot's source mask replaces the seed's
    /// `sources()` array scan.
    pub(crate) prev_stall_dest: u8,
    /// log2 of the I-cache line size (cached off the geometry).
    iline_shift: u32,
    /// log2 of the D-cache line size (cached off the geometry).
    dline_shift: u32,
    /// The line of the previous D-cache access and whether it is known
    /// dirty — the same-line fast path in [`Core::sdram_timing`].
    last_dline: u32,
    last_dline_dirty: bool,
    /// The line of the previous fetch: a same-line fetch is a guaranteed
    /// hit (only this core's fetches mutate its I-cache), skipping the
    /// tag probe entirely.
    last_iline: u32,
    /// Armed fault from the system's [`FaultPlan`](crate::mmio::FaultPlan):
    /// `(at_instret, kind)`, cleared once fired. `None` (the default)
    /// keeps the trigger check to one never-taken branch per instruction.
    pub(crate) fault: Option<(u64, FaultKind)>,
    /// Pending spike-log corruption: XORed into the next spike-log store's
    /// value, then cleared. Only a fired [`FaultKind::CorruptSpike`] sets
    /// this.
    pub(crate) spike_corrupt: u32,
}

impl Core {
    /// Create a core with the given caches.
    pub fn new(id: u32, icache: Cache, dcache: Cache) -> Self {
        let iline_shift = icache.config().line_bytes.trailing_zeros();
        let dline_shift = dcache.config().line_bytes.trailing_zeros();
        Core {
            id,
            regs: [0; 32],
            pc: 0,
            time: 0,
            halted: false,
            parked: false,
            nmregs: NmRegs::default(),
            icache,
            dcache,
            counters: PerfCounters::default(),
            kernel_instret: 0,
            profile: counters::profile_enabled(),
            roi_active: false,
            roi_base: PerfCounters::default(),
            roi_final: None,
            prev_stall_dest: NO_DEST,
            iline_shift,
            last_iline: u32::MAX,
            dline_shift,
            last_dline: u32::MAX,
            last_dline_dirty: false,
            fault: None,
            spike_corrupt: 0,
        }
    }

    /// Arm a scheduled fault (the system does this at construction from
    /// its [`FaultPlan`](crate::mmio::FaultPlan)).
    pub(crate) fn arm_fault(&mut self, at_instret: u64, kind: FaultKind) {
        self.fault = Some((at_instret, kind));
    }

    /// Read an architectural register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.idx()]
    }

    /// Write an architectural register (x0 stays zero). Branchless: the
    /// write always lands, then x0 is re-zeroed.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        self.regs[r.idx()] = v;
        self.regs[0] = 0;
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Set the program counter (used by the loader).
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Whether this core has halted (ebreak / MMIO halt / ecall exit).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether this core is parked at an incomplete barrier round (relaxed
    /// scheduling only; always `false` under the exact scheduler).
    pub fn parked(&self) -> bool {
        self.parked
    }

    /// Clear the parked flag (the relaxed scheduler calls this when the
    /// barrier round the core was waiting on has completed).
    pub(crate) fn clear_parked(&mut self) {
        self.parked = false;
    }

    /// The NM_REGS configuration block (inspection hook).
    pub fn nmregs(&self) -> &NmRegs {
        &self.nmregs
    }

    /// Counters for the measured region: the ROI delta when ROI markers
    /// were used, the cumulative counters otherwise.
    pub fn roi_counters(&self) -> PerfCounters {
        if self.roi_active {
            self.counters.delta(&self.roi_base)
        } else if let Some(d) = self.roi_final {
            d
        } else {
            self.counters
        }
    }

    /// I-cache statistics handle.
    pub fn icache(&self) -> &Cache {
        &self.icache
    }

    /// D-cache statistics handle.
    pub fn dcache(&self) -> &Cache {
        &self.dcache
    }

    /// I-cache refill: arbitrate for the bus and return the stall cycles.
    ///
    /// The cold helpers take exactly the fields they touch (not `&mut
    /// self`), so the inlined hot path keeps pc/clock/hazard state in
    /// registers across the miss-branch join points.
    #[cold]
    fn icache_refill<C: ExecCtx>(time: u64, words: u64, ctx: &mut C) -> u64 {
        let dur = ctx.burst(words);
        let done = ctx.bus_acquire(time, dur);
        done - time
    }

    /// D-cache refill (+ optional dirty writeback): stall cycles.
    #[cold]
    fn dcache_refill<C: ExecCtx>(time: u64, words: u64, writeback: bool, ctx: &mut C) -> u64 {
        let mut dur = ctx.burst(words);
        if writeback {
            dur += ctx.burst(words);
        }
        let done = ctx.bus_acquire(time, dur);
        done - time
    }

    /// MMIO access timing: every access arbitrates for the shared Avalon
    /// bus, so a core spinning on the barrier or streaming the spike log
    /// steals bandwidth from the other core's cache refills (a classic
    /// shared-bus effect that bounds the paper's dual-core speedup below 2).
    #[cold]
    fn mmio_timing<C: ExecCtx>(time: u64, ctx: &mut C) -> u64 {
        let done = ctx.bus_acquire(time, 4);
        (done - time).max(2)
    }

    /// Cached-SDRAM data-access timing (hit: 0 extra cycles). Memory
    /// stall cycles are accounted here (and on the MMIO paths), so the
    /// common hit path never touches the counter.
    ///
    /// Same-line fast path: every D-cache access funnels through here, so
    /// if the previous access touched line `last_dline`, nothing can have
    /// evicted it since — a repeat is a guaranteed hit and skips the tag
    /// probe. Writes additionally need the line already dirty (else the
    /// probe must set the dirty bit); `last_dline_dirty` tracks that
    /// conservatively — `false` merely routes one write through the full
    /// probe, which is always correct.
    #[inline]
    fn sdram_timing<C: ExecCtx>(&mut self, ctx: &mut C, addr: u32, write: bool) -> u64 {
        let line = addr >> self.dline_shift;
        if line == self.last_dline && (!write || self.last_dline_dirty) {
            self.dcache.hits += 1;
            return 0;
        }
        self.last_dline = line;
        self.last_dline_dirty = write;
        match self.dcache.access(addr, write) {
            Access::Hit => 0,
            Access::Miss { writeback } => {
                let stall = Self::dcache_refill(
                    self.time,
                    self.dcache.config().line_words() as u64,
                    writeback,
                    ctx,
                );
                self.counters.mem_stall_cycles += stall;
                stall
            }
        }
    }

    #[inline]
    fn load<T: Timing, C: ExecCtx>(
        &mut self,
        ctx: &mut C,
        addr: u32,
        op: LoadOp,
        pc: u32,
    ) -> Result<(u32, u64), TrapCause> {
        let size = match op {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw => 4,
        };
        if !addr.is_multiple_of(size) {
            return Err(TrapCause::Misaligned { pc, addr });
        }
        // Classify the region exactly once; fall through to one of three
        // disjoint paths (scratchpad / cached SDRAM / MMIO) ordered by
        // access frequency, each indexing its backing slice directly.
        let (value, extra) = if addr.wrapping_sub(layout::SCRATCH_BASE) < ctx.scratch_size() {
            self.counters.loads += 1;
            let off = addr.wrapping_sub(layout::SCRATCH_BASE) as usize;
            let value = ctx.read_scratch(off, op).ok_or(TrapCause::BadAccess {
                pc,
                addr,
                store: false,
            })?;
            (value, 0)
        } else if addr < ctx.sdram_size() {
            self.counters.loads += 1;
            let extra = if T::EXACT {
                self.sdram_timing(ctx, addr, false)
            } else {
                0
            };
            let value = ctx
                .read_sdram(addr as usize, op)
                .ok_or(TrapCause::BadAccess {
                    pc,
                    addr,
                    store: false,
                })?;
            (value, extra)
        } else if addr.wrapping_sub(layout::MMIO_BASE) < layout::MMIO_SIZE {
            self.counters.loads += 1;
            let extra = if T::EXACT {
                let extra = Self::mmio_timing(self.time, ctx);
                self.counters.mem_stall_cycles += extra;
                extra
            } else {
                0
            };
            let value = ctx.mmio_read(self.id, addr - layout::MMIO_BASE, self.time);
            (value, extra)
        } else {
            return Err(TrapCause::BadAccess {
                pc,
                addr,
                store: false,
            });
        };
        let value = match op {
            LoadOp::Lb => value as u8 as i8 as i32 as u32,
            LoadOp::Lh => value as u16 as i16 as i32 as u32,
            _ => value,
        };
        Ok((value, extra))
    }

    #[inline]
    fn store<T: Timing, C: ExecCtx>(
        &mut self,
        ctx: &mut C,
        addr: u32,
        value: u32,
        op: StoreOp,
        pc: u32,
    ) -> Result<(u64, MmioEffect), TrapCause> {
        let size = match op {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
        };
        if !addr.is_multiple_of(size) {
            return Err(TrapCause::Misaligned { pc, addr });
        }
        // Same single classification as `load`, ordered by access
        // frequency: scratch, then cached SDRAM, then MMIO, then the trap.
        let in_scratch = addr.wrapping_sub(layout::SCRATCH_BASE) < ctx.scratch_size();
        if !in_scratch && addr >= ctx.sdram_size() {
            if addr.wrapping_sub(layout::MMIO_BASE) < layout::MMIO_SIZE {
                self.counters.stores += 1;
                let extra = if T::EXACT {
                    let extra = Self::mmio_timing(self.time, ctx);
                    self.counters.mem_stall_cycles += extra;
                    extra
                } else {
                    0
                };
                let offset = addr - layout::MMIO_BASE;
                // Pending injected corruption lands on the next spike-log
                // word; architectural state is never touched.
                let value = if self.spike_corrupt != 0 && offset == layout::MMIO_SPIKE_LOG {
                    let v = value ^ self.spike_corrupt;
                    self.spike_corrupt = 0;
                    v
                } else {
                    value
                };
                let effect = ctx.mmio_write(self.id, offset, value);
                return Ok((extra, effect));
            }
            return Err(TrapCause::BadAccess {
                pc,
                addr,
                store: true,
            });
        }
        self.counters.stores += 1;
        let (extra, ok) = if in_scratch {
            let off = addr.wrapping_sub(layout::SCRATCH_BASE) as usize;
            (0, ctx.write_scratch(off, value, op))
        } else {
            let extra = if T::EXACT {
                self.sdram_timing(ctx, addr, true)
            } else {
                0
            };
            (extra, ctx.write_sdram(addr as usize, value, op))
        };
        if !ok {
            return Err(TrapCause::BadAccess {
                pc,
                addr,
                store: true,
            });
        }
        // Store-to-code guard: writing into a predecoded window forces a
        // re-decode of the covered slot on its next fetch.
        ctx.invalidate_store(addr);
        Ok((extra, MmioEffect::None))
    }

    /// Mirror the derivable counters (clock, cache stats, access totals)
    /// into `PerfCounters`. Called once per batch / step / ROI event, so
    /// the per-instruction path never touches them.
    pub(crate) fn sync_counters(&mut self) {
        self.counters.cycles = self.time;
        (self.counters.icache_hits, self.counters.icache_misses) = self.icache.stats();
        (self.counters.dcache_hits, self.counters.dcache_misses) = self.dcache.stats();
        self.counters.mem_accesses = self.counters.loads + self.counters.stores;
    }

    /// Hazard class of an nm instruction's register-file writeback: the
    /// paper's proposed CSR-writeback fix removes the stall entirely.
    #[inline]
    fn nm_kind<C: ExecCtx>(&self, ctx: &C) -> PrevKind {
        if ctx.csr_writeback() {
            PrevKind::Bypassed
        } else {
            PrevKind::NmWriteback
        }
    }

    fn csr_read(&self, csr: u16) -> u32 {
        match csr {
            0xB00 => self.time as u32,             // mcycle
            0xB80 => (self.time >> 32) as u32,     // mcycleh
            0xB02 => self.counters.instret as u32, // minstret
            0xB82 => (self.counters.instret >> 32) as u32,
            0xF14 => self.id, // mhartid
            _ => 0,
        }
    }

    /// Trap for a failed fetch (illegal encoding or unmapped pc).
    #[cold]
    fn fetch_trap<C: ExecCtx>(state: SlotState, pc: u32, ctx: &C) -> TrapCause {
        if state == SlotState::Illegal {
            TrapCause::IllegalInstruction {
                pc,
                word: ctx.code_word(pc).unwrap_or(0),
            }
        } else {
            TrapCause::BadFetch { pc }
        }
    }

    /// `ecall` host services (kept out of line: the string-formatting
    /// machinery would otherwise bloat the interpreter's stack frame).
    #[cold]
    fn ecall<C: ExecCtx>(&mut self, ctx: &mut C) {
        // Minimal host services, newlib-free.
        match self.reg(Reg::A7) {
            0 | 93 => self.halted = true,
            1 => {
                let s = (self.reg(Reg::A0) as i32).to_string();
                ctx.console_extend(s.as_bytes());
            }
            2 => ctx.console_extend(&[self.reg(Reg::A0) as u8]),
            3 => {
                let s = format!("{:#010x}", self.reg(Reg::A0));
                ctx.console_extend(s.as_bytes());
            }
            _ => {}
        }
    }

    /// Execute one instruction; advances the local clock by its full cost.
    pub fn step(&mut self, shared: &mut Shared) -> Result<(), TrapCause> {
        if self.halted {
            return Ok(());
        }
        let out = if self.profile {
            self.exec_one::<ExactTiming, _, true>(shared)
        } else {
            self.exec_one::<ExactTiming, _, false>(shared)
        };
        self.sync_counters();
        out
    }

    /// The batched hot loop: execute instructions while `time <= bound`,
    /// stopping on halt, trap or cycle budget. Keeping the loop inside one
    /// call lets the compiler hold pc/clock/hazard state in registers
    /// across instructions instead of spilling them at every `step`
    /// boundary — `System::run` drives cores exclusively through this.
    ///
    /// All three conditions are checked *before* each instruction, in the
    /// order halt, bound, budget, so a sequence of `run_while` batches is
    /// instruction-for-instruction identical to single-stepping.
    ///
    /// With a non-exact [`Timing`] policy the loop runs the relaxed-clock
    /// variant of [`Core::exec_one`] and additionally stops with
    /// [`RunStop::Parked`] when the core arrives at an incomplete barrier
    /// round.
    pub(crate) fn run_while<T: Timing, C: ExecCtx>(
        &mut self,
        ctx: &mut C,
        bound: u64,
        max_cycles: u64,
    ) -> Result<RunStop, TrapCause> {
        // One runtime dispatch per batch selects the profiled or plain
        // monomorphisation of the whole loop (see `exec_op` on why the
        // check cannot live inside it).
        if self.profile {
            self.run_while_p::<T, C, true>(ctx, bound, max_cycles)
        } else {
            self.run_while_p::<T, C, false>(ctx, bound, max_cycles)
        }
    }

    /// [`Core::run_while`], monomorphised over the profiling flag.
    fn run_while_p<T: Timing, C: ExecCtx, const PROF: bool>(
        &mut self,
        ctx: &mut C,
        bound: u64,
        max_cycles: u64,
    ) -> Result<RunStop, TrapCause> {
        let stop = bound.min(max_cycles);
        let sb = ctx.superblocks_enabled();
        let kern = !T::EXACT && ctx.kernels_enabled();
        let mut sbuf = [PreInst::EMPTY; MAX_SB];
        let run = loop {
            if self.halted {
                break Ok(RunStop::Halted);
            }
            if !T::EXACT && self.parked {
                break Ok(RunStop::Parked);
            }
            let t = self.time;
            if t > stop {
                // One fused comparison per instruction; the cause is only
                // disambiguated here, on exit.
                break Ok(if t > bound {
                    RunStop::Bound
                } else {
                    RunStop::Budget
                });
            }
            // Kernel spans outrank superblocks at their entry pc: a batch
            // swallows whole loop iterations where a block stops at the
            // back-edge. Declines fall through to the block/single paths.
            if kern && self.try_kernel::<T, _>(ctx, stop) {
                continue;
            }
            if sb {
                match self.try_superblock::<T, _, PROF>(ctx, &mut sbuf, stop) {
                    Ok(true) => continue,
                    Ok(false) => {}
                    Err(cause) => break Err(cause),
                }
            }
            if let Err(cause) = self.exec_one::<T, _, PROF>(ctx) {
                break Err(cause);
            }
        };
        // The derivable counters are mirrored once per batch (and at the
        // ROI markers), not once per instruction.
        self.sync_counters();
        run
    }

    /// Execute exactly one (non-halted) instruction.
    ///
    /// `T` selects the monomorphised hot loop (see [`Timing`]):
    ///
    /// * [`ExactTiming`] — the cycle-exact interpreter: cache models, bus
    ///   arbitration, hazard/flush/divider stalls all charged as usual.
    /// * [`UnitTiming`] / [`EstimatedTiming`] — the relaxed-clock
    ///   interpreters used by [`crate::system::SchedMode::Relaxed`]:
    ///   functionally identical execution, but the local clock advances by
    ///   the policy's static per-op cost (exactly 1 for `Unit`, the
    ///   [`CostTable`] class cost for `Estimated`) and no cache/bus/hazard
    ///   state is touched. Barrier arrivals that leave the round
    ///   incomplete park the core.
    #[inline(always)]
    pub(crate) fn exec_one<T: Timing, C: ExecCtx, const PROF: bool>(
        &mut self,
        ctx: &mut C,
    ) -> Result<(), TrapCause> {
        let pc = self.pc;
        // Fault-injection trigger: instret is schedule-invariant per core,
        // so a plan fires at the same architectural point under every
        // scheduling mode. Unarmed (the default) this is one never-taken
        // branch.
        if let Some((at, _)) = self.fault {
            if self.counters.instret >= at {
                self.fire_fault(pc)?;
            }
        }
        if !pc.is_multiple_of(4) {
            return Err(TrapCause::BadFetch { pc });
        }
        // Predecoded fetch: direct table index; decode cost only on the
        // first execution of a (possibly store-invalidated) slot.
        let pre = ctx.fetch(pc);
        let mut exit = BlockExit::None;
        let next_pc = self.exec_op::<T, _, false, PROF>(ctx, &pre, pc, 0, 0, &mut exit)?;
        self.pc = next_pc;
        Ok(())
    }

    /// Dispatch and retire one predecoded micro-op at `pc`, returning the
    /// next pc. The single-step path ([`Core::exec_one`]) wraps this with
    /// the fault-plan trigger, the alignment check and the table fetch;
    /// the superblock path ([`Core::exec_block`]) hoists those out of the
    /// per-op loop and runs ops straight from the fused buffer.
    ///
    /// `BLOCK` (a const, so both variants compile to straight-line code)
    /// selects the superblock calling convention:
    ///
    /// * the caller guarantees the slot is decoded SDRAM and that the
    ///   fetch is a verified I-cache hit (blocks end *before* a would-miss
    ///   fetch) with accounting batched per line segment — the state match
    ///   and the fetch-timing arm are both skipped;
    /// * the memory arms screen their effective address *in-arm*: an
    ///   MMIO-classified access signals [`BlockExit::Defer`] and returns
    ///   with **no** state moved (the hazard-stall commit is rolled back),
    ///   so the caller can single-step it with a flushed clock — MMIO is
    ///   otherwise unreachable and the device-effect tail is skipped;
    /// * a store landing in the block's not-yet-executed tail (derived
    ///   from `blk_base`/`blk_len`; block pcs are straight-line, so the
    ///   op index is `(pc - blk_base) / 4`) retires normally but signals
    ///   [`BlockExit::StoreTail`];
    /// * the non-exact clock/instret update is left to the caller, which
    ///   accumulates one sum per block. The exact policy always retires
    ///   per-op because stall costs are data-dependent.
    ///
    /// The slot is destructured straight into scalars so the 16-byte
    /// `PreInst` never round-trips through a stack temporary.
    #[inline(always)]
    #[allow(clippy::too_many_lines)]
    fn exec_op<T: Timing, C: ExecCtx, const BLOCK: bool, const PROF: bool>(
        &mut self,
        ctx: &mut C,
        pre: &PreInst,
        pc: u32,
        blk_base: u32,
        blk_len: u32,
        exit: &mut BlockExit,
    ) -> Result<u32, TrapCause> {
        let &PreInst {
            op,
            rd,
            rs1,
            rs2,
            imm,
            src_mask,
            dest,
            state,
        } = pre;
        let mut extra = 0u64;
        if BLOCK {
            // Blocks only cover decoded SDRAM slots (a CodeTable
            // invariant) and the caller verified the fetch hits.
            debug_assert_eq!(state, SlotState::Sdram);
        } else {
            match state {
                SlotState::Sdram => {
                    if T::EXACT {
                        // Same line as the previous fetch => guaranteed hit
                        // (only this core's own fetches mutate its I-cache);
                        // otherwise a packed tag probe. Statistics live in the
                        // cache model and are mirrored into PerfCounters at
                        // sync points.
                        let line = pc >> self.iline_shift;
                        if line == self.last_iline {
                            self.icache.hits += 1;
                        } else {
                            self.last_iline = line;
                            if self.icache.access(pc, false) != Access::Hit {
                                extra += Self::icache_refill(
                                    self.time,
                                    self.icache.config().line_words() as u64,
                                    ctx,
                                );
                            }
                        }
                    }
                }
                SlotState::Scratch => {}
                _ => return Err(Self::fetch_trap(state, pc, ctx)),
            }
        }

        // Hazard stall: previous load / nm instruction feeding this one
        // (one shift into the predecoded source-register mask; the u64
        // widening makes the NO_DEST sentinel shift out to zero).
        let mut stall = 0u64;
        if T::EXACT {
            stall = (u64::from(src_mask) >> self.prev_stall_dest) & 1;
            if stall != 0 {
                self.counters.hazard_stalls += stall;
                extra += stall;
            }
        }

        let mut next_pc = pc.wrapping_add(4);
        let mut effect = MmioEffect::None;
        let mut kind = PrevKind::Bypassed;
        let (rd, rs1, rs2) = (Reg(rd), Reg(rs1), Reg(rs2));
        // Branch resolved in EX: one wrong-path fetch squashed per taken
        // branch/jump; accounted inside the taken arms.
        let mut flushes = 0u64;

        match op {
            MicroOp::Lui => self.set_reg(rd, imm as u32),
            // auipc's value was fully resolved at predecode (pc is static).
            MicroOp::Auipc => self.set_reg(rd, imm as u32),
            MicroOp::Jal => {
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = imm as u32; // absolute target, pre-resolved
                flushes = 1;
            }
            MicroOp::Jalr => {
                let target = self.reg(rs1).wrapping_add(imm as u32) & !1;
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
                flushes = 1;
            }
            MicroOp::Beq => {
                if self.reg(rs1) == self.reg(rs2) {
                    next_pc = imm as u32;
                    flushes = 1;
                }
            }
            MicroOp::Bne => {
                if self.reg(rs1) != self.reg(rs2) {
                    next_pc = imm as u32;
                    flushes = 1;
                }
            }
            MicroOp::Blt => {
                if (self.reg(rs1) as i32) < (self.reg(rs2) as i32) {
                    next_pc = imm as u32;
                    flushes = 1;
                }
            }
            MicroOp::Bge => {
                if (self.reg(rs1) as i32) >= (self.reg(rs2) as i32) {
                    next_pc = imm as u32;
                    flushes = 1;
                }
            }
            MicroOp::Bltu => {
                if self.reg(rs1) < self.reg(rs2) {
                    next_pc = imm as u32;
                    flushes = 1;
                }
            }
            MicroOp::Bgeu => {
                if self.reg(rs1) >= self.reg(rs2) {
                    next_pc = imm as u32;
                    flushes = 1;
                }
            }
            MicroOp::Lb | MicroOp::Lh | MicroOp::Lw | MicroOp::Lbu | MicroOp::Lhu => {
                // Linear discriminants: this mapping lowers to arithmetic,
                // not a second jump. (Splitting into one arm per width
                // measured slower — the duplicated bodies blow the I-cache.)
                let lop = match op {
                    MicroOp::Lb => LoadOp::Lb,
                    MicroOp::Lh => LoadOp::Lh,
                    MicroOp::Lw => LoadOp::Lw,
                    MicroOp::Lbu => LoadOp::Lbu,
                    _ => LoadOp::Lhu,
                };
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                if BLOCK && addr.wrapping_sub(layout::MMIO_BASE) < layout::MMIO_SIZE {
                    if T::EXACT {
                        self.counters.hazard_stalls -= stall;
                    }
                    *exit = BlockExit::Defer;
                    return Ok(pc);
                }
                let (value, mem_extra) = self.load::<T, _>(ctx, addr, lop, pc)?;
                self.set_reg(rd, value);
                extra += mem_extra;
                kind = PrevKind::Load;
            }
            MicroOp::Sb | MicroOp::Sh | MicroOp::Sw => {
                let sop = match op {
                    MicroOp::Sb => StoreOp::Sb,
                    MicroOp::Sh => StoreOp::Sh,
                    _ => StoreOp::Sw,
                };
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                if BLOCK && addr.wrapping_sub(layout::MMIO_BASE) < layout::MMIO_SIZE {
                    if T::EXACT {
                        self.counters.hazard_stalls -= stall;
                    }
                    *exit = BlockExit::Defer;
                    return Ok(pc);
                }
                let (mem_extra, eff) = self.store::<T, _>(ctx, addr, self.reg(rs2), sop, pc)?;
                extra += mem_extra;
                effect = eff;
                if BLOCK {
                    Self::flag_store_tail(addr, pc, blk_base, blk_len, exit);
                }
            }
            MicroOp::Addi => {
                let v = self.reg(rs1).wrapping_add(imm as u32);
                self.set_reg(rd, v);
            }
            MicroOp::Slti => {
                let v = u32::from((self.reg(rs1) as i32) < imm);
                self.set_reg(rd, v);
            }
            MicroOp::Sltiu => {
                let v = u32::from(self.reg(rs1) < imm as u32);
                self.set_reg(rd, v);
            }
            MicroOp::Xori => {
                let v = self.reg(rs1) ^ imm as u32;
                self.set_reg(rd, v);
            }
            MicroOp::Ori => {
                let v = self.reg(rs1) | imm as u32;
                self.set_reg(rd, v);
            }
            MicroOp::Andi => {
                let v = self.reg(rs1) & imm as u32;
                self.set_reg(rd, v);
            }
            MicroOp::Slli => {
                let v = self.reg(rs1) << (imm & 0x1F);
                self.set_reg(rd, v);
            }
            MicroOp::Srli => {
                let v = self.reg(rs1) >> (imm & 0x1F);
                self.set_reg(rd, v);
            }
            MicroOp::Srai => {
                let v = ((self.reg(rs1) as i32) >> (imm & 0x1F)) as u32;
                self.set_reg(rd, v);
            }
            MicroOp::Add => {
                let v = self.reg(rs1).wrapping_add(self.reg(rs2));
                self.set_reg(rd, v);
            }
            MicroOp::Sub => {
                let v = self.reg(rs1).wrapping_sub(self.reg(rs2));
                self.set_reg(rd, v);
            }
            MicroOp::Sll => {
                let v = self.reg(rs1) << (self.reg(rs2) & 0x1F);
                self.set_reg(rd, v);
            }
            MicroOp::Slt => {
                let v = u32::from((self.reg(rs1) as i32) < (self.reg(rs2) as i32));
                self.set_reg(rd, v);
            }
            MicroOp::Sltu => {
                let v = u32::from(self.reg(rs1) < self.reg(rs2));
                self.set_reg(rd, v);
            }
            MicroOp::Xor => {
                let v = self.reg(rs1) ^ self.reg(rs2);
                self.set_reg(rd, v);
            }
            MicroOp::Srl => {
                let v = self.reg(rs1) >> (self.reg(rs2) & 0x1F);
                self.set_reg(rd, v);
            }
            MicroOp::Sra => {
                let v = ((self.reg(rs1) as i32) >> (self.reg(rs2) & 0x1F)) as u32;
                self.set_reg(rd, v);
            }
            MicroOp::Or => {
                let v = self.reg(rs1) | self.reg(rs2);
                self.set_reg(rd, v);
            }
            MicroOp::And => {
                let v = self.reg(rs1) & self.reg(rs2);
                self.set_reg(rd, v);
            }
            MicroOp::Mul => {
                let v = self.reg(rs1).wrapping_mul(self.reg(rs2));
                self.set_reg(rd, v);
            }
            MicroOp::Mulh => {
                let v = ((self.reg(rs1) as i32 as i64).wrapping_mul(self.reg(rs2) as i32 as i64)
                    >> 32) as u32;
                self.set_reg(rd, v);
            }
            MicroOp::Mulhsu => {
                let v =
                    ((self.reg(rs1) as i32 as i64).wrapping_mul(self.reg(rs2) as i64) >> 32) as u32;
                self.set_reg(rd, v);
            }
            MicroOp::Mulhu => {
                let v = ((self.reg(rs1) as u64 * self.reg(rs2) as u64) >> 32) as u32;
                self.set_reg(rd, v);
            }
            MicroOp::Div => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                if T::EXACT {
                    let lat = ctx.div_latency();
                    extra += lat;
                    self.counters.div_stall_cycles += lat;
                }
                let v = if b == 0 {
                    u32::MAX
                } else if a == 0x8000_0000 && b == u32::MAX {
                    a // overflow: -2^31 / -1
                } else {
                    ((a as i32) / (b as i32)) as u32
                };
                self.set_reg(rd, v);
            }
            MicroOp::Divu => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                if T::EXACT {
                    let lat = ctx.div_latency();
                    extra += lat;
                    self.counters.div_stall_cycles += lat;
                }
                self.set_reg(rd, a.checked_div(b).unwrap_or(u32::MAX));
            }
            MicroOp::Rem => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                if T::EXACT {
                    let lat = ctx.div_latency();
                    extra += lat;
                    self.counters.div_stall_cycles += lat;
                }
                let v = if b == 0 {
                    a
                } else if a == 0x8000_0000 && b == u32::MAX {
                    0
                } else {
                    ((a as i32) % (b as i32)) as u32
                };
                self.set_reg(rd, v);
            }
            MicroOp::Remu => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                if T::EXACT {
                    let lat = ctx.div_latency();
                    extra += lat;
                    self.counters.div_stall_cycles += lat;
                }
                self.set_reg(rd, if b == 0 { a } else { a % b });
            }
            MicroOp::Fence => {}
            MicroOp::Ecall => self.ecall(ctx),
            MicroOp::Ebreak => self.halted = true,
            MicroOp::Csr => {
                let old = self.csr_read(imm as u16);
                self.set_reg(rd, old);
            }
            MicroOp::Nmldl => {
                let ok = self.nmregs.exec_nmldl(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, ok);
                self.counters.nmldl += 1;
                kind = self.nm_kind(ctx);
            }
            MicroOp::Nmldh => {
                let ok = self.nmregs.exec_nmldh(self.reg(rs1));
                self.set_reg(rd, ok);
                self.counters.nmldh += 1;
                kind = self.nm_kind(ctx);
            }
            MicroOp::Nmpn => {
                let vu = self.reg(rs1);
                let isyn = Q15_16::from_raw(self.reg(rs2) as i32);
                let addr = self.reg(rd);
                if BLOCK && addr.wrapping_sub(layout::MMIO_BASE) < layout::MMIO_SIZE {
                    if T::EXACT {
                        self.counters.hazard_stalls -= stall;
                    }
                    *exit = BlockExit::Defer;
                    return Ok(pc);
                }
                let out = NpUnit::update(&self.nmregs, vu, isyn);
                let (mem_extra, eff) = self.store::<T, _>(ctx, addr, out.vu, StoreOp::Sw, pc)?;
                extra += mem_extra;
                effect = eff;
                self.set_reg(rd, u32::from(out.spike));
                self.counters.nmpn += 1;
                kind = self.nm_kind(ctx);
                if BLOCK {
                    Self::flag_store_tail(addr, pc, blk_base, blk_len, exit);
                }
            }
            MicroOp::Nmdec => {
                let out = Dcu::exec_nmdec(&self.nmregs, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, out);
                self.counters.nmdec += 1;
                // Pure EX-stage result: forwarded like an ALU op.
            }
        }

        // Opt-in per-op-class histogram (`IZHI_PROFILE=1`): bumped on
        // every retire path — single-step, superblock (the early `Defer`/
        // `Err` returns above skip it, matching "retired") — and bulk-
        // added by kernel batches. `PROF` is a monomorphisation constant
        // (selected once per run from [`Core::profile`]), so the
        // non-profiled interpreter carries no check at all: even a
        // never-taken branch to a cold call here measurably slows the
        // dispatch loop. The bump is a free function over a global table,
        // not a write through `&mut self`, so the profiled variant's loop
        // keeps its register-held state too (see
        // [`counters::profile_bump`]).
        if PROF {
            counters::profile_bump(op);
        }

        if T::EXACT {
            self.counters.flush_cycles += flushes;
            extra += flushes;
            self.prev_stall_dest = if kind == PrevKind::Bypassed {
                NO_DEST
            } else {
                dest
            };
        } else {
            // The relaxed clocks charge no flush/hazard cycles; keep the
            // hazard tracker neutral so a later exact run on the same core
            // cannot inherit a stale dependence.
            let _ = (kind, dest, flushes);
            self.prev_stall_dest = NO_DEST;
        }

        if T::EXACT {
            // Exact: base cycle plus the dynamically accumulated stalls,
            // retired per-op even inside a superblock (stall costs are
            // data-dependent, and MMIO/bus arbitration reads the live
            // clock).
            self.counters.instret += 1;
            self.time += 1 + extra;
        } else if !BLOCK {
            // Non-exact: the policy's static per-op cost (1 for Unit, the
            // CostTable class cost for Estimated), with `extra` always 0.
            // A superblock caller accumulates these itself and flushes
            // once per block.
            self.counters.instret += 1;
            self.time += T::op_cost(op);
        }

        if BLOCK {
            // MMIO never executes inside a block (the caller's address
            // screen defers it), so no device effect can be pending.
            debug_assert_eq!(effect, MmioEffect::None);
        } else if effect != MmioEffect::None {
            self.apply_effect::<T>(effect);
        }
        Ok(next_pc)
    }

    /// Attempt to execute the superblock starting at `self.pc` as one
    /// dispatch. Returns `Ok(true)` if at least one op retired (the caller
    /// re-enters its loop), `Ok(false)` to fall back to single-stepping —
    /// no block at this pc, a fault-plan trigger too close, (non-exact)
    /// not enough clock headroom before `stop` to guarantee the whole
    /// block would also have run under single-stepping, or an
    /// MMIO-classified access as the block's very first op.
    #[inline]
    pub(crate) fn try_superblock<T: Timing, C: ExecCtx, const PROF: bool>(
        &mut self,
        ctx: &mut C,
        sbuf: &mut [PreInst; MAX_SB],
        stop: u64,
    ) -> Result<bool, TrapCause> {
        let pc = self.pc;
        if !pc.is_multiple_of(4) {
            // Let the single-step path raise the BadFetch.
            return Ok(false);
        }
        let (len, est) = ctx.superblock(pc, sbuf);
        if len < 2 {
            return Ok(false);
        }
        // Fault-plan hoist: a trigger fires when `instret >= at` *before*
        // an op, so a block of `len` retirements is trigger-free iff
        // `instret + len <= at`. Anything closer single-steps.
        if let Some((at, _)) = self.fault {
            if self.counters.instret + u64::from(len) > at {
                return Ok(false);
            }
        }
        // Non-exact entry bound: `est` sums the static class costs, which
        // are >= 1 cycle each, so it conservatively bounds the block's
        // clock advance under both Unit and Estimated policies. If the
        // whole block fits under `stop`, single-stepping would have run
        // every op too — identical stop points at every quantum size and
        // host-thread count. The exact policy re-checks per op instead
        // (stall costs are data-dependent).
        if !T::EXACT && self.time + u64::from(est) > stop {
            return Ok(false);
        }
        self.exec_block::<T, _, PROF>(ctx, &sbuf[..len as usize], pc, stop)
    }

    /// Flag a retiring store that lands in its own block's not-yet-executed
    /// tail (words past this op): the fused buffer is stale from the next
    /// op on, so the block must end after this one. Block pcs are
    /// straight-line, so the op's index is `(pc - blk_base) / 4`.
    #[inline(always)]
    fn flag_store_tail(addr: u32, pc: u32, blk_base: u32, blk_len: u32, exit: &mut BlockExit) {
        let next_idx = (pc.wrapping_sub(blk_base) >> 2) + 1;
        let tail_start = (blk_base >> 2).wrapping_add(next_idx);
        if (addr >> 2).wrapping_sub(tail_start) < blk_len - next_idx {
            *exit = BlockExit::StoreTail;
        }
    }

    /// Run the fused micro-op buffer `ops` (the superblock starting at
    /// `base_pc`) with the per-op fault/alignment/fetch checks hoisted
    /// off, the I-cache accounting batched per line segment, and — under
    /// the non-exact clocks — one clock/instret update per block. Returns
    /// whether any op retired. Exits early — with all architectural and
    /// model state exactly as single-stepping would leave it — on:
    ///
    /// * an exact-clock bound crossing before an interior op (`stop`);
    /// * a fetch that would miss the I-cache (broken before the tag
    ///   array, the statistics or the bus move — the single-step fallback
    ///   re-probes for real and charges the refill);
    /// * an MMIO-classified access ([`BlockExit::Defer`], signalled
    ///   in-arm before the access and before any state moves: devices
    ///   read the live clock, ROI markers snapshot the counters, and the
    ///   host-parallel scheduler's shared-op pre-check must see
    ///   interactive registers first — the caller single-steps the access
    ///   with a flushed clock);
    /// * a store landing in the block's not-yet-executed tail
    ///   ([`BlockExit::StoreTail`]: the buffered copy is stale; re-entry
    ///   re-forms the block).
    fn exec_block<T: Timing, C: ExecCtx, const PROF: bool>(
        &mut self,
        ctx: &mut C,
        ops: &[PreInst],
        base_pc: u32,
        stop: u64,
    ) -> Result<bool, TrapCause> {
        let len = ops.len();
        let mut dt = 0u64;
        let mut pc = base_pc;
        let mut i = 0usize;
        // First op index past the I-line the block last probed (exact),
        // and the fetch hits accumulated locally since block entry —
        // flushed to the cache's counter on every exit path. The counter
        // is only observable outside the block (sync points and MMIO both
        // defer out), so batching the read-modify-writes is invisible.
        let mut seg_end = 0usize;
        let mut seg_hits = 0u64;
        while i < len {
            let pre = &ops[i];
            if T::EXACT {
                if i > 0 && self.time > stop {
                    break;
                }
                if i >= seg_end {
                    // The block crossed into a new I-line: one pure probe
                    // covers the line to its end (interior fetches are
                    // guaranteed hits — only this core's own fetches
                    // mutate its I-cache, and block ops are sequential).
                    let line = pc >> self.iline_shift;
                    if line != self.last_iline {
                        if !self.icache.would_hit(pc) {
                            break;
                        }
                        self.last_iline = line;
                    }
                    let line_end = (line + 1) << self.iline_shift;
                    seg_end = i + (line_end.wrapping_sub(pc) >> 2) as usize;
                }
                // The op's fetch: a guaranteed hit, counted even if the
                // op itself traps (single-stepping accounts the fetch
                // before dispatch too).
                seg_hits += 1;
            }
            let mut exit = BlockExit::None;
            match self.exec_op::<T, _, true, PROF>(ctx, pre, pc, base_pc, len as u32, &mut exit) {
                Ok(next) => {
                    if exit != BlockExit::None {
                        if exit == BlockExit::Defer {
                            // The op did not run and nothing moved; its
                            // fetch will be re-accounted by the
                            // single-step fallback.
                            if T::EXACT {
                                seg_hits -= 1;
                            }
                            break;
                        }
                        // StoreTail: the op retired; end the block here.
                        if !T::EXACT {
                            dt += T::op_cost(pre.op);
                        }
                        pc = next;
                        i += 1;
                        break;
                    }
                    if !T::EXACT {
                        dt += T::op_cost(pre.op);
                    }
                    pc = next;
                    i += 1;
                }
                Err(cause) => {
                    // The op at `pc` did not retire; leave pc there, flush
                    // the retired prefix (and the trapped op's fetch).
                    self.pc = pc;
                    if T::EXACT {
                        self.icache.hits += seg_hits;
                    } else {
                        self.time += dt;
                        self.counters.instret += i as u64;
                    }
                    return Err(cause);
                }
            }
        }
        self.pc = pc;
        if T::EXACT {
            self.icache.hits += seg_hits;
        } else {
            self.time += dt;
            self.counters.instret += i as u64;
        }
        Ok(i > 0)
    }

    /// Fire the armed fault (out of line; at most once per run). Returns
    /// `Err` only for [`FaultKind::GuestTrap`]; the other kinds perturb
    /// host or output state and let execution continue.
    #[cold]
    fn fire_fault(&mut self, pc: u32) -> Result<(), TrapCause> {
        let (_, kind) = self.fault.take().expect("trigger check saw an armed fault");
        match kind {
            FaultKind::GuestTrap => Err(TrapCause::InjectedFault {
                pc,
                instret: self.counters.instret,
            }),
            FaultKind::StallMs(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
            FaultKind::CorruptSpike(mask) => {
                self.spike_corrupt = mask;
                Ok(())
            }
            FaultKind::HostPanic => panic!(
                "injected host panic on core {} (pc {pc:#010x}, instret {})",
                self.id, self.counters.instret
            ),
        }
    }

    /// Rare MMIO side effects (halt / ROI markers / barrier parking), out
    /// of the hot path.
    #[cold]
    fn apply_effect<T: Timing>(&mut self, effect: MmioEffect) {
        match effect {
            MmioEffect::None => {}
            MmioEffect::Halt => self.halted = true,
            MmioEffect::BarrierWait => {
                // Exact scheduling simulates the guest's spin loop; the
                // relaxed schedulers deschedule the core instead.
                if !T::EXACT {
                    self.parked = true;
                }
            }
            MmioEffect::RoiStart => {
                self.sync_counters();
                self.roi_base = self.counters;
                self.roi_active = true;
                self.roi_final = None;
            }
            MmioEffect::RoiStop => {
                if self.roi_active {
                    self.sync_counters();
                    self.roi_final = Some(self.counters.delta(&self.roi_base));
                    self.roi_active = false;
                }
            }
        }
    }
}

//! Memory-mapped platform devices shared by all cores.
//!
//! The register block mirrors what the paper's Avalon system provides:
//! a JTAG-UART-style console, an Altera-mutex-style hardware mutex, a
//! barrier peripheral, a spike-log FIFO the workloads use to export raster
//! data, a seeded xorshift32 RNG (stand-in for the host-supplied thalamic
//! noise tables), and counter (ROI) control.

use crate::mem::layout;

/// What an injected fault does when it fires (see [`FaultPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Raise a guest trap on the victim core
    /// ([`TrapCause::InjectedFault`](crate::cpu::TrapCause::InjectedFault)).
    GuestTrap,
    /// Stall the victim core's host thread for this many milliseconds —
    /// the guest-visible state is untouched, so only a wall-clock
    /// watchdog can notice.
    StallMs(u64),
    /// XOR this mask into the next spike-log word the victim core writes:
    /// a silent corruption of non-architectural output that only
    /// downstream verification (raster hashing) can catch.
    CorruptSpike(u32),
    /// Panic on the host thread driving the victim core — exercises
    /// `catch_unwind` supervision in the harness above the simulator.
    HostPanic,
}

/// One scheduled fault: fires on `core` at the first instruction executed
/// with at least `at_instret` instructions already retired, then disarms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Victim hart id.
    pub core: u32,
    /// Retired-instruction trigger point (0 fires on the first
    /// instruction). Instret is schedule-invariant per core, so a plan
    /// replays identically under every scheduling mode.
    pub at_instret: u64,
    /// What happens at the trigger point.
    pub kind: FaultKind,
}

/// A deterministic, replayable fault schedule carried on
/// [`SystemConfig`](crate::system::SystemConfig). The default (empty)
/// plan injects nothing and leaves every run bit-identical to an
/// unplanned one — the fault-injection property suite pins this.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults. At most one fault is armed per core (the
    /// first spec listed for that core wins).
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with no faults (same as `Default`).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builder: add one scheduled fault.
    pub fn with(mut self, core: u32, at_instret: u64, kind: FaultKind) -> Self {
        self.faults.push(FaultSpec {
            core,
            at_instret,
            kind,
        });
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault armed for `core`, if any (first spec wins).
    pub(crate) fn for_core(&self, core: u32) -> Option<FaultSpec> {
        self.faults.iter().copied().find(|f| f.core == core)
    }
}

/// One externally injected input spike: at simulation tick `tick`, neuron
/// `neuron` (a guest-global index owned by `core`) receives one unit of
/// stimulus current. The guest discovers it by writing the tick to
/// [`layout::MMIO_STIM`] and reading events back until the drain sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StimEvent {
    /// Simulation tick the event fires on.
    pub tick: u32,
    /// Hart that owns the target neuron (only this core sees the event).
    pub core: u32,
    /// Target neuron index (guest-global).
    pub neuron: u32,
}

/// A deterministic, replayable stimulus schedule carried on
/// [`SystemConfig`](crate::system::SystemConfig) — the streaming-input
/// analogue of [`FaultPlan`]. The default (empty) plan injects nothing and
/// leaves every run bit-identical to an unplanned one. Events are
/// per-core state on the device, so delivery is schedule-invariant: every
/// scheduling mode drains the same events in the same order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StimPlan {
    /// The scheduled events, in any order (the device sorts per core).
    pub events: Vec<StimEvent>,
}

impl StimPlan {
    /// A plan with no events (same as `Default`).
    pub fn none() -> Self {
        StimPlan::default()
    }

    /// Builder: add one scheduled event.
    pub fn with(mut self, tick: u32, core: u32, neuron: u32) -> Self {
        self.events.push(StimEvent { tick, core, neuron });
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

/// Side effects an MMIO write asks the core to apply to itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmioEffect {
    /// Nothing beyond the device state change.
    None,
    /// Halt the writing core.
    Halt,
    /// Reset and start this core's region-of-interest counters.
    RoiStart,
    /// Stop this core's region-of-interest counters.
    RoiStop,
    /// The core arrived at the barrier but the round is still incomplete.
    /// The exact scheduler ignores this (the guest's spin loop is simulated
    /// as-is); the relaxed scheduler parks the core until release.
    BarrierWait,
}

/// `true` when an MMIO access at `offset` is **shared-interactive**: its
/// result or effect depends on other cores' device traffic (mutex
/// try-acquire/release, barrier generation reads and arrivals, the one
/// shared RNG stream). The host-parallel scheduler must execute these in
/// hart order against the real device block; everything else is either
/// pure per-core (core id, core count, own cycle counter, halt, ROI) or
/// append-only (console, spike log, progress) and safe to answer/buffer
/// core-locally. Keep this in sync with [`SharedDevices::read`]/
/// [`SharedDevices::write`] when adding registers.
#[inline]
pub(crate) fn is_interactive(offset: u32, write: bool) -> bool {
    matches!(
        offset,
        layout::MMIO_MUTEX | layout::MMIO_BARRIER | layout::MMIO_STIM
    ) || (!write && offset == layout::MMIO_RAND)
}

/// Shared device state.
#[derive(Debug, Clone)]
pub struct SharedDevices {
    n_cores: u32,
    /// Console output bytes.
    pub console: Vec<u8>,
    mutex_owner: Option<u32>,
    barrier_count: u32,
    barrier_generation: u32,
    /// Words written to the spike-log FIFO.
    pub spike_log: Vec<u32>,
    /// Progress/debug words.
    pub progress: Vec<u32>,
    rng_state: u32,
    /// Failed mutex acquisition attempts (contention diagnostics).
    pub mutex_contention: u64,
    /// Per-core stimulus event lists, sorted by (tick, neuron).
    stim_events: Vec<Vec<(u32, u32)>>,
    /// Per-core drain cursor into `stim_events`.
    stim_cursor: Vec<usize>,
    /// Per-core tick selected by the last [`layout::MMIO_STIM`] write.
    stim_tick: Vec<u32>,
}

impl SharedDevices {
    /// Create devices for an `n_cores` system with the given RNG seed.
    pub fn new(n_cores: u32, rng_seed: u32) -> Self {
        SharedDevices {
            n_cores,
            console: Vec::new(),
            mutex_owner: None,
            barrier_count: 0,
            barrier_generation: 0,
            spike_log: Vec::new(),
            progress: Vec::new(),
            rng_state: if rng_seed == 0 { 0x1234_5678 } else { rng_seed },
            mutex_contention: 0,
            stim_events: vec![Vec::new(); n_cores as usize],
            stim_cursor: vec![0; n_cores as usize],
            stim_tick: vec![0; n_cores as usize],
        }
    }

    /// Install a stimulus schedule: events are bucketed per owning core
    /// and sorted by (tick, neuron), so the guest drains them in a
    /// canonical order regardless of how the plan was built. Events for
    /// cores outside the system are dropped.
    pub fn set_stim_plan(&mut self, plan: &StimPlan) {
        for list in &mut self.stim_events {
            list.clear();
        }
        for ev in &plan.events {
            if ev.core < self.n_cores {
                self.stim_events[ev.core as usize].push((ev.tick, ev.neuron));
            }
        }
        for list in &mut self.stim_events {
            list.sort_unstable();
        }
        self.stim_cursor.fill(0);
        self.stim_tick.fill(0);
    }

    /// Handle a 32-bit MMIO read from `core_id` at global time `now`.
    pub fn read(&mut self, core_id: u32, offset: u32, now: u64) -> u32 {
        match offset {
            layout::MMIO_COREID => core_id,
            layout::MMIO_NCORES => self.n_cores,
            layout::MMIO_MUTEX => match self.mutex_owner {
                None => {
                    self.mutex_owner = Some(core_id);
                    1
                }
                Some(owner) if owner == core_id => 1, // re-entrant read
                Some(_) => {
                    self.mutex_contention += 1;
                    0
                }
            },
            layout::MMIO_BARRIER => self.barrier_generation,
            layout::MMIO_CYCLE => now as u32,
            layout::MMIO_RAND => {
                // xorshift32
                let mut x = self.rng_state;
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                self.rng_state = x;
                x
            }
            layout::MMIO_STIM => {
                let c = core_id as usize;
                let list = &self.stim_events[c];
                match list.get(self.stim_cursor[c]) {
                    Some(&(tick, neuron)) if tick == self.stim_tick[c] => {
                        self.stim_cursor[c] += 1;
                        neuron
                    }
                    _ => u32::MAX, // drained for the selected tick
                }
            }
            _ => 0,
        }
    }

    /// Handle a 32-bit MMIO write; returns the effect the core must apply.
    pub fn write(&mut self, core_id: u32, offset: u32, value: u32) -> MmioEffect {
        match offset {
            layout::MMIO_CONSOLE => {
                self.console.push(value as u8);
                MmioEffect::None
            }
            layout::MMIO_MUTEX => {
                if self.mutex_owner == Some(core_id) {
                    self.mutex_owner = None;
                }
                MmioEffect::None
            }
            layout::MMIO_BARRIER => {
                self.barrier_count += 1;
                if self.barrier_count == self.n_cores {
                    self.barrier_count = 0;
                    self.barrier_generation = self.barrier_generation.wrapping_add(1);
                    MmioEffect::None
                } else {
                    MmioEffect::BarrierWait
                }
            }
            layout::MMIO_HALT => MmioEffect::Halt,
            layout::MMIO_SPIKE_LOG => {
                self.spike_log.push(value);
                MmioEffect::None
            }
            layout::MMIO_ROI => {
                if value != 0 {
                    MmioEffect::RoiStart
                } else {
                    MmioEffect::RoiStop
                }
            }
            layout::MMIO_PROGRESS => {
                self.progress.push(value);
                MmioEffect::None
            }
            layout::MMIO_STIM => {
                // Select the tick to drain. Guests query monotonically
                // increasing ticks, but a binary search keeps re-selection
                // (e.g. a restarted run) well-defined too.
                let c = core_id as usize;
                self.stim_tick[c] = value;
                self.stim_cursor[c] = self.stim_events[c].partition_point(|&(t, _)| t < value);
                MmioEffect::None
            }
            _ => MmioEffect::None,
        }
    }

    /// Console contents as a lossy UTF-8 string.
    pub fn console_string(&self) -> String {
        String::from_utf8_lossy(&self.console).into_owned()
    }

    /// Current mutex holder, if any (test/diagnostic hook).
    pub fn mutex_owner(&self) -> Option<u32> {
        self.mutex_owner
    }

    /// Current barrier generation (test/diagnostic hook).
    pub fn barrier_generation(&self) -> u32 {
        self.barrier_generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::layout::*;

    #[test]
    fn console_collects_bytes() {
        let mut d = SharedDevices::new(1, 1);
        for b in b"hi!" {
            d.write(0, MMIO_CONSOLE, *b as u32);
        }
        assert_eq!(d.console_string(), "hi!");
    }

    #[test]
    fn mutex_exclusive_and_reentrant() {
        let mut d = SharedDevices::new(2, 1);
        assert_eq!(d.read(0, MMIO_MUTEX, 0), 1, "core 0 acquires");
        assert_eq!(d.read(1, MMIO_MUTEX, 0), 0, "core 1 blocked");
        assert_eq!(d.read(0, MMIO_MUTEX, 0), 1, "re-entrant for owner");
        d.write(1, MMIO_MUTEX, 0); // non-owner release is ignored
        assert_eq!(d.read(1, MMIO_MUTEX, 0), 0);
        d.write(0, MMIO_MUTEX, 0); // owner releases
        assert_eq!(d.read(1, MMIO_MUTEX, 0), 1, "core 1 acquires after release");
        assert_eq!(d.mutex_contention, 2);
    }

    #[test]
    fn barrier_releases_when_all_arrive() {
        let mut d = SharedDevices::new(3, 1);
        let gen = d.read(0, MMIO_BARRIER, 0);
        d.write(0, MMIO_BARRIER, 0);
        d.write(1, MMIO_BARRIER, 0);
        assert_eq!(d.read(2, MMIO_BARRIER, 0), gen, "not yet released");
        d.write(2, MMIO_BARRIER, 0);
        assert_eq!(d.read(0, MMIO_BARRIER, 0), gen + 1, "released");
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = SharedDevices::new(1, 42);
        let mut b = SharedDevices::new(1, 42);
        let va: Vec<u32> = (0..10).map(|_| a.read(0, MMIO_RAND, 0)).collect();
        let vb: Vec<u32> = (0..10).map(|_| b.read(0, MMIO_RAND, 0)).collect();
        assert_eq!(va, vb);
        let mut c = SharedDevices::new(1, 43);
        let vc: Vec<u32> = (0..10).map(|_| c.read(0, MMIO_RAND, 0)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn effects() {
        let mut d = SharedDevices::new(1, 1);
        assert_eq!(d.write(0, MMIO_HALT, 1), MmioEffect::Halt);
        assert_eq!(d.write(0, MMIO_ROI, 1), MmioEffect::RoiStart);
        assert_eq!(d.write(0, MMIO_ROI, 0), MmioEffect::RoiStop);
        assert_eq!(d.write(0, MMIO_SPIKE_LOG, 0xABCD), MmioEffect::None);
        assert_eq!(d.spike_log, vec![0xABCD]);
    }

    #[test]
    fn barrier_arrival_reports_incomplete_rounds() {
        let mut d = SharedDevices::new(2, 1);
        assert_eq!(d.write(0, MMIO_BARRIER, 0), MmioEffect::BarrierWait);
        assert_eq!(d.write(1, MMIO_BARRIER, 0), MmioEffect::None);
        // A single-core barrier releases on every arrival.
        let mut solo = SharedDevices::new(1, 1);
        assert_eq!(solo.write(0, MMIO_BARRIER, 0), MmioEffect::None);
    }

    #[test]
    fn interactive_classification_covers_the_shared_registers() {
        // Reads whose value depends on other cores' traffic, plus the
        // stimulus port (stateful on the real device block only — the
        // buffered per-core shim cannot answer it):
        for off in [MMIO_MUTEX, MMIO_BARRIER, MMIO_RAND, MMIO_STIM] {
            assert!(is_interactive(off, false), "read {off:#x}");
        }
        // Writes with cross-core effects or device-side state:
        for off in [MMIO_MUTEX, MMIO_BARRIER, MMIO_STIM] {
            assert!(is_interactive(off, true), "write {off:#x}");
        }
        // Everything else is core-local or append-only.
        for off in [
            MMIO_CONSOLE,
            MMIO_COREID,
            MMIO_NCORES,
            MMIO_CYCLE,
            MMIO_HALT,
            MMIO_SPIKE_LOG,
            MMIO_ROI,
            MMIO_PROGRESS,
        ] {
            assert!(!is_interactive(off, true), "write {off:#x}");
        }
        for off in [MMIO_CONSOLE, MMIO_COREID, MMIO_NCORES, MMIO_CYCLE] {
            assert!(!is_interactive(off, false), "read {off:#x}");
        }
    }

    #[test]
    fn stim_port_drains_per_core_events_in_order() {
        let mut d = SharedDevices::new(2, 1);
        // Unsorted plan, events for both cores plus one out-of-range core.
        let plan = StimPlan::none()
            .with(5, 0, 30)
            .with(3, 0, 11)
            .with(3, 0, 7)
            .with(3, 1, 99)
            .with(3, 7, 1);
        d.set_stim_plan(&plan);
        // No write yet: tick 0 selected, nothing scheduled there.
        assert_eq!(d.read(0, MMIO_STIM, 0), u32::MAX);
        // Core 0, tick 3: two events, sorted by neuron, then the sentinel.
        d.write(0, MMIO_STIM, 3);
        assert_eq!(d.read(0, MMIO_STIM, 0), 7);
        assert_eq!(d.read(0, MMIO_STIM, 0), 11);
        assert_eq!(d.read(0, MMIO_STIM, 0), u32::MAX);
        assert_eq!(d.read(0, MMIO_STIM, 0), u32::MAX, "stays drained");
        // Core 1 has its own cursor and only its own events.
        d.write(1, MMIO_STIM, 3);
        assert_eq!(d.read(1, MMIO_STIM, 0), 99);
        assert_eq!(d.read(1, MMIO_STIM, 0), u32::MAX);
        // Skipping a tick with no events yields the sentinel immediately.
        d.write(0, MMIO_STIM, 4);
        assert_eq!(d.read(0, MMIO_STIM, 0), u32::MAX);
        d.write(0, MMIO_STIM, 5);
        assert_eq!(d.read(0, MMIO_STIM, 0), 30);
        assert_eq!(d.read(0, MMIO_STIM, 0), u32::MAX);
    }

    #[test]
    fn empty_stim_plan_is_inert() {
        let mut d = SharedDevices::new(1, 1);
        assert_eq!(d.read(0, MMIO_STIM, 0), u32::MAX);
        d.write(0, MMIO_STIM, 17);
        assert_eq!(d.read(0, MMIO_STIM, 0), u32::MAX);
    }

    #[test]
    fn ids_and_cycle() {
        let mut d = SharedDevices::new(4, 1);
        assert_eq!(d.read(2, MMIO_COREID, 0), 2);
        assert_eq!(d.read(0, MMIO_NCORES, 0), 4);
        assert_eq!(d.read(0, MMIO_CYCLE, 12345), 12345);
    }
}

//! Host-parallel relaxed scheduling ([`SchedMode::RelaxedParallel`]).
//!
//! [`SchedMode::RelaxedParallel`]: crate::system::SchedMode::RelaxedParallel
//! [`SchedMode::Relaxed`]: crate::system::SchedMode::Relaxed
//! [`SchedMode::Exact`]: crate::system::SchedMode::Exact
//!
//! The single-threaded relaxed scheduler runs cores round-robin in quanta:
//! within a round, core 0 executes its whole quantum, then core 1, and so
//! on. This module runs those quanta on host worker threads instead,
//! while keeping the run **bit-identical** to the sequential schedule at
//! every host-thread count. Three mechanisms make that possible:
//!
//! 1. **Sharded RAM** (`RamView`). Worker threads access guest SDRAM and
//!    scratchpad through bounds-checked raw pointers into the one backing
//!    allocation. The *race-free-guest contract* (the same contract
//!    `SchedMode::Relaxed` already imposes, sharpened): cores may only
//!    communicate through the barrier/mutex devices, so within one
//!    scheduling round every core touches a disjoint set of addresses and
//!    the concurrent raw accesses never alias. A guest that breaks the
//!    contract races on the host — exactly the class of program the
//!    relaxed modes already exclude (use [`SchedMode::Exact`] for it).
//!
//! 2. **Deferred interactive devices.** MMIO traffic whose result depends
//!    on other cores — mutex try-acquire/release, barrier reads and
//!    arrivals, the shared RNG — is *detected before it executes* (every
//!    instruction that can touch MMIO computes its address from registers,
//!    so a one-shot pre-check per instruction suffices) and ends the
//!    core's parallel portion of the quantum. After the workers
//!    rendezvous, the coordinator finishes each such quantum **in
//!    ascending hart order against the real devices** — the exact order
//!    the sequential scheduler would have produced. Per-core MMIO traffic
//!    (core id, cycle counter, halt, ROI) executes in place.
//!
//! 3. **Buffered append-only devices.** Spike-log, console and progress
//!    writes land in a per-core `DeviceBuffer` during the parallel
//!    portion and are merged into the shared devices in ascending hart
//!    order at commit time. Since the sequential schedule runs the
//!    round's quanta in exactly that order, the merged logs match it word
//!    for word.
//!
//! Worker threads are spawned once per `run()` (a `std::thread::scope`)
//! and park on a condvar between rounds; a guest core arriving at an
//! incomplete barrier round parks its host thread the same way — nobody
//! spins. On the error paths (trap / cycle budget) the reported error and
//! core are identical to the sequential schedule, but cores *later* in
//! hart order may have advanced further than it would have run them.
//!
//! Scheduling cost intuition: only the portion of a quantum *before* its
//! first interactive device access parallelises. Barrier-light workloads
//! (the `Net8020SweepWorkload` parameter sweeps: zero cross-core traffic
//! after the start-up barrier) parallelise almost perfectly; barrier-per-
//! tick workloads degrade gracefully toward the sequential schedule. On a
//! host with fewer CPUs than worker threads (CI runners, 1-CPU dev boxes)
//! wall clock does not improve at all — the value there is that results,
//! counters and logs are *guaranteed unchanged*, which is what the
//! differential suites exercise.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, PoisonError};

use izhi_isa::inst::{LoadOp, StoreOp};
use izhi_isa::reg::Reg;

use crate::cpu::{Core, ExecCtx, RunStop, Timing, TrapCause};
use crate::mem::{layout, MainMemory};
use crate::mmio::{is_interactive, MmioEffect, SharedDevices};
use crate::predecode::{CodeMem, CodeTable, MicroOp, PreInst, MAX_SB};
use crate::system::{SimError, System, Watchdog};

/// Resolve a requested host-thread count: `0` means "auto" — the
/// `IZHI_HOST_THREADS` environment variable if set (CI forces `2` there so
/// single-CPU runners still exercise the threaded path), otherwise the
/// host's available parallelism.
pub fn resolve_host_threads(requested: u32) -> u32 {
    if requested != 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("IZHI_HOST_THREADS") {
        if let Ok(n) = v.parse::<u32>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get() as u32)
}

/// Bounds-checked raw view of guest RAM, shareable across worker threads.
///
/// # Safety contract
///
/// Dereferencing relies on the race-free-guest contract: during the
/// parallel portion of a round no two cores access the same guest address
/// (one of them writing). The pointers stay valid for the whole `run()`
/// call — [`MainMemory`] is not resized or otherwise touched through
/// references while a `RamView` of it is live.
#[derive(Clone, Copy)]
pub(crate) struct RamView {
    sdram: *mut u8,
    sdram_len: usize,
    scratch: *mut u8,
    scratch_len: usize,
}

// SAFETY: the raw pointers are only dereferenced under the race-free-guest
// contract documented on the type; the view itself is plain data.
unsafe impl Send for RamView {}
unsafe impl Sync for RamView {}

impl RamView {
    pub(crate) fn new(mem: &mut MainMemory) -> Self {
        let sdram = mem.sdram_bytes_mut();
        let (sdram, sdram_len) = (sdram.as_mut_ptr(), sdram.len());
        let scratch = mem.scratch_bytes_mut();
        let (scratch, scratch_len) = (scratch.as_mut_ptr(), scratch.len());
        RamView {
            sdram,
            sdram_len,
            scratch,
            scratch_len,
        }
    }

    /// Width-dispatched read at `off` into the region behind `ptr`.
    #[inline]
    fn read_at(ptr: *const u8, len: usize, off: usize, op: LoadOp) -> Option<u32> {
        let width = match op {
            LoadOp::Lw => 4,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lb | LoadOp::Lbu => 1,
        };
        if off.checked_add(width)? > len {
            return None;
        }
        // SAFETY: bounds just checked; aliasing per the type's contract.
        unsafe {
            Some(match op {
                LoadOp::Lw => {
                    let mut b = [0u8; 4];
                    core::ptr::copy_nonoverlapping(ptr.add(off), b.as_mut_ptr(), 4);
                    u32::from_le_bytes(b)
                }
                LoadOp::Lh | LoadOp::Lhu => {
                    let mut b = [0u8; 2];
                    core::ptr::copy_nonoverlapping(ptr.add(off), b.as_mut_ptr(), 2);
                    u32::from(u16::from_le_bytes(b))
                }
                LoadOp::Lb | LoadOp::Lbu => u32::from(ptr.add(off).read()),
            })
        }
    }

    /// Width-dispatched write at `off` into the region behind `ptr`.
    #[inline]
    fn write_at(ptr: *mut u8, len: usize, off: usize, value: u32, op: StoreOp) -> bool {
        let width = match op {
            StoreOp::Sw => 4,
            StoreOp::Sh => 2,
            StoreOp::Sb => 1,
        };
        match off.checked_add(width) {
            Some(end) if end <= len => {}
            _ => return false,
        }
        // SAFETY: bounds just checked; aliasing per the type's contract.
        unsafe {
            match op {
                StoreOp::Sw => {
                    let b = value.to_le_bytes();
                    core::ptr::copy_nonoverlapping(b.as_ptr(), ptr.add(off), 4);
                }
                StoreOp::Sh => {
                    let b = (value as u16).to_le_bytes();
                    core::ptr::copy_nonoverlapping(b.as_ptr(), ptr.add(off), 2);
                }
                StoreOp::Sb => ptr.add(off).write(value as u8),
            }
        }
        true
    }
}

impl CodeMem for RamView {
    #[inline]
    fn code_word(&self, addr: u32) -> Option<u32> {
        if (addr as usize) < self.sdram_len {
            Self::read_at(self.sdram, self.sdram_len, addr as usize, LoadOp::Lw)
        } else {
            let off = addr.wrapping_sub(layout::SCRATCH_BASE) as usize;
            Self::read_at(self.scratch, self.scratch_len, off, LoadOp::Lw)
        }
    }
}

/// Per-core buffer for append-only device traffic produced during the
/// parallel portion of a quantum; merged in hart order at commit time.
#[derive(Debug, Default)]
pub(crate) struct DeviceBuffer {
    console: Vec<u8>,
    spike_log: Vec<u32>,
    progress: Vec<u32>,
}

impl DeviceBuffer {
    fn flush_into(&mut self, dev: &mut SharedDevices) {
        dev.console.append(&mut self.console);
        dev.spike_log.append(&mut self.spike_log);
        dev.progress.append(&mut self.progress);
    }
}

/// Pre-execution check: does the next instruction touch an interactive
/// MMIO register? Only loads, stores and `nmpn` (whose store address is
/// `rd`) can access MMIO at all, and all three compute their address from
/// registers already visible here — so this check is *complete*: the
/// shard context can never see an interactive access.
#[inline]
fn targets_interactive_mmio(core: &Core, pre: &PreInst) -> bool {
    let (addr, write) = match pre.op {
        MicroOp::Lb | MicroOp::Lh | MicroOp::Lw | MicroOp::Lbu | MicroOp::Lhu => {
            (core.reg(Reg(pre.rs1)).wrapping_add(pre.imm as u32), false)
        }
        MicroOp::Sb | MicroOp::Sh | MicroOp::Sw => {
            (core.reg(Reg(pre.rs1)).wrapping_add(pre.imm as u32), true)
        }
        MicroOp::Nmpn => (core.reg(Reg(pre.rd)), true),
        _ => return false,
    };
    let offset = addr.wrapping_sub(layout::MMIO_BASE);
    offset < layout::MMIO_SIZE && is_interactive(offset, write)
}

/// Where a shard context's device traffic goes — the only thing that
/// differs between the two phases of a quantum. RAM, predecode-shard and
/// timing behaviour are shared via the single [`ShardCtx`] below, so a
/// fix to the memory path cannot land in one phase and miss the other.
trait DevSink {
    fn mmio_read(&mut self, core_id: u32, offset: u32, now: u64) -> u32;
    fn mmio_write(&mut self, core_id: u32, offset: u32, value: u32) -> MmioEffect;
    fn console_extend(&mut self, bytes: &[u8]);
}

/// Parallel-phase policy: append-only traffic buffers per core, pure
/// reads (core id, core count, own cycle counter) answer from snapshots,
/// and interactive offsets are unreachable — the scheduler's pre-check
/// stops the core first.
struct BufferedDev<'a> {
    buf: &'a mut DeviceBuffer,
    n_cores: u32,
}

impl DevSink for BufferedDev<'_> {
    #[inline]
    fn mmio_read(&mut self, core_id: u32, offset: u32, now: u64) -> u32 {
        match offset {
            layout::MMIO_COREID => core_id,
            layout::MMIO_NCORES => self.n_cores,
            layout::MMIO_CYCLE => now as u32,
            layout::MMIO_MUTEX | layout::MMIO_BARRIER | layout::MMIO_RAND | layout::MMIO_STIM => {
                debug_assert!(false, "interactive MMIO read escaped the pre-check");
                0
            }
            _ => 0,
        }
    }

    #[inline]
    fn mmio_write(&mut self, _core_id: u32, offset: u32, value: u32) -> MmioEffect {
        match offset {
            layout::MMIO_CONSOLE => {
                self.buf.console.push(value as u8);
                MmioEffect::None
            }
            layout::MMIO_SPIKE_LOG => {
                self.buf.spike_log.push(value);
                MmioEffect::None
            }
            layout::MMIO_PROGRESS => {
                self.buf.progress.push(value);
                MmioEffect::None
            }
            layout::MMIO_HALT => MmioEffect::Halt,
            layout::MMIO_ROI => {
                if value != 0 {
                    MmioEffect::RoiStart
                } else {
                    MmioEffect::RoiStop
                }
            }
            layout::MMIO_MUTEX | layout::MMIO_BARRIER | layout::MMIO_STIM => {
                debug_assert!(false, "interactive MMIO write escaped the pre-check");
                MmioEffect::None
            }
            _ => MmioEffect::None,
        }
    }

    #[inline]
    fn console_extend(&mut self, bytes: &[u8]) {
        self.buf.console.extend_from_slice(bytes);
    }
}

/// Commit-phase policy: the real shared device block — interactive
/// traffic executes in place, in hart order.
struct RealDev<'a>(&'a mut SharedDevices);

impl DevSink for RealDev<'_> {
    #[inline]
    fn mmio_read(&mut self, core_id: u32, offset: u32, now: u64) -> u32 {
        self.0.read(core_id, offset, now)
    }

    #[inline]
    fn mmio_write(&mut self, core_id: u32, offset: u32, value: u32) -> MmioEffect {
        self.0.write(core_id, offset, value)
    }

    #[inline]
    fn console_extend(&mut self, bytes: &[u8]) {
        self.0.console.extend_from_slice(bytes);
    }
}

/// Execution context for both phases of a quantum: sharded RAM and the
/// core's own predecode shard, with device traffic routed through the
/// phase's [`DevSink`] policy.
struct ShardCtx<'a, D> {
    ram: RamView,
    code: &'a mut CodeTable,
    dev: D,
    csr_writeback: bool,
    superblocks: bool,
    kernels: bool,
}

impl<D: DevSink> ExecCtx for ShardCtx<'_, D> {
    #[inline]
    fn fetch(&mut self, pc: u32) -> PreInst {
        self.code.fetch(pc, &self.ram)
    }

    #[inline]
    fn code_word(&self, pc: u32) -> Option<u32> {
        self.ram.code_word(pc)
    }

    #[inline]
    fn scratch_size(&self) -> u32 {
        self.ram.scratch_len as u32
    }

    #[inline]
    fn sdram_size(&self) -> u32 {
        self.ram.sdram_len as u32
    }

    #[inline]
    fn read_scratch(&self, off: usize, op: LoadOp) -> Option<u32> {
        RamView::read_at(self.ram.scratch, self.ram.scratch_len, off, op)
    }

    #[inline]
    fn read_sdram(&self, off: usize, op: LoadOp) -> Option<u32> {
        RamView::read_at(self.ram.sdram, self.ram.sdram_len, off, op)
    }

    #[inline]
    fn write_scratch(&mut self, off: usize, value: u32, op: StoreOp) -> bool {
        RamView::write_at(self.ram.scratch, self.ram.scratch_len, off, value, op)
    }

    #[inline]
    fn write_sdram(&mut self, off: usize, value: u32, op: StoreOp) -> bool {
        RamView::write_at(self.ram.sdram, self.ram.sdram_len, off, value, op)
    }

    #[inline]
    fn invalidate_store(&mut self, addr: u32) {
        // Invalidates this core's own shard: self-modifying code within a
        // core stays correct; cross-core code patching is cross-core
        // traffic and excluded by the contract.
        self.code.invalidate_store(addr);
    }

    #[inline]
    fn mmio_read(&mut self, core_id: u32, offset: u32, now: u64) -> u32 {
        self.dev.mmio_read(core_id, offset, now)
    }

    #[inline]
    fn mmio_write(&mut self, core_id: u32, offset: u32, value: u32) -> MmioEffect {
        self.dev.mmio_write(core_id, offset, value)
    }

    #[inline]
    fn console_extend(&mut self, bytes: &[u8]) {
        self.dev.console_extend(bytes);
    }

    fn bus_acquire(&mut self, _now: u64, _duration: u64) -> u64 {
        unreachable!("relaxed contexts never instantiate the timing model")
    }

    fn burst(&self, _words: u64) -> u64 {
        unreachable!("relaxed contexts never instantiate the timing model")
    }

    fn div_latency(&self) -> u64 {
        unreachable!("relaxed contexts never instantiate the timing model")
    }

    #[inline]
    fn csr_writeback(&self) -> bool {
        self.csr_writeback
    }

    #[inline]
    fn superblocks_enabled(&self) -> bool {
        self.superblocks
    }

    #[inline]
    fn superblock(&mut self, pc: u32, buf: &mut [PreInst; MAX_SB]) -> (u32, u32) {
        // This core's own shard: block state diverges with the shard's
        // invalidations, which is exactly what per-core self-modifying
        // code needs.
        self.code.superblock(pc, buf)
    }

    #[inline]
    fn kernels_enabled(&self) -> bool {
        self.kernels && !self.code.kernels.is_empty()
    }

    #[inline]
    fn kernel_match(&self, pc: u32) -> Option<crate::kernel::KernelHeader> {
        self.code.kernels.lookup(pc)
    }

    #[inline]
    fn kernel_copy(&self, idx: u8, buf: &mut [PreInst]) -> usize {
        self.code.kernels.copy_trace(idx, buf)
    }

    #[inline]
    fn kernel_set_state(&mut self, idx: u8, state: crate::kernel::SpanState) {
        self.code.kernels.set_state(idx, state);
    }
}

/// Run one core's quantum on a worker thread: the relaxed-clock loop of
/// `Core::run_while` under the non-exact timing policy `T` plus the
/// interactive-MMIO pre-check. The
/// slot fetch is repeated by `exec_one`, but a warm fetch is one bounds
/// check and a 16-byte copy — the price of never having to roll an
/// instruction back.
fn run_quantum_parallel<T: Timing>(
    core: &mut Core,
    ctx: &mut ShardCtx<'_, BufferedDev<'_>>,
    bound: u64,
    max_cycles: u64,
) -> Result<RunStop, TrapCause> {
    // One dispatch per quantum selects the profiled or plain
    // monomorphisation of the loop (see `Core::exec_op` on why the check
    // cannot live on the per-op path).
    if core.profile {
        run_quantum_parallel_p::<T, true>(core, ctx, bound, max_cycles)
    } else {
        run_quantum_parallel_p::<T, false>(core, ctx, bound, max_cycles)
    }
}

/// [`run_quantum_parallel`], monomorphised over the profiling flag.
fn run_quantum_parallel_p<T: Timing, const PROF: bool>(
    core: &mut Core,
    ctx: &mut ShardCtx<'_, BufferedDev<'_>>,
    bound: u64,
    max_cycles: u64,
) -> Result<RunStop, TrapCause> {
    debug_assert!(
        !core.parked(),
        "parked cores never enter the parallel phase"
    );
    let stop = bound.min(max_cycles);
    let sb = ctx.superblocks_enabled();
    let kern = !T::EXACT && ctx.kernels_enabled();
    let mut sbuf = [PreInst::EMPTY; MAX_SB];
    let run = loop {
        if core.halted() {
            break Ok(RunStop::Halted);
        }
        let t = core.time;
        if t > stop {
            break Ok(if t > bound {
                RunStop::Bound
            } else {
                RunStop::Budget
            });
        }
        let pc = core.pc();
        if pc.is_multiple_of(4) {
            let pre = ctx.fetch(pc);
            if targets_interactive_mmio(core, &pre) {
                break Ok(RunStop::SharedOp);
            }
        }
        // Kernel attempt *after* the pre-check, mirroring the superblock
        // ordering below. Batches only ever commit RAM traffic plus the
        // buffered (non-interactive) spike log: any op that would touch an
        // interactive device declines at validation time, before it
        // executes, so a deferred interactive op is always re-seen by the
        // pre-check above first.
        if kern && core.try_kernel::<T, _>(ctx, stop) {
            continue;
        }
        // Superblock attempt *after* the pre-check: the block's first op
        // is the pre-checked one, and `exec_block` breaks before any
        // interior MMIO access, so a deferred interactive op is always
        // re-seen here first.
        if sb {
            match core.try_superblock::<T, _, PROF>(ctx, &mut sbuf, stop) {
                Ok(true) => continue,
                Ok(false) => {}
                Err(cause) => break Err(cause),
            }
        }
        if let Err(cause) = core.exec_one::<T, _, PROF>(ctx) {
            break Err(cause);
        }
    };
    core.sync_counters();
    run
}

/// What a worker left behind for the commit phase.
enum Pending {
    /// No quantum was posted this round (halted or parked core).
    Idle,
    /// A quantum is posted and not yet executed.
    Job,
    /// The parallel portion finished with this result.
    Done(Result<RunStop, TrapCause>),
    /// The parallel portion panicked (host bug or an injected
    /// `FaultKind::HostPanic`). The worker caught the payload so the
    /// round rendezvous still completes; the coordinator re-raises it on
    /// the calling thread once the pool is shut down.
    Panicked(Box<dyn Any + Send>),
}

/// Why `coordinate` abandoned the run: a simulator error (reported
/// exactly as the sequential scheduler would), or a worker panic to
/// re-raise on the calling thread after the thread scope has joined.
enum RoundError {
    Sim(SimError),
    Panic(Box<dyn Any + Send>),
}

impl From<SimError> for RoundError {
    fn from(e: SimError) -> Self {
        RoundError::Sim(e)
    }
}

/// One core's state while the run is threaded. The mutex is uncontended
/// by construction (each core belongs to exactly one worker, and the
/// coordinator only locks between rounds); it exists to move the state
/// across threads safely and cheaply.
struct CoreSlot {
    core: Core,
    /// This core's private predecode shard (diverging copies of a pure
    /// cache — see [`CodeTable`]).
    code: CodeTable,
    buf: DeviceBuffer,
    /// Quantum bound posted by the coordinator, consumed by worker and
    /// commit phases alike.
    bound: u64,
    pending: Pending,
}

/// The host-side round rendezvous: workers park on `start` between
/// rounds, the coordinator parks on `done` while a round is in flight.
struct RoundSync {
    state: Mutex<RoundState>,
    start: Condvar,
    done: Condvar,
}

struct RoundState {
    epoch: u64,
    running: usize,
    shutdown: bool,
}

impl RoundSync {
    fn new() -> Self {
        RoundSync {
            state: Mutex::new(RoundState {
                epoch: 0,
                running: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        }
    }

    /// Coordinator: release all `workers` for one round and park until
    /// every one of them has drained its cores.
    fn run_round(&self, workers: usize) {
        let mut st = self.state.lock().unwrap();
        st.epoch += 1;
        st.running = workers;
        self.start.notify_all();
        while st.running > 0 {
            st = self.done.wait(st).unwrap();
        }
    }

    /// Worker: park until a round newer than `seen` starts; `None` on
    /// shutdown.
    fn wait_start(&self, seen: u64) -> Option<u64> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.shutdown {
                return None;
            }
            if st.epoch > seen {
                return Some(st.epoch);
            }
            st = self.start.wait(st).unwrap();
        }
    }

    /// Worker: signal that this worker's share of the round is done.
    fn finish_round(&self) {
        let mut st = self.state.lock().unwrap();
        st.running -= 1;
        if st.running == 0 {
            self.done.notify_all();
        }
    }

    fn shutdown(&self) {
        let mut st = self.state.lock().unwrap();
        st.shutdown = true;
        self.start.notify_all();
    }
}

/// Per-run constants shared by the coordinator and every worker.
#[derive(Clone, Copy)]
struct RunEnv {
    ram: RamView,
    n_cores: u32,
    csr_writeback: bool,
    superblocks: bool,
    kernels: bool,
    quantum: u64,
    max_cycles: u64,
}

/// Worker `w` of `stride`: owns cores `w, w + stride, …` and runs their
/// posted quanta each round. The core-to-worker map is static, but since
/// parallel portions are independent (that is the whole construction) the
/// partition cannot affect results — only load balance.
fn worker_loop<T: Timing>(
    w: usize,
    stride: usize,
    slots: &[Mutex<CoreSlot>],
    sync: &RoundSync,
    env: RunEnv,
) {
    let mut seen = 0u64;
    while let Some(epoch) = sync.wait_start(seen) {
        seen = epoch;
        let mut i = w;
        while i < slots.len() {
            let mut slot = slots[i].lock().unwrap();
            let CoreSlot {
                core,
                code,
                buf,
                bound,
                pending,
            } = &mut *slot;
            if matches!(pending, Pending::Job) {
                let mut ctx = ShardCtx {
                    ram: env.ram,
                    code,
                    dev: BufferedDev {
                        buf,
                        n_cores: env.n_cores,
                    },
                    csr_writeback: env.csr_writeback,
                    superblocks: env.superblocks,
                    kernels: env.kernels,
                };
                // A panicking quantum must not strand the rendezvous:
                // catch it here (before it can poison the slot mutex or
                // skip `finish_round`), park the payload in the slot, and
                // let the coordinator re-raise it after the round. The
                // `AssertUnwindSafe` is sound because a `Panicked` slot
                // aborts the whole run — its possibly-inconsistent core
                // state is never used again.
                let run = catch_unwind(AssertUnwindSafe(|| {
                    run_quantum_parallel::<T>(core, &mut ctx, *bound, env.max_cycles)
                }));
                *pending = match run {
                    Ok(outcome) => Pending::Done(outcome),
                    Err(payload) => Pending::Panicked(payload),
                };
            }
            drop(slot);
            i += stride;
        }
        sync.finish_round();
    }
}

/// Finish a quantum (or run a whole one, for a freshly unparked core)
/// against the real devices.
fn run_direct<T: Timing>(
    core: &mut Core,
    code: &mut CodeTable,
    dev: &mut SharedDevices,
    env: RunEnv,
    bound: u64,
) -> Result<RunStop, TrapCause> {
    let mut ctx = ShardCtx {
        ram: env.ram,
        code,
        dev: RealDev(dev),
        csr_writeback: env.csr_writeback,
        superblocks: env.superblocks,
        kernels: env.kernels,
    };
    core.run_while::<T, _>(&mut ctx, bound, env.max_cycles)
}

/// The coordinator loop: plan a round, fan the quanta out to the workers,
/// then commit in ascending hart order. Mirrors `System::run_relaxed`
/// decision for decision — the property suites assert bit-identity.
fn coordinate<T: Timing>(
    dev: &mut SharedDevices,
    slots: &[Mutex<CoreSlot>],
    sync: &RoundSync,
    workers: usize,
    env: RunEnv,
    wd: &mut Watchdog,
) -> Result<(), RoundError> {
    let n = slots.len();
    // Generation at which each parked core arrived (same bookkeeping as
    // the sequential relaxed scheduler).
    let mut parked_gen: Vec<Option<u32>> = vec![None; n];
    loop {
        // One wall-clock check per round, mirroring the sequential
        // scheduler's per-rotation cadence. A worker stalled mid-round
        // (e.g. an injected stall fault) delays the check until the
        // round's rendezvous completes — enforcement stays cooperative.
        wd.check()?;
        // Plan: post one quantum per runnable core. Parked cores are
        // excluded — whether they wake this round depends on barrier
        // writes that earlier harts commit *during* the round.
        let mut all_halted = true;
        let mut posted = 0usize;
        for (i, slot) in slots.iter().enumerate() {
            let mut s = slot.lock().unwrap();
            if s.core.halted() {
                continue;
            }
            all_halted = false;
            if parked_gen[i].is_some() {
                continue;
            }
            s.bound = s.core.time.saturating_add(env.quantum - 1);
            s.pending = Pending::Job;
            posted += 1;
        }
        if all_halted {
            return Ok(());
        }
        // Parallel phase.
        if posted > 0 {
            sync.run_round(workers);
        }
        // Commit phase, ascending hart order.
        let mut any_ran = false;
        for (i, slot) in slots.iter().enumerate() {
            let mut s = slot.lock().unwrap();
            let CoreSlot {
                core,
                code,
                buf,
                bound,
                pending,
            } = &mut *s;
            if let Some(gen) = parked_gen[i] {
                // The release check happens here — after harts `< i`
                // committed — exactly where the sequential scheduler
                // performs it within the round.
                if dev.barrier_generation() == gen {
                    continue;
                }
                parked_gen[i] = None;
                core.clear_parked();
                any_ran = true;
                let bound = core.time.saturating_add(env.quantum - 1);
                let stop = run_direct::<T>(core, code, dev, env, bound).map_err(|cause| {
                    SimError::Trap {
                        core: i as u32,
                        cause,
                    }
                })?;
                match stop {
                    RunStop::Halted | RunStop::Bound => {}
                    RunStop::Parked => parked_gen[i] = Some(dev.barrier_generation()),
                    RunStop::Budget => {
                        return Err(SimError::Timeout {
                            max_cycles: env.max_cycles,
                        }
                        .into())
                    }
                    RunStop::SharedOp => unreachable!("run_while never defers"),
                }
                continue;
            }
            let outcome = match std::mem::replace(pending, Pending::Idle) {
                Pending::Idle => continue, // halted before the round
                Pending::Job => unreachable!("round barrier guarantees completion"),
                Pending::Done(outcome) => outcome,
                // Abandon the run; the caller re-raises the panic on its
                // own thread once the worker pool has joined.
                Pending::Panicked(payload) => return Err(RoundError::Panic(payload)),
            };
            any_ran = true;
            buf.flush_into(dev);
            match outcome.map_err(|cause| SimError::Trap {
                core: i as u32,
                cause,
            })? {
                RunStop::Halted | RunStop::Bound => {}
                RunStop::Budget => {
                    return Err(SimError::Timeout {
                        max_cycles: env.max_cycles,
                    }
                    .into())
                }
                RunStop::Parked => unreachable!("shard contexts never park"),
                RunStop::SharedOp => {
                    // Finish the quantum against the real devices; the
                    // deferred operation is its first instruction.
                    let stop = run_direct::<T>(core, code, dev, env, *bound).map_err(|cause| {
                        SimError::Trap {
                            core: i as u32,
                            cause,
                        }
                    })?;
                    match stop {
                        RunStop::Halted | RunStop::Bound => {}
                        RunStop::Parked => parked_gen[i] = Some(dev.barrier_generation()),
                        RunStop::Budget => {
                            return Err(SimError::Timeout {
                                max_cycles: env.max_cycles,
                            }
                            .into())
                        }
                        RunStop::SharedOp => unreachable!("run_while never defers"),
                    }
                }
            }
        }
        if !any_ran {
            // Every live core is parked at a barrier round that can no
            // longer complete — same timeout the sequential scheduler
            // surfaces.
            return Err(SimError::Timeout {
                max_cycles: env.max_cycles,
            }
            .into());
        }
    }
}

impl System {
    /// Host-parallel relaxed scheduling (see the module docs for the
    /// design and the equivalence argument).
    pub(crate) fn run_relaxed_parallel<T: Timing>(
        &mut self,
        quantum: u64,
        host_threads: u32,
        max_cycles: u64,
        wd: &mut Watchdog,
    ) -> Result<(), SimError> {
        let quantum = quantum.max(1);
        let n = self.cores.len();
        if n <= 1 {
            // One core has no rounds to parallelise; the sequential
            // scheduler is the same schedule without the thread pool.
            return self.run_relaxed::<T>(quantum, max_cycles, wd);
        }
        let workers = (resolve_host_threads(host_threads) as usize).clamp(1, n);
        let env = RunEnv {
            ram: RamView::new(&mut self.shared.mem),
            n_cores: n as u32,
            csr_writeback: self.shared.csr_writeback,
            superblocks: self.shared.superblocks,
            kernels: self.shared.kernels,
            quantum,
            max_cycles,
        };
        let slots: Vec<Mutex<CoreSlot>> = std::mem::take(&mut self.cores)
            .into_iter()
            .map(|core| {
                Mutex::new(CoreSlot {
                    core,
                    code: self.shared.code.clone(),
                    buf: DeviceBuffer::default(),
                    bound: 0,
                    pending: Pending::Idle,
                })
            })
            .collect();
        let sync = RoundSync::new();
        let dev = &mut self.shared.dev;
        let result = std::thread::scope(|scope| {
            for w in 0..workers {
                let (slots, sync) = (&slots, &sync);
                scope.spawn(move || worker_loop::<T>(w, workers, slots, sync, env));
            }
            // The commit phase runs guest code too (`run_direct` finishes
            // deferred quanta against the real devices), so a panic —
            // host bug or injected fault — can fire on *this* thread as
            // well as on a worker. Catch it before it can unwind out of
            // the scope closure: `thread::scope` would otherwise join the
            // pool before propagating, and the workers are parked on the
            // round condvar waiting for a shutdown that never comes.
            let out = catch_unwind(AssertUnwindSafe(|| {
                coordinate::<T>(dev, &slots, &sync, workers, env, wd)
            }))
            .unwrap_or_else(|payload| Err(RoundError::Panic(payload)));
            sync.shutdown();
            out
        });
        self.cores = slots
            .into_iter()
            .map(|s| s.into_inner().unwrap_or_else(PoisonError::into_inner).core)
            .collect();
        // Guest stores during the run invalidated the per-core shards,
        // not the system's predecode table; drop the latter so any later
        // run of this system re-decodes lazily instead of trusting a
        // possibly stale cache. Registered kernel spans survive the reset
        // — they are registrations, not cached decodes — but come back
        // dirty so the next dispatch re-verifies their fingerprints
        // against whatever the guest left in RAM.
        let spans = self.shared.code.take_kernel_spans();
        self.shared.code = CodeTable::new(self.cfg.sdram_size, self.cfg.scratch_size);
        self.shared.code.adopt_kernel_spans(spans);
        match result {
            Ok(()) => Ok(()),
            Err(RoundError::Sim(e)) => Err(e),
            // Re-raise the worker's panic here, on the calling thread,
            // now that the scope has joined the pool — a supervisor's
            // `catch_unwind` around `run()` sees exactly the panic a
            // sequential schedule would have raised, never a deadlock.
            Err(RoundError::Panic(payload)) => resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{SchedMode, SystemConfig, TimingModel};
    use izhi_isa::asm::Assembler;

    fn run_mode(src: &str, n_cores: u32, sched: SchedMode, max_cycles: u64) -> System {
        let prog = Assembler::new().assemble(src).expect("asm");
        let mut sys = System::new(SystemConfig {
            n_cores,
            sched,
            ..Default::default()
        });
        assert!(sys.load_program(&prog));
        sys.run(max_cycles).expect("run");
        sys
    }

    /// Full observable-state comparison: registers, clocks, counters,
    /// scratch memory, and every device log in exact order.
    fn assert_identical(a: &System, b: &System, what: &str) {
        for core in 0..a.n_cores() {
            for r in 0..32u8 {
                assert_eq!(
                    a.core(core).reg(Reg(r)),
                    b.core(core).reg(Reg(r)),
                    "{what}: core {core} x{r}"
                );
            }
            assert_eq!(
                a.core(core).time,
                b.core(core).time,
                "{what}: core {core} time"
            );
            assert_eq!(
                a.core(core).counters.instret,
                b.core(core).counters.instret,
                "{what}: core {core} instret"
            );
            assert_eq!(
                a.core(core).pc(),
                b.core(core).pc(),
                "{what}: core {core} pc"
            );
        }
        for word in 0..1024u32 {
            let addr = layout::SCRATCH_BASE + 4 * word;
            assert_eq!(
                a.shared().mem.read_u32(addr),
                b.shared().mem.read_u32(addr),
                "{what}: scratch {addr:#x}"
            );
        }
        assert_eq!(
            a.shared().dev.console,
            b.shared().dev.console,
            "{what}: console"
        );
        assert_eq!(
            a.shared().dev.spike_log,
            b.shared().dev.spike_log,
            "{what}: spike log order"
        );
        assert_eq!(
            a.shared().dev.progress,
            b.shared().dev.progress,
            "{what}: progress"
        );
        assert_eq!(
            a.shared().dev.mutex_contention,
            b.shared().dev.mutex_contention,
            "{what}: mutex contention"
        );
        assert_eq!(
            a.shared().dev.barrier_generation(),
            b.shared().dev.barrier_generation(),
            "{what}: barrier generation"
        );
    }

    /// Run `src` under `Relaxed {quantum}` and `RelaxedParallel` at several
    /// host-thread counts, asserting bit-identical observable state.
    fn assert_parallel_matches_relaxed(src: &str, n_cores: u32, quantum: u64) {
        let reference = run_mode(
            src,
            n_cores,
            SchedMode::Relaxed {
                quantum,
                timing: TimingModel::Unit,
            },
            50_000_000,
        );
        for host_threads in [1u32, 2, 4] {
            let par = run_mode(
                src,
                n_cores,
                SchedMode::RelaxedParallel {
                    quantum,
                    host_threads,
                    timing: TimingModel::Unit,
                },
                50_000_000,
            );
            assert_identical(
                &reference,
                &par,
                &format!("q={quantum} ht={host_threads} cores={n_cores}"),
            );
        }
    }

    /// Barrier-synchronised publish/consume plus spike-log exports on both
    /// sides of the rendezvous.
    const BARRIER_SPIKES_SRC: &str = "
        _start: li   t0, 0xF0000004
                lw   t1, (t0)          # core id
                li   t2, 0x10000000
                li   s2, 0xF000001C    # spike log
                slli t3, t1, 8
                ori  t3, t3, 1
                sw   t3, (s2)          # pre-barrier export
                bnez t1, wait
                li   t3, 7777
                sw   t3, (t2)          # core 0 publishes
        wait:   li   t4, 0xF0000010    # barrier reg
                lw   t5, (t4)          # generation
                sw   x0, (t4)          # arrive
        spin:   lw   t6, (t4)
                beq  t6, t5, spin
                lw   a0, (t2)          # both read after release
                slli t3, t1, 8
                ori  t3, t3, 2
                sw   t3, (s2)          # post-barrier export
                ebreak
    ";

    #[test]
    fn parallel_matches_relaxed_on_barrier_program() {
        for quantum in [1u64, 7, 64, SchedMode::DEFAULT_QUANTUM] {
            assert_parallel_matches_relaxed(BARRIER_SPIKES_SRC, 2, quantum);
        }
        let par = run_mode(
            BARRIER_SPIKES_SRC,
            2,
            SchedMode::RelaxedParallel {
                quantum: 7,
                host_threads: 2,
                timing: TimingModel::Unit,
            },
            1_000_000,
        );
        assert_eq!(par.core(0).reg(Reg::A0), 7777);
        assert_eq!(par.core(1).reg(Reg::A0), 7777);
    }

    #[test]
    fn parallel_mutex_increments_match_relaxed() {
        let src = "
            .equ MUTEX, 0xF000000C
            .equ COUNTER, 0x10000000
            _start: li   s0, 300
                    li   s1, MUTEX
                    li   s2, COUNTER
            loop:   lw   t0, (s1)       # try acquire
                    beqz t0, loop
                    lw   t1, (s2)
                    addi t1, t1, 1
                    sw   t1, (s2)
                    sw   x0, (s1)       # release
                    addi s0, s0, -1
                    bnez s0, loop
                    ebreak
        ";
        for quantum in [3u64, 64] {
            assert_parallel_matches_relaxed(src, 2, quantum);
        }
        let par = run_mode(
            src,
            2,
            SchedMode::RelaxedParallel {
                quantum: 64,
                host_threads: 4,
                timing: TimingModel::Unit,
            },
            50_000_000,
        );
        assert_eq!(par.shared().mem.read_u32(layout::SCRATCH_BASE), Some(600));
    }

    #[test]
    fn parallel_rng_stream_matches_relaxed() {
        // Both cores drain the shared xorshift32 stream into their own
        // scratch page: the draws are interactive and must interleave in
        // exactly the order the sequential schedule produces.
        let src = "
            _start: li   t0, 0xF0000004
                    lw   t1, (t0)          # core id
                    li   t2, 0x10000000
                    slli t3, t1, 12
                    add  t2, t2, t3        # own page
                    li   t4, 0xF0000020    # RNG
                    li   s0, 20
            draw:   lw   t5, (t4)
                    sw   t5, (t2)
                    addi t2, t2, 4
                    addi s0, s0, -1
                    bnez s0, draw
                    ebreak
        ";
        for quantum in [1u64, 7, 1000] {
            assert_parallel_matches_relaxed(src, 2, quantum);
        }
    }

    #[test]
    fn parallel_three_cores_matches_relaxed() {
        assert_parallel_matches_relaxed(BARRIER_SPIKES_SRC, 3, 7);
    }

    #[test]
    fn parallel_trap_reports_the_faulting_core() {
        let src = "
            _start: li   t0, 0xF0000004
                    lw   t1, (t0)
                    bnez t1, bad
            loop:   j    loop
            bad:    li   t2, 0x80000000
                    lw   t3, (t2)
                    ebreak
        ";
        let prog = Assembler::new().assemble(src).unwrap();
        let mut sys = System::new(SystemConfig {
            n_cores: 2,
            sched: SchedMode::RelaxedParallel {
                quantum: 32,
                host_threads: 2,
                timing: TimingModel::Unit,
            },
            ..Default::default()
        });
        sys.load_program(&prog);
        match sys.run(10_000_000) {
            Err(SimError::Trap { core: 1, cause }) => {
                assert!(matches!(cause, TrapCause::BadAccess { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parallel_unreleasable_barrier_times_out() {
        let src = "
            _start: li   t0, 0xF0000004
                    lw   t1, (t0)
                    bnez t1, done
                    li   t4, 0xF0000010
                    lw   t5, (t4)
                    sw   x0, (t4)          # core 0 arrives
            spin:   lw   t6, (t4)
                    beq  t6, t5, spin
            done:   ebreak
        ";
        let prog = Assembler::new().assemble(src).unwrap();
        let mut sys = System::new(SystemConfig {
            n_cores: 2,
            sched: SchedMode::RelaxedParallel {
                quantum: 16,
                host_threads: 2,
                timing: TimingModel::Unit,
            },
            ..Default::default()
        });
        sys.load_program(&prog);
        assert!(matches!(sys.run(100_000), Err(SimError::Timeout { .. })));
    }

    #[test]
    fn parallel_worker_panic_unwinds_to_the_caller_instead_of_deadlocking() {
        // An injected host panic fires on a worker thread mid-quantum.
        // The round rendezvous must still complete (siblings and the
        // coordinator may be parked waiting on it) and the panic must
        // re-raise on the calling thread, where a supervisor's
        // `catch_unwind` can classify it. A regression here hangs the
        // test rather than failing it, so keep the run small.
        use crate::mmio::{FaultKind, FaultPlan};
        let prog = Assembler::new().assemble(BARRIER_SPIKES_SRC).expect("asm");
        let mut sys = System::new(SystemConfig {
            n_cores: 2,
            sched: SchedMode::RelaxedParallel {
                quantum: 16,
                host_threads: 2,
                timing: TimingModel::Unit,
            },
            faults: FaultPlan::none().with(1, 5, FaultKind::HostPanic),
            ..Default::default()
        });
        assert!(sys.load_program(&prog));
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| sys.run(1_000_000)));
        let payload = run.expect_err("the injected panic surfaces as a panic");
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("");
        assert!(msg.contains("injected host panic"), "{msg}");
    }

    #[test]
    fn coordinator_panic_during_commit_shuts_the_pool_down_instead_of_deadlocking() {
        // Mutex traffic is interactive, so nearly all of this guest runs
        // in the commit phase (`run_direct`) on the *coordinator* thread.
        // A panic there must still release the parked workers — it
        // unwinds through the scope closure otherwise, and the scope
        // joins a pool that is waiting for a round that never starts.
        use crate::mmio::{FaultKind, FaultPlan};
        let src = "
            .equ MUTEX, 0xF000000C
            _start: li   s0, 2000
                    li   s1, MUTEX
            loop:   lw   t0, (s1)
                    beqz t0, loop
                    sw   x0, (s1)
                    addi s0, s0, -1
                    bnez s0, loop
                    ebreak
        ";
        let prog = Assembler::new().assemble(src).expect("asm");
        let mut sys = System::new(SystemConfig {
            n_cores: 2,
            sched: SchedMode::RelaxedParallel {
                quantum: 64,
                host_threads: 2,
                timing: TimingModel::Unit,
            },
            faults: FaultPlan::none().with(0, 1_000, FaultKind::HostPanic),
            ..Default::default()
        });
        assert!(sys.load_program(&prog));
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| sys.run(10_000_000)));
        assert!(run.is_err(), "the injected panic surfaces as a panic");
    }

    #[test]
    fn parallel_runs_are_deterministic() {
        let run = || {
            let sys = run_mode(
                BARRIER_SPIKES_SRC,
                3,
                SchedMode::RelaxedParallel {
                    quantum: 5,
                    host_threads: 4,
                    timing: TimingModel::Unit,
                },
                1_000_000,
            );
            (
                (0..3).map(|i| sys.core(i).time).collect::<Vec<_>>(),
                sys.shared().dev.spike_log.clone(),
            )
        };
        let first = run();
        for _ in 0..7 {
            assert_eq!(first, run());
        }
    }
}

//! Host-native batch kernels for the guest's hot loops.
//!
//! Superblocks (PR 9) removed the per-instruction fetch/dispatch cost of a
//! straight-line run; this module removes the per-*iteration* cost of the
//! engine's phase-A scatter and phase-B neuron-update loops. The engine
//! registers each loop it emits as a [`KernelSpan`] — the loop's entry pc,
//! its decoded body, and a fingerprint of the raw code words — and the
//! relaxed interpreters ([`UnitTiming`](crate::cpu) / estimated timing)
//! execute a registered span as one **batch**: a tight host loop over the
//! decoded trace that keeps the register file, the NM_REGS block and all
//! event counters in locals, reads and writes guest RAM through the same
//! bounds-checked views the interpreter uses, and only flushes register
//! and counter state back to the core once per batch.
//!
//! ## Bit-identity by construction
//!
//! The batch executor is not a re-implementation of the loop's *meaning*
//! — it is a mini-interpreter over the **same decoded micro-ops** the
//! single-step path would execute, applying the same arithmetic, the same
//! memory classification and the same counter increments in the same
//! order. Ops retire one at a time with their memory traffic committed
//! directly, exactly like [`Core::exec_block`](crate::cpu) runs a fused
//! superblock; what makes that sound is the same rule superblocks use:
//! any op the batch cannot run — an MMIO access (devices read the live
//! clock and the host-parallel scheduler pre-screens interactive
//! registers), a misaligned or unmapped address (the interpreter raises
//! the trap), or a store into the span's own code words from the *next*
//! op on (the decoded trace is stale) — **defers**: the batch ends with
//! `pc` parked on the first op that did not retire and with every retired
//! op's state already exactly what single-stepping would have left, so
//! the interpreter simply picks up mid-iteration. Defers are therefore a
//! pure performance event, never a semantic one. The same hoisted entry
//! conditions as `Core::try_superblock` keep scheduler stop points and
//! fault-plan trigger points identical: a batch iteration only starts
//! when its whole conservative cost fits under the quantum bound and its
//! whole length fits under the armed fault trigger.
//!
//! Exact timing keeps interpreting (the cycle model consults caches, the
//! shared bus and hazard state per instruction — exactly what batching
//! elides), mirroring the superblock would-miss-fetch rule.
//!
//! ## Registration: a structural audit
//!
//! [`register_kernel_span`] does not pattern-match a particular loop
//! shape. It walks the decoded stream from the entry and accepts any
//! single-entry loop in which every op is batchable (no `jalr`/`fence`/
//! `ecall`/`ebreak`/`csr`; `jal` only as the non-linking `jal x0`, an
//! unconditional jump), every interior branch or jump targets strictly
//! forward within the span, and the final op is a conditional branch back
//! to the entry — the sole back-edge. This covers all four emitted loop
//! shapes (dense/sparse phase A, NPU and base-fixed phase B) and is immune
//! to assembler relaxation or peephole drift; anything else is rejected,
//! which only costs performance. The FNV-1a fingerprint over the raw code
//! words makes spans self-verifying after a guest store into the span
//! ([`SpanState::Dirty`]): if the words still hash to the fingerprint the
//! decoded trace is still exact, otherwise the span is rejected for good
//! and the interpreter (which re-decodes through the ordinary
//! store-invalidation path) takes over.

use izhi_core::dcu::Dcu;
use izhi_core::npu::NpUnit;
use izhi_fixed::Q15_16;
use izhi_isa::inst::{LoadOp, StoreOp};

use crate::counters::{self, OpClass};
use crate::cpu::{Core, ExecCtx, Timing};
use crate::mem::layout;
use crate::predecode::{CodeMem, CodeTable, MicroOp, PreInst, SlotState, NO_DEST};

/// Maximum decoded length of a kernel span in micro-ops (the base-fixed
/// phase-B body is ~84 ops; 192 leaves generous headroom while keeping the
/// per-batch stack buffer at 3 KiB).
pub const MAX_KERNEL_OPS: usize = 192;
/// Maximum registered spans per system (the engine registers at most a
/// phase-A and a phase-B loop; 8 leaves room for tests and future shapes).
pub const MAX_KERNEL_SPANS: usize = 8;

/// Lifecycle state of a registered span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanState {
    /// Verified against the code words; eligible for batch execution.
    Ready,
    /// A guest store landed inside the span (or the span was adopted
    /// across a run boundary): the fingerprint must re-verify against the
    /// live code words before the next batch.
    Dirty,
    /// The code under the span changed (or re-verification failed): the
    /// span is permanently disabled — the interpreter owns this pc range.
    Rejected,
}

/// Which emitted loop a span was registered for. Purely descriptive — the
/// structural audit, not the variant, decides acceptance — but it keeps
/// diagnostics and tests readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVariant {
    /// Dense phase-A synaptic scatter (fixed row stride).
    DenseA,
    /// Sparse (CSR) phase-A synaptic scatter.
    SparseA,
    /// Phase-B neuron update through the NPU/DCU custom ops.
    NpuB,
    /// Phase-B neuron update in base-ISA fixed-point.
    BaseFixedB,
}

/// A span body that additionally matched a **closed-form host loop** at
/// registration. Unlike [`KernelVariant`] (descriptive only), this is
/// load-bearing: the batch entry runs the matched shape as straight host
/// code — no per-op dispatch at all — whenever its up-front screens pass,
/// and falls back to the generic batch loop otherwise. The matcher is
/// purely structural over the decoded micro-ops (register roles are
/// extracted, not assumed), so it tracks the emitted code, never the
/// other way round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeShape {
    /// The dense phase-A scatter body:
    /// `M[pi] += sext16(M[pw]) << 8; pw += 2; pi += 4; cnt -= 1;`
    /// looping while `cnt != 0`.
    DenseAxpy {
        /// Weight pointer register (`lh` base, stride +2).
        pw: u8,
        /// Accumulator pointer register (`lw`/`sw` base, stride +4).
        pi: u8,
        /// Weight temporary (`lh` destination, then shifted).
        w: u8,
        /// Accumulator temporary (`lw` destination, then stored).
        s: u8,
        /// Down-counter register (`addi -1`, back-edge operand).
        cnt: u8,
    },
}

/// Why [`register_kernel_span`] refused a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelReject {
    /// The body contains an op the batch executor does not run
    /// (`jalr`/`fence`/`ecall`/`ebreak`/`csr`, or a linking `jal`).
    UnsupportedOp,
    /// An interior branch targets backward, outside the span, or a
    /// misaligned pc.
    BadBranchTarget,
    /// No back-edge within [`MAX_KERNEL_OPS`] ops of the entry.
    TooLong,
    /// The loop body is a single instruction (nothing to batch).
    TooShort,
    /// The entry (or the walk) left the executable SDRAM window.
    OutOfWindow,
    /// A word in the span does not decode (or is not resident SDRAM code).
    Undecodable,
    /// A span with this entry pc is already registered.
    DuplicateEntry,
    /// [`MAX_KERNEL_SPANS`] spans are already registered.
    TableFull,
}

impl core::fmt::Display for KernelReject {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            KernelReject::UnsupportedOp => "unsupported op in loop body",
            KernelReject::BadBranchTarget => "interior branch target not strictly forward in span",
            KernelReject::TooLong => "no back-edge within the op limit",
            KernelReject::TooShort => "loop body too short to batch",
            KernelReject::OutOfWindow => "entry outside the executable SDRAM window",
            KernelReject::Undecodable => "undecodable word in span",
            KernelReject::DuplicateEntry => "span already registered at this entry",
            KernelReject::TableFull => "kernel span table full",
        };
        f.write_str(s)
    }
}

/// One registered loop: `[entry, exit)` in guest SDRAM, the decoded body
/// (entry to back-edge inclusive) and the FNV-1a fingerprint of the raw
/// code words used to re-verify a [`SpanState::Dirty`] span.
#[derive(Debug, Clone)]
pub struct KernelSpan {
    /// Loop entry pc (the back-edge target).
    pub entry: u32,
    /// First pc past the back-edge branch.
    pub exit: u32,
    /// FNV-1a 64 over the raw words of `[entry, exit)`.
    pub fp: u64,
    /// Lifecycle state.
    pub state: SpanState,
    /// Descriptive origin of the span.
    pub variant: KernelVariant,
    /// Closed-form host loop the body matched, if any.
    pub native: Option<NativeShape>,
    trace: Box<[PreInst]>,
}

impl KernelSpan {
    /// The decoded body, entry to back-edge inclusive.
    pub fn trace(&self) -> &[PreInst] {
        &self.trace
    }
}

/// Copyable span summary handed to the dispatch fast path (the trace
/// itself is copied separately into a stack buffer, and only after the
/// entry pc matched).
#[derive(Debug, Clone, Copy)]
pub struct KernelHeader {
    /// Index into the span table (for state writebacks).
    pub idx: u8,
    /// Lifecycle state at lookup time.
    pub state: SpanState,
    /// Loop entry pc.
    pub entry: u32,
    /// First pc past the back-edge.
    pub exit: u32,
    /// Decoded body length in ops.
    pub len: u32,
    /// Fingerprint for `Dirty` re-verification.
    pub fp: u64,
    /// Closed-form host loop the body matched, if any.
    pub native: Option<NativeShape>,
}

/// The registered spans of one [`CodeTable`], plus the covering pc range
/// `[lo, lo + len)` that keeps the store-to-code hook
/// ([`SpanTable::note_store`]) to one compare-and-branch for every store
/// that lands outside all spans.
#[derive(Debug, Clone)]
pub struct SpanTable {
    spans: Vec<KernelSpan>,
    lo: u32,
    len: u32,
}

impl Default for SpanTable {
    fn default() -> Self {
        SpanTable {
            spans: Vec::new(),
            // Empty cover: `addr - MAX` never lands below any span length.
            lo: u32::MAX,
            len: 0,
        }
    }
}

impl SpanTable {
    /// Whether any span is registered.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The registered spans (inspection/tests).
    pub fn spans(&self) -> &[KernelSpan] {
        &self.spans
    }

    /// Store-to-code hook, called for **every** guest store (from
    /// [`CodeTable::invalidate_store`]): one wrapping compare against the
    /// covering range, then the cold per-span scan only on a hit.
    #[inline]
    pub fn note_store(&mut self, addr: u32) {
        if (addr & !3).wrapping_sub(self.lo) < self.len {
            self.dirty_word(addr & !3);
        }
    }

    /// Mark every non-rejected span covering `word` dirty.
    #[cold]
    fn dirty_word(&mut self, word: u32) {
        for s in &mut self.spans {
            if s.state != SpanState::Rejected && word.wrapping_sub(s.entry) < s.exit - s.entry {
                s.state = SpanState::Dirty;
            }
        }
    }

    /// Header of the span whose entry is exactly `pc`, if any.
    #[inline]
    pub fn lookup(&self, pc: u32) -> Option<KernelHeader> {
        self.spans.iter().enumerate().find_map(|(i, s)| {
            (s.entry == pc).then_some(KernelHeader {
                idx: i as u8,
                state: s.state,
                entry: s.entry,
                exit: s.exit,
                len: s.trace.len() as u32,
                fp: s.fp,
                native: s.native,
            })
        })
    }

    /// Copy span `idx`'s trace into `buf`; returns the length copied.
    #[inline]
    pub fn copy_trace(&self, idx: u8, buf: &mut [PreInst]) -> usize {
        let t = &self.spans[idx as usize].trace;
        buf[..t.len()].copy_from_slice(t);
        t.len()
    }

    /// Set span `idx`'s lifecycle state (dispatch re-verification).
    pub fn set_state(&mut self, idx: u8, state: SpanState) {
        self.spans[idx as usize].state = state;
    }

    /// Move the spans out (the host-parallel scheduler rebuilds its shared
    /// [`CodeTable`] after a run; the spans survive the rebuild).
    pub fn take(&mut self) -> Vec<KernelSpan> {
        self.lo = u32::MAX;
        self.len = 0;
        std::mem::take(&mut self.spans)
    }

    /// Re-install spans taken from a previous table. Every non-rejected
    /// span comes back [`SpanState::Dirty`]: the new table has not
    /// observed the stores of the interim, so the fingerprint must
    /// re-verify before the next batch.
    pub fn adopt(&mut self, spans: Vec<KernelSpan>) {
        for mut s in spans {
            if s.state != SpanState::Rejected {
                s.state = SpanState::Dirty;
            }
            self.insert(s);
        }
    }

    fn insert(&mut self, span: KernelSpan) {
        let (entry, exit) = (span.entry, span.exit);
        self.spans.push(span);
        let hi = self.lo.wrapping_add(self.len).max(exit);
        self.lo = self.lo.min(entry);
        self.len = hi - self.lo;
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_word(mut fp: u64, word: u32) -> u64 {
    for b in word.to_le_bytes() {
        fp = (fp ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    fp
}

/// Ops the batch executor runs. `jal x0` qualifies — it is an
/// unconditional branch whose link write is architecturally void — but a
/// linking `jal` and everything else that leaves the span or touches halt
/// machinery / the live clock (`jalr`/`fence`/`ecall`/`ebreak`/`csr`)
/// rejects the span at registration.
fn batchable(pre: &PreInst) -> bool {
    !matches!(
        pre.op,
        MicroOp::Jalr | MicroOp::Fence | MicroOp::Ecall | MicroOp::Ebreak | MicroOp::Csr
    ) && (pre.op != MicroOp::Jal || pre.rd == 0)
}

fn is_branch(op: MicroOp) -> bool {
    matches!(
        op,
        MicroOp::Beq | MicroOp::Bne | MicroOp::Blt | MicroOp::Bge | MicroOp::Bltu | MicroOp::Bgeu
    )
}

/// Structural match of a decoded body against the dense phase-A scatter
/// shape (see [`NativeShape::DenseAxpy`]). Register roles are extracted
/// from the micro-ops; immediates (strides 2/4, shift 8, decrement -1)
/// must match exactly. All five roles must be distinct and non-zero so
/// the closed-form end state is well defined. Any mismatch just means
/// "no native tier" — the generic batch loop still runs the span.
fn match_native(trace: &[PreInst], entry: u32) -> Option<NativeShape> {
    let [lh, lw, sll, add, sw, apw, api, acnt, bne] = trace else {
        return None;
    };
    // lh w, 0(pw)
    if lh.op != MicroOp::Lh || lh.imm != 0 {
        return None;
    }
    let (w, pw) = (lh.rd, lh.rs1);
    // lw s, 0(pi)
    if lw.op != MicroOp::Lw || lw.imm != 0 {
        return None;
    }
    let (s, pi) = (lw.rd, lw.rs1);
    // slli w, w, 8
    if sll.op != MicroOp::Slli || sll.rd != w || sll.rs1 != w || sll.imm & 0x1F != 8 {
        return None;
    }
    // add s, s, w (either operand order)
    if add.op != MicroOp::Add
        || add.rd != s
        || !((add.rs1 == s && add.rs2 == w) || (add.rs1 == w && add.rs2 == s))
    {
        return None;
    }
    // sw s, 0(pi)
    if sw.op != MicroOp::Sw || sw.rs1 != pi || sw.rs2 != s || sw.imm != 0 {
        return None;
    }
    // addi pw, pw, 2 ; addi pi, pi, 4 ; addi cnt, cnt, -1
    if apw.op != MicroOp::Addi || apw.rd != pw || apw.rs1 != pw || apw.imm != 2 {
        return None;
    }
    if api.op != MicroOp::Addi || api.rd != pi || api.rs1 != pi || api.imm != 4 {
        return None;
    }
    if acnt.op != MicroOp::Addi || acnt.rd != acnt.rs1 || acnt.imm != -1 {
        return None;
    }
    let cnt = acnt.rd;
    // bne cnt, x0, entry (imm is the pre-resolved absolute target)
    if bne.op != MicroOp::Bne || bne.rs1 != cnt || bne.rs2 != 0 || bne.imm as u32 != entry {
        return None;
    }
    let roles = [pw, pi, w, s, cnt];
    if roles.contains(&0) {
        return None;
    }
    for i in 0..roles.len() {
        if roles[i + 1..].contains(&roles[i]) {
            return None;
        }
    }
    Some(NativeShape::DenseAxpy { pw, pi, w, s, cnt })
}

/// Audit and register the loop at `entry` as a kernel span.
///
/// Walks the decoded stream from `entry` until the first conditional
/// branch whose (pre-resolved, absolute) target is `entry` — the
/// back-edge, which becomes the span's final op (`exit` = its pc + 4).
/// Acceptance is purely structural (see the module docs); on success the
/// span is stored [`SpanState::Ready`] in the table carried by `code`.
/// Rejection leaves `code` unchanged apart from warmed decode slots and
/// only costs performance: the interpreter runs the loop as before.
pub fn register_kernel_span<M: CodeMem>(
    code: &mut CodeTable,
    mem: &M,
    entry: u32,
    variant: KernelVariant,
) -> Result<(), KernelReject> {
    if !entry.is_multiple_of(4) || entry >= code.sdram_limit() {
        return Err(KernelReject::OutOfWindow);
    }
    if code.kernels.spans.len() >= MAX_KERNEL_SPANS {
        return Err(KernelReject::TableFull);
    }
    if code.kernels.lookup(entry).is_some() {
        return Err(KernelReject::DuplicateEntry);
    }
    let mut trace: Vec<PreInst> = Vec::new();
    let mut fp = FNV_OFFSET;
    let mut pc = entry;
    loop {
        if trace.len() >= MAX_KERNEL_OPS {
            return Err(KernelReject::TooLong);
        }
        if pc >= code.sdram_limit() {
            return Err(KernelReject::OutOfWindow);
        }
        let word = mem.code_word(pc).ok_or(KernelReject::Undecodable)?;
        let pre = code.fetch(pc, mem);
        if pre.state != SlotState::Sdram {
            return Err(KernelReject::Undecodable);
        }
        if !batchable(&pre) {
            return Err(KernelReject::UnsupportedOp);
        }
        fp = fnv_word(fp, word);
        trace.push(pre);
        if is_branch(pre.op) {
            let target = pre.imm as u32;
            if target == entry {
                // The sole back-edge: the span ends after this op.
                pc += 4;
                break;
            }
            // Interior branches must jump strictly forward and stay
            // 4-aligned; the upper bound (within the span) is checked
            // against `exit` once the walk fixed it.
            if target <= pc || !target.is_multiple_of(4) {
                return Err(KernelReject::BadBranchTarget);
            }
        } else if pre.op == MicroOp::Jal {
            // `jal x0`: unconditional, so it can never be the back-edge
            // of a terminating loop — require a strictly forward in-span
            // target like any interior branch.
            let target = pre.imm as u32;
            if target <= pc || !target.is_multiple_of(4) {
                return Err(KernelReject::BadBranchTarget);
            }
        }
        pc += 4;
    }
    let exit = pc;
    if trace.len() < 2 {
        return Err(KernelReject::TooShort);
    }
    for (i, p) in trace.iter().enumerate() {
        let jumps = is_branch(p.op) || p.op == MicroOp::Jal;
        if i + 1 < trace.len() && jumps && (p.imm as u32) > exit {
            return Err(KernelReject::BadBranchTarget);
        }
    }
    let native = match_native(&trace, entry);
    code.kernels.insert(KernelSpan {
        entry,
        exit,
        fp,
        state: SpanState::Ready,
        variant,
        native,
        trace: trace.into_boxed_slice(),
    });
    Ok(())
}

impl Core {
    /// Attempt to run the kernel span at `self.pc` as one batch. Returns
    /// whether at least one iteration committed (the caller re-enters its
    /// scheduling loop). Only instantiated by the relaxed interpreters.
    #[inline]
    pub(crate) fn try_kernel<T: Timing, C: ExecCtx>(&mut self, ctx: &mut C, stop: u64) -> bool {
        debug_assert!(!T::EXACT);
        let Some(hdr) = ctx.kernel_match(self.pc) else {
            return false;
        };
        self.kernel_enter::<T, C>(ctx, hdr, stop)
    }

    /// Out-of-line entry: state check / re-verification, trace copy and
    /// the batch loop (kept off the per-op dispatch path, which only pays
    /// the entry-pc probe above).
    fn kernel_enter<T: Timing, C: ExecCtx>(
        &mut self,
        ctx: &mut C,
        hdr: KernelHeader,
        stop: u64,
    ) -> bool {
        match hdr.state {
            SpanState::Rejected => return false,
            SpanState::Ready => {}
            SpanState::Dirty => {
                // A store landed inside the span (or it crossed a run
                // boundary): the decoded trace is only exact if the raw
                // words still hash to the registration fingerprint.
                let mut fp = FNV_OFFSET;
                let mut pc = hdr.entry;
                while pc < hdr.exit {
                    let Some(word) = ctx.code_word(pc) else {
                        ctx.kernel_set_state(hdr.idx, SpanState::Rejected);
                        return false;
                    };
                    fp = fnv_word(fp, word);
                    pc += 4;
                }
                if fp != hdr.fp {
                    ctx.kernel_set_state(hdr.idx, SpanState::Rejected);
                    return false;
                }
                ctx.kernel_set_state(hdr.idx, SpanState::Ready);
            }
        }
        let mut buf = [PreInst::EMPTY; MAX_KERNEL_OPS];
        let len = ctx.kernel_copy(hdr.idx, &mut buf);
        debug_assert_eq!(len as u32, hdr.len);
        // Native tier first: a matched shape whose screens pass runs as
        // straight host code; otherwise the generic batch loop takes the
        // span op by op. (A Dirty span that just re-verified hashes to
        // the registration words, so the registration-time match is still
        // exact.)
        if let Some(shape) = hdr.native {
            if let Some(ran) = self.kernel_native::<T, C>(ctx, &hdr, &buf[..len], shape, stop) {
                return ran;
            }
        }
        self.kernel_batch::<T, C>(ctx, &hdr, &buf[..len], stop)
    }

    /// Closed-form execution of a matched [`NativeShape`] span.
    ///
    /// Computes the exact number of iterations `k` the generic batch loop
    /// would retire — bounded by the guest's own down-counter, the quantum
    /// budget and the armed fault trigger, using the *same* conservative
    /// per-iteration entry conditions — then screens the whole `k`-wide
    /// load and store sweeps up front (single RAM region each, natural
    /// alignment, store sweep clear of the span's own code words) and runs
    /// the arithmetic as a tight host loop. Every screened quantity the
    /// per-op path checks incrementally is checked here in closed form, so
    /// the architectural end state — registers, memory, counters, clock,
    /// `pc` — is bit-identical to `k` interpreted iterations. Returns
    /// `None` when any screen fails (the generic batch loop, which defers
    /// per-op, takes over) or `Some(ran)` when the native tier owned the
    /// dispatch.
    fn kernel_native<T: Timing, C: ExecCtx>(
        &mut self,
        ctx: &mut C,
        hdr: &KernelHeader,
        trace: &[PreInst],
        shape: NativeShape,
        stop: u64,
    ) -> Option<bool> {
        let NativeShape::DenseAxpy { pw, pi, w, s, cnt } = shape;
        let (pw, pi, w, s, cnt) = (
            pw as usize,
            pi as usize,
            w as usize,
            s as usize,
            cnt as usize,
        );
        let full_cost: u64 = trace.iter().map(|p| T::op_cost(p.op)).sum();
        let full_len = trace.len() as u64;
        // Iteration i (0-based) is admitted by the generic loop iff
        // time + i*full_cost + full_cost <= stop and
        // instret + i*full_len + full_len <= fault_at.
        let k_budget = stop.saturating_sub(self.time) / full_cost;
        let k_fault = match self.fault {
            Some((at, _)) => at.saturating_sub(self.counters.instret) / full_len,
            None => u64::MAX,
        };
        let c = self.regs[cnt];
        // The back-edge makes the loop do-while: a zero counter wraps and
        // runs 2^32 iterations (the sweep screens below reject anything
        // that large, handing it to the generic loop).
        let iters: u64 = if c == 0 { 1 << 32 } else { u64::from(c) };
        let k = iters.min(k_budget).min(k_fault);
        if k == 0 {
            // The generic loop would break at its entry conditions too.
            return Some(false);
        }
        let w0 = self.regs[pw];
        let s0 = self.regs[pi];
        if !w0.is_multiple_of(2) || !s0.is_multiple_of(4) {
            return None;
        }
        let scratch_size = ctx.scratch_size() as u64;
        let sdram_size = ctx.sdram_size() as u64;
        // Load sweep [w0, w0 + 2k): wholly scratch or wholly SDRAM.
        let w_scr = w0.wrapping_sub(layout::SCRATCH_BASE);
        let w_in_scratch = u64::from(w_scr) < scratch_size;
        if w_in_scratch {
            if u64::from(w_scr) + 2 * k > scratch_size {
                return None;
            }
        } else if u64::from(w0) + 2 * k > sdram_size {
            return None;
        }
        // Store sweep [s0, s0 + 4k): same region rule, and in SDRAM it
        // must not overlap the span's own code — the per-op path ends the
        // batch after such a store (stale trace); natively it would not.
        let s_scr = s0.wrapping_sub(layout::SCRATCH_BASE);
        let s_in_scratch = u64::from(s_scr) < scratch_size;
        if s_in_scratch {
            if u64::from(s_scr) + 4 * k > scratch_size {
                return None;
            }
        } else {
            if u64::from(s0) + 4 * k > sdram_size {
                return None;
            }
            if u64::from(s0) < u64::from(hdr.exit) && u64::from(hdr.entry) < u64::from(s0) + 4 * k {
                return None;
            }
        }
        let mut w_off = (if w_in_scratch { w_scr } else { w0 }) as usize;
        let mut s_off = (if s_in_scratch { s_scr } else { s0 }) as usize;
        let mut s_addr = s0;
        let mut last_w = 0u32;
        let mut last_s = 0u32;
        for _ in 0..k {
            // Same per-iteration access order as the guest: lh, lw, sw —
            // so even overlapping sweeps behave identically.
            let raw_w = if w_in_scratch {
                ctx.read_scratch(w_off, LoadOp::Lh)
            } else {
                ctx.read_sdram(w_off, LoadOp::Lh)
            };
            let raw_s = if s_in_scratch {
                ctx.read_scratch(s_off, LoadOp::Lw)
            } else {
                ctx.read_sdram(s_off, LoadOp::Lw)
            };
            let (Some(raw_w), Some(raw_s)) = (raw_w, raw_s) else {
                debug_assert!(false, "screened native access failed");
                return None;
            };
            last_w = (raw_w as u16 as i16 as i32 as u32) << 8;
            last_s = raw_s.wrapping_add(last_w);
            let ok = if s_in_scratch {
                ctx.write_scratch(s_off, last_s, StoreOp::Sw)
            } else {
                ctx.write_sdram(s_off, last_s, StoreOp::Sw)
            };
            debug_assert!(ok, "screened native store failed");
            ctx.invalidate_store(s_addr);
            w_off += 2;
            s_off += 4;
            s_addr = s_addr.wrapping_add(4);
        }
        self.regs[w] = last_w;
        self.regs[s] = last_s;
        self.regs[pw] = w0.wrapping_add((2 * k) as u32);
        self.regs[pi] = s0.wrapping_add((4 * k) as u32);
        self.regs[cnt] = c.wrapping_sub(k as u32);
        self.time += full_cost * k;
        self.counters.instret += full_len * k;
        self.counters.loads += 2 * k;
        self.counters.stores += k;
        self.kernel_instret += full_len * k;
        if self.profile {
            for p in trace {
                counters::profile_add(OpClass::of(p.op), k);
            }
        }
        self.prev_stall_dest = NO_DEST;
        // k == iters: the counter reached zero and the back-edge fell
        // through; otherwise the budget/fault bound stopped the batch at
        // an iteration boundary, pc back on the entry.
        self.pc = if k == iters { hdr.exit } else { hdr.entry };
        Some(true)
    }

    /// The batch loop: retire the span's ops one at a time against local
    /// register and counter state, committing memory traffic directly
    /// through the same bounds-checked views the interpreter uses —
    /// exactly the superblock execution discipline, minus the per-op
    /// fetch, fault and budget checks (hoisted per iteration) and the
    /// per-dispatch lookup (paid once per batch). Anything the batch
    /// cannot run defers with `pc` parked on the first unretired op; see
    /// the module docs for the identity argument.
    #[allow(clippy::too_many_lines)]
    fn kernel_batch<T: Timing, C: ExecCtx>(
        &mut self,
        ctx: &mut C,
        hdr: &KernelHeader,
        trace: &[PreInst],
        stop: u64,
    ) -> bool {
        let len = trace.len();
        // Conservative full-path bounds, mirroring `try_superblock`'s
        // entry checks: an iteration only starts when the *maximum*
        // possible cost fits under the quantum bound and the maximum
        // possible retirement count stays below the armed fault trigger,
        // so single-stepping would have run every retired op too —
        // identical stop and trigger points.
        let full_cost: u64 = trace.iter().map(|p| T::op_cost(p.op)).sum();
        let full_len = len as u64;
        let fault_at = self.fault.map_or(u64::MAX, |(at, _)| at);
        let span_bytes = hdr.exit - hdr.entry;
        let scratch_size = ctx.scratch_size();
        let sdram_size = ctx.sdram_size();
        let prof_on = self.profile;

        let mut regs = self.regs;
        let mut nmregs = self.nmregs;
        let mut dt = 0u64;
        let mut instret = 0u64;
        let mut loads = 0u64;
        let mut stores = 0u64;
        let mut nmpn = 0u64;
        let mut nmdec = 0u64;
        let mut nmldl = 0u64;
        let mut nmldh = 0u64;
        let mut prof = [0u64; 8];
        // Where the batch leaves the core; the exits below overwrite it.
        let mut next_pc = hdr.entry;

        // Retire the op at `idx` (accounting only; the arm already moved
        // the architectural state).
        macro_rules! retire {
            ($op:expr) => {{
                instret += 1;
                dt += T::op_cost($op);
                if prof_on {
                    prof[OpClass::of($op) as usize] += 1;
                }
            }};
        }
        // A "defer" below ends the batch with `pc` on the op at `idx`,
        // which did not retire and moved no state: the interpreter
        // re-executes it — running the device access, raising the trap,
        // re-decoding the stored-over code — and simply continues the
        // iteration.

        'batch: loop {
            if self.time + dt + full_cost > stop {
                break;
            }
            if self.counters.instret + instret + full_len > fault_at {
                break;
            }
            let mut idx = 0usize;
            loop {
                let Some(pre) = trace.get(idx) else {
                    // Fell past the back-edge (or a forward branch hit
                    // `exit`): the guest leaves the loop.
                    next_pc = hdr.exit;
                    break 'batch;
                };
                let op = pre.op;
                let (rd, rs1, rs2) = (pre.rd as usize, pre.rs1 as usize, pre.rs2 as usize);
                let imm = pre.imm;
                match op {
                    // `auipc` was fully resolved at predecode.
                    MicroOp::Lui | MicroOp::Auipc => {
                        regs[rd] = imm as u32;
                        regs[0] = 0;
                    }
                    MicroOp::Beq
                    | MicroOp::Bne
                    | MicroOp::Blt
                    | MicroOp::Bge
                    | MicroOp::Bltu
                    | MicroOp::Bgeu => {
                        let (a, b) = (regs[rs1], regs[rs2]);
                        let taken = match op {
                            MicroOp::Beq => a == b,
                            MicroOp::Bne => a != b,
                            MicroOp::Blt => (a as i32) < (b as i32),
                            MicroOp::Bge => (a as i32) >= (b as i32),
                            MicroOp::Bltu => a < b,
                            _ => a >= b,
                        };
                        if taken {
                            let target = imm as u32;
                            if target == hdr.entry {
                                // The back-edge: iteration complete.
                                retire!(op);
                                continue 'batch;
                            }
                            let off = (target.wrapping_sub(hdr.entry) >> 2) as usize;
                            if off > len {
                                // Re-verified traces never produce this;
                                // defensively defer rather than trust it.
                                next_pc = hdr.entry + ((idx as u32) << 2);
                                break 'batch;
                            }
                            retire!(op);
                            idx = off;
                            continue;
                        }
                        retire!(op);
                        idx += 1;
                        continue;
                    }
                    MicroOp::Lb | MicroOp::Lh | MicroOp::Lw | MicroOp::Lbu | MicroOp::Lhu => {
                        let (lop, size) = match op {
                            MicroOp::Lb => (LoadOp::Lb, 1),
                            MicroOp::Lh => (LoadOp::Lh, 2),
                            MicroOp::Lw => (LoadOp::Lw, 4),
                            MicroOp::Lbu => (LoadOp::Lbu, 1),
                            _ => (LoadOp::Lhu, 2),
                        };
                        let addr = regs[rs1].wrapping_add(imm as u32);
                        let scratch_off = addr.wrapping_sub(layout::SCRATCH_BASE);
                        let raw = if !addr.is_multiple_of(size) {
                            // Misaligned: the interpreter raises the trap.
                            None
                        } else if scratch_off < scratch_size {
                            ctx.read_scratch(scratch_off as usize, lop)
                        } else if addr < sdram_size {
                            ctx.read_sdram(addr as usize, lop)
                        } else {
                            // MMIO loads interact with live devices;
                            // out-of-range loads trap. Both belong to the
                            // interpreter.
                            None
                        };
                        let raw = match raw {
                            Some(r) => r,
                            None => {
                                next_pc = hdr.entry + ((idx as u32) << 2);
                                break 'batch;
                            }
                        };
                        regs[rd] = match op {
                            MicroOp::Lb => raw as u8 as i8 as i32 as u32,
                            MicroOp::Lh => raw as u16 as i16 as i32 as u32,
                            _ => raw,
                        };
                        regs[0] = 0;
                        loads += 1;
                    }
                    MicroOp::Sb | MicroOp::Sh | MicroOp::Sw => {
                        let (sop, size) = match op {
                            MicroOp::Sb => (StoreOp::Sb, 1),
                            MicroOp::Sh => (StoreOp::Sh, 2),
                            _ => (StoreOp::Sw, 4),
                        };
                        let addr = regs[rs1].wrapping_add(imm as u32);
                        let scratch_off = addr.wrapping_sub(layout::SCRATCH_BASE);
                        let own;
                        if !addr.is_multiple_of(size) {
                            next_pc = hdr.entry + ((idx as u32) << 2);
                            break 'batch;
                        } else if scratch_off < scratch_size {
                            if scratch_off + size > scratch_size {
                                next_pc = hdr.entry + ((idx as u32) << 2);
                                break 'batch;
                            }
                            let ok = ctx.write_scratch(scratch_off as usize, regs[rs2], sop);
                            debug_assert!(ok, "screened batch store failed");
                            own = false;
                        } else if addr < sdram_size {
                            if addr + size > sdram_size {
                                next_pc = hdr.entry + ((idx as u32) << 2);
                                break 'batch;
                            }
                            let ok = ctx.write_sdram(addr as usize, regs[rs2], sop);
                            debug_assert!(ok, "screened batch store failed");
                            own = (addr & !3).wrapping_sub(hdr.entry) < span_bytes;
                        } else {
                            // MMIO (the spike log included — the
                            // interpreter's store path applies any pending
                            // injected corruption) and unmapped addresses
                            // defer, exactly like a superblock.
                            next_pc = hdr.entry + ((idx as u32) << 2);
                            break 'batch;
                        }
                        ctx.invalidate_store(addr);
                        stores += 1;
                        retire!(op);
                        if own {
                            // The store landed in the span's own code: the
                            // copied trace is stale from the next op on.
                            // Hand the rest of the iteration to the
                            // interpreter (which re-decodes through the
                            // ordinary invalidation path); the span is now
                            // Dirty and re-verifies at the next entry.
                            next_pc = hdr.entry + (((idx + 1) as u32) << 2);
                            break 'batch;
                        }
                        idx += 1;
                        continue;
                    }
                    MicroOp::Addi => {
                        regs[rd] = regs[rs1].wrapping_add(imm as u32);
                        regs[0] = 0;
                    }
                    MicroOp::Slti => {
                        regs[rd] = u32::from((regs[rs1] as i32) < imm);
                        regs[0] = 0;
                    }
                    MicroOp::Sltiu => {
                        regs[rd] = u32::from(regs[rs1] < imm as u32);
                        regs[0] = 0;
                    }
                    MicroOp::Xori => {
                        regs[rd] = regs[rs1] ^ imm as u32;
                        regs[0] = 0;
                    }
                    MicroOp::Ori => {
                        regs[rd] = regs[rs1] | imm as u32;
                        regs[0] = 0;
                    }
                    MicroOp::Andi => {
                        regs[rd] = regs[rs1] & imm as u32;
                        regs[0] = 0;
                    }
                    MicroOp::Slli => {
                        regs[rd] = regs[rs1] << (imm & 0x1F);
                        regs[0] = 0;
                    }
                    MicroOp::Srli => {
                        regs[rd] = regs[rs1] >> (imm & 0x1F);
                        regs[0] = 0;
                    }
                    MicroOp::Srai => {
                        regs[rd] = ((regs[rs1] as i32) >> (imm & 0x1F)) as u32;
                        regs[0] = 0;
                    }
                    MicroOp::Add => {
                        regs[rd] = regs[rs1].wrapping_add(regs[rs2]);
                        regs[0] = 0;
                    }
                    MicroOp::Sub => {
                        regs[rd] = regs[rs1].wrapping_sub(regs[rs2]);
                        regs[0] = 0;
                    }
                    MicroOp::Sll => {
                        regs[rd] = regs[rs1] << (regs[rs2] & 0x1F);
                        regs[0] = 0;
                    }
                    MicroOp::Slt => {
                        regs[rd] = u32::from((regs[rs1] as i32) < (regs[rs2] as i32));
                        regs[0] = 0;
                    }
                    MicroOp::Sltu => {
                        regs[rd] = u32::from(regs[rs1] < regs[rs2]);
                        regs[0] = 0;
                    }
                    MicroOp::Xor => {
                        regs[rd] = regs[rs1] ^ regs[rs2];
                        regs[0] = 0;
                    }
                    MicroOp::Srl => {
                        regs[rd] = regs[rs1] >> (regs[rs2] & 0x1F);
                        regs[0] = 0;
                    }
                    MicroOp::Sra => {
                        regs[rd] = ((regs[rs1] as i32) >> (regs[rs2] & 0x1F)) as u32;
                        regs[0] = 0;
                    }
                    MicroOp::Or => {
                        regs[rd] = regs[rs1] | regs[rs2];
                        regs[0] = 0;
                    }
                    MicroOp::And => {
                        regs[rd] = regs[rs1] & regs[rs2];
                        regs[0] = 0;
                    }
                    MicroOp::Mul => {
                        regs[rd] = regs[rs1].wrapping_mul(regs[rs2]);
                        regs[0] = 0;
                    }
                    MicroOp::Mulh => {
                        regs[rd] = ((regs[rs1] as i32 as i64).wrapping_mul(regs[rs2] as i32 as i64)
                            >> 32) as u32;
                        regs[0] = 0;
                    }
                    MicroOp::Mulhsu => {
                        regs[rd] =
                            ((regs[rs1] as i32 as i64).wrapping_mul(regs[rs2] as i64) >> 32) as u32;
                        regs[0] = 0;
                    }
                    MicroOp::Mulhu => {
                        regs[rd] = ((regs[rs1] as u64 * regs[rs2] as u64) >> 32) as u32;
                        regs[0] = 0;
                    }
                    MicroOp::Div => {
                        let (a, b) = (regs[rs1], regs[rs2]);
                        regs[rd] = if b == 0 {
                            u32::MAX
                        } else if a == 0x8000_0000 && b == u32::MAX {
                            a
                        } else {
                            ((a as i32) / (b as i32)) as u32
                        };
                        regs[0] = 0;
                    }
                    MicroOp::Divu => {
                        regs[rd] = regs[rs1].checked_div(regs[rs2]).unwrap_or(u32::MAX);
                        regs[0] = 0;
                    }
                    MicroOp::Rem => {
                        let (a, b) = (regs[rs1], regs[rs2]);
                        regs[rd] = if b == 0 {
                            a
                        } else if a == 0x8000_0000 && b == u32::MAX {
                            0
                        } else {
                            ((a as i32) % (b as i32)) as u32
                        };
                        regs[0] = 0;
                    }
                    MicroOp::Remu => {
                        let (a, b) = (regs[rs1], regs[rs2]);
                        regs[rd] = if b == 0 { a } else { a % b };
                        regs[0] = 0;
                    }
                    MicroOp::Nmldl => {
                        let ok = nmregs.exec_nmldl(regs[rs1], regs[rs2]);
                        regs[rd] = ok;
                        regs[0] = 0;
                        nmldl += 1;
                    }
                    MicroOp::Nmldh => {
                        let ok = nmregs.exec_nmldh(regs[rs1]);
                        regs[rd] = ok;
                        regs[0] = 0;
                        nmldh += 1;
                    }
                    MicroOp::Nmpn => {
                        let vu = regs[rs1];
                        let isyn = Q15_16::from_raw(regs[rs2] as i32);
                        let addr = regs[rd];
                        // Screen the word store before the unit runs: the
                        // interpreter computes the update, traps or hits
                        // the device on the store, and only then writes
                        // the spike flag — deferring before any state
                        // moves reproduces all of it.
                        let scratch_off = addr.wrapping_sub(layout::SCRATCH_BASE);
                        let own;
                        if !addr.is_multiple_of(4) {
                            next_pc = hdr.entry + ((idx as u32) << 2);
                            break 'batch;
                        } else if scratch_off < scratch_size {
                            if scratch_off + 4 > scratch_size {
                                next_pc = hdr.entry + ((idx as u32) << 2);
                                break 'batch;
                            }
                            own = false;
                        } else if addr < sdram_size {
                            if addr + 4 > sdram_size {
                                next_pc = hdr.entry + ((idx as u32) << 2);
                                break 'batch;
                            }
                            own = addr.wrapping_sub(hdr.entry) < span_bytes;
                        } else {
                            next_pc = hdr.entry + ((idx as u32) << 2);
                            break 'batch;
                        }
                        let out = NpUnit::update(&nmregs, vu, isyn);
                        // The store retires before the spike writeback,
                        // exactly as the interpreter orders it.
                        let ok = if scratch_off < scratch_size {
                            ctx.write_scratch(scratch_off as usize, out.vu, StoreOp::Sw)
                        } else {
                            ctx.write_sdram(addr as usize, out.vu, StoreOp::Sw)
                        };
                        debug_assert!(ok, "screened batch store failed");
                        ctx.invalidate_store(addr);
                        stores += 1;
                        regs[rd] = u32::from(out.spike);
                        regs[0] = 0;
                        nmpn += 1;
                        retire!(op);
                        if own {
                            next_pc = hdr.entry + (((idx + 1) as u32) << 2);
                            break 'batch;
                        }
                        idx += 1;
                        continue;
                    }
                    MicroOp::Nmdec => {
                        regs[rd] = Dcu::exec_nmdec(&nmregs, regs[rs1], regs[rs2]);
                        regs[0] = 0;
                        nmdec += 1;
                    }
                    MicroOp::Jal => {
                        // Audited: only `jal x0` with a forward in-span
                        // target survives registration, so the link write
                        // is void and the jump is an always-taken branch.
                        if rd != 0 {
                            next_pc = hdr.entry + ((idx as u32) << 2);
                            break 'batch;
                        }
                        let off = ((imm as u32).wrapping_sub(hdr.entry) >> 2) as usize;
                        if off > len {
                            next_pc = hdr.entry + ((idx as u32) << 2);
                            break 'batch;
                        }
                        retire!(op);
                        idx = off;
                        continue;
                    }
                    // Rejected at registration; a re-verified trace cannot
                    // contain them.
                    MicroOp::Jalr
                    | MicroOp::Fence
                    | MicroOp::Ecall
                    | MicroOp::Ebreak
                    | MicroOp::Csr => {
                        next_pc = hdr.entry + ((idx as u32) << 2);
                        break 'batch;
                    }
                }
                retire!(op);
                idx += 1;
            }
        }

        if instret == 0 {
            return false;
        }
        self.regs = regs;
        self.nmregs = nmregs;
        self.time += dt;
        self.counters.instret += instret;
        self.counters.loads += loads;
        self.counters.stores += stores;
        self.counters.nmpn += nmpn;
        self.counters.nmdec += nmdec;
        self.counters.nmldl += nmldl;
        self.counters.nmldh += nmldh;
        self.kernel_instret += instret;
        if prof_on {
            for (class, d) in OpClass::ALL.into_iter().zip(prof.iter()) {
                counters::profile_add(class, *d);
            }
        }
        // Relaxed policies keep the hazard tracker neutral (same as the
        // single-step epilogue).
        self.prev_stall_dest = NO_DEST;
        self.pc = next_pc;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MainMemory;
    use izhi_isa::encode;
    use izhi_isa::inst::{AluImmOp, BranchOp, Inst, StoreOp as IStoreOp};
    use izhi_isa::reg::Reg;

    const T0: Reg = Reg(5);
    const T1: Reg = Reg(6);
    const T2: Reg = Reg(7);

    /// Assemble `insts` at pc 0 and try to register a span at `entry`.
    fn try_register(insts: &[Inst], entry: u32) -> (CodeTable, Result<(), KernelReject>) {
        let mut mem = MainMemory::new(64 * 1024, 4096);
        let mut code = CodeTable::new(64 * 1024, 4096);
        for (i, inst) in insts.iter().enumerate() {
            mem.write_u32(4 * i as u32, encode(*inst));
        }
        code.preload(0, 4 * insts.len() as u32, &mem);
        let r = register_kernel_span(&mut code, &mem, entry, KernelVariant::DenseA);
        (code, r)
    }

    fn addi(rd: Reg, rs1: Reg, imm: i32) -> Inst {
        Inst::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1,
            imm,
        }
    }

    /// A store-and-count loop: sw t0,(t1); addi t1,t1,4; addi t0,t0,1;
    /// bne t0,t2,-12 (back to entry).
    fn counted_loop() -> Vec<Inst> {
        vec![
            Inst::Store {
                op: IStoreOp::Sw,
                rs1: T1,
                rs2: T0,
                imm: 0,
            },
            addi(T1, T1, 4),
            addi(T0, T0, 1),
            Inst::Branch {
                op: BranchOp::Ne,
                rs1: T0,
                rs2: T2,
                imm: -12,
            },
        ]
    }

    #[test]
    fn registers_a_counted_store_loop() {
        let (code, r) = try_register(&counted_loop(), 0);
        assert_eq!(r, Ok(()));
        let spans = code.kernel_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].entry, 0);
        assert_eq!(spans[0].exit, 16);
        assert_eq!(spans[0].state, SpanState::Ready);
        assert_eq!(spans[0].trace().len(), 4);
    }

    #[test]
    fn rejects_unsupported_ops_and_missing_back_edge() {
        // `jal` in the body.
        let mut body = counted_loop();
        body.insert(1, Inst::Jal { rd: Reg(1), imm: 8 });
        let (_, r) = try_register(&body, 0);
        assert_eq!(r, Err(KernelReject::UnsupportedOp));

        // Straight-line code ending in `ebreak`: no back-edge reachable.
        let line = vec![addi(T0, T0, 1), addi(T1, T1, 1), Inst::Ebreak];
        let (_, r) = try_register(&line, 0);
        assert_eq!(r, Err(KernelReject::UnsupportedOp));
    }

    #[test]
    fn accepts_forward_jal_x0_but_not_a_linking_jal() {
        // entry: addi; jal x0,+8 (skips the next addi); addi; bne -12.
        let diamond = |rd: Reg| {
            vec![
                addi(T0, T0, 1),
                Inst::Jal { rd, imm: 8 },
                addi(T1, T1, 1),
                Inst::Branch {
                    op: BranchOp::Ne,
                    rs1: T0,
                    rs2: T2,
                    imm: -12,
                },
            ]
        };
        let (code, r) = try_register(&diamond(Reg(0)), 0);
        assert_eq!(r, Ok(()));
        assert_eq!(code.kernel_spans()[0].exit, 16);
        let (_, r) = try_register(&diamond(Reg(1)), 0);
        assert_eq!(r, Err(KernelReject::UnsupportedOp));
    }

    #[test]
    fn rejects_interior_backward_branch() {
        // entry: addi; addi; beq t0,t0,-4 (backward but not to entry).
        let body = vec![
            addi(T0, T0, 1),
            addi(T1, T1, 1),
            Inst::Branch {
                op: BranchOp::Eq,
                rs1: T0,
                rs2: T0,
                imm: -4,
            },
        ];
        let (_, r) = try_register(&body, 0);
        assert_eq!(r, Err(KernelReject::BadBranchTarget));
    }

    #[test]
    fn rejects_duplicate_entry() {
        let (mut code, r) = try_register(&counted_loop(), 0);
        assert_eq!(r, Ok(()));
        let mut mem = MainMemory::new(64 * 1024, 4096);
        for (i, inst) in counted_loop().iter().enumerate() {
            mem.write_u32(4 * i as u32, encode(*inst));
        }
        let r2 = register_kernel_span(&mut code, &mem, 0, KernelVariant::DenseA);
        assert_eq!(r2, Err(KernelReject::DuplicateEntry));
    }

    #[test]
    fn store_into_span_marks_it_dirty() {
        let (mut code, r) = try_register(&counted_loop(), 0);
        assert_eq!(r, Ok(()));
        // A store outside the span leaves it Ready.
        code.invalidate_store(64);
        assert_eq!(code.kernel_spans()[0].state, SpanState::Ready);
        // A store into the span marks it Dirty.
        code.invalidate_store(8);
        assert_eq!(code.kernel_spans()[0].state, SpanState::Dirty);
    }

    #[test]
    fn take_and_adopt_round_trip_marks_spans_dirty() {
        let (mut code, r) = try_register(&counted_loop(), 0);
        assert_eq!(r, Ok(()));
        let spans = code.take_kernel_spans();
        assert_eq!(spans.len(), 1);
        assert!(code.kernel_spans().is_empty());
        let mut fresh = CodeTable::new(64 * 1024, 4096);
        fresh.adopt_kernel_spans(spans);
        assert_eq!(fresh.kernel_spans()[0].state, SpanState::Dirty);
        // The covering range survives the adoption: a store into the span
        // still reaches it (idempotently — it is already Dirty).
        fresh.invalidate_store(4);
        assert_eq!(fresh.kernel_spans()[0].state, SpanState::Dirty);
    }
}

//! # izhi-sim — cycle-approximate IzhiRISC-V system simulator
//!
//! A timing-annotated instruction-set simulator of the paper's FPGA system:
//! one or more 3-stage IzhiRISC-V cores (RV32IM + Zicsr + the neuromorphic
//! custom-0 extension) with private I/D caches, connected through a shared
//! round-robin bus to an SDRAM model, plus a single-cycle on-chip scratchpad
//! and an MMIO block (console, hardware mutex, barrier, spike log, RNG,
//! region-of-interest counter control).
//!
//! ## Timing model
//!
//! The DTEK-V base core merges Fetch+Decode and Memory+Writeback into a
//! 3-stage pipeline with a forwarding unit (paper §V-A). We model time per
//! retired instruction:
//!
//! * 1 base cycle (the pipeline is fully bypassed for ALU→ALU dependences);
//! * +1 *hazard stall* when the previous instruction was a load or a
//!   neuromorphic instruction and the current one reads its destination —
//!   the "source register of the fetched instruction equals the
//!   destination register of the current instruction" condition of §VI-B
//!   (the nm-writeback stall is what the paper's proposed *CSR writeback*
//!   would remove; [`SystemConfig::csr_writeback`] models that fix);
//! * +1 flush cycle for every taken branch or jump (resolved in EX);
//! * miss penalties from the I/D cache models (bus arbitration and SDRAM
//!   burst latency);
//! * a multi-cycle latency for `div`/`rem` (iterative divider).
//!
//! Multi-core execution is event-driven by default ([`SchedMode::Exact`]):
//! the system always steps the core with the smallest local clock (a fused
//! two-core inner loop re-picks per instruction without scheduler
//! overhead), and bus transactions reserve global bus time, so contention
//! between cores emerges naturally. An opt-in relaxed mode
//! ([`SchedMode::Relaxed`]) trades all of that timing fidelity for
//! throughput: round-robin quanta, a blocking barrier device, and a
//! pluggable relaxed clock ([`TimingModel`]) — one cycle per retired
//! instruction (`Unit`, the determinism baseline) or static per-op-class
//! costs (`Estimated`, [`counters::CostTable`]) so relaxed rows carry a
//! defensible simulated-time figure — with architectural results
//! unchanged for guests that synchronise through the barrier/mutex
//! devices. The
//! host-parallel variant ([`SchedMode::RelaxedParallel`], [`parallel`])
//! runs those quanta on host worker threads against a sharded memory view
//! while staying bit-identical to the single-threaded relaxed schedule at
//! every host-thread count.
//!
//! ## Example
//!
//! ```
//! use izhi_isa::Assembler;
//! use izhi_sim::{System, SystemConfig};
//!
//! let prog = Assembler::new()
//!     .assemble(
//!         r#"
//!         _start: li   t0, 0
//!                 li   t1, 100
//!         loop:   addi t0, t0, 1
//!                 bne  t0, t1, loop
//!                 ebreak
//!         "#,
//!     )
//!     .unwrap();
//! let mut sys = System::new(SystemConfig::default());
//! sys.load_program(&prog);
//! sys.run(1_000_000).unwrap();
//! assert_eq!(sys.core(0).reg(izhi_isa::Reg::T0), 100);
//! ```

pub mod bus;
pub mod cache;
pub mod counters;
pub mod cpu;
pub mod kernel;
pub mod mem;
pub mod mmio;
pub mod parallel;
pub mod predecode;
pub mod system;

pub use bus::BusArbiter;
pub use cache::{Cache, CacheConfig};
pub use counters::{CostTable, Metrics, OpClass, PerfCounters};
pub use cpu::{Core, TrapCause};
pub use kernel::{register_kernel_span, KernelReject, KernelSpan, KernelVariant, SpanState};
pub use mem::{layout, MainMemory};
pub use mmio::{FaultKind, FaultPlan, FaultSpec, SharedDevices, StimEvent, StimPlan};
pub use parallel::resolve_host_threads;
pub use predecode::{CodeMem, CodeTable, PreInst, SlotState};
pub use system::{RunExit, SchedMode, SimError, System, SystemConfig, TimingModel};

//! Per-core performance counters, the static cost model of the Estimated
//! timing policy, and the derived metrics of Tables V/VI.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::predecode::MicroOp;

/// Coarse operation class of a retired instruction, as the Estimated
/// timing policy charges it. Every [`MicroOp`] maps to exactly one class
/// ([`OpClass::of`]); the classes mirror the units of the real pipeline
/// (ALU, branch/jump flush, memory ports, iterative divider, CSR file,
/// NPU/DCU datapath).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Fully bypassed single-cycle ALU work (incl. `lui`/`auipc`/`fence`).
    Alu,
    /// Branches and jumps (charged for the average EX-resolved flush).
    Branch,
    /// Loads of any width.
    Load,
    /// Stores of any width.
    Store,
    /// Single-cycle multiplier ops.
    Mul,
    /// Iterative divider ops (`div`/`rem` family).
    Div,
    /// CSR reads plus the environment ops (`ecall`/`ebreak`).
    Csr,
    /// Neuromorphic custom-0 ops (NPU + DCU; `nmpn` includes its store).
    Npu,
}

impl OpClass {
    /// Every class, in declaration order (the index each class occupies in
    /// the global profile histogram — see [`profile_snapshot`]).
    pub const ALL: [OpClass; 8] = [
        OpClass::Alu,
        OpClass::Branch,
        OpClass::Load,
        OpClass::Store,
        OpClass::Mul,
        OpClass::Div,
        OpClass::Csr,
        OpClass::Npu,
    ];

    /// Display label for the profile report.
    pub const fn label(self) -> &'static str {
        match self {
            OpClass::Alu => "alu",
            OpClass::Branch => "branch",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Mul => "mul",
            OpClass::Div => "div",
            OpClass::Csr => "csr",
            OpClass::Npu => "npu",
        }
    }

    /// The class of a decoded micro-op. Total: every op has a class, so
    /// no instruction can silently fall outside the cost model.
    pub const fn of(op: MicroOp) -> OpClass {
        match op {
            MicroOp::Lui
            | MicroOp::Auipc
            | MicroOp::Addi
            | MicroOp::Slti
            | MicroOp::Sltiu
            | MicroOp::Xori
            | MicroOp::Ori
            | MicroOp::Andi
            | MicroOp::Slli
            | MicroOp::Srli
            | MicroOp::Srai
            | MicroOp::Add
            | MicroOp::Sub
            | MicroOp::Sll
            | MicroOp::Slt
            | MicroOp::Sltu
            | MicroOp::Xor
            | MicroOp::Srl
            | MicroOp::Sra
            | MicroOp::Or
            | MicroOp::And
            | MicroOp::Fence => OpClass::Alu,
            MicroOp::Jal
            | MicroOp::Jalr
            | MicroOp::Beq
            | MicroOp::Bne
            | MicroOp::Blt
            | MicroOp::Bge
            | MicroOp::Bltu
            | MicroOp::Bgeu => OpClass::Branch,
            MicroOp::Lb | MicroOp::Lh | MicroOp::Lw | MicroOp::Lbu | MicroOp::Lhu => OpClass::Load,
            MicroOp::Sb | MicroOp::Sh | MicroOp::Sw => OpClass::Store,
            MicroOp::Mul | MicroOp::Mulh | MicroOp::Mulhsu | MicroOp::Mulhu => OpClass::Mul,
            MicroOp::Div | MicroOp::Divu | MicroOp::Rem | MicroOp::Remu => OpClass::Div,
            MicroOp::Ecall | MicroOp::Ebreak | MicroOp::Csr => OpClass::Csr,
            MicroOp::Nmldl | MicroOp::Nmldh | MicroOp::Nmpn | MicroOp::Nmdec => OpClass::Npu,
        }
    }
}

/// Static per-class cycle costs for the Estimated timing policy
/// (`TimingModel::Estimated`): each retired instruction charges its
/// class's cost, nothing else. The table is immutable shared data — the
/// policy reads [`CostTable::DEFAULT`] and never any mutable state, so
/// `RelaxedParallel` stays race-free and bit-identical across host-thread
/// counts.
///
/// The defaults approximate the exact model's *average* per-op cost on
/// the repo's SNN workloads (high cache hit rates, mostly-taken loop
/// branches, occasional load-use bubbles): they are a first-order static
/// collapse of the dynamic stall sources, tuned so estimated cycle counts
/// land within a small factor of exact ones (`perf_baseline` reports the
/// per-scenario ratio as `estimated_accuracy`; the CI gate bounds it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostTable {
    /// Cycles per ALU-class op.
    pub alu: u64,
    /// Cycles per branch/jump (base cycle + average flush).
    pub branch: u64,
    /// Cycles per load (base cycle + average hazard/refill share).
    pub load: u64,
    /// Cycles per store (base cycle + average refill share).
    pub store: u64,
    /// Cycles per multiply.
    pub mul: u64,
    /// Cycles per divide/remainder (iterative divider latency).
    pub div: u64,
    /// Cycles per CSR/environment op.
    pub csr: u64,
    /// Cycles per neuromorphic op.
    pub npu: u64,
}

impl CostTable {
    /// The shared default table (see the type docs for the calibration
    /// rationale). `div` mirrors `SystemConfig::div_latency`'s default
    /// (16 extra cycles) plus the base cycle.
    pub const DEFAULT: CostTable = CostTable {
        alu: 1,
        branch: 2,
        load: 2,
        store: 2,
        mul: 1,
        div: 17,
        csr: 1,
        npu: 2,
    };

    /// Cost of one op class.
    pub const fn cost(&self, class: OpClass) -> u64 {
        match class {
            OpClass::Alu => self.alu,
            OpClass::Branch => self.branch,
            OpClass::Load => self.load,
            OpClass::Store => self.store,
            OpClass::Mul => self.mul,
            OpClass::Div => self.div,
            OpClass::Csr => self.csr,
            OpClass::Npu => self.npu,
        }
    }

    /// Cost of one decoded micro-op (class lookup + table read).
    pub const fn op_cost(&self, op: MicroOp) -> u64 {
        self.cost(OpClass::of(op))
    }
}

/// Raw event counters accumulated by a core. All counts are cumulative;
/// region-of-interest (ROI) measurement takes deltas between snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Core-local clock (cycles).
    pub cycles: u64,
    /// Instructions retired.
    pub instret: u64,
    /// Data-hazard stall cycles (load-use and nm-writeback bubbles).
    pub hazard_stalls: u64,
    /// Control-flow flush cycles (taken branches/jumps).
    pub flush_cycles: u64,
    /// Cycles stalled waiting for cache refills (both caches, incl. bus).
    pub mem_stall_cycles: u64,
    /// Cycles spent in the iterative divider beyond the first.
    pub div_stall_cycles: u64,
    /// I-cache hits / misses.
    pub icache_hits: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// D-cache hits.
    pub dcache_hits: u64,
    /// D-cache misses.
    pub dcache_misses: u64,
    /// Data-memory accesses of any kind (cached, scratchpad, MMIO).
    pub mem_accesses: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// `nmpn` instructions retired.
    pub nmpn: u64,
    /// `nmdec` instructions retired.
    pub nmdec: u64,
    /// `nmldl` instructions retired.
    pub nmldl: u64,
    /// `nmldh` instructions retired.
    pub nmldh: u64,
}

impl PerfCounters {
    /// Element-wise difference `self - base` (ROI delta).
    pub fn delta(&self, base: &PerfCounters) -> PerfCounters {
        PerfCounters {
            cycles: self.cycles - base.cycles,
            instret: self.instret - base.instret,
            hazard_stalls: self.hazard_stalls - base.hazard_stalls,
            flush_cycles: self.flush_cycles - base.flush_cycles,
            mem_stall_cycles: self.mem_stall_cycles - base.mem_stall_cycles,
            div_stall_cycles: self.div_stall_cycles - base.div_stall_cycles,
            icache_hits: self.icache_hits - base.icache_hits,
            icache_misses: self.icache_misses - base.icache_misses,
            dcache_hits: self.dcache_hits - base.dcache_hits,
            dcache_misses: self.dcache_misses - base.dcache_misses,
            mem_accesses: self.mem_accesses - base.mem_accesses,
            loads: self.loads - base.loads,
            stores: self.stores - base.stores,
            nmpn: self.nmpn - base.nmpn,
            nmdec: self.nmdec - base.nmdec,
            nmldl: self.nmldl - base.nmldl,
            nmldh: self.nmldh - base.nmldh,
        }
    }

    /// Total neuromorphic instructions.
    pub fn nm_total(&self) -> u64 {
        self.nmpn + self.nmdec + self.nmldl + self.nmldh
    }

    /// Derive the paper's reported metrics from these counters.
    pub fn metrics(&self, clock_hz: f64) -> Metrics {
        Metrics::from_counters(self, clock_hz)
    }
}

/// Whether the per-op-class retired-instruction histogram is collected
/// (`IZHI_PROFILE=1`, following the `IZHI_*` knob conventions: any value
/// other than unset/`0` enables it). Read once per process — the flag
/// gates a counter bump on the interpreter's hot path.
pub fn profile_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("IZHI_PROFILE").is_ok_and(|v| v != "0"))
}

/// Process-global per-op-class retired-instruction histogram (indexed by
/// [`OpClass`] declaration order, see [`OpClass::ALL`]). Deliberately
/// *not* a [`PerfCounters`] field: bumping a counter through `&mut Core`
/// from inside the dispatch loop forces the interpreter to assume its
/// register-held state (pc, clock, hazard tracker) may have been
/// clobbered, which costs ~10% of single-core throughput even with the
/// flag off. A free function over an atomic table leaves the loop's
/// register allocation untouched, and keeps the histogram out of the
/// cross-mode counter-identity contract. Relaxed ordering: per-class
/// totals only, no cross-class ordering is ever read.
static CLASS_PROFILE: [AtomicU64; 8] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Per-retire histogram bump (`IZHI_PROFILE=1` only). Cold and out of
/// line so the dispatch loop pays exactly one never-taken branch.
#[cold]
#[inline(never)]
pub fn profile_bump(op: MicroOp) {
    CLASS_PROFILE[OpClass::of(op) as usize].fetch_add(1, Ordering::Relaxed);
}

/// Bulk histogram add for kernel batches: `n` retirements of `class`.
pub fn profile_add(class: OpClass, n: u64) {
    CLASS_PROFILE[class as usize].fetch_add(n, Ordering::Relaxed);
}

/// Snapshot of the global histogram. Callers report a run's histogram as
/// the difference of the snapshots taken around it (the table is never
/// reset, so in-process batteries don't clobber each other's baselines —
/// though *concurrent* profiled runs merge, which the opt-in diagnostic
/// accepts).
pub fn profile_snapshot() -> [u64; 8] {
    let mut out = [0u64; 8];
    for (v, c) in out.iter_mut().zip(CLASS_PROFILE.iter()) {
        *v = c.load(Ordering::Relaxed);
    }
    out
}

/// Number of equivalent base-ISA operations per full neuron update
/// (Eq. 3: 15 ops for the v/u update, plus 4 for the synaptic decay —
/// `N_IZHop = 19`, §VI-B).
pub const N_IZH_OP: u64 = 19;

/// The derived performance metrics reported in Tables V and VI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Cycles in the measured region.
    pub cycles: u64,
    /// Instructions retired in the measured region.
    pub instret: u64,
    /// Wall-clock seconds at the configured core frequency.
    pub exec_time_s: f64,
    /// Plain instructions-per-cycle (Eq. 8).
    pub ipc: f64,
    /// Effective IPC (Eq. 9): regular instructions plus `19 × updates`.
    pub ipc_eff: f64,
    /// Hazard-stall cycles as a percentage of all cycles.
    pub hazard_stall_pct: f64,
    /// All cache misses (I + D).
    pub all_cache_misses: u64,
    /// I-cache hit rate (%).
    pub icache_hit_pct: f64,
    /// D-cache hit rate (%).
    pub dcache_hit_pct: f64,
    /// Memory intensity: data accesses per 100 retired instructions.
    pub mem_intensity: f64,
}

impl Metrics {
    /// Compute all metrics from raw counters. The neuron-update count for
    /// `IPC_eff` is taken from the retired `nmpn` count; use
    /// [`Metrics::with_updates`] for baselines that update neurons with
    /// base-ISA instructions.
    pub fn from_counters(c: &PerfCounters, clock_hz: f64) -> Metrics {
        Self::with_updates(c, clock_hz, c.nmpn)
    }

    /// Compute metrics with an explicit neuron-update count (Eq. 9's
    /// `N_updates`).
    pub fn with_updates(c: &PerfCounters, clock_hz: f64, updates: u64) -> Metrics {
        let cyc = c.cycles.max(1) as f64;
        let reg_instr = c.instret - c.nm_total();
        let icache_total = c.icache_hits + c.icache_misses;
        let dcache_total = c.dcache_hits + c.dcache_misses;
        Metrics {
            cycles: c.cycles,
            instret: c.instret,
            exec_time_s: c.cycles as f64 / clock_hz,
            ipc: c.instret as f64 / cyc,
            ipc_eff: (reg_instr + updates * N_IZH_OP) as f64 / cyc,
            hazard_stall_pct: c.hazard_stalls as f64 / cyc * 100.0,
            all_cache_misses: c.icache_misses + c.dcache_misses,
            icache_hit_pct: if icache_total == 0 {
                100.0
            } else {
                c.icache_hits as f64 / icache_total as f64 * 100.0
            },
            dcache_hit_pct: if dcache_total == 0 {
                100.0
            } else {
                c.dcache_hits as f64 / dcache_total as f64 * 100.0
            },
            mem_intensity: if c.instret == 0 {
                0.0
            } else {
                c.mem_accesses as f64 / c.instret as f64 * 100.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_table_charges_every_decoded_op() {
        // Every micro-op the decoder can produce must cost at least one
        // cycle under the Estimated policy — an op that silently costs 0
        // would let estimated time stand still while instructions retire.
        for &op in MicroOp::ALL {
            let cost = CostTable::DEFAULT.op_cost(op);
            assert!(cost >= 1, "{op:?} costs {cost} cycles");
        }
        // `MicroOp::ALL` is hand-maintained; the enum is `repr(u8)` with
        // sequential discriminants, so listing ops in declaration order
        // with no gaps is exactly "covers every variant so far". A new
        // variant missing from ALL shows up as a discriminant gap the
        // moment any later op exists, and `OpClass::of`'s exhaustive
        // match flags the variant itself at compile time.
        for (i, &op) in MicroOp::ALL.iter().enumerate() {
            assert_eq!(
                op as usize, i,
                "MicroOp::ALL must list every variant in declaration order"
            );
        }
    }

    #[test]
    fn cost_table_distinguishes_the_op_classes() {
        let t = CostTable::DEFAULT;
        assert_eq!(t.op_cost(MicroOp::Add), t.alu);
        assert_eq!(t.op_cost(MicroOp::Beq), t.branch);
        assert_eq!(t.op_cost(MicroOp::Lw), t.load);
        assert_eq!(t.op_cost(MicroOp::Sw), t.store);
        assert_eq!(t.op_cost(MicroOp::Mulhu), t.mul);
        assert_eq!(t.op_cost(MicroOp::Rem), t.div);
        assert_eq!(t.op_cost(MicroOp::Csr), t.csr);
        assert_eq!(t.op_cost(MicroOp::Nmpn), t.npu);
        // The divider dominates, as in the exact model.
        assert!(t.div > t.load && t.div > t.branch);
    }

    fn sample() -> PerfCounters {
        PerfCounters {
            cycles: 1000,
            instret: 600,
            hazard_stalls: 50,
            icache_hits: 990,
            icache_misses: 10,
            dcache_hits: 180,
            dcache_misses: 20,
            mem_accesses: 210,
            nmpn: 40,
            nmdec: 40,
            nmldl: 10,
            nmldh: 1,
            ..Default::default()
        }
    }

    #[test]
    fn ipc_and_ipc_eff() {
        let m = sample().metrics(30e6);
        assert!((m.ipc - 0.6).abs() < 1e-12);
        // reg_instr = 600 - 91 = 509; eff = (509 + 40*19)/1000 = 1.269
        assert!((m.ipc_eff - 1.269).abs() < 1e-12);
        assert!(m.ipc_eff > 1.0, "IPC_eff can exceed 1 (paper §VI-B)");
    }

    #[test]
    fn percent_metrics() {
        let m = sample().metrics(30e6);
        assert!((m.hazard_stall_pct - 5.0).abs() < 1e-12);
        assert!((m.icache_hit_pct - 99.0).abs() < 1e-12);
        assert!((m.dcache_hit_pct - 90.0).abs() < 1e-12);
        assert!((m.mem_intensity - 35.0).abs() < 1e-12);
        assert_eq!(m.all_cache_misses, 30);
    }

    #[test]
    fn exec_time_uses_clock() {
        let m = sample().metrics(30e6);
        assert!((m.exec_time_s - 1000.0 / 30e6).abs() < 1e-18);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = sample();
        let mut b = a;
        b.cycles += 500;
        b.instret += 300;
        b.nmpn += 7;
        let d = b.delta(&a);
        assert_eq!(d.cycles, 500);
        assert_eq!(d.instret, 300);
        assert_eq!(d.nmpn, 7);
        assert_eq!(d.icache_hits, 0);
    }

    #[test]
    fn baseline_updates_override() {
        let mut c = sample();
        c.nmpn = 0;
        c.nmdec = 0;
        c.nmldl = 0;
        c.nmldh = 0;
        let m = Metrics::with_updates(&c, 30e6, 40);
        assert!((m.ipc_eff - (600.0 + 40.0 * 19.0 - 0.0) / 1000.0).abs() < 1.0);
    }
}

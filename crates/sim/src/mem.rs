//! Physical memory map and backing storage.
//!
//! The simulated SoC uses the same split the paper describes for the DE10
//! board: instructions and bulk data live in off-chip SDRAM (slow, cached),
//! hot network state lives in on-chip memory (single-cycle scratchpad), and
//! a small MMIO block provides platform services.

use izhi_isa::inst::{LoadOp, StoreOp};

/// Address-space layout constants.
pub mod layout {
    /// SDRAM base (instructions + bulk data; cached).
    pub const SDRAM_BASE: u32 = 0x0000_0000;
    /// Default SDRAM size (16 MiB is plenty for every workload here).
    pub const SDRAM_DEFAULT_SIZE: u32 = 16 * 1024 * 1024;
    /// On-chip scratchpad base (single-cycle, uncached, dual-ported).
    pub const SCRATCH_BASE: u32 = 0x1000_0000;
    /// Default scratchpad size (256 KiB — generous M9K/M20K budget).
    pub const SCRATCH_DEFAULT_SIZE: u32 = 256 * 1024;
    /// MMIO device block base.
    pub const MMIO_BASE: u32 = 0xF000_0000;
    /// MMIO block size.
    pub const MMIO_SIZE: u32 = 0x100;

    // MMIO register offsets.
    /// Write: emit a byte to the console.
    pub const MMIO_CONSOLE: u32 = 0x00;
    /// Read: this core's hart id.
    pub const MMIO_COREID: u32 = 0x04;
    /// Read: number of cores in the system.
    pub const MMIO_NCORES: u32 = 0x08;
    /// Read: try-acquire the hardware mutex (1 = acquired, 0 = busy).
    /// Write: release it.
    pub const MMIO_MUTEX: u32 = 0x0C;
    /// Read: barrier generation. Write: arrive at the barrier.
    pub const MMIO_BARRIER: u32 = 0x10;
    /// Read: low 32 bits of the global cycle counter.
    pub const MMIO_CYCLE: u32 = 0x14;
    /// Write: halt this core.
    pub const MMIO_HALT: u32 = 0x18;
    /// Write: append a word to the host-visible spike log.
    pub const MMIO_SPIKE_LOG: u32 = 0x1C;
    /// Read: next value from the device PRNG (xorshift32).
    pub const MMIO_RAND: u32 = 0x20;
    /// Write 1: reset+start the region-of-interest counters;
    /// write 0: stop them.
    pub const MMIO_ROI: u32 = 0x24;
    /// Write: record a host-visible "progress" word (debug aid).
    pub const MMIO_PROGRESS: u32 = 0x28;
    /// Stimulus injection port. Write: select the tick to query.
    /// Read: next externally injected neuron index for the selected tick
    /// on this core, or `0xFFFF_FFFF` once the tick's events are drained.
    pub const MMIO_STIM: u32 = 0x2C;

    /// Which region an address belongs to.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Region {
        /// Off-chip SDRAM (cached).
        Sdram,
        /// On-chip scratchpad (uncached, 1 cycle).
        Scratch,
        /// Memory-mapped devices.
        Mmio,
        /// Unmapped.
        Unmapped,
    }

    /// Classify an address.
    #[inline]
    pub fn region_of(addr: u32, sdram_size: u32, scratch_size: u32) -> Region {
        if addr < sdram_size {
            Region::Sdram
        } else if (SCRATCH_BASE..SCRATCH_BASE + scratch_size).contains(&addr) {
            Region::Scratch
        } else if (MMIO_BASE..MMIO_BASE + MMIO_SIZE).contains(&addr) {
            Region::Mmio
        } else {
            Region::Unmapped
        }
    }
}

/// Width-dispatched functional read from an already-classified region's
/// backing bytes (zero-extended; the cpu sign-extends `lb`/`lh` itself).
#[inline]
pub(crate) fn read_slice(buf: &[u8], off: usize, op: LoadOp) -> Option<u32> {
    match op {
        LoadOp::Lw => buf
            .get(off..off + 4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap())),
        LoadOp::Lh | LoadOp::Lhu => buf
            .get(off..off + 2)
            .map(|b| u32::from(u16::from_le_bytes(b.try_into().unwrap()))),
        LoadOp::Lb | LoadOp::Lbu => buf.get(off).map(|&b| u32::from(b)),
    }
}

/// Width-dispatched functional write into an already-classified region's
/// backing bytes; `false` when the span falls outside the region.
#[inline]
pub(crate) fn write_slice(buf: &mut [u8], off: usize, value: u32, op: StoreOp) -> bool {
    match op {
        StoreOp::Sw => buf.get_mut(off..off + 4).map(|b| {
            b.copy_from_slice(&value.to_le_bytes());
        }),
        StoreOp::Sh => buf.get_mut(off..off + 2).map(|b| {
            b.copy_from_slice(&(value as u16).to_le_bytes());
        }),
        StoreOp::Sb => buf.get_mut(off).map(|b| {
            *b = value as u8;
        }),
    }
    .is_some()
}

/// Byte-addressable backing storage for SDRAM and the scratchpad.
#[derive(Debug, Clone)]
pub struct MainMemory {
    sdram: Vec<u8>,
    scratch: Vec<u8>,
}

impl MainMemory {
    /// Allocate with the given region sizes (both rounded up to 4 bytes).
    pub fn new(sdram_size: u32, scratch_size: u32) -> Self {
        MainMemory {
            sdram: vec![0; (sdram_size as usize + 3) & !3],
            scratch: vec![0; (scratch_size as usize + 3) & !3],
        }
    }

    /// SDRAM size in bytes.
    pub fn sdram_size(&self) -> u32 {
        self.sdram.len() as u32
    }

    /// Scratchpad size in bytes.
    pub fn scratch_size(&self) -> u32 {
        self.scratch.len() as u32
    }

    /// Raw SDRAM bytes — the cpu's predecoded fast path indexes these
    /// directly after it has classified the address once.
    #[inline]
    pub fn sdram_bytes(&self) -> &[u8] {
        &self.sdram
    }

    /// Raw SDRAM bytes, mutable.
    #[inline]
    pub fn sdram_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.sdram
    }

    /// Raw scratchpad bytes (offset-addressed from `SCRATCH_BASE`).
    #[inline]
    pub fn scratch_bytes(&self) -> &[u8] {
        &self.scratch
    }

    /// Raw scratchpad bytes, mutable.
    #[inline]
    pub fn scratch_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.scratch
    }

    #[inline]
    fn backing(&self, addr: u32) -> Option<(&Vec<u8>, usize)> {
        if (addr as usize) < self.sdram.len() {
            Some((&self.sdram, addr as usize))
        } else if addr >= layout::SCRATCH_BASE {
            let off = (addr - layout::SCRATCH_BASE) as usize;
            (off < self.scratch.len()).then_some((&self.scratch, off))
        } else {
            None
        }
    }

    #[inline]
    fn backing_mut(&mut self, addr: u32) -> Option<(&mut Vec<u8>, usize)> {
        if (addr as usize) < self.sdram.len() {
            Some((&mut self.sdram, addr as usize))
        } else if addr >= layout::SCRATCH_BASE {
            let off = (addr - layout::SCRATCH_BASE) as usize;
            (off < self.scratch.len()).then_some((&mut self.scratch, off))
        } else {
            None
        }
    }

    /// Read an aligned 32-bit word; `None` if unmapped.
    #[inline]
    pub fn read_u32(&self, addr: u32) -> Option<u32> {
        let (mem, off) = self.backing(addr)?;
        let bytes = mem.get(off..off + 4)?;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// Read a 16-bit half-word.
    #[inline]
    pub fn read_u16(&self, addr: u32) -> Option<u16> {
        let (mem, off) = self.backing(addr)?;
        let bytes = mem.get(off..off + 2)?;
        Some(u16::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// Read a byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> Option<u8> {
        let (mem, off) = self.backing(addr)?;
        mem.get(off).copied()
    }

    /// Write an aligned 32-bit word; `false` if unmapped.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) -> bool {
        let Some((mem, off)) = self.backing_mut(addr) else {
            return false;
        };
        let Some(slot) = mem.get_mut(off..off + 4) else {
            return false;
        };
        slot.copy_from_slice(&value.to_le_bytes());
        true
    }

    /// Write a 16-bit half-word.
    #[inline]
    pub fn write_u16(&mut self, addr: u32, value: u16) -> bool {
        let Some((mem, off)) = self.backing_mut(addr) else {
            return false;
        };
        let Some(slot) = mem.get_mut(off..off + 2) else {
            return false;
        };
        slot.copy_from_slice(&value.to_le_bytes());
        true
    }

    /// Write a byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) -> bool {
        let Some((mem, off)) = self.backing_mut(addr) else {
            return false;
        };
        if off >= mem.len() {
            return false;
        }
        mem[off] = value;
        true
    }

    /// Copy a byte slice into memory (used by the program loader and bulk
    /// table uploads). One `memcpy` when the span lies within a single
    /// region; `false` if any byte is unmapped.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> bool {
        if bytes.is_empty() {
            return true;
        }
        let Some((mem, off)) = self.backing_mut(addr) else {
            return false;
        };
        let Some(slot) = mem.get_mut(off..off + bytes.len()) else {
            return false;
        };
        slot.copy_from_slice(bytes);
        true
    }

    /// Read `len` bytes starting at `addr` (host-side result readback).
    pub fn read_bytes(&self, addr: u32, len: usize) -> Option<Vec<u8>> {
        (0..len).map(|i| self.read_u8(addr + i as u32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::layout::*;
    use super::*;

    #[test]
    fn region_classification() {
        assert_eq!(
            region_of(0, SDRAM_DEFAULT_SIZE, SCRATCH_DEFAULT_SIZE),
            Region::Sdram
        );
        assert_eq!(
            region_of(
                SDRAM_DEFAULT_SIZE - 4,
                SDRAM_DEFAULT_SIZE,
                SCRATCH_DEFAULT_SIZE
            ),
            Region::Sdram
        );
        assert_eq!(
            region_of(SDRAM_DEFAULT_SIZE, SDRAM_DEFAULT_SIZE, SCRATCH_DEFAULT_SIZE),
            Region::Unmapped
        );
        assert_eq!(
            region_of(SCRATCH_BASE, SDRAM_DEFAULT_SIZE, SCRATCH_DEFAULT_SIZE),
            Region::Scratch
        );
        assert_eq!(
            region_of(
                MMIO_BASE + MMIO_ROI,
                SDRAM_DEFAULT_SIZE,
                SCRATCH_DEFAULT_SIZE
            ),
            Region::Mmio
        );
        assert_eq!(
            region_of(0x8000_0000, SDRAM_DEFAULT_SIZE, SCRATCH_DEFAULT_SIZE),
            Region::Unmapped
        );
    }

    #[test]
    fn word_rw_little_endian() {
        let mut m = MainMemory::new(4096, 4096);
        assert!(m.write_u32(0x10, 0x11223344));
        assert_eq!(m.read_u8(0x10), Some(0x44));
        assert_eq!(m.read_u8(0x13), Some(0x11));
        assert_eq!(m.read_u16(0x10), Some(0x3344));
        assert_eq!(m.read_u32(0x10), Some(0x11223344));
    }

    #[test]
    fn scratch_is_separate() {
        let mut m = MainMemory::new(4096, 4096);
        m.write_u32(0x20, 1);
        m.write_u32(SCRATCH_BASE + 0x20, 2);
        assert_eq!(m.read_u32(0x20), Some(1));
        assert_eq!(m.read_u32(SCRATCH_BASE + 0x20), Some(2));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = MainMemory::new(4096, 4096);
        assert_eq!(m.read_u32(4096), None);
        assert_eq!(m.read_u32(4094), None); // straddles the end
        assert!(!m.write_u32(SCRATCH_BASE + 4096, 0));
        assert_eq!(m.read_u32(0x2000_0000), None);
    }

    #[test]
    fn bulk_copy_roundtrip() {
        let mut m = MainMemory::new(4096, 4096);
        let data: Vec<u8> = (0..=255).collect();
        assert!(m.write_bytes(100, &data));
        assert_eq!(m.read_bytes(100, 256).unwrap(), data);
    }
}

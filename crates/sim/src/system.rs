//! The multi-core system: configuration, program loading and the
//! event-driven run loop.

use izhi_isa::asm::Program;
use izhi_isa::inst::{LoadOp, StoreOp};

use crate::bus::{BusArbiter, BusTimings};
use crate::cache::{Cache, CacheConfig};
use crate::counters::Metrics;
use crate::cpu::{
    Core, EstimatedTiming, ExactTiming, ExecCtx, RunStop, Timing, TrapCause, UnitTiming,
};
use crate::mem::{layout, read_slice, write_slice, MainMemory};
use crate::mmio::{FaultPlan, MmioEffect, SharedDevices, StimPlan};
use crate::predecode::{CodeTable, PreInst};

use std::time::{Duration, Instant};

/// The clock model of a relaxed scheduler (exact scheduling always runs
/// the cycle-accurate model). Semantics are identical across models —
/// only the per-instruction cost charged to the local clock differs, so
/// architectural results never depend on the choice; interleaving (and
/// therefore shared-device ordering) may.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingModel {
    /// Exactly one cycle per retired instruction — the determinism
    /// baseline the relaxed schedulers have always used. Cycle counts
    /// equal retired-instruction counts by construction and are **not**
    /// comparable to exact-mode cycles.
    #[default]
    Unit,
    /// Static per-op-class costs from
    /// [`CostTable::DEFAULT`](crate::counters::CostTable::DEFAULT): a
    /// first-order collapse of the exact model (ALU/branch/load/store/
    /// mul/div/CSR/NPU classes) with no shared mutable state, so
    /// [`SchedMode::RelaxedParallel`] stays race-free and bit-identical
    /// across host-thread counts. Cycle counts approximate exact-mode
    /// cycles (the perf baseline reports the per-scenario accuracy ratio
    /// and CI bounds it).
    Estimated,
}

impl TimingModel {
    /// Stable lowercase label ("unit" / "estimated") for rows and CLIs.
    pub fn label(self) -> &'static str {
        match self {
            TimingModel::Unit => "unit",
            TimingModel::Estimated => "estimated",
        }
    }
}

/// How the multi-core run loop interleaves cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Cycle-exact event-driven interleaving (the default): the core that
    /// is furthest behind in local time always executes next, ties go to
    /// the lowest hart id, and every timing model (caches, shared bus,
    /// hazards, divider) is charged per instruction. Bit-identical to
    /// single-stepping that schedule via [`System::step_core`].
    #[default]
    Exact,
    /// Opt-in relaxed interleaving for throughput: cores execute
    /// round-robin in quanta of `quantum` clock cycles on the relaxed
    /// clock, whose per-instruction cost is set by `timing` (one cycle
    /// under [`TimingModel::Unit`], a static per-op-class cost under
    /// [`TimingModel::Estimated`]; no cache, bus, hazard or divider
    /// modelling either way). The barrier device becomes a blocking
    /// rendezvous — a core arriving at an incomplete round is descheduled
    /// until release instead of simulating its spin loop. Architectural
    /// results (registers, memory, spike rasters, console) are identical
    /// to [`SchedMode::Exact`] for guests whose cross-core sharing is
    /// confined to barrier/mutex synchronisation; cycle counts, per-core
    /// interleaving and the MMIO RNG/spike-log *order* are not preserved.
    /// Runs are fully deterministic.
    Relaxed {
        /// Scheduling quantum in relaxed-clock cycles (= instructions
        /// under `Unit` timing).
        /// Clamped to at least 1; `quantum = 1` interleaves instruction by
        /// instruction.
        quantum: u64,
        /// Relaxed-clock cost model.
        timing: TimingModel,
    },
    /// Host-parallel relaxed scheduling: the same round-robin quantum
    /// structure as [`SchedMode::Relaxed`], but each core's quantum
    /// executes on a host worker thread against a sharded memory view
    /// (see [`crate::parallel`]). Shared-interactive device traffic
    /// (mutex, barrier, RNG) is detected before it executes and committed
    /// in ascending hart order after the threads rendezvous, and each
    /// core's append-only device output (spike log, console, progress) is
    /// buffered per core and merged in the same hart order — so a
    /// `RelaxedParallel` run is **bit-identical to `Relaxed` at the same
    /// quantum, at every host-thread count**: registers, memory, cycles,
    /// instret, spike-log order, everything (the `prop_sched_parallel`
    /// suite pins this). The guest contract is the relaxed one, sharpened:
    /// cores must confine cross-core memory traffic to barrier/mutex
    /// synchronisation — within a scheduling round, plain loads/stores of
    /// other cores' data race on the host.
    RelaxedParallel {
        /// Scheduling quantum in relaxed-clock cycles (= instructions
        /// under `Unit` timing).
        quantum: u64,
        /// Number of host worker threads; `0` resolves via the
        /// `IZHI_HOST_THREADS` environment variable, then host
        /// parallelism ([`crate::parallel::resolve_host_threads`]).
        /// Results never depend on this value — only wall time does.
        host_threads: u32,
        /// Relaxed-clock cost model (shared with [`SchedMode::Relaxed`]:
        /// the bit-identity contract holds per timing model).
        timing: TimingModel,
    },
}

impl SchedMode {
    /// Default quantum for relaxed scheduling: long enough to amortise all
    /// per-pick overhead, short enough to keep barrier-free cores loosely
    /// interleaved.
    pub const DEFAULT_QUANTUM: u64 = 50_000;

    /// Relaxed scheduling with the default quantum and Unit timing.
    pub fn relaxed() -> Self {
        SchedMode::Relaxed {
            quantum: Self::DEFAULT_QUANTUM,
            timing: TimingModel::Unit,
        }
    }

    /// Relaxed scheduling with the default quantum and Estimated timing.
    pub fn relaxed_estimated() -> Self {
        SchedMode::Relaxed {
            quantum: Self::DEFAULT_QUANTUM,
            timing: TimingModel::Estimated,
        }
    }

    /// The timing model this mode's clock runs on; `None` for exact
    /// scheduling (whose clock is the cycle-accurate model itself).
    pub fn timing(&self) -> Option<TimingModel> {
        match *self {
            SchedMode::Exact => None,
            SchedMode::Relaxed { timing, .. } | SchedMode::RelaxedParallel { timing, .. } => {
                Some(timing)
            }
        }
    }

    /// Stable label of the clock this mode reports: "exact", "unit" or
    /// "estimated" (battery rows and BENCH files record it).
    pub fn timing_label(&self) -> &'static str {
        self.timing().map_or("exact", TimingModel::label)
    }
}

/// Full system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of IzhiRISC-V cores.
    pub n_cores: u32,
    /// Multi-core scheduling mode (exact by default).
    pub sched: SchedMode,
    /// Core clock in Hz (30 MHz on the MAX10 build, 100 MHz on Agilex-7).
    pub clock_hz: f64,
    /// SDRAM size in bytes.
    pub sdram_size: u32,
    /// On-chip scratchpad size in bytes.
    pub scratch_size: u32,
    /// Per-core I-cache geometry.
    pub icache: CacheConfig,
    /// Per-core D-cache geometry.
    pub dcache: CacheConfig,
    /// Shared-bus/SDRAM timing.
    pub bus: BusTimings,
    /// Iterative divider latency (extra cycles per div/rem).
    pub div_latency: u64,
    /// Model the paper's proposed CSR writeback for nm results (§V-B),
    /// which removes the nm-writeback hazard stalls.
    pub csr_writeback: bool,
    /// Seed for the MMIO xorshift32 RNG.
    pub rng_seed: u32,
    /// Wall-clock budget for a run: `None` (the default) runs unwatched;
    /// `Some(d)` makes [`System::run`] return [`SimError::WallClock`]
    /// once `d` of host time has elapsed. Checks are cooperative and
    /// amortised, so enforcement is approximate (a batch granule late)
    /// but costs nothing on the hot path when unset.
    pub wall_limit: Option<Duration>,
    /// Deterministic fault-injection schedule (empty by default; an empty
    /// plan leaves every run bit-identical to an unplanned one).
    pub faults: FaultPlan,
    /// Deterministic stimulus-injection schedule served through the
    /// [`layout::MMIO_STIM`] port (empty by default; an empty plan leaves
    /// every run bit-identical to an unplanned one).
    pub stim: StimPlan,
    /// Superblock execution: fuse straight-line predecoded runs and
    /// dispatch them as one batch (see [`crate::predecode`]). On by
    /// default; `IZHI_SUPERBLOCKS=0` (or the `--no-superblocks` CLI flag)
    /// turns it off for bisection. Results are bit-identical either way —
    /// the exactness suite pins it — so this is purely a perf escape
    /// hatch.
    pub superblocks: bool,
    /// Kernel-span batch execution: run the engine's registered hot loops
    /// as host-native batches under the relaxed clocks (see
    /// [`crate::kernel`]; exact scheduling always interprets). On by
    /// default; `IZHI_KERNELS=0` (or the `--no-kernels` CLI flag) turns it
    /// off for bisection. Results are bit-identical either way — the
    /// exactness suites pin it — so this is purely a perf escape hatch.
    pub kernels: bool,
    /// Assembler relaxation + peephole pass for engine-emitted guest code
    /// (see [`izhi_isa::asm::Assembler::relax`]). On by default;
    /// `IZHI_RELAX=0` turns it off. Architectural results are unchanged;
    /// instret strictly drops (the relaxation-soundness suite pins both).
    pub asm_relax: bool,
}

/// `true` unless the environment variable `name` is set to exactly `"0"`
/// (the opt-out convention all runtime escape hatches share).
fn env_flag(name: &str) -> bool {
    std::env::var(name).map_or(true, |v| v != "0")
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            n_cores: 1,
            sched: SchedMode::Exact,
            clock_hz: 30e6,
            sdram_size: 8 * 1024 * 1024,
            scratch_size: layout::SCRATCH_DEFAULT_SIZE,
            icache: CacheConfig::default(),
            // Longer D-cache lines amortise the streaming weight/noise
            // walks, landing hit rates in the paper's 96-100 % band.
            dcache: CacheConfig {
                size_bytes: 4096,
                line_bytes: 32,
            },
            bus: BusTimings::default(),
            div_latency: 16,
            csr_writeback: false,
            rng_seed: 0xC0FFEE,
            wall_limit: None,
            faults: FaultPlan::default(),
            stim: StimPlan::default(),
            superblocks: env_flag("IZHI_SUPERBLOCKS"),
            kernels: env_flag("IZHI_KERNELS"),
            asm_relax: env_flag("IZHI_RELAX"),
        }
    }
}

impl SystemConfig {
    /// The paper's MAX10 dual-core configuration (30 MHz).
    pub fn max10_dual_core() -> Self {
        SystemConfig {
            n_cores: 2,
            ..Default::default()
        }
    }

    /// The paper's §VI-A three-core experiment: fitting a third core on
    /// the MAX10 required "drastically" smaller caches and a 20 MHz clock,
    /// "which had a detrimental impact on performance".
    pub fn max10_triple_core_reduced() -> Self {
        SystemConfig {
            n_cores: 3,
            clock_hz: 20e6,
            icache: CacheConfig {
                size_bytes: 1024,
                line_bytes: 16,
            },
            dcache: CacheConfig {
                size_bytes: 1024,
                line_bytes: 16,
            },
            ..Default::default()
        }
    }

    /// Convenience: n cores, everything else default.
    pub fn with_cores(n: u32) -> Self {
        SystemConfig {
            n_cores: n,
            ..Default::default()
        }
    }
}

/// State shared between all cores (memory, bus, devices, predecoded code).
#[derive(Debug)]
pub struct Shared {
    /// Functional memory.
    pub mem: MainMemory,
    /// The single shared bus to SDRAM.
    pub bus: BusArbiter,
    /// MMIO devices.
    pub dev: SharedDevices,
    /// Bus/SDRAM timing parameters.
    pub bus_timings: BusTimings,
    /// Divider latency.
    pub div_latency: u64,
    /// CSR-writeback hazard fix enabled.
    pub csr_writeback: bool,
    /// Predecoded instruction stream (replaces the seed's per-fetch
    /// `region_of` + `Option`-cache decode lookup; see [`crate::predecode`]).
    pub code: CodeTable,
    /// Superblock execution enabled ([`SystemConfig::superblocks`]).
    pub superblocks: bool,
    /// Kernel-span batch execution enabled ([`SystemConfig::kernels`]).
    pub kernels: bool,
}

/// The historical execution context: every method inlines to exactly the
/// field accesses the interpreter made before [`ExecCtx`] existed, so the
/// exact and single-threaded relaxed schedulers compile to the same hot
/// loops as before the host-parallel refactor.
impl ExecCtx for Shared {
    #[inline(always)]
    fn fetch(&mut self, pc: u32) -> PreInst {
        self.code.fetch(pc, &self.mem)
    }

    #[inline(always)]
    fn code_word(&self, pc: u32) -> Option<u32> {
        self.mem.read_u32(pc)
    }

    #[inline(always)]
    fn scratch_size(&self) -> u32 {
        self.mem.scratch_size()
    }

    #[inline(always)]
    fn sdram_size(&self) -> u32 {
        self.mem.sdram_size()
    }

    #[inline(always)]
    fn read_scratch(&self, off: usize, op: LoadOp) -> Option<u32> {
        read_slice(self.mem.scratch_bytes(), off, op)
    }

    #[inline(always)]
    fn read_sdram(&self, off: usize, op: LoadOp) -> Option<u32> {
        read_slice(self.mem.sdram_bytes(), off, op)
    }

    #[inline(always)]
    fn write_scratch(&mut self, off: usize, value: u32, op: StoreOp) -> bool {
        write_slice(self.mem.scratch_bytes_mut(), off, value, op)
    }

    #[inline(always)]
    fn write_sdram(&mut self, off: usize, value: u32, op: StoreOp) -> bool {
        write_slice(self.mem.sdram_bytes_mut(), off, value, op)
    }

    #[inline(always)]
    fn invalidate_store(&mut self, addr: u32) {
        self.code.invalidate_store(addr);
    }

    #[inline(always)]
    fn mmio_read(&mut self, core_id: u32, offset: u32, now: u64) -> u32 {
        self.dev.read(core_id, offset, now)
    }

    #[inline(always)]
    fn mmio_write(&mut self, core_id: u32, offset: u32, value: u32) -> MmioEffect {
        self.dev.write(core_id, offset, value)
    }

    #[inline(always)]
    fn console_extend(&mut self, bytes: &[u8]) {
        self.dev.console.extend_from_slice(bytes);
    }

    #[inline(always)]
    fn bus_acquire(&mut self, now: u64, duration: u64) -> u64 {
        self.bus.acquire(now, duration)
    }

    #[inline(always)]
    fn burst(&self, words: u64) -> u64 {
        self.bus_timings.burst(words)
    }

    #[inline(always)]
    fn div_latency(&self) -> u64 {
        self.div_latency
    }

    #[inline(always)]
    fn csr_writeback(&self) -> bool {
        self.csr_writeback
    }

    #[inline(always)]
    fn superblocks_enabled(&self) -> bool {
        self.superblocks
    }

    #[inline(always)]
    fn superblock(&mut self, pc: u32, buf: &mut [PreInst; crate::predecode::MAX_SB]) -> (u32, u32) {
        self.code.superblock(pc, buf)
    }

    #[inline(always)]
    fn kernels_enabled(&self) -> bool {
        // The span check folds in here so runs that never registered a
        // span (hand-written guests, tests) skip the per-dispatch probe.
        self.kernels && !self.code.kernels.is_empty()
    }

    #[inline(always)]
    fn kernel_match(&self, pc: u32) -> Option<crate::kernel::KernelHeader> {
        self.code.kernels.lookup(pc)
    }

    #[inline(always)]
    fn kernel_copy(&self, idx: u8, buf: &mut [PreInst]) -> usize {
        self.code.kernels.copy_trace(idx, buf)
    }

    #[inline(always)]
    fn kernel_set_state(&mut self, idx: u8, state: crate::kernel::SpanState) {
        self.code.kernels.set_state(idx, state);
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A core trapped.
    Trap {
        /// Which core.
        core: u32,
        /// Why.
        cause: TrapCause,
    },
    /// The cycle budget ran out before all cores halted.
    Timeout {
        /// The budget that was exceeded.
        max_cycles: u64,
    },
    /// The wall-clock budget ([`SystemConfig::wall_limit`]) ran out
    /// before all cores halted. Unlike [`SimError::Timeout`] this is a
    /// *host*-side condition: the guest may be perfectly healthy on a
    /// loaded machine, so supervisors treat it as retryable.
    WallClock {
        /// The wall-clock limit that was exceeded.
        limit: Duration,
    },
    /// A program segment does not fit in mapped memory.
    LoadError {
        /// Base address of the offending segment.
        base: u32,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::Trap { core, cause } => write!(f, "core {core}: {cause}"),
            SimError::Timeout { max_cycles } => {
                write!(f, "simulation exceeded {max_cycles} cycles")
            }
            SimError::WallClock { limit } => {
                write!(
                    f,
                    "simulation exceeded the wall-clock limit of {:.3}s",
                    limit.as_secs_f64()
                )
            }
            SimError::LoadError { base } => {
                write!(f, "program segment at {base:#010x} does not fit in memory")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Cooperative wall-clock watchdog ([`SystemConfig::wall_limit`]).
///
/// The schedulers call [`Watchdog::tick`] at fine-grained sites (per
/// instruction in the fused loop, per pick in the scan loop) — it
/// amortises the actual clock read over [`Watchdog::STRIDE`] calls — and
/// [`Watchdog::check`] at coarse batch boundaries (per slice, rotation or
/// round). Unarmed (the default), both short-circuit on one never-taken
/// branch and the clock is never read.
pub(crate) struct Watchdog {
    deadline: Option<Instant>,
    limit: Duration,
    countdown: u32,
}

impl Watchdog {
    /// `tick` calls per actual clock read: at interpreter speeds this
    /// bounds the check granularity well under a millisecond while
    /// keeping the amortised cost to a decrement and compare.
    const STRIDE: u32 = 16_384;

    pub(crate) fn new(limit: Option<Duration>) -> Self {
        Watchdog {
            deadline: limit.map(|d| Instant::now() + d),
            limit: limit.unwrap_or_default(),
            countdown: Self::STRIDE,
        }
    }

    /// Whether a deadline is armed at all (schedulers use this to keep
    /// their unwatched paths structurally identical to the historical
    /// ones).
    pub(crate) fn armed(&self) -> bool {
        self.deadline.is_some()
    }

    /// Amortised check for per-instruction / per-pick call sites.
    #[inline(always)]
    pub(crate) fn tick(&mut self) -> Result<(), SimError> {
        if self.deadline.is_none() {
            return Ok(());
        }
        self.countdown -= 1;
        if self.countdown != 0 {
            return Ok(());
        }
        self.countdown = Self::STRIDE;
        self.check()
    }

    /// Full check for batch-boundary call sites.
    #[inline]
    pub(crate) fn check(&self) -> Result<(), SimError> {
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(SimError::WallClock { limit: self.limit }),
            _ => Ok(()),
        }
    }
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunExit {
    /// Wall-clock cycles (slowest core).
    pub cycles: u64,
    /// Total instructions retired across cores.
    pub instret: u64,
}

/// A complete simulated IzhiRISC-V system.
#[derive(Debug)]
pub struct System {
    pub(crate) cfg: SystemConfig,
    pub(crate) cores: Vec<Core>,
    pub(crate) shared: Shared,
}

impl System {
    /// Build the core array for a configuration (fresh architectural
    /// state, faults armed per the fault plan).
    fn build_cores(cfg: &SystemConfig) -> Vec<Core> {
        (0..cfg.n_cores)
            .map(|id| {
                let mut core = Core::new(id, Cache::new(cfg.icache), Cache::new(cfg.dcache));
                if let Some(spec) = cfg.faults.for_core(id) {
                    core.arm_fault(spec.at_instret, spec.kind);
                }
                core
            })
            .collect()
    }

    /// Build the shared device block for a configuration (seeded RNG,
    /// stimulus schedule installed).
    fn build_devices(cfg: &SystemConfig) -> SharedDevices {
        let mut dev = SharedDevices::new(cfg.n_cores, cfg.rng_seed);
        if !cfg.stim.is_empty() {
            dev.set_stim_plan(&cfg.stim);
        }
        dev
    }

    /// Build a system from a configuration.
    pub fn new(cfg: SystemConfig) -> Self {
        let cores = Self::build_cores(&cfg);
        let shared = Shared {
            mem: MainMemory::new(cfg.sdram_size, cfg.scratch_size),
            bus: BusArbiter::new(),
            dev: Self::build_devices(&cfg),
            bus_timings: cfg.bus,
            div_latency: cfg.div_latency,
            csr_writeback: cfg.csr_writeback,
            // Demand-paged: costs nothing until code executes.
            code: CodeTable::new(cfg.sdram_size, cfg.scratch_size),
            superblocks: cfg.superblocks,
            kernels: cfg.kernels,
        };
        System { cfg, cores, shared }
    }

    /// Build a system from a prebuilt memory image and predecode table —
    /// the run-template fast path. The resulting system is bit-identical
    /// to [`System::new`] followed by [`System::load_program`] and the
    /// same data uploads: cores start fresh at `entry`, devices are
    /// re-seeded deterministically from the configuration, and the
    /// caller-supplied memory/predecode state stands in for the assembly,
    /// copy and predecode work that was already paid when the snapshot
    /// was built.
    pub fn from_snapshot(cfg: SystemConfig, mem: MainMemory, code: CodeTable, entry: u32) -> Self {
        let mut cores = Self::build_cores(&cfg);
        for core in &mut cores {
            core.set_pc(entry);
        }
        let shared = Shared {
            mem,
            bus: BusArbiter::new(),
            dev: Self::build_devices(&cfg),
            bus_timings: cfg.bus,
            div_latency: cfg.div_latency,
            csr_writeback: cfg.csr_writeback,
            code,
            superblocks: cfg.superblocks,
            kernels: cfg.kernels,
        };
        System { cfg, cores, shared }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Load an assembled program: copy all segments, lower every loaded
    /// word into the predecoded stream, and point every core's pc at the
    /// entry (guest code branches on the core-id MMIO register).
    pub fn load_program(&mut self, prog: &Program) -> bool {
        for seg in &prog.segments {
            if !self.shared.mem.write_bytes(seg.base, &seg.data) {
                return false;
            }
        }
        for seg in &prog.segments {
            self.shared
                .code
                .preload(seg.base, seg.data.len() as u32, &self.shared.mem);
        }
        for core in &mut self.cores {
            core.set_pc(prog.entry);
        }
        true
    }

    /// Borrow a core.
    pub fn core(&self, idx: usize) -> &Core {
        &self.cores[idx]
    }

    /// Borrow a core mutably (e.g. to preset registers).
    pub fn core_mut(&mut self, idx: usize) -> &mut Core {
        &mut self.cores[idx]
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Shared state (memory, devices) for host-side setup and readback.
    pub fn shared(&self) -> &Shared {
        &self.shared
    }

    /// Mutable shared state.
    pub fn shared_mut(&mut self) -> &mut Shared {
        &mut self.shared
    }

    /// Console output so far.
    pub fn console(&self) -> String {
        self.shared.dev.console_string()
    }

    /// Run until every core halts or `max_cycles` elapse on any core.
    ///
    /// Under [`SchedMode::Exact`] (the default) scheduling is event-driven:
    /// the core that is furthest behind in local time always executes next
    /// (ties go to the lowest hart id), so shared-resource ordering
    /// approximates real concurrency. The loop is **exactly** equivalent to
    /// single-stepping that schedule via [`System::step_core`], instruction
    /// by instruction — the two-core case runs a fused inner loop and the
    /// general case batches each pick, but both only ever continue a core
    /// while it would still be the scheduler's pick, so rasters, counters
    /// and cycle counts are bit-identical to the single-stepped reference
    /// (the predecode regression and exactness suites pin this).
    ///
    /// Under [`SchedMode::Relaxed`] cores run round-robin in long quanta on
    /// the relaxed clock; see the enum docs for the semantics contract.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunExit, SimError> {
        let mut wd = Watchdog::new(self.cfg.wall_limit);
        let wd = &mut wd;
        match self.cfg.sched {
            SchedMode::Relaxed { quantum, timing } => match timing {
                TimingModel::Unit => self.run_relaxed::<UnitTiming>(quantum, max_cycles, wd)?,
                TimingModel::Estimated => {
                    self.run_relaxed::<EstimatedTiming>(quantum, max_cycles, wd)?
                }
            },
            SchedMode::RelaxedParallel {
                quantum,
                host_threads,
                timing,
            } => match timing {
                TimingModel::Unit => {
                    self.run_relaxed_parallel::<UnitTiming>(quantum, host_threads, max_cycles, wd)?
                }
                TimingModel::Estimated => self.run_relaxed_parallel::<EstimatedTiming>(
                    quantum,
                    host_threads,
                    max_cycles,
                    wd,
                )?,
            },
            SchedMode::Exact => match self.cores.len() {
                1 => self.run_single(max_cycles, wd)?,
                2 => self.run_exact_fused(max_cycles, wd)?,
                _ => self.run_exact_scan(max_cycles, wd)?,
            },
        }
        Ok(RunExit {
            cycles: self.cores.iter().map(|c| c.time).max().unwrap_or(0),
            instret: self.cores.iter().map(|c| c.counters.instret).sum(),
        })
    }

    /// Run one core until it halts, traps or exhausts a budget. With no
    /// wall-clock deadline armed this is the historical single batched
    /// `run_while` (the `u64::MAX` bound never returns
    /// [`RunStop::Bound`]); with one, the run is sliced into bounded
    /// batches with a clock check between — bound resumption is
    /// exactness-preserving, so the schedule is unchanged either way.
    fn run_core_to_halt(
        core: &mut Core,
        shared: &mut Shared,
        id: u32,
        max_cycles: u64,
        wd: &mut Watchdog,
    ) -> Result<(), SimError> {
        const SLICE: u64 = 8_000_000;
        loop {
            wd.check()?;
            let bound = if wd.armed() {
                core.time.saturating_add(SLICE)
            } else {
                u64::MAX
            };
            match core
                .run_while::<ExactTiming, _>(shared, bound, max_cycles)
                .map_err(|cause| SimError::Trap { core: id, cause })?
            {
                RunStop::Budget => return Err(SimError::Timeout { max_cycles }),
                RunStop::Bound => {}
                _ => {
                    debug_assert!(core.halted());
                    return Ok(());
                }
            }
        }
    }

    /// Single core: no scheduler at all, one batched run to completion.
    fn run_single(&mut self, max_cycles: u64, wd: &mut Watchdog) -> Result<(), SimError> {
        Self::run_core_to_halt(&mut self.cores[0], &mut self.shared, 0, max_cycles, wd)
    }

    /// Fused two-core inner loop: both cores stay register-resident in one
    /// loop that re-picks per instruction (min time, tie to core 0), so no
    /// per-pick scan, batch-bound computation or counter mirroring happens
    /// while both cores are live. The pick rule is the event-driven
    /// schedule verbatim, which keeps the loop instruction-for-instruction
    /// identical to [`System::step_core`] single-stepping (the exactness
    /// suite pins this). Once one core halts, the survivor finishes in a
    /// single batched run.
    fn run_exact_fused(&mut self, max_cycles: u64, wd: &mut Watchdog) -> Result<(), SimError> {
        let (head, tail) = self.cores.split_at_mut(1);
        let (c0, c1) = (&mut head[0], &mut tail[0]);
        let shared = &mut self.shared;
        if !c0.halted() && !c1.halted() {
            // One dispatch selects the profiled or plain monomorphisation
            // of the fused loop (see `Core::exec_op` on why the check
            // cannot live on the per-op path).
            let fused = if c0.profile {
                Self::fused_exact_loop::<true>(c0, c1, shared, wd, max_cycles)
            } else {
                Self::fused_exact_loop::<false>(c0, c1, shared, wd, max_cycles)
            };
            c0.sync_counters();
            c1.sync_counters();
            fused?;
        }
        // At most one survivor left: run it to completion batched.
        for (id, c) in [c0, c1].into_iter().enumerate() {
            if c.halted() {
                continue;
            }
            Self::run_core_to_halt(c, shared, id as u32, max_cycles, wd)?;
        }
        Ok(())
    }

    /// The fused two-core pick-and-step loop of
    /// [`System::run_exact_fused`], monomorphised over the profiling flag.
    fn fused_exact_loop<const PROF: bool>(
        c0: &mut Core,
        c1: &mut Core,
        shared: &mut Shared,
        wd: &mut Watchdog,
        max_cycles: u64,
    ) -> Result<(), SimError> {
        loop {
            // Amortised wall-clock check (a no-op branch when no
            // deadline is armed; never perturbs the schedule).
            wd.tick()?;
            // Event-driven pick: minimum local time, tie to hart 0.
            let pick0 = c0.time <= c1.time;
            let (c, id) = if pick0 {
                (&mut *c0, 0u32)
            } else {
                (&mut *c1, 1u32)
            };
            // Same halt → budget check order as `run_while`, so the
            // interleaving matches the single-stepped schedule even at
            // the timeout boundary.
            if c.time > max_cycles {
                return Err(SimError::Timeout { max_cycles });
            }
            if let Err(cause) = c.exec_one::<ExactTiming, _, PROF>(shared) {
                return Err(SimError::Trap { core: id, cause });
            }
            if c.halted() {
                return Ok(());
            }
        }
    }

    /// General exact scheduler (3+ cores): scan for the pick and its
    /// runner-up bound, then batch the pick up to that bound.
    fn run_exact_scan(&mut self, max_cycles: u64, wd: &mut Watchdog) -> Result<(), SimError> {
        // Wall-clock checks are paced by *simulated* time: picks can batch
        // millions of cycles or a single instruction, so neither per-pick
        // clock reads nor per-pick counters bound the check interval. The
        // pick's time is the global minimum and only ever advances, so
        // reading the clock each time it crosses a `SLICE` boundary (and
        // clamping each batch to a slice) bounds the unchecked span.
        const SLICE: u64 = 8_000_000;
        let mut next_check = self
            .cores
            .iter()
            .map(|c| c.time)
            .min()
            .unwrap_or(0)
            .saturating_add(SLICE);
        loop {
            // One scan finds both the pick `i` (minimum time, lowest
            // index) and the runner-up bound it may run up to.
            let mut pick = usize::MAX;
            let mut pick_time = u64::MAX;
            let mut limit = u64::MAX;
            let mut limit_idx = usize::MAX;
            for (k, c) in self.cores.iter().enumerate() {
                if c.halted() {
                    continue;
                }
                if c.time < pick_time {
                    limit = pick_time;
                    limit_idx = pick;
                    pick = k;
                    pick_time = c.time;
                } else if c.time < limit {
                    limit = c.time;
                    limit_idx = k;
                }
            }
            if pick == usize::MAX {
                return Ok(()); // all halted
            }
            if wd.armed() && pick_time >= next_check {
                wd.check()?;
                next_check = pick_time.saturating_add(SLICE);
            }
            let i = pick;
            // Adaptive batch: core `i` may run exactly as long as the
            // scheduler would keep picking it (time strictly below the
            // runner-up, or equal with a lower hart id) — so the batch
            // is instruction-for-instruction identical to rescanning
            // after every step.
            let bound = if i < limit_idx {
                limit
            } else {
                limit.saturating_sub(1)
            };
            // Bound resumption is exactness-preserving: a slice-clamped
            // batch just re-picks the same core, so the schedule is
            // unchanged — only the check cadence is.
            let bound = if wd.armed() {
                bound.min(pick_time.saturating_add(SLICE))
            } else {
                bound
            };
            let stop = self.cores[i]
                .run_while::<ExactTiming, _>(&mut self.shared, bound, max_cycles)
                .map_err(|cause| SimError::Trap {
                    core: i as u32,
                    cause,
                })?;
            if stop == RunStop::Budget {
                return Err(SimError::Timeout { max_cycles });
            }
        }
    }

    /// Relaxed round-robin scheduler: each live core runs a quantum on the
    /// relaxed clock (one cycle per instruction), cores arriving at an
    /// incomplete barrier round park until release, and rotation order is
    /// always ascending hart id — runs are fully deterministic.
    ///
    /// This loop is the reference schedule the host-parallel scheduler
    /// ([`crate::parallel`]) reproduces bit for bit; change the two in
    /// lockstep (the `prop_sched_parallel` suite pins the equivalence).
    pub(crate) fn run_relaxed<T: Timing>(
        &mut self,
        quantum: u64,
        max_cycles: u64,
        wd: &mut Watchdog,
    ) -> Result<(), SimError> {
        let quantum = quantum.max(1);
        let n = self.cores.len();
        // Generation at which each parked core arrived; it becomes runnable
        // again as soon as the device's generation moves past it.
        let mut parked_gen: Vec<Option<u32>> = vec![None; n];
        loop {
            // One wall-clock check per rotation: a rotation is at most
            // n × quantum relaxed cycles, so the cadence is bounded.
            wd.check()?;
            let mut any_ran = false;
            let mut all_halted = true;
            let shared = &mut self.shared;
            for (i, (core, parked)) in self.cores.iter_mut().zip(&mut parked_gen).enumerate() {
                if core.halted() {
                    continue;
                }
                all_halted = false;
                if let Some(gen) = *parked {
                    if shared.dev.barrier_generation() == gen {
                        continue; // still waiting for the round to complete
                    }
                    *parked = None;
                    core.clear_parked();
                }
                any_ran = true;
                let bound = core.time.saturating_add(quantum - 1);
                match core
                    .run_while::<T, _>(shared, bound, max_cycles)
                    .map_err(|cause| SimError::Trap {
                        core: i as u32,
                        cause,
                    })? {
                    RunStop::Halted | RunStop::Bound => {}
                    RunStop::Parked => {
                        *parked = Some(shared.dev.barrier_generation());
                    }
                    RunStop::Budget => return Err(SimError::Timeout { max_cycles }),
                    RunStop::SharedOp => unreachable!("run_while never defers"),
                }
            }
            if all_halted {
                return Ok(());
            }
            if !any_ran {
                // Every live core is parked at a barrier round that can no
                // longer complete (some expected arrival halted first).
                // The exact scheduler would spin those cores into the cycle
                // budget; surface the same condition directly.
                return Err(SimError::Timeout { max_cycles });
            }
        }
    }

    /// Per-core metrics for the measured region (ROI delta when the guest
    /// used the ROI MMIO markers).
    pub fn metrics(&self, core: usize) -> Metrics {
        self.cores[core].roi_counters().metrics(self.cfg.clock_hz)
    }

    /// Execute exactly one instruction on one core (single-step debugging;
    /// the CLI's `--trace` mode uses this).
    pub fn step_core(&mut self, idx: usize) -> Result<(), TrapCause> {
        self.cores[idx].step(&mut self.shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use izhi_isa::asm::Assembler;
    use izhi_isa::Reg;

    fn run_asm(src: &str) -> System {
        let prog = Assembler::new().assemble(src).expect("asm");
        let mut sys = System::new(SystemConfig::default());
        assert!(sys.load_program(&prog));
        sys.run(10_000_000).expect("run");
        sys
    }

    #[test]
    fn arithmetic_loop() {
        let sys = run_asm(
            "
            _start: li t0, 0
                    li t1, 0
            loop:   addi t1, t1, 1
                    add  t0, t0, t1
                    li   t2, 10
                    bne  t1, t2, loop
                    ebreak
            ",
        );
        assert_eq!(sys.core(0).reg(Reg::T0), 55);
    }

    #[test]
    fn memory_and_mul() {
        let sys = run_asm(
            "
            .data 0x1000
            arr: .word 3, 5, 7, 9
            .text
            _start: la   a0, arr
                    li   t0, 0      # index
                    li   t1, 1      # product
            loop:   slli t2, t0, 2
                    add  t2, t2, a0
                    lw   t3, (t2)
                    mul  t1, t1, t3
                    addi t0, t0, 1
                    li   t4, 4
                    bne  t0, t4, loop
                    ebreak
            ",
        );
        assert_eq!(sys.core(0).reg(Reg::T1), 3 * 5 * 7 * 9);
    }

    #[test]
    fn division_edge_cases() {
        let sys = run_asm(
            "
            _start: li  t0, -8
                    li  t1, 3
                    div t2, t0, t1      # -2
                    rem t3, t0, t1      # -2
                    li  t4, 5
                    li  t5, 0
                    divu t6, t4, t5     # div by zero -> all ones
                    ebreak
            ",
        );
        assert_eq!(sys.core(0).reg(Reg::T2) as i32, -2);
        assert_eq!(sys.core(0).reg(Reg::T3) as i32, -2);
        assert_eq!(sys.core(0).reg(Reg::T6), u32::MAX);
        // div consumed extra cycles
        assert!(sys.core(0).counters.div_stall_cycles >= 3 * 16);
    }

    #[test]
    fn scratchpad_roundtrip() {
        let sys = run_asm(
            "
            _start: li  t0, 0x10000000
                    li  t1, 0xABCD
                    sw  t1, (t0)
                    lw  t2, (t0)
                    sh  t1, 8(t0)
                    lhu t3, 8(t0)
                    ebreak
            ",
        );
        assert_eq!(sys.core(0).reg(Reg::T2), 0xABCD);
        assert_eq!(sys.core(0).reg(Reg::T3), 0xABCD);
    }

    #[test]
    fn console_mmio_and_ecall() {
        let sys = run_asm(
            "
            _start: li  t0, 0xF0000000
                    li  t1, 'H'
                    sw  t1, (t0)
                    li  t1, 'i'
                    sw  t1, (t0)
                    li  a0, 42
                    li  a7, 1
                    ecall           # prints 42
                    ebreak
            ",
        );
        assert_eq!(sys.console(), "Hi42");
    }

    #[test]
    fn csr_counters_increase() {
        let sys = run_asm(
            "
            _start: csrr s0, mcycle
                    nop
                    nop
                    nop
                    csrr s1, mcycle
                    csrr s2, mhartid
                    ebreak
            ",
        );
        let c0 = sys.core(0).reg(Reg::S0);
        let c1 = sys.core(0).reg(Reg::S1);
        assert!(c1 > c0, "mcycle must advance: {c0} -> {c1}");
        assert_eq!(sys.core(0).reg(Reg::S2), 0);
    }

    #[test]
    fn illegal_instruction_traps() {
        let prog = Assembler::new()
            .assemble("_start: .word 0xFFFFFFFF")
            .unwrap();
        let mut sys = System::new(SystemConfig::default());
        sys.load_program(&prog);
        match sys.run(1000) {
            Err(SimError::Trap {
                cause: TrapCause::IllegalInstruction { .. },
                ..
            }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unmapped_access_traps() {
        let prog = Assembler::new()
            .assemble("_start: li t0, 0x80000000\n lw t1, (t0)\n ebreak")
            .unwrap();
        let mut sys = System::new(SystemConfig::default());
        sys.load_program(&prog);
        match sys.run(1000) {
            Err(SimError::Trap {
                cause: TrapCause::BadAccess { store: false, .. },
                ..
            }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn misaligned_word_traps() {
        let prog = Assembler::new()
            .assemble("_start: li t0, 0x1001\n lw t1, (t0)\n ebreak")
            .unwrap();
        let mut sys = System::new(SystemConfig::default());
        sys.load_program(&prog);
        match sys.run(1000) {
            Err(SimError::Trap {
                cause: TrapCause::Misaligned { .. },
                ..
            }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn timeout_on_infinite_loop() {
        let prog = Assembler::new().assemble("_start: j _start").unwrap();
        let mut sys = System::new(SystemConfig::default());
        sys.load_program(&prog);
        assert!(matches!(sys.run(1000), Err(SimError::Timeout { .. })));
    }

    #[test]
    fn timeout_on_dual_core_infinite_loop() {
        // Exercises the fused two-core loop's budget check, and the fused
        // tail's when one core halts first.
        let both = Assembler::new().assemble("_start: j _start").unwrap();
        let mut sys = System::new(SystemConfig::max10_dual_core());
        sys.load_program(&both);
        assert!(matches!(sys.run(1000), Err(SimError::Timeout { .. })));

        let one = Assembler::new()
            .assemble(
                "_start: li  t0, 0xF0000004
                         lw  t1, (t0)
                         beqz t1, spin
                         ebreak
                 spin:   j   spin",
            )
            .unwrap();
        let mut sys = System::new(SystemConfig::max10_dual_core());
        sys.load_program(&one);
        assert!(matches!(sys.run(1000), Err(SimError::Timeout { .. })));
    }

    #[test]
    fn load_use_hazard_costs_one_cycle() {
        // Two variants of the same code: consumer immediately after a load
        // vs one independent instruction in between.
        let tight = run_asm(
            "
            _start: li  t0, 0x10000000
                    sw  t0, (t0)
                    lw  t1, (t0)
                    addi t2, t1, 1   # load-use: +1 stall
                    ebreak
            ",
        );
        let spaced = run_asm(
            "
            _start: li  t0, 0x10000000
                    sw  t0, (t0)
                    lw  t1, (t0)
                    nop              # fills the bubble
                    addi t2, t1, 1
                    ebreak
            ",
        );
        assert_eq!(tight.core(0).counters.hazard_stalls, 1);
        assert_eq!(spaced.core(0).counters.hazard_stalls, 0);
        // The nop variant retires one more instruction in the same cycles.
        assert_eq!(tight.core(0).time, spaced.core(0).time);
    }

    #[test]
    fn nm_hazard_removed_by_csr_writeback() {
        let src = "
            _start: li   a6, 0x10000000
                    sw   a6, (a6)
                    li   a7, 0
                    add  a2, x0, a6
                    nmpn a2, a6, a7
                    addi t0, a2, 0    # consumes the spike flag immediately
                    ebreak
        ";
        let prog = Assembler::new().assemble(src).unwrap();
        let mut sys = System::new(SystemConfig::default());
        sys.load_program(&prog);
        sys.run(100_000).unwrap();
        assert!(sys.core(0).counters.hazard_stalls >= 1);

        let cfg = SystemConfig {
            csr_writeback: true,
            ..Default::default()
        };
        let mut sys2 = System::new(cfg);
        sys2.load_program(&prog);
        sys2.run(100_000).unwrap();
        assert_eq!(sys2.core(0).counters.hazard_stalls, 0);
    }

    #[test]
    fn dual_core_runs_both() {
        let src = "
            _start: li   t0, 0xF0000004   # core id register
                    lw   t1, (t0)
                    li   t2, 0x10000000
                    slli t3, t1, 2
                    add  t2, t2, t3
                    addi t4, t1, 100
                    sw   t4, (t2)
                    ebreak
        ";
        let prog = Assembler::new().assemble(src).unwrap();
        let mut sys = System::new(SystemConfig::max10_dual_core());
        sys.load_program(&prog);
        sys.run(1_000_000).unwrap();
        assert_eq!(sys.shared().mem.read_u32(layout::SCRATCH_BASE), Some(100));
        assert_eq!(
            sys.shared().mem.read_u32(layout::SCRATCH_BASE + 4),
            Some(101)
        );
    }

    #[test]
    fn barrier_synchronises_cores() {
        // Core 0 writes a flag before the barrier; core 1 reads it after.
        let src = "
            _start: li   t0, 0xF0000004
                    lw   t1, (t0)          # core id
                    li   t2, 0x10000000
                    bnez t1, wait
                    li   t3, 7777
                    sw   t3, (t2)          # core 0 publishes
            wait:   li   t4, 0xF0000010    # barrier reg
                    lw   t5, (t4)          # generation
                    sw   x0, (t4)          # arrive
            spin:   lw   t6, (t4)
                    beq  t6, t5, spin
                    lw   a0, (t2)          # both read after release
                    ebreak
        ";
        let prog = Assembler::new().assemble(src).unwrap();
        let mut sys = System::new(SystemConfig::max10_dual_core());
        sys.load_program(&prog);
        sys.run(1_000_000).unwrap();
        assert_eq!(sys.core(0).reg(Reg::A0), 7777);
        assert_eq!(sys.core(1).reg(Reg::A0), 7777);
    }

    #[test]
    fn mutex_provides_mutual_exclusion() {
        // Both cores increment a shared counter 1000 times under the mutex.
        let src = "
            .equ MUTEX, 0xF000000C
            .equ COUNTER, 0x10000000
            _start: li   s0, 1000
                    li   s1, MUTEX
                    li   s2, COUNTER
            loop:   lw   t0, (s1)       # try acquire
                    beqz t0, loop
                    lw   t1, (s2)
                    addi t1, t1, 1
                    sw   t1, (s2)
                    sw   x0, (s1)       # release
                    addi s0, s0, -1
                    bnez s0, loop
                    ebreak
        ";
        let prog = Assembler::new().assemble(src).unwrap();
        let mut sys = System::new(SystemConfig::max10_dual_core());
        sys.load_program(&prog);
        sys.run(50_000_000).unwrap();
        assert_eq!(sys.shared().mem.read_u32(layout::SCRATCH_BASE), Some(2000));
    }

    #[test]
    fn roi_markers_scope_the_counters() {
        let src = "
            .equ ROI, 0xF0000024
            _start: li   t0, ROI
                    li   t1, 500
            warm:   addi t1, t1, -1     # untimed warmup loop
                    bnez t1, warm
                    li   t2, 1
                    sw   t2, (t0)       # ROI start
                    li   t1, 100
            hot:    addi t1, t1, -1
                    bnez t1, hot
                    sw   x0, (t0)       # ROI stop
                    li   t1, 500
            cool:   addi t1, t1, -1
                    bnez t1, cool
                    ebreak
        ";
        let prog = Assembler::new().assemble(src).unwrap();
        let mut sys = System::new(SystemConfig::default());
        sys.load_program(&prog);
        sys.run(1_000_000).unwrap();
        let roi = sys.core(0).roi_counters();
        let total = sys.core(0).counters;
        // ROI covers ~200 instructions of the 1200+ executed.
        assert!(
            roi.instret >= 200 && roi.instret <= 215,
            "roi = {}",
            roi.instret
        );
        assert!(total.instret > 2000, "total = {}", total.instret);
    }

    #[test]
    fn spike_log_collects_words() {
        let src = "
            _start: li  t0, 0xF000001C
                    li  t1, 0x00010005   # t=1, neuron 5
                    sw  t1, (t0)
                    li  t1, 0x00020007
                    sw  t1, (t0)
                    ebreak
        ";
        let prog = Assembler::new().assemble(src).unwrap();
        let mut sys = System::new(SystemConfig::default());
        sys.load_program(&prog);
        sys.run(10_000).unwrap();
        assert_eq!(sys.shared().dev.spike_log, vec![0x00010005, 0x00020007]);
    }

    /// The barrier test program, shared by the exact and relaxed variants.
    const BARRIER_SRC: &str = "
            _start: li   t0, 0xF0000004
                    lw   t1, (t0)          # core id
                    li   t2, 0x10000000
                    bnez t1, wait
                    li   t3, 7777
                    sw   t3, (t2)          # core 0 publishes
            wait:   li   t4, 0xF0000010    # barrier reg
                    lw   t5, (t4)          # generation
                    sw   x0, (t4)          # arrive
            spin:   lw   t6, (t4)
                    beq  t6, t5, spin
                    lw   a0, (t2)          # both read after release
                    ebreak
        ";

    fn relaxed_cfg(n_cores: u32, quantum: u64) -> SystemConfig {
        SystemConfig {
            n_cores,
            sched: SchedMode::Relaxed {
                quantum,
                timing: TimingModel::Unit,
            },
            ..Default::default()
        }
    }

    fn estimated_cfg(n_cores: u32, quantum: u64) -> SystemConfig {
        SystemConfig {
            n_cores,
            sched: SchedMode::Relaxed {
                quantum,
                timing: TimingModel::Estimated,
            },
            ..Default::default()
        }
    }

    #[test]
    fn relaxed_single_core_uses_one_cycle_per_instruction() {
        let prog = Assembler::new()
            .assemble(
                "
            _start: li t0, 0
                    li t1, 0
            loop:   addi t1, t1, 1
                    add  t0, t0, t1
                    li   t2, 10
                    bne  t1, t2, loop
                    ebreak
            ",
            )
            .unwrap();
        let mut sys = System::new(relaxed_cfg(1, 1000));
        assert!(sys.load_program(&prog));
        let exit = sys.run(10_000_000).unwrap();
        assert_eq!(sys.core(0).reg(Reg::T0), 55);
        // cycles == instret holds for *Unit timing only* — it is the
        // definition of that model, not a property of relaxed scheduling.
        // Estimated timing deliberately breaks it (see the test below);
        // no production code may rely on it.
        assert_eq!(exit.cycles, exit.instret, "unit-timing clock is 1 IPC");
    }

    #[test]
    fn estimated_timing_charges_more_than_unit_and_is_deterministic() {
        let src = "
            _start: li t0, 0
                    li t1, 0
            loop:   addi t1, t1, 1
                    add  t0, t0, t1
                    li   t2, 10
                    bne  t1, t2, loop
                    ebreak
            ";
        let run_cfg = |cfg: SystemConfig| {
            let prog = Assembler::new().assemble(src).unwrap();
            let mut sys = System::new(cfg);
            assert!(sys.load_program(&prog));
            let exit = sys.run(10_000_000).unwrap();
            assert_eq!(sys.core(0).reg(Reg::T0), 55);
            exit
        };
        let est = run_cfg(estimated_cfg(1, 1000));
        let unit = run_cfg(relaxed_cfg(1, 1000));
        // Same instructions retire under both relaxed clocks...
        assert_eq!(est.instret, unit.instret);
        // ...but the estimated clock charges the branch class extra, so
        // cycles must exceed instret — the old 1-IPC identity is gone.
        assert!(
            est.cycles > est.instret,
            "estimated clock degenerated to 1 IPC: {} cycles / {} instret",
            est.cycles,
            est.instret
        );
        // And it stays fully deterministic.
        assert_eq!(est, run_cfg(estimated_cfg(1, 1000)));
    }

    #[test]
    fn estimated_timing_preserves_architectural_state() {
        // The barrier-coupled program must end in the same architectural
        // state under exact scheduling and relaxed-estimated scheduling.
        let prog = Assembler::new().assemble(BARRIER_SRC).unwrap();
        let mut exact = System::new(SystemConfig::max10_dual_core());
        exact.load_program(&prog);
        exact.run(1_000_000).unwrap();
        let mut est = System::new(estimated_cfg(2, 7));
        est.load_program(&prog);
        est.run(1_000_000).unwrap();
        for core in 0..2 {
            for r in 0..32u8 {
                assert_eq!(
                    exact.core(core).reg(Reg(r)),
                    est.core(core).reg(Reg(r)),
                    "core {core} x{r}"
                );
            }
        }
        assert_eq!(
            exact.shared().mem.read_u32(layout::SCRATCH_BASE),
            est.shared().mem.read_u32(layout::SCRATCH_BASE)
        );
    }

    #[test]
    fn relaxed_barrier_parks_instead_of_spinning() {
        for quantum in [1u64, 7, SchedMode::DEFAULT_QUANTUM] {
            let prog = Assembler::new().assemble(BARRIER_SRC).unwrap();
            let mut sys = System::new(relaxed_cfg(2, quantum));
            sys.load_program(&prog);
            sys.run(1_000_000).unwrap();
            assert_eq!(sys.core(0).reg(Reg::A0), 7777, "quantum {quantum}");
            assert_eq!(sys.core(1).reg(Reg::A0), 7777, "quantum {quantum}");
            // The parked core re-checks the generation exactly once after
            // release, so neither core retires more than a handful of spin
            // iterations.
            let total: u64 = (0..2).map(|i| sys.core(i).counters.instret).sum();
            assert!(total < 60, "spin loops were simulated: {total} instret");
        }
    }

    #[test]
    fn relaxed_matches_exact_architectural_state() {
        // Barrier-synchronised cross-core communication: both modes must
        // agree on every register and the shared scratch word; cycle
        // counts may differ (that is the documented trade).
        let prog = Assembler::new().assemble(BARRIER_SRC).unwrap();
        let mut exact = System::new(SystemConfig::max10_dual_core());
        exact.load_program(&prog);
        exact.run(1_000_000).unwrap();
        let mut relaxed = System::new(relaxed_cfg(2, 3));
        relaxed.load_program(&prog);
        relaxed.run(1_000_000).unwrap();
        for core in 0..2 {
            for r in 0..32u8 {
                assert_eq!(
                    exact.core(core).reg(Reg(r)),
                    relaxed.core(core).reg(Reg(r)),
                    "core {core} x{r}"
                );
            }
        }
        assert_eq!(
            exact.shared().mem.read_u32(layout::SCRATCH_BASE),
            relaxed.shared().mem.read_u32(layout::SCRATCH_BASE)
        );
    }

    #[test]
    fn relaxed_mutex_still_provides_mutual_exclusion() {
        let src = "
            .equ MUTEX, 0xF000000C
            .equ COUNTER, 0x10000000
            _start: li   s0, 1000
                    li   s1, MUTEX
                    li   s2, COUNTER
            loop:   lw   t0, (s1)       # try acquire
                    beqz t0, loop
                    lw   t1, (s2)
                    addi t1, t1, 1
                    sw   t1, (s2)
                    sw   x0, (s1)       # release
                    addi s0, s0, -1
                    bnez s0, loop
                    ebreak
        ";
        let prog = Assembler::new().assemble(src).unwrap();
        let mut sys = System::new(relaxed_cfg(2, 64));
        sys.load_program(&prog);
        sys.run(50_000_000).unwrap();
        assert_eq!(sys.shared().mem.read_u32(layout::SCRATCH_BASE), Some(2000));
    }

    #[test]
    fn relaxed_runs_are_deterministic() {
        let run = || {
            let prog = Assembler::new().assemble(BARRIER_SRC).unwrap();
            let mut sys = System::new(relaxed_cfg(2, 5));
            sys.load_program(&prog);
            let exit = sys.run(1_000_000).unwrap();
            (
                exit.cycles,
                exit.instret,
                sys.core(0).time,
                sys.core(1).time,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn relaxed_unreleasable_barrier_times_out() {
        // Core 1 halts without arriving; core 0 parks at a round that can
        // never complete — the scheduler must surface a timeout, not hang.
        let src = "
            _start: li   t0, 0xF0000004
                    lw   t1, (t0)
                    bnez t1, done
                    li   t4, 0xF0000010
                    lw   t5, (t4)
                    sw   x0, (t4)          # core 0 arrives
            spin:   lw   t6, (t4)
                    beq  t6, t5, spin
            done:   ebreak
        ";
        let prog = Assembler::new().assemble(src).unwrap();
        let mut sys = System::new(relaxed_cfg(2, 16));
        sys.load_program(&prog);
        assert!(matches!(sys.run(100_000), Err(SimError::Timeout { .. })));
    }

    #[test]
    fn relaxed_trap_reports_the_faulting_core() {
        // Core 1 jumps into an unmapped region; core 0 loops forever. The
        // trap must carry hart 1 regardless of rotation order.
        let src = "
            _start: li   t0, 0xF0000004
                    lw   t1, (t0)
                    bnez t1, bad
            loop:   j    loop
            bad:    li   t2, 0x80000000
                    lw   t3, (t2)
                    ebreak
        ";
        let prog = Assembler::new().assemble(src).unwrap();
        let mut sys = System::new(relaxed_cfg(2, 32));
        sys.load_program(&prog);
        match sys.run(10_000_000) {
            Err(SimError::Trap { core: 1, cause }) => {
                assert!(matches!(cause, TrapCause::BadAccess { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nmpn_full_flow_in_guest() {
        // Configure an RS neuron, drive it with constant current for 2000
        // half-steps, count spikes, and leave the count in s0.
        let src = "
            .equ VU_ADDR, 0x10000000
            _start: li   a6, 0x06990029      # b=0.2|a=0.02 in Q4.11: 410<<16 | 41
                    li   a7, 0x4000BF00      # d=8.0 Q4.11 <<16 | c=-65 Q7.8
                    nmldl x0, a6, a7
                    li   a6, 0
                    nmldh x0, a6, x0         # h = 0.5 ms, no pin
                    li   s1, VU_ADDR
                    li   t0, 0xBF00F2C0      # v=-65 Q7.8 | u=-13 Q7.8 (0xF2C0)
                    sw   t0, (s1)
                    li   s0, 0               # spike count
                    li   s2, 2000            # steps
                    li   a7, 0x000A0000      # Isyn = 10.0 in Q15.16
            loop:   lw   a6, (s1)            # VU word
                    add  a2, x0, s1          # address
                    nmpn a2, a6, a7
                    add  s0, s0, a2          # accumulate spikes
                    addi s2, s2, -1
                    bnez s2, loop
                    ebreak
        ";
        let prog = Assembler::new().assemble(src).unwrap();
        let mut sys = System::new(SystemConfig::default());
        sys.load_program(&prog);
        sys.run(10_000_000).unwrap();
        let spikes = sys.core(0).reg(Reg::S0);
        assert!((2..=100).contains(&spikes), "spikes = {spikes}");
        assert_eq!(sys.core(0).counters.nmpn, 2000);
    }

    #[test]
    fn wall_clock_limit_stops_an_infinite_loop() {
        // The guest never halts and the cycle budget is effectively
        // unlimited; only the wall-clock watchdog can end the run. Every
        // scheduling mode must surface the same error.
        let prog = Assembler::new().assemble("_start: j _start").unwrap();
        for sched in [
            SchedMode::Exact,
            SchedMode::relaxed(),
            SchedMode::RelaxedParallel {
                quantum: SchedMode::DEFAULT_QUANTUM,
                host_threads: 2,
                timing: TimingModel::Unit,
            },
        ] {
            for n_cores in [1u32, 2, 3] {
                let mut sys = System::new(SystemConfig {
                    n_cores,
                    sched,
                    wall_limit: Some(Duration::from_millis(20)),
                    ..Default::default()
                });
                sys.load_program(&prog);
                let start = Instant::now();
                match sys.run(u64::MAX) {
                    Err(SimError::WallClock { limit }) => {
                        assert_eq!(limit, Duration::from_millis(20));
                    }
                    other => panic!("{sched:?}/{n_cores}: {other:?}"),
                }
                assert!(
                    start.elapsed() < Duration::from_secs(30),
                    "watchdog fired far too late under {sched:?}/{n_cores}"
                );
            }
        }
    }

    #[test]
    fn wall_clock_limit_leaves_finishing_runs_alone() {
        let prog = Assembler::new()
            .assemble(
                "_start: li t0, 100
                 loop:   addi t0, t0, -1
                         bnez t0, loop
                         ebreak",
            )
            .unwrap();
        let mut sys = System::new(SystemConfig {
            wall_limit: Some(Duration::from_secs(60)),
            ..Default::default()
        });
        sys.load_program(&prog);
        sys.run(1_000_000).expect("finishes well inside the limit");
    }

    #[test]
    fn injected_guest_trap_fires_at_the_same_instret_everywhere() {
        use crate::mmio::{FaultKind, FaultPlan};
        let prog = Assembler::new().assemble("_start: j _start").unwrap();
        for sched in [SchedMode::Exact, SchedMode::relaxed()] {
            let mut sys = System::new(SystemConfig {
                sched,
                faults: FaultPlan::none().with(0, 37, FaultKind::GuestTrap),
                ..Default::default()
            });
            sys.load_program(&prog);
            match sys.run(u64::MAX) {
                Err(SimError::Trap {
                    core: 0,
                    cause: TrapCause::InjectedFault { instret, .. },
                }) => assert_eq!(instret, 37, "under {sched:?}"),
                other => panic!("{sched:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn injected_spike_corruption_flips_exactly_one_word() {
        use crate::mmio::{FaultKind, FaultPlan};
        // Log 0..8 to the spike FIFO; corrupt the word logged by the 20th
        // instruction or later.
        let src = "
            _start: li   t0, 0xF000001C
                    li   t1, 0
            loop:   sw   t1, (t0)
                    addi t1, t1, 1
                    li   t2, 8
                    bne  t1, t2, loop
                    ebreak
        ";
        let prog = Assembler::new().assemble(src).unwrap();
        let clean = {
            let mut sys = System::new(SystemConfig::default());
            sys.load_program(&prog);
            sys.run(1_000_000).unwrap();
            sys.shared().dev.spike_log.clone()
        };
        let mut sys = System::new(SystemConfig {
            faults: FaultPlan::none().with(0, 20, FaultKind::CorruptSpike(0xDEAD_0000)),
            ..Default::default()
        });
        sys.load_program(&prog);
        sys.run(1_000_000).unwrap();
        let dirty = &sys.shared().dev.spike_log;
        assert_eq!(clean.len(), dirty.len());
        let flipped: Vec<usize> = (0..clean.len()).filter(|&i| clean[i] != dirty[i]).collect();
        assert_eq!(flipped.len(), 1, "clean={clean:?} dirty={dirty:?}");
        assert_eq!(dirty[flipped[0]], clean[flipped[0]] ^ 0xDEAD_0000);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        let src = "
            _start: li   t0, 0xF000001C
                    li   t1, 0
            loop:   sw   t1, (t0)
                    addi t1, t1, 17
                    li   t2, 170
                    bne  t1, t2, loop
                    ebreak
        ";
        let prog = Assembler::new().assemble(src).unwrap();
        let run = |cfg: SystemConfig| {
            let mut sys = System::new(cfg);
            sys.load_program(&prog);
            let exit = sys.run(1_000_000).unwrap();
            (exit, sys.shared().dev.spike_log.clone())
        };
        let base = run(SystemConfig::default());
        let planned = run(SystemConfig {
            faults: crate::mmio::FaultPlan::none(),
            wall_limit: Some(Duration::from_secs(600)),
            ..Default::default()
        });
        assert_eq!(base, planned);
    }
}

//! Property tests for the system simulator: differential execution of
//! random straight-line programs against an independent model, plus
//! determinism and timing invariants.

use izhi_isa::encode;
use izhi_isa::inst::{AluImmOp, AluOp, Inst};
use izhi_isa::reg::Reg;
use izhi_sim::{System, SystemConfig};
use proptest::prelude::*;

/// Independent (memory-free) model of the ALU subset.
fn model_exec(insts: &[Inst], regs: &mut [u32; 32]) {
    let mut pc = 0u32;
    for &inst in insts {
        let set = |r: Reg, v: u32, regs: &mut [u32; 32]| {
            if r.0 != 0 {
                regs[r.idx()] = v;
            }
        };
        match inst {
            Inst::Lui { rd, imm } => set(rd, imm as u32, regs),
            Inst::Auipc { rd, imm } => set(rd, pc.wrapping_add(imm as u32), regs),
            Inst::OpImm { op, rd, rs1, imm } => {
                let a = regs[rs1.idx()];
                let v = match op {
                    AluImmOp::Addi => a.wrapping_add(imm as u32),
                    AluImmOp::Slti => u32::from((a as i32) < imm),
                    AluImmOp::Sltiu => u32::from(a < imm as u32),
                    AluImmOp::Xori => a ^ imm as u32,
                    AluImmOp::Ori => a | imm as u32,
                    AluImmOp::Andi => a & imm as u32,
                    AluImmOp::Slli => a << (imm & 0x1F),
                    AluImmOp::Srli => a >> (imm & 0x1F),
                    AluImmOp::Srai => ((a as i32) >> (imm & 0x1F)) as u32,
                };
                set(rd, v, regs);
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let a = regs[rs1.idx()];
                let b = regs[rs2.idx()];
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Sll => a << (b & 0x1F),
                    AluOp::Slt => u32::from((a as i32) < (b as i32)),
                    AluOp::Sltu => u32::from(a < b),
                    AluOp::Xor => a ^ b,
                    AluOp::Srl => a >> (b & 0x1F),
                    AluOp::Sra => ((a as i32) >> (b & 0x1F)) as u32,
                    AluOp::Or => a | b,
                    AluOp::And => a & b,
                    AluOp::Mul => a.wrapping_mul(b),
                    AluOp::Mulh => ((a as i32 as i64).wrapping_mul(b as i32 as i64) >> 32) as u32,
                    AluOp::Mulhsu => ((a as i32 as i64).wrapping_mul(b as i64) >> 32) as u32,
                    AluOp::Mulhu => ((a as u64 * b as u64) >> 32) as u32,
                    AluOp::Div => {
                        if b == 0 {
                            u32::MAX
                        } else if a == 0x8000_0000 && b == u32::MAX {
                            a
                        } else {
                            ((a as i32) / (b as i32)) as u32
                        }
                    }
                    AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
                    AluOp::Rem => {
                        if b == 0 {
                            a
                        } else if a == 0x8000_0000 && b == u32::MAX {
                            0
                        } else {
                            ((a as i32) % (b as i32)) as u32
                        }
                    }
                    AluOp::Remu => {
                        if b == 0 {
                            a
                        } else {
                            a % b
                        }
                    }
                };
                set(rd, v, regs);
            }
            _ => unreachable!("only ALU instructions are generated"),
        }
        pc = pc.wrapping_add(4);
    }
}

fn arb_alu_inst() -> impl Strategy<Value = Inst> {
    let reg = (0u8..32).prop_map(Reg);
    let alu_imm_op = prop_oneof![
        Just(AluImmOp::Addi),
        Just(AluImmOp::Slti),
        Just(AluImmOp::Sltiu),
        Just(AluImmOp::Xori),
        Just(AluImmOp::Ori),
        Just(AluImmOp::Andi),
    ];
    let shift_op = prop_oneof![
        Just(AluImmOp::Slli),
        Just(AluImmOp::Srli),
        Just(AluImmOp::Srai)
    ];
    let alu_op = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Mulh),
        Just(AluOp::Mulhsu),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
    ];
    prop_oneof![
        (reg.clone(), (-(1i32 << 19)..(1 << 19)))
            .prop_map(|(rd, p)| Inst::Lui { rd, imm: p << 12 }),
        (reg.clone(), (-(1i32 << 19)..(1 << 19)))
            .prop_map(|(rd, p)| Inst::Auipc { rd, imm: p << 12 }),
        (alu_imm_op, reg.clone(), reg.clone(), -2048i32..2048)
            .prop_map(|(op, rd, rs1, imm)| Inst::OpImm { op, rd, rs1, imm }),
        (shift_op, reg.clone(), reg.clone(), 0i32..32).prop_map(|(op, rd, rs1, imm)| Inst::OpImm {
            op,
            rd,
            rs1,
            imm
        }),
        (alu_op, reg.clone(), reg.clone(), reg).prop_map(|(op, rd, rs1, rs2)| Inst::Op {
            op,
            rd,
            rs1,
            rs2
        }),
    ]
}

fn run_on_system(insts: &[Inst]) -> System {
    let mut sys = System::new(SystemConfig::default());
    let mut addr = 0u32;
    for &inst in insts {
        sys.shared_mut().mem.write_u32(addr, encode(inst));
        addr += 4;
    }
    sys.shared_mut().mem.write_u32(addr, encode(Inst::Ebreak));
    sys.run(10_000_000)
        .expect("straight-line program must not trap");
    sys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The interpreter agrees with an independent model on random
    /// straight-line ALU programs.
    #[test]
    fn differential_alu_execution(insts in prop::collection::vec(arb_alu_inst(), 1..60)) {
        let sys = run_on_system(&insts);
        let mut model = [0u32; 32];
        model_exec(&insts, &mut model);
        for r in 0..32u8 {
            prop_assert_eq!(
                sys.core(0).reg(Reg(r)),
                model[r as usize],
                "x{} diverges after {:?}",
                r,
                insts
            );
        }
    }

    /// x0 is always zero, IPC never exceeds 1, time covers all retired
    /// instructions.
    #[test]
    fn timing_invariants(insts in prop::collection::vec(arb_alu_inst(), 1..60)) {
        let sys = run_on_system(&insts);
        prop_assert_eq!(sys.core(0).reg(Reg(0)), 0);
        let c = sys.core(0).counters;
        prop_assert_eq!(c.instret, insts.len() as u64 + 1); // + ebreak
        prop_assert!(c.cycles >= c.instret, "cycles {} < instret {}", c.cycles, c.instret);
    }

    /// Re-running the same program is bit-for-bit deterministic.
    #[test]
    fn determinism(insts in prop::collection::vec(arb_alu_inst(), 1..40)) {
        let a = run_on_system(&insts);
        let b = run_on_system(&insts);
        for r in 0..32u8 {
            prop_assert_eq!(a.core(0).reg(Reg(r)), b.core(0).reg(Reg(r)));
        }
        prop_assert_eq!(a.core(0).time, b.core(0).time);
    }
}

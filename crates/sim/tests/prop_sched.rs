//! Property test for the relaxed scheduler: on random short programs whose
//! cross-core traffic is confined to core-disjoint scratch pages,
//! `SchedMode::Relaxed` is observationally identical to the exact
//! event-driven scheduler — same registers, same memory, same retired
//! instruction counts — for any quantum, including the instruction-by-
//! instruction `quantum = 1`. (Cycle counts are *not* compared: the
//! relaxed clock is defined as one cycle per instruction.)

use izhi_isa::encode;
use izhi_isa::inst::{AluImmOp, AluOp, Inst, LoadOp, StoreOp};
use izhi_isa::reg::Reg;
use izhi_sim::{layout, SchedMode, System, SystemConfig, TimingModel};
use proptest::prelude::*;

/// Per-core scratch page (core id shifted into bits 12+ by the prelude).
const PAGE: u32 = 0x1000;

/// Base register holding `SCRATCH_BASE + core_id * PAGE`; generated
/// instructions never write it, so every memory access stays inside the
/// executing core's own page and the program is race-free by construction.
const BASE: Reg = Reg(8);

/// Prelude: x9 <- core id (MMIO), x8 <- SCRATCH_BASE + id * PAGE.
fn prelude() -> Vec<Inst> {
    vec![
        Inst::Lui {
            rd: Reg(9),
            imm: 0xF000_0000u32 as i32,
        },
        Inst::Load {
            op: LoadOp::Lw,
            rd: Reg(9),
            rs1: Reg(9),
            imm: layout::MMIO_COREID as i32,
        },
        Inst::OpImm {
            op: AluImmOp::Slli,
            rd: Reg(9),
            rs1: Reg(9),
            imm: 12,
        },
        Inst::Lui {
            rd: BASE,
            imm: layout::SCRATCH_BASE as i32,
        },
        Inst::Op {
            op: AluOp::Add,
            rd: BASE,
            rs1: BASE,
            rs2: Reg(9),
        },
    ]
}

/// Any register except the page base (kept stable for race freedom).
fn arb_rd() -> impl Strategy<Value = Reg> {
    (0u8..31).prop_map(|r| if r == BASE.0 { Reg(31) } else { Reg(r) })
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    let reg = (0u8..32).prop_map(Reg);
    let alu_op = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Xor),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Mul),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Remu),
    ];
    let load_op = prop_oneof![
        Just((LoadOp::Lw, 4u32)),
        Just((LoadOp::Lh, 2)),
        Just((LoadOp::Lhu, 2)),
        Just((LoadOp::Lb, 1)),
        Just((LoadOp::Lbu, 1)),
    ];
    let store_op = prop_oneof![
        Just((StoreOp::Sw, 4u32)),
        Just((StoreOp::Sh, 2)),
        Just((StoreOp::Sb, 1)),
    ];
    prop_oneof![
        (arb_rd(), -2048i32..2048).prop_map(|(rd, imm)| Inst::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1: Reg(10),
            imm
        }),
        (arb_rd(), (-(1i32 << 19)..(1 << 19))).prop_map(|(rd, p)| Inst::Lui { rd, imm: p << 12 }),
        (alu_op, arb_rd(), reg.clone(), reg.clone()).prop_map(|(op, rd, rs1, rs2)| Inst::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        // Loads/stores stay inside [BASE, BASE + PAGE): offsets are
        // size-aligned and bounded well below the page size.
        (load_op, arb_rd(), 0i32..256).prop_map(|((op, size), rd, slot)| Inst::Load {
            op,
            rd,
            rs1: BASE,
            imm: slot * size as i32,
        }),
        (store_op, reg, 0i32..256).prop_map(|((op, size), rs2, slot)| Inst::Store {
            op,
            rs1: BASE,
            rs2,
            imm: slot * size as i32,
        }),
    ]
}

fn run(insts: &[Inst], sched: SchedMode) -> System {
    let cfg = SystemConfig {
        n_cores: 2,
        sched,
        ..Default::default()
    };
    let mut sys = System::new(cfg);
    let mut addr = 0u32;
    for inst in prelude().iter().chain(insts) {
        sys.shared_mut().mem.write_u32(addr, encode(*inst));
        addr += 4;
    }
    sys.shared_mut().mem.write_u32(addr, encode(Inst::Ebreak));
    sys.run(10_000_000).expect("straight-line program trapped");
    sys
}

fn assert_observably_identical(exact: &System, relaxed: &System, quantum: u64) {
    for core in 0..2 {
        for r in 0..32u8 {
            prop_assert_eq!(
                exact.core(core).reg(Reg(r)),
                relaxed.core(core).reg(Reg(r)),
                "core {} x{} diverges at quantum {}",
                core,
                r,
                quantum
            );
        }
        prop_assert_eq!(
            exact.core(core).counters.instret,
            relaxed.core(core).counters.instret,
            "core {} instret diverges at quantum {}",
            core,
            quantum
        );
    }
    for word in 0..(2 * PAGE / 4) {
        let addr = layout::SCRATCH_BASE + 4 * word;
        prop_assert_eq!(
            exact.shared().mem.read_u32(addr),
            relaxed.shared().mem.read_u32(addr),
            "scratch word {:#x} diverges at quantum {}",
            addr,
            quantum
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Relaxed { quantum: 1 }` — instruction-by-instruction rotation — is
    /// observationally identical to the exact scheduler.
    #[test]
    fn relaxed_quantum_one_matches_exact(
        insts in prop::collection::vec(arb_inst(), 1..80),
    ) {
        let exact = run(&insts, SchedMode::Exact);
        let relaxed = run(
            &insts,
            SchedMode::Relaxed {
                quantum: 1,
                timing: TimingModel::Unit,
            },
        );
        assert_observably_identical(&exact, &relaxed, 1);
    }

    /// Any quantum gives the same architectural results on race-free
    /// programs.
    #[test]
    fn relaxed_arbitrary_quantum_matches_exact(
        insts in prop::collection::vec(arb_inst(), 1..80),
        quantum in 1u64..200,
    ) {
        let exact = run(&insts, SchedMode::Exact);
        let relaxed = run(
            &insts,
            SchedMode::Relaxed {
                quantum,
                timing: TimingModel::Unit,
            },
        );
        assert_observably_identical(&exact, &relaxed, quantum);
    }

    /// Estimated timing changes only the clock: architectural results
    /// match the exact scheduler (and therefore Unit timing) for any
    /// quantum, runs are deterministic, and the estimated clock never
    /// undercounts the retired instructions (every op costs >= 1 cycle).
    #[test]
    fn estimated_timing_matches_exact_architecturally(
        insts in prop::collection::vec(arb_inst(), 1..80),
        quantum in 1u64..200,
    ) {
        let exact = run(&insts, SchedMode::Exact);
        let est = run(
            &insts,
            SchedMode::Relaxed {
                quantum,
                timing: TimingModel::Estimated,
            },
        );
        assert_observably_identical(&exact, &est, quantum);
        let again = run(
            &insts,
            SchedMode::Relaxed {
                quantum,
                timing: TimingModel::Estimated,
            },
        );
        for core in 0..2 {
            prop_assert_eq!(
                est.core(core).time,
                again.core(core).time,
                "estimated clock is not deterministic at quantum {}",
                quantum
            );
            prop_assert!(
                est.core(core).time >= est.core(core).counters.instret,
                "estimated clock undercounts: {} cycles < {} instret",
                est.core(core).time,
                est.core(core).counters.instret
            );
        }
    }
}

//! Superblock exactness property test: on random programs — ALU traffic,
//! core-disjoint scratch loads/stores, short forward branches and jumps,
//! **self-modifying stores into the fused code region**, and fault-plan
//! triggers landing in the interior of a would-be block — execution with
//! superblocks enabled is bit-identical to single-stepping: registers,
//! memory, the cycle clock, retired-instruction counts and the full
//! performance-counter block, under every sched x timing combination the
//! battery fans over.
//!
//! Each core runs its own private copy of the generated body (the prelude
//! dispatches on the MMIO core id), so self-modifying stores stay
//! per-core. The parallel scheduler's contract supports per-core
//! self-modifying code but excludes *cross-core* code patching (a core
//! racing another core's fetch of the same word), so the generator keeps
//! every program inside the deterministic envelope by construction.

use izhi_isa::encode;
use izhi_isa::inst::{AluImmOp, AluOp, BranchOp, Inst, LoadOp, StoreOp};
use izhi_isa::reg::Reg;
use izhi_sim::{
    layout, FaultKind, FaultPlan, SchedMode, SimError, System, SystemConfig, TimingModel,
};
use proptest::prelude::*;

/// Per-core scratch page (core id shifted into bits 12+ by the prelude).
const PAGE: u32 = 0x1000;

/// Base register holding `SCRATCH_BASE + core_id * PAGE`; generated
/// instructions never write it, so every data access stays inside the
/// executing core's own page and the program is race-free by construction.
const BASE: Reg = Reg(8);

/// Register holding an encoded `addi x6, x6, 1` word: the payload the
/// self-modifying stores write over the code region.
const CODE: Reg = Reg(7);

/// Register holding the base address of the executing core's own body
/// copy; self-modifying stores are relative to it, so a core only ever
/// patches code it alone executes.
const CBASE: Reg = Reg(5);

/// Generated program length cap (used to bound code-store targets).
const MAX_INSTS: usize = 80;

/// Ebreak terminators behind each body copy. Code stores cannot reach
/// them, so execution can never run off the end of its own copy (and in
/// particular core 0 can never fall through into core 1's copy).
const PAD: usize = 4;

/// Byte span of one body copy including its protected terminator pad.
const SPAN: usize = 4 * (MAX_INSTS + PAD);

/// Instructions in [`prelude`]; the body copies start right behind it.
const PRELUDE_LEN: usize = 11;

/// First byte of core 0's body copy; core 1's starts `SPAN` later.
const BODY_BASE: usize = 4 * PRELUDE_LEN;

/// Prelude: x9 <- core id (MMIO), x8 <- SCRATCH_BASE + id * PAGE,
/// x7 <- encode(addi x6, x6, 1), x5 <- BODY_BASE + id * SPAN, then an
/// indirect jump into the core's own body copy.
fn prelude() -> Vec<Inst> {
    let word = encode(Inst::OpImm {
        op: AluImmOp::Addi,
        rd: Reg(6),
        rs1: Reg(6),
        imm: 1,
    });
    // li expansion: hi20 rounds so the sign-extended addi lands exactly.
    let hi = word.wrapping_add(0x800) & 0xFFFF_F000;
    let lo = word.wrapping_sub(hi) as i32;
    vec![
        Inst::Lui {
            rd: Reg(9),
            imm: 0xF000_0000u32 as i32,
        },
        Inst::Load {
            op: LoadOp::Lw,
            rd: Reg(9),
            rs1: Reg(9),
            imm: layout::MMIO_COREID as i32,
        },
        Inst::Lui {
            rd: BASE,
            imm: layout::SCRATCH_BASE as i32,
        },
        Inst::OpImm {
            op: AluImmOp::Slli,
            rd: CBASE,
            rs1: Reg(9),
            imm: 12,
        },
        Inst::Op {
            op: AluOp::Add,
            rd: BASE,
            rs1: BASE,
            rs2: CBASE,
        },
        Inst::Lui {
            rd: CODE,
            imm: hi as i32,
        },
        Inst::OpImm {
            op: AluImmOp::Addi,
            rd: CODE,
            rs1: CODE,
            imm: lo,
        },
        Inst::OpImm {
            op: AluImmOp::Addi,
            rd: CBASE,
            rs1: Reg(0),
            imm: SPAN as i32,
        },
        Inst::Op {
            op: AluOp::Mul,
            rd: CBASE,
            rs1: CBASE,
            rs2: Reg(9),
        },
        Inst::OpImm {
            op: AluImmOp::Addi,
            rd: CBASE,
            rs1: CBASE,
            imm: BODY_BASE as i32,
        },
        Inst::Jalr {
            rd: Reg(0),
            rs1: CBASE,
            imm: 0,
        },
    ]
}

/// Any destination register except the three kept stable (scratch base,
/// code word, body-copy base).
fn arb_rd() -> impl Strategy<Value = Reg> {
    (0u8..31).prop_map(|r| match r {
        r if r == BASE.0 || r == CODE.0 || r == CBASE.0 => Reg(31),
        r => Reg(r),
    })
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    let reg = (0u8..32).prop_map(Reg);
    let alu_op = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Xor),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Mul),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Remu),
    ];
    let branch_op = prop_oneof![
        Just(BranchOp::Eq),
        Just(BranchOp::Ne),
        Just(BranchOp::Lt),
        Just(BranchOp::Geu),
    ];
    let load_op = prop_oneof![
        Just((LoadOp::Lw, 4u32)),
        Just((LoadOp::Lh, 2)),
        Just((LoadOp::Lhu, 2)),
        Just((LoadOp::Lb, 1)),
        Just((LoadOp::Lbu, 1)),
    ];
    let store_op = prop_oneof![
        Just((StoreOp::Sw, 4u32)),
        Just((StoreOp::Sh, 2)),
        Just((StoreOp::Sb, 1)),
    ];
    prop_oneof![
        (arb_rd(), -2048i32..2048).prop_map(|(rd, imm)| Inst::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1: Reg(10),
            imm
        }),
        (arb_rd(), (-(1i32 << 19)..(1 << 19))).prop_map(|(rd, p)| Inst::Lui { rd, imm: p << 12 }),
        (alu_op, arb_rd(), reg.clone(), reg.clone()).prop_map(|(op, rd, rs1, rs2)| Inst::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        // Data traffic stays inside [BASE, BASE + PAGE): offsets are
        // size-aligned and bounded well below the page size.
        (load_op, arb_rd(), 0i32..256).prop_map(|((op, size), rd, slot)| Inst::Load {
            op,
            rd,
            rs1: BASE,
            imm: slot * size as i32,
        }),
        (store_op, reg.clone(), 0i32..256).prop_map(|((op, size), rs2, slot)| Inst::Store {
            op,
            rs1: BASE,
            rs2,
            imm: slot * size as i32,
        }),
        // Short forward branches and jumps: block terminators. Skips are
        // bounded so a taken branch at the last generated instruction
        // still lands inside the ebreak pad.
        (branch_op, reg.clone(), reg.clone(), 1i32..4).prop_map(|(op, rs1, rs2, skip)| {
            Inst::Branch {
                op,
                rs1,
                rs2,
                imm: 4 * (skip + 1),
            }
        }),
        (arb_rd(), 1i32..4).prop_map(|(rd, skip)| Inst::Jal {
            rd,
            imm: 4 * (skip + 1),
        }),
        // Self-modifying store: overwrite a word of the executing core's
        // own body copy (possibly one a fused superblock covers, possibly
        // this store's own block tail) with `addi x6, x6, 1`.
        (0i32..(MAX_INSTS as i32)).prop_map(|slot| Inst::Store {
            op: StoreOp::Sw,
            rs1: CBASE,
            rs2: CODE,
            imm: 4 * slot,
        }),
    ]
}

/// The sched x timing combinations the scenario battery fans over.
fn modes() -> [SchedMode; 5] {
    let q = SchedMode::DEFAULT_QUANTUM;
    [
        SchedMode::Exact,
        SchedMode::Relaxed {
            quantum: q,
            timing: TimingModel::Unit,
        },
        SchedMode::Relaxed {
            quantum: q,
            timing: TimingModel::Estimated,
        },
        SchedMode::RelaxedParallel {
            quantum: q,
            host_threads: 2,
            timing: TimingModel::Unit,
        },
        SchedMode::RelaxedParallel {
            quantum: q,
            host_threads: 2,
            timing: TimingModel::Estimated,
        },
    ]
}

fn run(
    insts: &[Inst],
    sched: SchedMode,
    superblocks: bool,
    faults: FaultPlan,
) -> (System, Result<(), SimError>) {
    let cfg = SystemConfig {
        n_cores: 2,
        sched,
        superblocks,
        faults,
        ..Default::default()
    };
    let mut sys = System::new(cfg);
    let pre = prelude();
    assert_eq!(pre.len(), PRELUDE_LEN);
    for (k, inst) in pre.iter().enumerate() {
        sys.shared_mut().mem.write_u32(4 * k as u32, encode(*inst));
    }
    // One private body copy per core; unused slots and the unreachable
    // terminator pad are ebreaks.
    let body: Vec<u32> = insts.iter().map(|i| encode(*i)).collect();
    let ebreak = encode(Inst::Ebreak);
    for copy in 0..2u32 {
        let base = BODY_BASE as u32 + copy * SPAN as u32;
        for slot in 0..(MAX_INSTS + PAD) {
            let word = body.get(slot).copied().unwrap_or(ebreak);
            sys.shared_mut().mem.write_u32(base + 4 * slot as u32, word);
        }
    }
    let res = sys.run(10_000_000).map(|_| ());
    (sys, res)
}

/// Full bit-identity: outcome, registers, clocks, the whole counter
/// block, and both the scratch pages and the (possibly self-modified)
/// code region.
fn assert_identical(
    on: &(System, Result<(), SimError>),
    off: &(System, Result<(), SimError>),
    tag: &str,
) {
    let ((on, on_res), (off, off_res)) = (on, off);
    prop_assert_eq!(on_res, off_res, "{}: outcome diverges", tag);
    for core in 0..2 {
        for r in 0..32u8 {
            prop_assert_eq!(
                on.core(core).reg(Reg(r)),
                off.core(core).reg(Reg(r)),
                "{}: core {} x{} diverges",
                tag,
                core,
                r
            );
        }
        prop_assert_eq!(
            on.core(core).time,
            off.core(core).time,
            "{}: core {} clock diverges",
            tag,
            core
        );
        prop_assert_eq!(
            on.core(core).counters,
            off.core(core).counters,
            "{}: core {} counters diverge",
            tag,
            core
        );
    }
    for word in 0..(2 * PAGE / 4) {
        let addr = layout::SCRATCH_BASE + 4 * word;
        prop_assert_eq!(
            on.shared().mem.read_u32(addr),
            off.shared().mem.read_u32(addr),
            "{}: scratch word {:#x} diverges",
            tag,
            addr
        );
    }
    for word in 0..(PRELUDE_LEN + 2 * (MAX_INSTS + PAD)) {
        let addr = 4 * word as u32;
        prop_assert_eq!(
            on.shared().mem.read_u32(addr),
            off.shared().mem.read_u32(addr),
            "{}: code word {:#x} diverges",
            tag,
            addr
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Superblocks on vs off: bit-identical under every battery mode,
    /// including across self-modifying stores into fused regions.
    #[test]
    fn superblocks_are_bit_identical_under_every_mode(
        insts in prop::collection::vec(arb_inst(), 1..MAX_INSTS),
    ) {
        for mode in modes() {
            let on = run(&insts, mode, true, FaultPlan::none());
            let off = run(&insts, mode, false, FaultPlan::none());
            assert_identical(&on, &off, &format!("{mode:?}"));
        }
    }

    /// A fault-plan trigger whose instret lands in the interior of a
    /// fused block must fire at exactly the same instruction either way
    /// (blocks near a trigger are refused, not split mid-dispatch).
    #[test]
    fn fault_triggers_fire_identically_inside_blocks(
        insts in prop::collection::vec(arb_inst(), 8..MAX_INSTS),
        at in 1u64..200,
        kind in prop_oneof![Just(FaultKind::GuestTrap), Just(FaultKind::CorruptSpike(1))],
    ) {
        for mode in modes() {
            let plan = FaultPlan::none().with(0, at, kind);
            let on = run(&insts, mode, true, plan.clone());
            let off = run(&insts, mode, false, plan);
            assert_identical(&on, &off, &format!("{mode:?} fault@{at}"));
        }
    }

    /// Relaxed quantum sweep: block formation must respect every slice
    /// boundary (blocks never run past `stop`), so any quantum stays
    /// bit-identical with superblocks on.
    #[test]
    fn any_relaxed_quantum_is_bit_identical(
        insts in prop::collection::vec(arb_inst(), 1..MAX_INSTS),
        quantum in 1u64..200,
    ) {
        for timing in [TimingModel::Unit, TimingModel::Estimated] {
            let mode = SchedMode::Relaxed { quantum, timing };
            let on = run(&insts, mode, true, FaultPlan::none());
            let off = run(&insts, mode, false, FaultPlan::none());
            assert_identical(&on, &off, &format!("{mode:?}"));
        }
    }
}

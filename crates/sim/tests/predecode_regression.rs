//! Regression tests for the predecoded fast path: `System::run` (batched
//! predecoded execution) must be **bit-exact and cycle-exact** against
//! driving the very same schedule by hand with `System::step_core` —
//! identical registers, spike logs, console output, local clocks and
//! `PerfCounters` — on the guest ISA self-test battery and on the
//! dual-core barrier/mutex programs.
//!
//! The reference scheduler here re-implements the documented policy
//! independently: always step the non-halted core with the smallest local
//! time, ties to the lowest hart id.

use izhi_isa::asm::Assembler;
use izhi_sim::{PerfCounters, System, SystemConfig};

/// Drive `sys` to completion one instruction at a time with the
/// event-driven schedule (min local time, lowest hart id on ties).
fn run_by_single_stepping(sys: &mut System, max_steps: u64) {
    for _ in 0..max_steps {
        let mut pick: Option<usize> = None;
        for i in 0..sys.n_cores() {
            if sys.core(i).halted() {
                continue;
            }
            match pick {
                Some(j) if sys.core(j).time <= sys.core(i).time => {}
                _ => pick = Some(i),
            }
        }
        let Some(i) = pick else {
            return; // all halted
        };
        sys.step_core(i).expect("reference stepping trapped");
    }
    panic!("reference run did not halt within {max_steps} steps");
}

/// Build two identical systems, run one with `run()` and the other by
/// single-stepping, and compare all architecturally visible state.
fn assert_run_matches_stepping(src: &str, cfg: SystemConfig) {
    let prog = Assembler::new().assemble(src).expect("asm");
    let mut fast = System::new(cfg.clone());
    assert!(fast.load_program(&prog));
    let mut slow = System::new(cfg);
    assert!(slow.load_program(&prog));

    let exit = fast.run(1_000_000_000).expect("batched run");
    run_by_single_stepping(&mut slow, 1_000_000_000);

    for i in 0..fast.n_cores() {
        assert_eq!(
            fast.core(i).time,
            slow.core(i).time,
            "core {i}: local clock diverges"
        );
        let cf: PerfCounters = fast.core(i).counters;
        let cs: PerfCounters = slow.core(i).counters;
        assert_eq!(cf, cs, "core {i}: PerfCounters diverge");
        let rf: PerfCounters = fast.core(i).roi_counters();
        let rs: PerfCounters = slow.core(i).roi_counters();
        assert_eq!(rf, rs, "core {i}: ROI counters diverge");
        for r in 0..32u8 {
            assert_eq!(
                fast.core(i).reg(izhi_isa::Reg(r)),
                slow.core(i).reg(izhi_isa::Reg(r)),
                "core {i}: x{r} diverges"
            );
        }
    }
    assert_eq!(
        fast.shared().dev.spike_log,
        slow.shared().dev.spike_log,
        "spike rasters diverge"
    );
    assert_eq!(fast.console(), slow.console(), "console diverges");
    assert_eq!(
        exit.cycles,
        (0..slow.n_cores())
            .map(|i| slow.core(i).time)
            .max()
            .unwrap(),
        "wall-clock cycles diverge"
    );
}

#[test]
fn selftest_battery_is_bit_and_cycle_exact() {
    let src = izhi_programs_selftest_asm();
    assert_run_matches_stepping(&src, SystemConfig::default());
}

// The battery source is produced by izhi_programs, but izhi_sim cannot
// depend on it (dependency direction); keep a local ISA exercise program
// of comparable breadth instead, plus the real battery exercised from the
// programs crate's own tests.
fn izhi_programs_selftest_asm() -> String {
    r#"
    .data 0x1000
    tbl:    .word 3, 5, 7, 9
    .text
    _start: li   s0, 0          # checksum
            li   t0, -8
            li   t1, 3
            div  t2, t0, t1
            rem  t3, t0, t1
            add  s0, s0, t2
            add  s0, s0, t3
            la   a0, tbl
            li   t0, 0
    loop:   slli t1, t0, 2
            add  t1, t1, a0
            lw   t2, (t1)
            mul  s0, s0, t2
            addi t0, t0, 1
            li   t3, 4
            bne  t0, t3, loop
            li   t4, 0x10000000 # scratchpad
            sw   s0, (t4)
            lh   t5, (t4)
            lbu  t6, 1(t4)
            add  s0, s0, t5
            add  s0, s0, t6
            csrr s1, mcycle
            li   t0, 0xF0000020 # MMIO RNG
            lw   s2, (t0)
            lw   s3, (t0)
            xor  s2, s2, s3
            li   a0, 77
            li   a7, 1
            ecall               # console print
            ebreak
    "#
    .to_string()
}

const BARRIER_SRC: &str = "
    _start: li   t0, 0xF0000004
            lw   t1, (t0)          # core id
            li   t2, 0x10000000
            bnez t1, wait
            li   t3, 7777
            sw   t3, (t2)          # core 0 publishes
    wait:   li   t4, 0xF0000010    # barrier reg
            lw   t5, (t4)          # generation
            sw   x0, (t4)          # arrive
    spin:   lw   t6, (t4)
            beq  t6, t5, spin
            lw   a0, (t2)          # both read after release
            li   t0, 0xF000001C    # spike log: publish (id, value)
            slli t1, t1, 16
            or   t1, t1, a0
            sw   t1, (t0)
            ebreak
";

const MUTEX_SRC: &str = "
    .equ MUTEX, 0xF000000C
    .equ COUNTER, 0x10000000
    _start: li   s0, 200
            li   s1, MUTEX
            li   s2, COUNTER
    loop:   lw   t0, (s1)       # try acquire
            beqz t0, loop
            lw   t1, (s2)
            addi t1, t1, 1
            sw   t1, (s2)
            sw   x0, (s1)       # release
            addi s0, s0, -1
            bnez s0, loop
            ebreak
";

#[test]
fn dual_core_barrier_is_bit_and_cycle_exact() {
    assert_run_matches_stepping(BARRIER_SRC, SystemConfig::max10_dual_core());
}

#[test]
fn dual_core_mutex_is_bit_and_cycle_exact() {
    assert_run_matches_stepping(MUTEX_SRC, SystemConfig::max10_dual_core());
}

#[test]
fn triple_core_barrier_is_bit_and_cycle_exact() {
    assert_run_matches_stepping(BARRIER_SRC, SystemConfig::max10_triple_core_reduced());
}

#[test]
fn store_to_code_invalidates_predecoded_slot() {
    // Self-modifying code: overwrite the instruction at `patch` (addi t0,
    // t0, 1) with `addi t0, t0, 64` *after* it already executed once, then
    // run through it again. The predecode guard must re-decode the slot.
    let src = "
        _start: li   t0, 0
                li   t1, 2          # two passes
                la   t2, patch
                la   t4, new_insn
                lw   t3, (t4)
        again:
        patch:  addi t0, t0, 1
                addi t1, t1, -1
                sw   t3, (t2)       # patch the slot (store-to-code)
                bnez t1, again
                ebreak
        new_insn: .word 0x04028293  # addi t0, t0, 64
    ";
    let prog = Assembler::new().assemble(src).expect("asm");
    let mut sys = System::new(SystemConfig::default());
    assert!(sys.load_program(&prog));
    sys.run(100_000).expect("run");
    // Pass 1 executes the original (+1), pass 2 the patched (+64).
    assert_eq!(sys.core(0).reg(izhi_isa::Reg::T0), 65);
}

#[test]
fn out_of_window_fetch_traps_as_bad_fetch() {
    // Jump beyond the executable SDRAM window (the seed silently decoded
    // such pcs without caching; now they are a proper BadFetch).
    let window = {
        let sys = System::new(SystemConfig::default());
        sys.shared().code.sdram_limit()
    };
    let src = format!("_start: li t0, {window:#x}\n jr t0\n ebreak");
    let prog = Assembler::new().assemble(&src).expect("asm");
    let mut sys = System::new(SystemConfig::default());
    assert!(sys.load_program(&prog));
    match sys.run(10_000) {
        Err(izhi_sim::SimError::Trap {
            cause: izhi_sim::TrapCause::BadFetch { pc },
            ..
        }) => assert_eq!(pc, window),
        other => panic!("expected BadFetch, got {other:?}"),
    }
}

#[test]
fn unmapped_fetch_still_traps() {
    let src = "_start: li t0, 0x20000000\n jr t0\n ebreak";
    let prog = Assembler::new().assemble(src).expect("asm");
    let mut sys = System::new(SystemConfig::default());
    assert!(sys.load_program(&prog));
    assert!(matches!(
        sys.run(10_000),
        Err(izhi_sim::SimError::Trap {
            cause: izhi_sim::TrapCause::BadFetch { .. },
            ..
        })
    ));
}

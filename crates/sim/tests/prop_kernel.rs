//! Kernel-batch exactness property tests: executing a registered loop
//! span as a host batch (the native closed-form tier *and* the generic
//! trace executor) must be bit-identical to interpreting it — registers,
//! memory, the cycle clock and the full performance-counter block —
//! under every relaxed sched × timing combination, across array
//! placements that exercise every screen (scratch/SDRAM, overlapping
//! sweeps, misaligned bases, region-crossing sweeps), under fault-plan
//! triggers landing mid-loop, and across self-modifying stores into the
//! span's own code words (which must invalidate the span).
//!
//! The programs are hand-assembled replicas of the engine's dense
//! phase-A scatter (the shape the native tier matches) plus generic
//! counted loops the structural audit accepts but the native matcher
//! does not — so both batch tiers are covered explicitly.

use izhi_isa::encode;
use izhi_isa::inst::{AluImmOp, AluOp, BranchOp, Inst, LoadOp, StoreOp};
use izhi_isa::reg::Reg;
use izhi_sim::{
    layout, register_kernel_span, FaultKind, FaultPlan, KernelVariant, SchedMode, SimError,
    SpanState, System, SystemConfig, TimingModel,
};
use proptest::prelude::*;

const A2: Reg = Reg(12);
const T1: Reg = Reg(6);
const T3: Reg = Reg(28);
const T4: Reg = Reg(29);
const T5: Reg = Reg(30);

/// `li rd, val` as the canonical lui+addi pair (hi20 rounds so the
/// sign-extended addi lands exactly).
fn li(rd: Reg, val: u32) -> [Inst; 2] {
    let hi = val.wrapping_add(0x800) & 0xFFFF_F000;
    let lo = val.wrapping_sub(hi) as i32;
    [
        Inst::Lui { rd, imm: hi as i32 },
        Inst::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1: rd,
            imm: lo,
        },
    ]
}

fn addi(rd: Reg, rs1: Reg, imm: i32) -> Inst {
    Inst::OpImm {
        op: AluImmOp::Addi,
        rd,
        rs1,
        imm,
    }
}

/// The engine's dense phase-A scatter, verbatim: the shape the native
/// tier matches. Entry at instruction 6 (pc 24).
fn dense_axpy_program(w_base: u32, i_base: u32, count: u32) -> (Vec<Inst>, u32) {
    let mut v = Vec::new();
    v.extend(li(A2, w_base));
    v.extend(li(T1, i_base));
    v.extend(li(T3, count));
    let entry = 4 * v.len() as u32;
    v.push(Inst::Load {
        op: LoadOp::Lh,
        rd: T4,
        rs1: A2,
        imm: 0,
    });
    v.push(Inst::Load {
        op: LoadOp::Lw,
        rd: T5,
        rs1: T1,
        imm: 0,
    });
    v.push(Inst::OpImm {
        op: AluImmOp::Slli,
        rd: T4,
        rs1: T4,
        imm: 8,
    });
    v.push(Inst::Op {
        op: AluOp::Add,
        rd: T5,
        rs1: T5,
        rs2: T4,
    });
    v.push(Inst::Store {
        op: StoreOp::Sw,
        rs1: T1,
        rs2: T5,
        imm: 0,
    });
    v.push(addi(A2, A2, 2));
    v.push(addi(T1, T1, 4));
    v.push(addi(T3, T3, -1));
    v.push(Inst::Branch {
        op: BranchOp::Ne,
        rs1: T3,
        rs2: Reg(0),
        imm: entry as i32 - 4 * v.len() as i32,
    });
    v.push(Inst::Ebreak);
    (v, entry)
}

/// Build a system, load `insts` at pc 0, seed the weight/accumulator
/// arrays, register the loop span, run. Returns the final system, the
/// run outcome and the registration outcome.
#[allow(clippy::too_many_arguments)]
fn run_dense(
    insts: &[Inst],
    entry: u32,
    sched: SchedMode,
    kernels: bool,
    faults: FaultPlan,
    weights: &[i16],
    w_base: u32,
    isyn: &[u32],
    i_base: u32,
) -> (System, Result<(), SimError>, bool) {
    let cfg = SystemConfig {
        n_cores: 1,
        sched,
        kernels,
        faults,
        ..Default::default()
    };
    let mut sys = System::new(cfg);
    for (k, inst) in insts.iter().enumerate() {
        sys.shared_mut().mem.write_u32(4 * k as u32, encode(*inst));
    }
    for (k, w) in weights.iter().enumerate() {
        sys.shared_mut()
            .mem
            .write_u16(w_base.wrapping_add(2 * k as u32), *w as u16);
    }
    for (k, w) in isyn.iter().enumerate() {
        sys.shared_mut()
            .mem
            .write_u32(i_base.wrapping_add(4 * k as u32), *w);
    }
    let registered = {
        let sh = sys.shared_mut();
        register_kernel_span(&mut sh.code, &sh.mem, entry, KernelVariant::DenseA).is_ok()
    };
    let res = sys.run(10_000_000).map(|_| ());
    (sys, res, registered)
}

/// The sched × timing combinations the scenario battery fans over.
fn modes() -> [SchedMode; 5] {
    let q = SchedMode::DEFAULT_QUANTUM;
    [
        SchedMode::Exact,
        SchedMode::Relaxed {
            quantum: q,
            timing: TimingModel::Unit,
        },
        SchedMode::Relaxed {
            quantum: q,
            timing: TimingModel::Estimated,
        },
        SchedMode::RelaxedParallel {
            quantum: q,
            host_threads: 2,
            timing: TimingModel::Unit,
        },
        SchedMode::RelaxedParallel {
            quantum: q,
            host_threads: 2,
            timing: TimingModel::Estimated,
        },
    ]
}

/// Full single-core bit-identity: outcome, registers, clock, counters,
/// and the code + scratch + SDRAM-data windows the programs touch.
fn assert_identical(
    on: &(System, Result<(), SimError>),
    off: &(System, Result<(), SimError>),
    code_words: usize,
    tag: &str,
) {
    let ((on, on_res), (off, off_res)) = (on, off);
    assert_eq!(on_res, off_res, "{tag}: outcome diverges");
    for r in 0..32u8 {
        assert_eq!(
            on.core(0).reg(Reg(r)),
            off.core(0).reg(Reg(r)),
            "{tag}: x{r} diverges"
        );
    }
    assert_eq!(on.core(0).time, off.core(0).time, "{tag}: clock diverges");
    assert_eq!(
        on.core(0).counters,
        off.core(0).counters,
        "{tag}: counters diverge"
    );
    let scratch_size = on.shared().mem.scratch_size();
    let windows = [
        (0u32, 4 * code_words as u32),
        (layout::SCRATCH_BASE + 0x1000, layout::SCRATCH_BASE + 0x4800),
        (
            layout::SCRATCH_BASE + scratch_size - 0x200,
            layout::SCRATCH_BASE + scratch_size,
        ),
        (0x2000, 0x3800),
    ];
    for (lo, hi) in windows {
        let mut addr = lo;
        while addr < hi {
            assert_eq!(
                on.shared().mem.read_u32(addr),
                off.shared().mem.read_u32(addr),
                "{tag}: word {addr:#x} diverges"
            );
            addr += 4;
        }
    }
}

/// Array placements: every screen of the native tier and the generic
/// batch loop gets exercised, including ones that end in a trap (which
/// must then trap identically).
#[derive(Debug, Clone, Copy)]
enum Placement {
    ScratchDisjoint,
    SdramDisjoint,
    ScratchWeightsSdramIsyn,
    SdramWeightsScratchIsyn,
    /// Accumulator sweep overlapping the weight sweep (order-exactness).
    ScratchOverlap,
    /// Odd weight base: every `lh` defers and the interpreter traps.
    MisalignedWeights,
    /// Accumulator sweep crossing the end of scratch mid-loop.
    CrossesScratchEnd,
}

fn arb_placement() -> impl Strategy<Value = Placement> {
    prop_oneof![
        Just(Placement::ScratchDisjoint),
        Just(Placement::SdramDisjoint),
        Just(Placement::ScratchWeightsSdramIsyn),
        Just(Placement::SdramWeightsScratchIsyn),
        Just(Placement::ScratchOverlap),
        Just(Placement::MisalignedWeights),
        Just(Placement::CrossesScratchEnd),
    ]
}

/// Resolve a placement to (weight base, accumulator base) for `count`
/// elements, given small aligned jitters.
fn bases(p: Placement, count: u32, w_off: u32, i_off: u32, scratch_size: u32) -> (u32, u32) {
    let s = layout::SCRATCH_BASE;
    match p {
        Placement::ScratchDisjoint => (s + 0x1000 + 2 * w_off, s + 0x3000 + 4 * i_off),
        Placement::SdramDisjoint => (0x2000 + 2 * w_off, 0x2C00 + 4 * i_off),
        Placement::ScratchWeightsSdramIsyn => (s + 0x1000 + 2 * w_off, 0x2C00 + 4 * i_off),
        Placement::SdramWeightsScratchIsyn => (0x2000 + 2 * w_off, s + 0x3000 + 4 * i_off),
        Placement::ScratchOverlap => {
            let w = s + 0x1000 + 2 * w_off;
            // Accumulator words start inside the live weight sweep.
            (w, (w + 2 * (i_off % count.max(1))) & !3)
        }
        Placement::MisalignedWeights => (s + 0x1001 + 2 * w_off, s + 0x3000 + 4 * i_off),
        Placement::CrossesScratchEnd => {
            // The store sweep runs off the end of scratch after ~8 words.
            (s + 0x1000 + 2 * w_off, s + scratch_size - 32)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense phase-A replica, kernels on vs off, across placements that
    /// drive the native tier, the generic batch and the defer/trap
    /// paths, under every battery mode.
    #[test]
    fn dense_axpy_kernels_on_off_bit_identical(
        placement in arb_placement(),
        count in 1u32..400,
        w_off in 0u32..64,
        i_off in 0u32..64,
        seed in any::<u64>(),
    ) {
        let scratch_size = SystemConfig::default().scratch_size;
        let (w_base, i_base) = bases(placement, count, w_off, i_off, scratch_size);
        let (insts, entry) = dense_axpy_program(w_base, i_base, count);
        // Cheap deterministic fill from the seed.
        let mut x = seed | 1;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as u32
        };
        let weights: Vec<i16> = (0..count).map(|_| next() as i16).collect();
        let isyn: Vec<u32> = (0..count).map(|_| next()).collect();
        for mode in modes() {
            let run = |kernels: bool| {
                let (sys, res, registered) = run_dense(
                    &insts, entry, mode, kernels, FaultPlan::none(),
                    &weights, w_base & !1, &isyn, i_base & !3,
                );
                assert!(registered, "audit rejected the dense shape");
                (sys, res)
            };
            let on = run(true);
            let off = run(false);
            assert_identical(&on, &off, insts.len(), &format!("{placement:?} {mode:?}"));
        }
    }

    /// Fault-plan triggers landing in the interior of a kernel batch:
    /// the batch refuses any iteration that could cross the trigger, so
    /// the fault fires at the same retired instruction either way.
    #[test]
    fn fault_triggers_fire_identically_inside_kernel_batches(
        count in 8u32..300,
        at in 1u64..2500,
        kind in prop_oneof![Just(FaultKind::GuestTrap), Just(FaultKind::CorruptSpike(1))],
    ) {
        let (w_base, i_base) = (layout::SCRATCH_BASE + 0x1000, layout::SCRATCH_BASE + 0x3000);
        let (insts, entry) = dense_axpy_program(w_base, i_base, count);
        let weights: Vec<i16> = (0..count).map(|k| (k as i16).wrapping_mul(257)).collect();
        let isyn: Vec<u32> = (0..count).map(|k| k.wrapping_mul(0x9E37_79B9)).collect();
        for mode in modes() {
            let plan = FaultPlan::none().with(0, at, kind);
            let run = |kernels: bool| {
                let (sys, res, _) = run_dense(
                    &insts, entry, mode, kernels, plan.clone(),
                    &weights, w_base, &isyn, i_base,
                );
                (sys, res)
            };
            let on = run(true);
            let off = run(false);
            assert_identical(&on, &off, insts.len(), &format!("{mode:?} {kind:?}@{at}"));
        }
    }

    /// A generic counted loop (audit-accepted, native-matcher-rejected):
    /// the trace executor path, with scratch loads/stores and ALU mix.
    #[test]
    fn generic_counted_loops_kernels_on_off_bit_identical(
        count in 1u32..200,
        stride in prop_oneof![Just(4u32), Just(8u32)],
        bias in -16i32..16,
    ) {
        // x10 accumulates, x11 walks scratch, x28 counts down.
        let mut v = Vec::new();
        v.extend(li(Reg(11), layout::SCRATCH_BASE + 0x1000));
        v.extend(li(T3, count));
        let entry = 4 * v.len() as u32;
        v.push(Inst::Load { op: LoadOp::Lw, rd: Reg(10), rs1: Reg(11), imm: 0 });
        v.push(addi(Reg(10), Reg(10), bias));
        v.push(Inst::Op { op: AluOp::Xor, rd: Reg(12), rs1: Reg(10), rs2: T3 });
        v.push(Inst::Store { op: StoreOp::Sw, rs1: Reg(11), rs2: Reg(12), imm: 0 });
        v.push(addi(Reg(11), Reg(11), stride as i32));
        v.push(addi(T3, T3, -1));
        v.push(Inst::Branch {
            op: BranchOp::Ne,
            rs1: T3,
            rs2: Reg(0),
            imm: entry as i32 - 4 * v.len() as i32,
        });
        v.push(Inst::Ebreak);
        for mode in modes() {
            let run = |kernels: bool| {
                let (sys, res, registered) = run_dense(
                    &v, entry, mode, kernels, FaultPlan::none(), &[], 0x2000, &[], 0x2C00,
                );
                assert!(registered, "audit rejected the generic loop");
                (sys, res)
            };
            let on = run(true);
            let off = run(false);
            assert_identical(&on, &off, v.len(), &format!("generic {mode:?}"));
        }
    }

    /// A loop whose body stores into its own span code every iteration.
    /// Writing back the identical word keeps the fingerprint valid (the
    /// span re-verifies Ready each entry); writing a different word makes
    /// re-verification fail and hands the loop to the interpreter. Both
    /// must stay bit-identical with kernels off.
    #[test]
    fn self_modifying_stores_into_span_stay_identical(
        count in 2u32..60,
        same_word in any::<bool>(),
    ) {
        // Patch target: the `addi x13, x13, 1` at slot 1 of the body.
        let body_inc = addi(Reg(13), Reg(13), 1);
        let patch = if same_word { body_inc } else { addi(Reg(0), Reg(0), 0) };
        let mut v = Vec::new();
        v.extend(li(T3, count));
        v.extend(li(Reg(11), 0)); // patched below once entry is known
        v.extend(li(Reg(12), encode(patch)));
        let entry = 4 * v.len() as u32;
        v[2] = li(Reg(11), entry + 4)[0];
        v[3] = li(Reg(11), entry + 4)[1];
        v.push(Inst::Store { op: StoreOp::Sw, rs1: Reg(11), rs2: Reg(12), imm: 0 });
        v.push(body_inc);
        v.push(addi(T3, T3, -1));
        v.push(Inst::Branch {
            op: BranchOp::Ne,
            rs1: T3,
            rs2: Reg(0),
            imm: entry as i32 - 4 * v.len() as i32,
        });
        v.push(Inst::Ebreak);
        for mode in modes() {
            let run = |kernels: bool| {
                let (sys, res, registered) = run_dense(
                    &v, entry, mode, kernels, FaultPlan::none(), &[], 0x2000, &[], 0x2C00,
                );
                assert!(registered, "audit rejected the self-modifying loop");
                (sys, res)
            };
            let on = run(true);
            let off = run(false);
            assert_identical(&on, &off, v.len(), &format!("smc same_word={same_word} {mode:?}"));
        }
    }
}

/// Deterministic lifecycle check: a store that actually changes a span's
/// code words must reject the span (re-verification fails) and the rest
/// of the run must interpret the patched code — while a same-word store
/// only cycles Dirty → Ready.
#[test]
fn span_rejects_after_real_code_change() {
    let run = |same_word: bool| {
        let body_inc = addi(Reg(13), Reg(13), 1);
        let patch = if same_word {
            body_inc
        } else {
            addi(Reg(0), Reg(0), 0)
        };
        let mut v = Vec::new();
        v.extend(li(T3, 5));
        v.extend(li(Reg(11), 0));
        v.extend(li(Reg(12), encode(patch)));
        let entry = 4 * v.len() as u32;
        v[2] = li(Reg(11), entry + 4)[0];
        v[3] = li(Reg(11), entry + 4)[1];
        v.push(Inst::Store {
            op: StoreOp::Sw,
            rs1: Reg(11),
            rs2: Reg(12),
            imm: 0,
        });
        v.push(body_inc);
        v.push(addi(T3, T3, -1));
        v.push(Inst::Branch {
            op: BranchOp::Ne,
            rs1: T3,
            rs2: Reg(0),
            imm: entry as i32 - 4 * v.len() as i32,
        });
        v.push(Inst::Ebreak);
        let sched = SchedMode::Relaxed {
            quantum: SchedMode::DEFAULT_QUANTUM,
            timing: TimingModel::Unit,
        };
        let (sys, res, registered) = run_dense(
            &v,
            entry,
            sched,
            true,
            FaultPlan::none(),
            &[],
            0x2000,
            &[],
            0x2C00,
        );
        assert!(registered);
        res.expect("run completes");
        let spans = sys.shared().code.kernel_spans().to_vec();
        assert_eq!(spans.len(), 1);
        (spans[0].state, sys.core(0).reg(Reg(13)))
    };
    // Same-word patch: the span survives (Ready or Dirty after the final
    // store) and the increment retires every iteration.
    let (state, x13) = run(true);
    assert_ne!(
        state,
        SpanState::Rejected,
        "same-word store must not reject"
    );
    assert_eq!(x13, 5);
    // Real patch: the store precedes the increment in program order, so
    // the slot is already a nop by the time it first executes — the
    // increment never retires — and re-verification rejects the span.
    let (state, x13) = run(false);
    assert_eq!(state, SpanState::Rejected, "changed code must reject");
    assert_eq!(x13, 0);
}

//! Differential property suite for the host-parallel relaxed scheduler.
//!
//! `SchedMode::RelaxedParallel` promises to be **bit-identical** to the
//! single-threaded `SchedMode::Relaxed` at the same quantum, for every
//! host-thread count — registers, cycles, instret, memory, and the exact
//! *order* of every device log (spike FIFO, console, progress), plus the
//! shared RNG stream and mutex contention counts.
//!
//! The programs here are random but race-free by construction: every core
//! runs the same instruction sequence against its own scratch page
//! (core-disjoint memory traffic), while MMIO traffic — buffered exports
//! *and* shared-interactive reads (RNG draws, mutex try-acquire/release,
//! barrier-generation reads) — goes to the shared devices, where ordering
//! is exactly what the parallel commit protocol must reproduce.
//!
//! A companion repeated-run test serialises the complete observable final
//! state 8× under the threaded scheduler and asserts byte identity,
//! catching latent host-ordering races even when the host has one CPU.

use izhi_isa::encode;
use izhi_isa::inst::{AluImmOp, AluOp, Inst, LoadOp, StoreOp};
use izhi_isa::reg::Reg;
use izhi_sim::{layout, SchedMode, System, SystemConfig, TimingModel};
use proptest::prelude::*;

/// Per-core scratch page (core id shifted into bits 12+ by the prelude).
const PAGE: u32 = 0x1000;

/// Base register holding `SCRATCH_BASE + core_id * PAGE`.
const BASE: Reg = Reg(8);

/// Base register holding `MMIO_BASE`.
const MMIO: Reg = Reg(7);

/// Prelude: x9 <- core id, x8 <- own scratch page, x7 <- MMIO base.
/// Generated instructions never write x7/x8, so memory traffic stays
/// core-disjoint and device traffic stays addressable.
fn prelude() -> Vec<Inst> {
    vec![
        Inst::Lui {
            rd: MMIO,
            imm: 0xF000_0000u32 as i32,
        },
        Inst::Load {
            op: LoadOp::Lw,
            rd: Reg(9),
            rs1: MMIO,
            imm: layout::MMIO_COREID as i32,
        },
        Inst::OpImm {
            op: AluImmOp::Slli,
            rd: Reg(9),
            rs1: Reg(9),
            imm: 12,
        },
        Inst::Lui {
            rd: BASE,
            imm: layout::SCRATCH_BASE as i32,
        },
        Inst::Op {
            op: AluOp::Add,
            rd: BASE,
            rs1: BASE,
            rs2: Reg(9),
        },
    ]
}

/// Any destination except the two stable base registers.
fn arb_rd() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|r| {
        if r == BASE.0 || r == MMIO.0 {
            Reg(31)
        } else {
            Reg(r)
        }
    })
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    let reg = (0u8..32).prop_map(Reg);
    let alu_op = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Xor),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Sltu),
        Just(AluOp::Mul),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Remu),
    ];
    let load_op = prop_oneof![
        Just((LoadOp::Lw, 4u32)),
        Just((LoadOp::Lhu, 2)),
        Just((LoadOp::Lbu, 1)),
    ];
    let store_op = prop_oneof![
        Just((StoreOp::Sw, 4u32)),
        Just((StoreOp::Sh, 2)),
        Just((StoreOp::Sb, 1)),
    ];
    // Shared-interactive MMIO reads: RNG draw, mutex try-acquire, barrier
    // generation. All non-blocking, so random sequences cannot deadlock.
    let mmio_read = prop_oneof![
        Just(layout::MMIO_RAND),
        Just(layout::MMIO_MUTEX),
        Just(layout::MMIO_BARRIER),
        Just(layout::MMIO_CYCLE),
        Just(layout::MMIO_NCORES),
    ];
    // Buffered MMIO writes (spike log / progress / console) plus the
    // mutex release. Barrier *arrivals* are excluded: mismatched arrival
    // counts would park cores forever by design.
    let mmio_write = prop_oneof![
        Just((layout::MMIO_SPIKE_LOG, StoreOp::Sw)),
        Just((layout::MMIO_PROGRESS, StoreOp::Sw)),
        Just((layout::MMIO_CONSOLE, StoreOp::Sb)),
        Just((layout::MMIO_MUTEX, StoreOp::Sw)),
    ];
    prop_oneof![
        (arb_rd(), -2048i32..2048).prop_map(|(rd, imm)| Inst::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1: Reg(10),
            imm
        }),
        (arb_rd(), (-(1i32 << 19)..(1 << 19))).prop_map(|(rd, p)| Inst::Lui { rd, imm: p << 12 }),
        (alu_op, arb_rd(), reg.clone(), reg.clone()).prop_map(|(op, rd, rs1, rs2)| Inst::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        (load_op, arb_rd(), 0i32..256).prop_map(|((op, size), rd, slot)| Inst::Load {
            op,
            rd,
            rs1: BASE,
            imm: slot * size as i32,
        }),
        (store_op, reg.clone(), 0i32..256).prop_map(|((op, size), rs2, slot)| Inst::Store {
            op,
            rs1: BASE,
            rs2,
            imm: slot * size as i32,
        }),
        (mmio_read, arb_rd()).prop_map(|(off, rd)| Inst::Load {
            op: LoadOp::Lw,
            rd,
            rs1: MMIO,
            imm: off as i32,
        }),
        (mmio_write, reg).prop_map(|((off, op), rs2)| Inst::Store {
            op,
            rs1: MMIO,
            rs2,
            imm: off as i32,
        }),
    ]
}

fn run(insts: &[Inst], n_cores: u32, sched: SchedMode) -> System {
    let cfg = SystemConfig {
        n_cores,
        sched,
        ..Default::default()
    };
    let mut sys = System::new(cfg);
    let mut addr = 0u32;
    for inst in prelude().iter().chain(insts) {
        sys.shared_mut().mem.write_u32(addr, encode(*inst));
        addr += 4;
    }
    sys.shared_mut().mem.write_u32(addr, encode(Inst::Ebreak));
    sys.run(10_000_000).expect("straight-line program trapped");
    sys
}

/// Serialise everything observable about a finished system: registers,
/// pcs, clocks, counters, every device log in order, and the scratch
/// pages the program could touch.
fn serialize_state(sys: &System) -> Vec<u8> {
    let mut out = Vec::new();
    for core in 0..sys.n_cores() {
        for r in 0..32u8 {
            out.extend_from_slice(&sys.core(core).reg(Reg(r)).to_le_bytes());
        }
        out.extend_from_slice(&sys.core(core).pc().to_le_bytes());
        out.extend_from_slice(&sys.core(core).time.to_le_bytes());
        out.extend_from_slice(&sys.core(core).counters.instret.to_le_bytes());
        out.extend_from_slice(&sys.core(core).counters.loads.to_le_bytes());
        out.extend_from_slice(&sys.core(core).counters.stores.to_le_bytes());
    }
    let dev = &sys.shared().dev;
    out.extend_from_slice(&dev.console);
    for w in &dev.spike_log {
        out.extend_from_slice(&w.to_le_bytes());
    }
    for w in &dev.progress {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.extend_from_slice(&dev.mutex_contention.to_le_bytes());
    out.extend_from_slice(&dev.barrier_generation().to_le_bytes());
    for word in 0..(sys.n_cores() as u32 * PAGE / 4) {
        let addr = layout::SCRATCH_BASE + 4 * word;
        out.extend_from_slice(&sys.shared().mem.read_u32(addr).unwrap_or(0).to_le_bytes());
    }
    out
}

/// `RelaxedParallel` must be bit-identical to `Relaxed`: same quantum →
/// same everything, at any host-thread count.
fn assert_bit_identical(reference: &System, par: &System, quantum: u64, host_threads: u32) {
    let n = reference.n_cores();
    for core in 0..n {
        for r in 0..32u8 {
            prop_assert_eq!(
                reference.core(core).reg(Reg(r)),
                par.core(core).reg(Reg(r)),
                "core {} x{} diverges at quantum {} / {} host threads",
                core,
                r,
                quantum,
                host_threads
            );
        }
        prop_assert_eq!(
            reference.core(core).time,
            par.core(core).time,
            "core {} cycles diverge at quantum {} / {} host threads",
            core,
            quantum,
            host_threads
        );
        prop_assert_eq!(
            reference.core(core).counters.instret,
            par.core(core).counters.instret,
            "core {} instret diverges at quantum {} / {} host threads",
            core,
            quantum,
            host_threads
        );
    }
    prop_assert_eq!(
        serialize_state(reference),
        serialize_state(par),
        "full state diverges at quantum {} / {} host threads",
        quantum,
        host_threads
    );
}

/// The parallel bit-identity contract holds **per timing model**: the
/// Estimated clock changes the interleaving (quanta are cycle-bounded)
/// but the parallel scheduler must still reproduce the sequential
/// schedule of the same timing model bit for bit.
fn check_all_host_thread_counts(insts: &[Inst], n_cores: u32) {
    for timing in [TimingModel::Unit, TimingModel::Estimated] {
        for quantum in [1u64, 7, 64] {
            let reference = run(insts, n_cores, SchedMode::Relaxed { quantum, timing });
            for host_threads in [1u32, 2, 4] {
                let par = run(
                    insts,
                    n_cores,
                    SchedMode::RelaxedParallel {
                        quantum,
                        host_threads,
                        timing,
                    },
                );
                assert_bit_identical(&reference, &par, quantum, host_threads);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Two cores: random core-disjoint programs with interactive and
    /// buffered MMIO traffic, across quanta {1, 7, 64} × host threads
    /// {1, 2, 4}.
    #[test]
    fn parallel_matches_relaxed_two_cores(
        insts in prop::collection::vec(arb_inst(), 1..80),
    ) {
        check_all_host_thread_counts(&insts, 2);
    }

    /// Three cores: the worker pool is exercised with more cores than
    /// some of the tested host-thread counts (1 and 2), so core-to-worker
    /// assignment provably cannot leak into results.
    #[test]
    fn parallel_matches_relaxed_three_cores(
        insts in prop::collection::vec(arb_inst(), 1..60),
    ) {
        check_all_host_thread_counts(&insts, 3);
    }
}

/// The barrier program used by the fixed determinism checks: arrivals are
/// matched across cores, so parking and release are exercised too.
const BARRIER_MIX_SRC: &str = "
    _start: li   t0, 0xF0000004
            lw   t1, (t0)          # core id
            li   t2, 0x10000000
            slli t3, t1, 12
            add  t2, t2, t3        # own page
            li   s2, 0xF000001C    # spike log
            li   s3, 0xF0000020    # rng
            li   s4, 0xF000000C    # mutex
            li   s5, 0x10003000    # shared counter, outside every page
            li   s0, 40
    work:   lw   t4, (s3)          # rng draw (interactive)
            sw   t4, (t2)
            addi t2, t2, 4
            slli t5, t1, 16
            or   t5, t5, s0
            sw   t5, (s2)          # spike export (buffered)
    grab:   lw   t6, (s4)          # mutex try-acquire
            beqz t6, grab
            lw   t6, (s5)
            addi t6, t6, 1
            sw   t6, (s5)
            sw   x0, (s4)          # release
            addi s0, s0, -1
            bnez s0, work
            li   t4, 0xF0000010    # barrier
            lw   t5, (t4)
            sw   x0, (t4)          # arrive
    spin:   lw   t6, (t4)
            beq  t6, t5, spin
            lw   a0, (s5)          # all read the final counter
            ebreak
";

#[test]
fn repeated_parallel_runs_serialize_identically() {
    // 8 runs of the same threaded configuration must produce a
    // byte-identical final state — this catches latent host-ordering
    // races even on a single-CPU host, where thread preemption points
    // vary from run to run.
    let run_once = |host_threads: u32| {
        let asm = izhi_isa::Assembler::new()
            .assemble(BARRIER_MIX_SRC)
            .expect("asm");
        let mut sys = System::new(SystemConfig {
            n_cores: 3,
            sched: SchedMode::RelaxedParallel {
                quantum: 5,
                host_threads,
                timing: TimingModel::Unit,
            },
            ..Default::default()
        });
        assert!(sys.load_program(&asm));
        sys.run(10_000_000).expect("run");
        serialize_state(&sys)
    };
    // host_threads = 0 resolves via IZHI_HOST_THREADS (CI forces 2) or
    // host parallelism — byte identity must hold regardless.
    for host_threads in [0u32, 4] {
        let first = run_once(host_threads);
        for _ in 0..7 {
            assert_eq!(
                first,
                run_once(host_threads),
                "threaded run diverged at host_threads={host_threads}"
            );
        }
    }
}

#[test]
fn barrier_mix_matches_relaxed_and_counts() {
    let asm = izhi_isa::Assembler::new()
        .assemble(BARRIER_MIX_SRC)
        .expect("asm");
    let run_mode = |sched: SchedMode| {
        let mut sys = System::new(SystemConfig {
            n_cores: 3,
            sched,
            ..Default::default()
        });
        assert!(sys.load_program(&asm));
        sys.run(10_000_000).expect("run");
        sys
    };
    for timing in [TimingModel::Unit, TimingModel::Estimated] {
        for quantum in [1u64, 7, 64] {
            let reference = run_mode(SchedMode::Relaxed { quantum, timing });
            // The mutex-guarded counter proves mutual exclusion survived.
            assert_eq!(
                reference
                    .shared()
                    .mem
                    .read_u32(layout::SCRATCH_BASE + 0x3000),
                Some(120)
            );
            for host_threads in [1u32, 2, 4] {
                let par = run_mode(SchedMode::RelaxedParallel {
                    quantum,
                    host_threads,
                    timing,
                });
                assert_eq!(
                    serialize_state(&reference),
                    serialize_state(&par),
                    "{timing:?} quantum {quantum} host_threads {host_threads}"
                );
            }
        }
    }
}

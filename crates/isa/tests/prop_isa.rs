//! Property tests: encode/decode round trips and assembler/disassembler
//! consistency across the whole instruction space.

use izhi_isa::asm::Assembler;
use izhi_isa::inst::{AluImmOp, AluOp, BranchOp, CsrOp, Inst, LoadOp, NmOp, StoreOp};
use izhi_isa::reg::Reg;
use izhi_isa::{decode, disassemble, encode};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    let branch_op = prop_oneof![
        Just(BranchOp::Eq),
        Just(BranchOp::Ne),
        Just(BranchOp::Lt),
        Just(BranchOp::Ge),
        Just(BranchOp::Ltu),
        Just(BranchOp::Geu),
    ];
    let load_op = prop_oneof![
        Just(LoadOp::Lb),
        Just(LoadOp::Lh),
        Just(LoadOp::Lw),
        Just(LoadOp::Lbu),
        Just(LoadOp::Lhu),
    ];
    let store_op = prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw)];
    let alu_imm_op = prop_oneof![
        Just(AluImmOp::Addi),
        Just(AluImmOp::Slti),
        Just(AluImmOp::Sltiu),
        Just(AluImmOp::Xori),
        Just(AluImmOp::Ori),
        Just(AluImmOp::Andi),
    ];
    let shift_op = prop_oneof![
        Just(AluImmOp::Slli),
        Just(AluImmOp::Srli),
        Just(AluImmOp::Srai)
    ];
    let alu_op = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Mulh),
        Just(AluOp::Mulhsu),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
    ];
    let csr_op = prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)];
    let nm_op = prop_oneof![
        Just(NmOp::Nmldl),
        Just(NmOp::Nmldh),
        Just(NmOp::Nmpn),
        Just(NmOp::Nmdec),
    ];

    prop_oneof![
        (arb_reg(), (-(1i32 << 19)..(1 << 19))).prop_map(|(rd, page)| Inst::Lui {
            rd,
            imm: page << 12
        }),
        (arb_reg(), (-(1i32 << 19)..(1 << 19))).prop_map(|(rd, page)| Inst::Auipc {
            rd,
            imm: page << 12
        }),
        (arb_reg(), (-(1i32 << 19)..(1 << 19)))
            .prop_map(|(rd, half)| Inst::Jal { rd, imm: half << 1 }),
        (arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(rd, rs1, imm)| Inst::Jalr {
            rd,
            rs1,
            imm
        }),
        (branch_op, arb_reg(), arb_reg(), (-2048i32..2048)).prop_map(|(op, rs1, rs2, half)| {
            Inst::Branch {
                op,
                rs1,
                rs2,
                imm: half << 1,
            }
        }),
        (load_op, arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(op, rd, rs1, imm)| Inst::Load {
            op,
            rd,
            rs1,
            imm
        }),
        (store_op, arb_reg(), arb_reg(), -2048i32..2048)
            .prop_map(|(op, rs1, rs2, imm)| Inst::Store { op, rs1, rs2, imm }),
        (alu_imm_op, arb_reg(), arb_reg(), -2048i32..2048)
            .prop_map(|(op, rd, rs1, imm)| Inst::OpImm { op, rd, rs1, imm }),
        (shift_op, arb_reg(), arb_reg(), 0i32..32).prop_map(|(op, rd, rs1, imm)| Inst::OpImm {
            op,
            rd,
            rs1,
            imm
        }),
        (alu_op, arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        Just(Inst::Fence),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        (
            csr_op.clone(),
            arb_reg(),
            arb_reg(),
            any::<u16>().prop_map(|c| c & 0xFFF)
        )
            .prop_map(|(op, rd, rs1, csr)| Inst::Csr { op, rd, rs1, csr }),
        (
            csr_op,
            arb_reg(),
            0u8..32,
            any::<u16>().prop_map(|c| c & 0xFFF)
        )
            .prop_map(|(op, rd, uimm, csr)| Inst::CsrImm { op, rd, uimm, csr }),
        (nm_op, arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Nm {
            op,
            rd,
            rs1,
            rs2
        }),
    ]
}

proptest! {
    /// encode -> decode is the identity on every representable instruction.
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let word = encode(inst);
        prop_assert_eq!(decode(word).expect("decode failed"), inst);
    }

    /// decode -> encode is the identity on every word that decodes.
    #[test]
    fn decode_encode_roundtrip(word in any::<u32>()) {
        if let Ok(inst) = decode(word) {
            let reencoded = encode(inst);
            prop_assert_eq!(
                decode(reencoded).unwrap(),
                inst,
                "re-decode mismatch for {:#010x}",
                word
            );
        }
    }

    /// The disassembler output re-assembles to the original encoding
    /// (branches/jumps excluded: their text form is a pc-relative offset,
    /// which the assembler reproduces identically at pc 0).
    #[test]
    fn disasm_asm_roundtrip(inst in arb_inst()) {
        let text = disassemble(inst);
        let prog = Assembler::new()
            .assemble(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed: {e}"));
        prop_assert_eq!(prog.words().len(), 1, "pseudo-expanded: `{}`", text);
        prop_assert_eq!(
            decode(prog.words()[0]).unwrap(), inst,
            "text was `{}`", text
        );
    }
}

//! Binary instruction decoding (u32 -> Inst).

use crate::inst::{AluImmOp, AluOp, BranchOp, CsrOp, Inst, LoadOp, NmOp, StoreOp};
use crate::reg::Reg;
use crate::OPCODE_CUSTOM0;

/// Decoding failure: the word is not a valid IzhiRISC-V instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "illegal instruction {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn rd(w: u32) -> Reg {
    Reg(((w >> 7) & 0x1F) as u8)
}
#[inline]
fn rs1(w: u32) -> Reg {
    Reg(((w >> 15) & 0x1F) as u8)
}
#[inline]
fn rs2(w: u32) -> Reg {
    Reg(((w >> 20) & 0x1F) as u8)
}
#[inline]
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
#[inline]
fn funct7(w: u32) -> u32 {
    w >> 25
}
#[inline]
fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}
#[inline]
fn imm_s(w: u32) -> i32 {
    (((w as i32) >> 25) << 5) | (((w >> 7) & 0x1F) as i32)
}
#[inline]
fn imm_b(w: u32) -> i32 {
    let b12 = ((w >> 31) & 1) as i32;
    let b11 = ((w >> 7) & 1) as i32;
    let b10_5 = ((w >> 25) & 0x3F) as i32;
    let b4_1 = ((w >> 8) & 0xF) as i32;
    let v = (b12 << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1);
    (v << 19) >> 19
}
#[inline]
fn imm_u(w: u32) -> i32 {
    (w & 0xFFFF_F000) as i32
}
#[inline]
fn imm_j(w: u32) -> i32 {
    let b20 = ((w >> 31) & 1) as i32;
    let b19_12 = ((w >> 12) & 0xFF) as i32;
    let b11 = ((w >> 20) & 1) as i32;
    let b10_1 = ((w >> 21) & 0x3FF) as i32;
    let v = (b20 << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1);
    (v << 11) >> 11
}

/// Decode a 32-bit word into an instruction.
pub fn decode(w: u32) -> Result<Inst, DecodeError> {
    let err = Err(DecodeError { word: w });
    let inst = match w & 0x7F {
        0b0110111 => Inst::Lui {
            rd: rd(w),
            imm: imm_u(w),
        },
        0b0010111 => Inst::Auipc {
            rd: rd(w),
            imm: imm_u(w),
        },
        0b1101111 => Inst::Jal {
            rd: rd(w),
            imm: imm_j(w),
        },
        0b1100111 => {
            if funct3(w) != 0 {
                return err;
            }
            Inst::Jalr {
                rd: rd(w),
                rs1: rs1(w),
                imm: imm_i(w),
            }
        }
        0b1100011 => {
            let op = match funct3(w) {
                0b000 => BranchOp::Eq,
                0b001 => BranchOp::Ne,
                0b100 => BranchOp::Lt,
                0b101 => BranchOp::Ge,
                0b110 => BranchOp::Ltu,
                0b111 => BranchOp::Geu,
                _ => return err,
            };
            Inst::Branch {
                op,
                rs1: rs1(w),
                rs2: rs2(w),
                imm: imm_b(w),
            }
        }
        0b0000011 => {
            let op = match funct3(w) {
                0b000 => LoadOp::Lb,
                0b001 => LoadOp::Lh,
                0b010 => LoadOp::Lw,
                0b100 => LoadOp::Lbu,
                0b101 => LoadOp::Lhu,
                _ => return err,
            };
            Inst::Load {
                op,
                rd: rd(w),
                rs1: rs1(w),
                imm: imm_i(w),
            }
        }
        0b0100011 => {
            let op = match funct3(w) {
                0b000 => StoreOp::Sb,
                0b001 => StoreOp::Sh,
                0b010 => StoreOp::Sw,
                _ => return err,
            };
            Inst::Store {
                op,
                rs1: rs1(w),
                rs2: rs2(w),
                imm: imm_s(w),
            }
        }
        0b0010011 => {
            let imm = imm_i(w);
            let shamt = imm & 0x1F;
            let op = match funct3(w) {
                0b000 => AluImmOp::Addi,
                0b010 => AluImmOp::Slti,
                0b011 => AluImmOp::Sltiu,
                0b100 => AluImmOp::Xori,
                0b110 => AluImmOp::Ori,
                0b111 => AluImmOp::Andi,
                0b001 => {
                    if funct7(w) != 0 {
                        return err;
                    }
                    return Ok(Inst::OpImm {
                        op: AluImmOp::Slli,
                        rd: rd(w),
                        rs1: rs1(w),
                        imm: shamt,
                    });
                }
                0b101 => {
                    let op = match funct7(w) {
                        0b0000000 => AluImmOp::Srli,
                        0b0100000 => AluImmOp::Srai,
                        _ => return err,
                    };
                    return Ok(Inst::OpImm {
                        op,
                        rd: rd(w),
                        rs1: rs1(w),
                        imm: shamt,
                    });
                }
                _ => return err,
            };
            Inst::OpImm {
                op,
                rd: rd(w),
                rs1: rs1(w),
                imm,
            }
        }
        0b0110011 => {
            let op = match (funct7(w), funct3(w)) {
                (0b0000000, 0b000) => AluOp::Add,
                (0b0100000, 0b000) => AluOp::Sub,
                (0b0000000, 0b001) => AluOp::Sll,
                (0b0000000, 0b010) => AluOp::Slt,
                (0b0000000, 0b011) => AluOp::Sltu,
                (0b0000000, 0b100) => AluOp::Xor,
                (0b0000000, 0b101) => AluOp::Srl,
                (0b0100000, 0b101) => AluOp::Sra,
                (0b0000000, 0b110) => AluOp::Or,
                (0b0000000, 0b111) => AluOp::And,
                (0b0000001, 0b000) => AluOp::Mul,
                (0b0000001, 0b001) => AluOp::Mulh,
                (0b0000001, 0b010) => AluOp::Mulhsu,
                (0b0000001, 0b011) => AluOp::Mulhu,
                (0b0000001, 0b100) => AluOp::Div,
                (0b0000001, 0b101) => AluOp::Divu,
                (0b0000001, 0b110) => AluOp::Rem,
                (0b0000001, 0b111) => AluOp::Remu,
                _ => return err,
            };
            Inst::Op {
                op,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            }
        }
        0b0001111 => Inst::Fence,
        0b1110011 => match funct3(w) {
            0b000 => match w >> 20 {
                0 => Inst::Ecall,
                1 => Inst::Ebreak,
                _ => return err,
            },
            f3 @ (0b001..=0b011) => {
                let op = match f3 {
                    0b001 => CsrOp::Rw,
                    0b010 => CsrOp::Rs,
                    _ => CsrOp::Rc,
                };
                Inst::Csr {
                    op,
                    rd: rd(w),
                    rs1: rs1(w),
                    csr: (w >> 20) as u16,
                }
            }
            f3 @ (0b101..=0b111) => {
                let op = match f3 {
                    0b101 => CsrOp::Rw,
                    0b110 => CsrOp::Rs,
                    _ => CsrOp::Rc,
                };
                Inst::CsrImm {
                    op,
                    rd: rd(w),
                    uimm: ((w >> 15) & 0x1F) as u8,
                    csr: (w >> 20) as u16,
                }
            }
            _ => return err,
        },
        OPCODE_CUSTOM0 => {
            let Some(op) = NmOp::from_funct3(funct3(w)) else {
                return err;
            };
            if funct7(w) != 0 {
                return err;
            }
            Inst::Nm {
                op,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            }
        }
        _ => return err,
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn decode_known_words() {
        assert_eq!(
            decode(0x00500093).unwrap(),
            Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg(1),
                rs1: Reg(0),
                imm: 5
            }
        );
        assert_eq!(
            decode(0x002081B3).unwrap(),
            Inst::Op {
                op: AluOp::Add,
                rd: Reg(3),
                rs1: Reg(1),
                rs2: Reg(2)
            }
        );
        assert_eq!(decode(0x00000073).unwrap(), Inst::Ecall);
        assert_eq!(decode(0x00100073).unwrap(), Inst::Ebreak);
    }

    #[test]
    fn negative_immediates_sign_extend() {
        // addi x1, x0, -1 = 0xFFF00093
        assert_eq!(
            decode(0xFFF00093).unwrap(),
            Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg(1),
                rs1: Reg(0),
                imm: -1
            }
        );
        // jal x0, -4
        let w = encode(Inst::Jal {
            rd: Reg(0),
            imm: -4,
        });
        assert_eq!(
            decode(w).unwrap(),
            Inst::Jal {
                rd: Reg(0),
                imm: -4
            }
        );
    }

    #[test]
    fn illegal_words_rejected() {
        assert!(decode(0x0000_0000).is_err()); // all zeros
        assert!(decode(0xFFFF_FFFF).is_err()); // all ones
                                               // custom-0 with unassigned funct3
        let w = (0b111 << 12) | OPCODE_CUSTOM0;
        assert!(decode(w).is_err());
        // custom-0 with nonzero funct7
        let w = (1 << 25) | OPCODE_CUSTOM0;
        assert!(decode(w).is_err());
    }

    #[test]
    fn branch_offset_roundtrip_extremes() {
        for imm in [-4096, -2048, -4, 4, 2046, 4094] {
            let i = Inst::Branch {
                op: BranchOp::Lt,
                rs1: Reg(3),
                rs2: Reg(4),
                imm,
            };
            assert_eq!(decode(encode(i)).unwrap(), i, "imm = {imm}");
        }
    }

    #[test]
    fn jal_offset_roundtrip_extremes() {
        for imm in [-1048576, -2, 2, 1048574, 0x1234 & !1] {
            let i = Inst::Jal { rd: Reg(1), imm };
            assert_eq!(decode(encode(i)).unwrap(), i, "imm = {imm}");
        }
    }
}

//! Binary instruction encoding (Inst -> u32), RV32IM + Zicsr + custom-0.

use crate::inst::{AluImmOp, AluOp, BranchOp, CsrOp, Inst, LoadOp, StoreOp};
use crate::OPCODE_CUSTOM0;

const OPC_LUI: u32 = 0b0110111;
const OPC_AUIPC: u32 = 0b0010111;
const OPC_JAL: u32 = 0b1101111;
const OPC_JALR: u32 = 0b1100111;
const OPC_BRANCH: u32 = 0b1100011;
const OPC_LOAD: u32 = 0b0000011;
const OPC_STORE: u32 = 0b0100011;
const OPC_OP_IMM: u32 = 0b0010011;
const OPC_OP: u32 = 0b0110011;
const OPC_MISC_MEM: u32 = 0b0001111;
const OPC_SYSTEM: u32 = 0b1110011;

fn r_type(opcode: u32, funct3: u32, funct7: u32, rd: u32, rs1: u32, rs2: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn i_type(opcode: u32, funct3: u32, rd: u32, rs1: u32, imm: i32) -> u32 {
    let imm = (imm as u32) & 0xFFF;
    (imm << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn s_type(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm: i32) -> u32 {
    let imm = imm as u32;
    let imm11_5 = (imm >> 5) & 0x7F;
    let imm4_0 = imm & 0x1F;
    (imm11_5 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (imm4_0 << 7) | opcode
}

fn b_type(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm: i32) -> u32 {
    let imm = imm as u32;
    let b12 = (imm >> 12) & 1;
    let b11 = (imm >> 11) & 1;
    let b10_5 = (imm >> 5) & 0x3F;
    let b4_1 = (imm >> 1) & 0xF;
    (b12 << 31)
        | (b10_5 << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (b4_1 << 8)
        | (b11 << 7)
        | opcode
}

fn u_type(opcode: u32, rd: u32, imm: i32) -> u32 {
    ((imm as u32) & 0xFFFF_F000) | (rd << 7) | opcode
}

fn j_type(opcode: u32, rd: u32, imm: i32) -> u32 {
    let imm = imm as u32;
    let b20 = (imm >> 20) & 1;
    let b19_12 = (imm >> 12) & 0xFF;
    let b11 = (imm >> 11) & 1;
    let b10_1 = (imm >> 1) & 0x3FF;
    (b20 << 31) | (b10_1 << 21) | (b11 << 20) | (b19_12 << 12) | (rd << 7) | opcode
}

/// Encode a decoded instruction into its 32-bit binary form.
pub fn encode(inst: Inst) -> u32 {
    match inst {
        Inst::Lui { rd, imm } => u_type(OPC_LUI, rd.0 as u32, imm),
        Inst::Auipc { rd, imm } => u_type(OPC_AUIPC, rd.0 as u32, imm),
        Inst::Jal { rd, imm } => j_type(OPC_JAL, rd.0 as u32, imm),
        Inst::Jalr { rd, rs1, imm } => i_type(OPC_JALR, 0b000, rd.0 as u32, rs1.0 as u32, imm),
        Inst::Branch { op, rs1, rs2, imm } => {
            let f3 = match op {
                BranchOp::Eq => 0b000,
                BranchOp::Ne => 0b001,
                BranchOp::Lt => 0b100,
                BranchOp::Ge => 0b101,
                BranchOp::Ltu => 0b110,
                BranchOp::Geu => 0b111,
            };
            b_type(OPC_BRANCH, f3, rs1.0 as u32, rs2.0 as u32, imm)
        }
        Inst::Load { op, rd, rs1, imm } => {
            let f3 = match op {
                LoadOp::Lb => 0b000,
                LoadOp::Lh => 0b001,
                LoadOp::Lw => 0b010,
                LoadOp::Lbu => 0b100,
                LoadOp::Lhu => 0b101,
            };
            i_type(OPC_LOAD, f3, rd.0 as u32, rs1.0 as u32, imm)
        }
        Inst::Store { op, rs1, rs2, imm } => {
            let f3 = match op {
                StoreOp::Sb => 0b000,
                StoreOp::Sh => 0b001,
                StoreOp::Sw => 0b010,
            };
            s_type(OPC_STORE, f3, rs1.0 as u32, rs2.0 as u32, imm)
        }
        Inst::OpImm { op, rd, rs1, imm } => {
            let (f3, imm) = match op {
                AluImmOp::Addi => (0b000, imm),
                AluImmOp::Slti => (0b010, imm),
                AluImmOp::Sltiu => (0b011, imm),
                AluImmOp::Xori => (0b100, imm),
                AluImmOp::Ori => (0b110, imm),
                AluImmOp::Andi => (0b111, imm),
                AluImmOp::Slli => (0b001, imm & 0x1F),
                AluImmOp::Srli => (0b101, imm & 0x1F),
                AluImmOp::Srai => (0b101, (imm & 0x1F) | (0b0100000 << 5)),
            };
            i_type(OPC_OP_IMM, f3, rd.0 as u32, rs1.0 as u32, imm)
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            let (f3, f7) = match op {
                AluOp::Add => (0b000, 0b0000000),
                AluOp::Sub => (0b000, 0b0100000),
                AluOp::Sll => (0b001, 0b0000000),
                AluOp::Slt => (0b010, 0b0000000),
                AluOp::Sltu => (0b011, 0b0000000),
                AluOp::Xor => (0b100, 0b0000000),
                AluOp::Srl => (0b101, 0b0000000),
                AluOp::Sra => (0b101, 0b0100000),
                AluOp::Or => (0b110, 0b0000000),
                AluOp::And => (0b111, 0b0000000),
                AluOp::Mul => (0b000, 0b0000001),
                AluOp::Mulh => (0b001, 0b0000001),
                AluOp::Mulhsu => (0b010, 0b0000001),
                AluOp::Mulhu => (0b011, 0b0000001),
                AluOp::Div => (0b100, 0b0000001),
                AluOp::Divu => (0b101, 0b0000001),
                AluOp::Rem => (0b110, 0b0000001),
                AluOp::Remu => (0b111, 0b0000001),
            };
            r_type(OPC_OP, f3, f7, rd.0 as u32, rs1.0 as u32, rs2.0 as u32)
        }
        Inst::Fence => i_type(OPC_MISC_MEM, 0b000, 0, 0, 0),
        Inst::Ecall => i_type(OPC_SYSTEM, 0b000, 0, 0, 0),
        Inst::Ebreak => i_type(OPC_SYSTEM, 0b000, 0, 0, 1),
        Inst::Csr { op, rd, rs1, csr } => {
            let f3 = match op {
                CsrOp::Rw => 0b001,
                CsrOp::Rs => 0b010,
                CsrOp::Rc => 0b011,
            };
            i_type(OPC_SYSTEM, f3, rd.0 as u32, rs1.0 as u32, csr as i32)
        }
        Inst::CsrImm { op, rd, uimm, csr } => {
            let f3 = match op {
                CsrOp::Rw => 0b101,
                CsrOp::Rs => 0b110,
                CsrOp::Rc => 0b111,
            };
            i_type(
                OPC_SYSTEM,
                f3,
                rd.0 as u32,
                (uimm & 0x1F) as u32,
                csr as i32,
            )
        }
        Inst::Nm { op, rd, rs1, rs2 } => r_type(
            OPCODE_CUSTOM0,
            op.funct3(),
            0,
            rd.0 as u32,
            rs1.0 as u32,
            rs2.0 as u32,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::NmOp;
    use crate::reg::Reg;

    #[test]
    fn known_encodings_match_spec() {
        // Cross-checked against the RISC-V spec / riscv-tests objdumps.
        // addi x1, x0, 5  ->  0x00500093
        assert_eq!(
            encode(Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg(1),
                rs1: Reg(0),
                imm: 5
            }),
            0x00500093
        );
        // add x3, x1, x2 -> 0x002081B3
        assert_eq!(
            encode(Inst::Op {
                op: AluOp::Add,
                rd: Reg(3),
                rs1: Reg(1),
                rs2: Reg(2)
            }),
            0x002081B3
        );
        // lui x5, 0x12345 -> 0x123452B7
        assert_eq!(
            encode(Inst::Lui {
                rd: Reg(5),
                imm: 0x12345000u32 as i32
            }),
            0x123452B7
        );
        // lw x6, 8(x2) -> 0x00812303
        assert_eq!(
            encode(Inst::Load {
                op: LoadOp::Lw,
                rd: Reg(6),
                rs1: Reg(2),
                imm: 8
            }),
            0x00812303
        );
        // sw x6, 12(x2) -> 0x00612623
        assert_eq!(
            encode(Inst::Store {
                op: StoreOp::Sw,
                rs1: Reg(2),
                rs2: Reg(6),
                imm: 12
            }),
            0x00612623
        );
        // beq x1, x2, +16 -> 0x00208863
        assert_eq!(
            encode(Inst::Branch {
                op: BranchOp::Eq,
                rs1: Reg(1),
                rs2: Reg(2),
                imm: 16
            }),
            0x00208863
        );
        // jal x1, +2048 -> imm[20|10:1|11|19:12]
        assert_eq!(
            encode(Inst::Jal {
                rd: Reg(1),
                imm: 2048
            }),
            0x001000EF
        );
        // mul x5, x6, x7 -> 0x027302B3
        assert_eq!(
            encode(Inst::Op {
                op: AluOp::Mul,
                rd: Reg(5),
                rs1: Reg(6),
                rs2: Reg(7)
            }),
            0x027302B3
        );
        // ecall / ebreak
        assert_eq!(encode(Inst::Ecall), 0x00000073);
        assert_eq!(encode(Inst::Ebreak), 0x00100073);
        // csrrs x5, mcycle(0xB00), x0 -> 0xB00022F3
        assert_eq!(
            encode(Inst::Csr {
                op: CsrOp::Rs,
                rd: Reg(5),
                rs1: Reg(0),
                csr: 0xB00
            }),
            0xB00022F3
        );
    }

    #[test]
    fn custom0_opcode_and_funct3() {
        let w = encode(Inst::Nm {
            op: NmOp::Nmpn,
            rd: Reg(12),
            rs1: Reg(16),
            rs2: Reg(17),
        });
        assert_eq!(w & 0x7F, 0b0001011, "custom-0 opcode per Table I");
        assert_eq!((w >> 12) & 0x7, NmOp::Nmpn.funct3());
        assert_eq!((w >> 7) & 0x1F, 12);
        assert_eq!((w >> 15) & 0x1F, 16);
        assert_eq!((w >> 20) & 0x1F, 17);
        assert_eq!(w >> 25, 0, "funct7 zero");
    }

    #[test]
    fn srai_sets_funct7_bit() {
        let w = encode(Inst::OpImm {
            op: AluImmOp::Srai,
            rd: Reg(1),
            rs1: Reg(2),
            imm: 4,
        });
        assert_eq!((w >> 25) & 0x7F, 0b0100000);
        let w2 = encode(Inst::OpImm {
            op: AluImmOp::Srli,
            rd: Reg(1),
            rs1: Reg(2),
            imm: 4,
        });
        assert_eq!((w2 >> 25) & 0x7F, 0);
    }

    #[test]
    fn negative_branch_offset() {
        let w = encode(Inst::Branch {
            op: BranchOp::Ne,
            rs1: Reg(1),
            rs2: Reg(0),
            imm: -4,
        });
        // b12 (sign) must be set.
        assert_eq!(w >> 31, 1);
    }
}

//! General-purpose register file names (x0–x31) with ABI aliases.

/// A RISC-V integer register index (0–31).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Hard-wired zero.
    pub const ZERO: Reg = Reg(0);
    /// Return address.
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Global pointer.
    pub const GP: Reg = Reg(3);
    /// Thread pointer.
    pub const TP: Reg = Reg(4);
    /// Temporaries t0–t6.
    pub const T0: Reg = Reg(5);
    pub const T1: Reg = Reg(6);
    pub const T2: Reg = Reg(7);
    /// Saved / frame pointer.
    pub const S0: Reg = Reg(8);
    pub const S1: Reg = Reg(9);
    /// Arguments / return values a0–a7.
    pub const A0: Reg = Reg(10);
    pub const A1: Reg = Reg(11);
    pub const A2: Reg = Reg(12);
    pub const A3: Reg = Reg(13);
    pub const A4: Reg = Reg(14);
    pub const A5: Reg = Reg(15);
    pub const A6: Reg = Reg(16);
    pub const A7: Reg = Reg(17);
    pub const S2: Reg = Reg(18);
    pub const S3: Reg = Reg(19);
    pub const S4: Reg = Reg(20);
    pub const S5: Reg = Reg(21);
    pub const S6: Reg = Reg(22);
    pub const S7: Reg = Reg(23);
    pub const S8: Reg = Reg(24);
    pub const S9: Reg = Reg(25);
    pub const S10: Reg = Reg(26);
    pub const S11: Reg = Reg(27);
    pub const T3: Reg = Reg(28);
    pub const T4: Reg = Reg(29);
    pub const T5: Reg = Reg(30);
    pub const T6: Reg = Reg(31);

    /// Index as usize for register-file addressing.
    #[inline]
    pub const fn idx(self) -> usize {
        // Masked to the architectural range so indexing a 32-entry
        // register file compiles without a bounds check (this sits on the
        // simulator's per-instruction fast path).
        (self.0 & 31) as usize
    }

    /// Parse a register name: `x0`–`x31` or an ABI alias (`zero`, `ra`,
    /// `sp`, `gp`, `tp`, `t0`–`t6`, `s0`/`fp`–`s11`, `a0`–`a7`).
    pub fn parse(name: &str) -> Option<Reg> {
        let name = name.trim();
        if let Some(num) = name.strip_prefix('x') {
            if let Ok(n) = num.parse::<u8>() {
                if n < 32 {
                    return Some(Reg(n));
                }
            }
            return None;
        }
        let r = match name {
            "zero" => 0,
            "ra" => 1,
            "sp" => 2,
            "gp" => 3,
            "tp" => 4,
            "t0" => 5,
            "t1" => 6,
            "t2" => 7,
            "s0" | "fp" => 8,
            "s1" => 9,
            "a0" => 10,
            "a1" => 11,
            "a2" => 12,
            "a3" => 13,
            "a4" => 14,
            "a5" => 15,
            "a6" => 16,
            "a7" => 17,
            "s2" => 18,
            "s3" => 19,
            "s4" => 20,
            "s5" => 21,
            "s6" => 22,
            "s7" => 23,
            "s8" => 24,
            "s9" => 25,
            "s10" => 26,
            "s11" => 27,
            "t3" => 28,
            "t4" => 29,
            "t5" => 30,
            "t6" => 31,
            _ => return None,
        };
        Some(Reg(r))
    }

    /// Canonical ABI name.
    pub const fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.0 as usize]
    }
}

impl core::fmt::Display for Reg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.abi_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_numeric_and_abi() {
        assert_eq!(Reg::parse("x0"), Some(Reg::ZERO));
        assert_eq!(Reg::parse("x31"), Some(Reg::T6));
        assert_eq!(Reg::parse("x32"), None);
        assert_eq!(Reg::parse("zero"), Some(Reg(0)));
        assert_eq!(Reg::parse("fp"), Some(Reg(8)));
        assert_eq!(Reg::parse("a7"), Some(Reg(17)));
        assert_eq!(Reg::parse("nope"), None);
    }

    #[test]
    fn abi_roundtrip_all() {
        for i in 0..32 {
            let r = Reg(i);
            assert_eq!(Reg::parse(r.abi_name()), Some(r));
            assert_eq!(Reg::parse(&format!("x{i}")), Some(r));
        }
    }
}

//! Disassembler: decoded instructions back to assembler syntax.

use crate::inst::{AluImmOp, AluOp, BranchOp, CsrOp, Inst, LoadOp, StoreOp};

fn branch_mnemonic(op: BranchOp) -> &'static str {
    match op {
        BranchOp::Eq => "beq",
        BranchOp::Ne => "bne",
        BranchOp::Lt => "blt",
        BranchOp::Ge => "bge",
        BranchOp::Ltu => "bltu",
        BranchOp::Geu => "bgeu",
    }
}

fn load_mnemonic(op: LoadOp) -> &'static str {
    match op {
        LoadOp::Lb => "lb",
        LoadOp::Lh => "lh",
        LoadOp::Lw => "lw",
        LoadOp::Lbu => "lbu",
        LoadOp::Lhu => "lhu",
    }
}

fn store_mnemonic(op: StoreOp) -> &'static str {
    match op {
        StoreOp::Sb => "sb",
        StoreOp::Sh => "sh",
        StoreOp::Sw => "sw",
    }
}

fn alu_imm_mnemonic(op: AluImmOp) -> &'static str {
    match op {
        AluImmOp::Addi => "addi",
        AluImmOp::Slti => "slti",
        AluImmOp::Sltiu => "sltiu",
        AluImmOp::Xori => "xori",
        AluImmOp::Ori => "ori",
        AluImmOp::Andi => "andi",
        AluImmOp::Slli => "slli",
        AluImmOp::Srli => "srli",
        AluImmOp::Srai => "srai",
    }
}

fn alu_mnemonic(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Sll => "sll",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Xor => "xor",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Or => "or",
        AluOp::And => "and",
        AluOp::Mul => "mul",
        AluOp::Mulh => "mulh",
        AluOp::Mulhsu => "mulhsu",
        AluOp::Mulhu => "mulhu",
        AluOp::Div => "div",
        AluOp::Divu => "divu",
        AluOp::Rem => "rem",
        AluOp::Remu => "remu",
    }
}

fn csr_mnemonic(op: CsrOp, imm: bool) -> &'static str {
    match (op, imm) {
        (CsrOp::Rw, false) => "csrrw",
        (CsrOp::Rs, false) => "csrrs",
        (CsrOp::Rc, false) => "csrrc",
        (CsrOp::Rw, true) => "csrrwi",
        (CsrOp::Rs, true) => "csrrsi",
        (CsrOp::Rc, true) => "csrrci",
    }
}

/// Render an instruction in the same syntax the assembler accepts, so
/// `assemble(disassemble(i))` round-trips.
pub fn disassemble(inst: Inst) -> String {
    match inst {
        Inst::Lui { rd, imm } => format!("lui {rd}, {:#x}", (imm as u32) >> 12),
        Inst::Auipc { rd, imm } => format!("auipc {rd}, {:#x}", (imm as u32) >> 12),
        Inst::Jal { rd, imm } => format!("jal {rd}, {imm}"),
        Inst::Jalr { rd, rs1, imm } => format!("jalr {rd}, {imm}({rs1})"),
        Inst::Branch { op, rs1, rs2, imm } => {
            format!("{} {rs1}, {rs2}, {imm}", branch_mnemonic(op))
        }
        Inst::Load { op, rd, rs1, imm } => {
            format!("{} {rd}, {imm}({rs1})", load_mnemonic(op))
        }
        Inst::Store { op, rs1, rs2, imm } => {
            format!("{} {rs2}, {imm}({rs1})", store_mnemonic(op))
        }
        Inst::OpImm { op, rd, rs1, imm } => {
            format!("{} {rd}, {rs1}, {imm}", alu_imm_mnemonic(op))
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            format!("{} {rd}, {rs1}, {rs2}", alu_mnemonic(op))
        }
        Inst::Fence => "fence".to_string(),
        Inst::Ecall => "ecall".to_string(),
        Inst::Ebreak => "ebreak".to_string(),
        Inst::Csr { op, rd, rs1, csr } => {
            format!("{} {rd}, {csr:#x}, {rs1}", csr_mnemonic(op, false))
        }
        Inst::CsrImm { op, rd, uimm, csr } => {
            format!("{} {rd}, {csr:#x}, {uimm}", csr_mnemonic(op, true))
        }
        Inst::Nm { op, rd, rs1, rs2 } => {
            format!("{} {rd}, {rs1}, {rs2}", op.mnemonic())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::NmOp;
    use crate::reg::Reg;

    #[test]
    fn renders_expected_syntax() {
        assert_eq!(
            disassemble(Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg(1),
                rs1: Reg(0),
                imm: -7
            }),
            "addi ra, zero, -7"
        );
        assert_eq!(
            disassemble(Inst::Load {
                op: LoadOp::Lw,
                rd: Reg(10),
                rs1: Reg(2),
                imm: 16
            }),
            "lw a0, 16(sp)"
        );
        assert_eq!(
            disassemble(Inst::Nm {
                op: NmOp::Nmpn,
                rd: Reg(12),
                rs1: Reg(16),
                rs2: Reg(17)
            }),
            "nmpn a2, a6, a7"
        );
        assert_eq!(disassemble(Inst::Ebreak), "ebreak");
    }
}

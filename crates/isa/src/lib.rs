//! # izhi-isa — the IzhiRISC-V instruction set
//!
//! Instruction-set layer for the reproduction: RV32I base, the M extension,
//! Zicsr, and the paper's custom-0 neuromorphic extension (`nmldl`, `nmldh`,
//! `nmpn`, `nmdec`; opcode `0001011`, Table I of the paper).
//!
//! Provides:
//!
//! * [`inst::Inst`] — a decoded instruction representation;
//! * [`encode()`](encode::encode)/[`decode()`](decode::decode) — bit-exact binary encoding in both directions;
//! * [`asm::Assembler`] — a two-pass text assembler with labels, data
//!   directives and the usual pseudo-instructions, used to author the guest
//!   workloads (80-20 network, Sudoku solver, soft-float library);
//! * [`disasm`] — a disassembler for debugging and round-trip tests.
//!
//! ```
//! use izhi_isa::asm::Assembler;
//!
//! let prog = Assembler::new()
//!     .assemble(
//!         r#"
//!         .text
//!         start:  li   a0, 42
//!                 nmdec a1, a0, a2     # custom decay instruction
//!                 ebreak
//!         "#,
//!     )
//!     .unwrap();
//! assert_eq!(prog.words().len(), 3);
//! ```

pub mod asm;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod inst;
pub mod reg;

pub use asm::{AsmError, Assembler, Program};
pub use decode::{decode, DecodeError};
pub use disasm::disassemble;
pub use encode::encode;
pub use inst::{AluImmOp, AluOp, BranchOp, CsrOp, Inst, LoadOp, NmOp, StoreOp};
pub use reg::Reg;

/// The custom-0 opcode (`0001011`) carrying the neuromorphic extension.
pub const OPCODE_CUSTOM0: u32 = 0b0001011;

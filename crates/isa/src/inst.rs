//! Decoded instruction representation for RV32IM + Zicsr + custom-0.

use crate::reg::Reg;

/// Conditional branch comparisons (funct3 of the BRANCH opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// beq — branch if equal.
    Eq,
    /// bne — branch if not equal.
    Ne,
    /// blt — branch if less than (signed).
    Lt,
    /// bge — branch if greater or equal (signed).
    Ge,
    /// bltu — branch if less than (unsigned).
    Ltu,
    /// bgeu — branch if greater or equal (unsigned).
    Geu,
}

/// Load widths/signedness (funct3 of the LOAD opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// lb — signed byte.
    Lb,
    /// lh — signed half-word.
    Lh,
    /// lw — word.
    Lw,
    /// lbu — unsigned byte.
    Lbu,
    /// lhu — unsigned half-word.
    Lhu,
}

/// Store widths (funct3 of the STORE opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// sb — byte.
    Sb,
    /// sh — half-word.
    Sh,
    /// sw — word.
    Sw,
}

/// Register-immediate ALU operations (OP-IMM opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// addi.
    Addi,
    /// slti — set if less than, signed.
    Slti,
    /// sltiu — set if less than, unsigned.
    Sltiu,
    /// xori.
    Xori,
    /// ori.
    Ori,
    /// andi.
    Andi,
    /// slli — shift left logical.
    Slli,
    /// srli — shift right logical.
    Srli,
    /// srai — shift right arithmetic.
    Srai,
}

/// Register-register ALU operations (OP opcode), including the M extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// add.
    Add,
    /// sub.
    Sub,
    /// sll.
    Sll,
    /// slt.
    Slt,
    /// sltu.
    Sltu,
    /// xor.
    Xor,
    /// srl.
    Srl,
    /// sra.
    Sra,
    /// or.
    Or,
    /// and.
    And,
    /// mul — low 32 bits of the product (M).
    Mul,
    /// mulh — high 32 bits, signed × signed (M).
    Mulh,
    /// mulhsu — high 32 bits, signed × unsigned (M).
    Mulhsu,
    /// mulhu — high 32 bits, unsigned × unsigned (M).
    Mulhu,
    /// div — signed division (M).
    Div,
    /// divu — unsigned division (M).
    Divu,
    /// rem — signed remainder (M).
    Rem,
    /// remu — unsigned remainder (M).
    Remu,
}

impl AluOp {
    /// True for the M-extension multiply/divide group.
    pub const fn is_m_ext(self) -> bool {
        matches!(
            self,
            AluOp::Mul
                | AluOp::Mulh
                | AluOp::Mulhsu
                | AluOp::Mulhu
                | AluOp::Div
                | AluOp::Divu
                | AluOp::Rem
                | AluOp::Remu
        )
    }
}

/// Zicsr operations (SYSTEM opcode, funct3 != 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// csrrw — atomic read/write.
    Rw,
    /// csrrs — atomic read and set bits.
    Rs,
    /// csrrc — atomic read and clear bits.
    Rc,
}

/// The custom-0 neuromorphic operations (Table I of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NmOp {
    /// nmldl — load Izhikevich a/b/c/d parameters into NM_REGS.
    Nmldl,
    /// nmldh — load timestep select and pin bit into NM_REGS.
    Nmldh,
    /// nmpn — process neuron: Euler-update the VU word, store it to memory
    /// at the address carried in rd, and write the spike flag to rd.
    Nmpn,
    /// nmdec — exponential decay of a Q15.16 current via the DCU.
    Nmdec,
}

impl NmOp {
    /// funct3 encoding chosen for the custom-0 opcode (the paper does not
    /// publish concrete funct3 values; this assignment is ours and is kept
    /// stable across the toolchain).
    pub const fn funct3(self) -> u32 {
        match self {
            NmOp::Nmldl => 0b000,
            NmOp::Nmldh => 0b001,
            NmOp::Nmpn => 0b010,
            NmOp::Nmdec => 0b011,
        }
    }

    /// Inverse of [`NmOp::funct3`].
    pub const fn from_funct3(f3: u32) -> Option<NmOp> {
        match f3 {
            0b000 => Some(NmOp::Nmldl),
            0b001 => Some(NmOp::Nmldh),
            0b010 => Some(NmOp::Nmpn),
            0b011 => Some(NmOp::Nmdec),
            _ => None,
        }
    }

    /// Mnemonic string.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            NmOp::Nmldl => "nmldl",
            NmOp::Nmldh => "nmldh",
            NmOp::Nmpn => "nmpn",
            NmOp::Nmdec => "nmdec",
        }
    }
}

/// A decoded IzhiRISC-V instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// lui rd, imm20 — load upper immediate.
    Lui { rd: Reg, imm: i32 },
    /// auipc rd, imm20 — add upper immediate to pc.
    Auipc { rd: Reg, imm: i32 },
    /// jal rd, offset — jump and link.
    Jal { rd: Reg, imm: i32 },
    /// jalr rd, rs1, offset — indirect jump and link.
    Jalr { rd: Reg, rs1: Reg, imm: i32 },
    /// Conditional branch.
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        imm: i32,
    },
    /// Memory load.
    Load {
        op: LoadOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Memory store.
    Store {
        op: StoreOp,
        rs1: Reg,
        rs2: Reg,
        imm: i32,
    },
    /// Register-immediate ALU.
    OpImm {
        op: AluImmOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Register-register ALU (incl. M extension).
    Op {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// fence (treated as a no-op by the in-order core).
    Fence,
    /// ecall — environment call (host services in the simulator).
    Ecall,
    /// ebreak — halts the simulated core.
    Ebreak,
    /// Zicsr register form: csrrw/csrrs/csrrc rd, csr, rs1.
    Csr {
        op: CsrOp,
        rd: Reg,
        rs1: Reg,
        csr: u16,
    },
    /// Zicsr immediate form: csrrwi/csrrsi/csrrci rd, csr, uimm5.
    CsrImm {
        op: CsrOp,
        rd: Reg,
        uimm: u8,
        csr: u16,
    },
    /// Custom-0 neuromorphic instruction (R-type operand layout; `nmpn`
    /// additionally treats rd as a source carrying the VU-word address).
    Nm {
        op: NmOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
}

impl Inst {
    /// Destination register written by this instruction, if any (x0 counts
    /// as "none" since writes to it are discarded).
    pub fn dest(&self) -> Option<Reg> {
        let rd = match *self {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::OpImm { rd, .. }
            | Inst::Op { rd, .. }
            | Inst::Csr { rd, .. }
            | Inst::CsrImm { rd, .. }
            | Inst::Nm { rd, .. } => rd,
            _ => return None,
        };
        (rd != Reg::ZERO).then_some(rd)
    }

    /// Source registers read by this instruction. `nmpn` reads rd as a
    /// third source (the VU-word address), per the paper's "N-type".
    pub fn sources(&self) -> [Option<Reg>; 3] {
        fn nz(r: Reg) -> Option<Reg> {
            (r != Reg::ZERO).then_some(r)
        }
        match *self {
            Inst::Jalr { rs1, .. } | Inst::Load { rs1, .. } | Inst::OpImm { rs1, .. } => {
                [nz(rs1), None, None]
            }
            Inst::Branch { rs1, rs2, .. }
            | Inst::Store { rs1, rs2, .. }
            | Inst::Op { rs1, rs2, .. } => [nz(rs1), nz(rs2), None],
            Inst::Csr { rs1, .. } => [nz(rs1), None, None],
            Inst::Nm { op, rd, rs1, rs2 } => match op {
                NmOp::Nmpn => [nz(rs1), nz(rs2), nz(rd)],
                _ => [nz(rs1), nz(rs2), None],
            },
            _ => [None, None, None],
        }
    }

    /// True if this instruction accesses data memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
            || matches!(self, Inst::Nm { op: NmOp::Nmpn, .. })
    }

    /// True if this is one of the custom neuromorphic instructions.
    pub fn is_nm(&self) -> bool {
        matches!(self, Inst::Nm { .. })
    }

    /// True for control-flow instructions (jumps and branches).
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nm_funct3_roundtrip() {
        for op in [NmOp::Nmldl, NmOp::Nmldh, NmOp::Nmpn, NmOp::Nmdec] {
            assert_eq!(NmOp::from_funct3(op.funct3()), Some(op));
        }
        assert_eq!(NmOp::from_funct3(0b111), None);
    }

    #[test]
    fn nmpn_reads_rd_as_source() {
        let i = Inst::Nm {
            op: NmOp::Nmpn,
            rd: Reg::A2,
            rs1: Reg::A6,
            rs2: Reg::A7,
        };
        let srcs = i.sources();
        assert!(srcs.contains(&Some(Reg::A2)));
        assert!(srcs.contains(&Some(Reg::A6)));
        assert!(srcs.contains(&Some(Reg::A7)));
        // ...and still writes rd.
        assert_eq!(i.dest(), Some(Reg::A2));
        // nmpn stores to memory.
        assert!(i.is_mem());
    }

    #[test]
    fn x0_dest_is_none() {
        let i = Inst::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::ZERO,
            rs1: Reg::A0,
            imm: 1,
        };
        assert_eq!(i.dest(), None);
    }

    #[test]
    fn m_ext_classification() {
        assert!(AluOp::Mul.is_m_ext());
        assert!(AluOp::Remu.is_m_ext());
        assert!(!AluOp::Add.is_m_ext());
    }
}
